//! # fsi — fast selected inversion for Green's function calculation in DQMC
//!
//! Umbrella crate for the workspace reproducing Jiang, Bai & Scalettar,
//! *"A Fast Selected Inversion Algorithm for Green's Function Calculation
//! in Many-body Quantum Monte Carlo Simulations"*, IEEE IPDPS 2016.
//!
//! Re-exports the six member crates:
//!
//! * [`runtime`] — thread pool (OpenMP analog), in-process ranks with
//!   collectives (MPI analog), flop accounting, timers, scheduling
//!   simulator;
//! * [`dense`] — from-scratch mini BLAS/LAPACK (GEMM, LU, Householder QR,
//!   triangular kernels, matrix exponential);
//! * [`pcyclic`] — block p-cyclic matrices, lattices, Hubbard-model block
//!   generation, the explicit Green's-function expressions;
//! * [`selinv`] — the paper's contribution: the FSI algorithm (CLS +
//!   BSOFI + wrapping), selection patterns, baselines, the hybrid
//!   multi-matrix driver and the Fig. 9 memory model;
//! * [`dqmc`] — a determinant quantum Monte Carlo engine for the Hubbard
//!   model running its Green's-function phase on FSI;
//! * [`service`] — Green's-function-as-a-service: a work-stealing
//!   multi-tenant job queue over the rank pool, with admission control,
//!   per-tenant metering, and per-job degradation.
//!
//! ## Quickstart
//!
//! ```
//! use fsi::pcyclic::{BlockBuilder, HsField, HubbardParams, SquareLattice, Spin};
//! use fsi::selinv::{fsi_with_q, Parallelism, Pattern, Selection};
//!
//! // A 4×4 Hubbard lattice, L = 8 imaginary-time slices.
//! let lattice = SquareLattice::square(4);
//! let params = HubbardParams::paper_validation(8);
//! let builder = BlockBuilder::new(lattice, params);
//! let field = HsField::ones(8, 16);
//! let m = fsi::pcyclic::hubbard_pcyclic(&builder, &field, Spin::Up);
//!
//! // Select b = L/c = 2 block columns of the Green's function G = M⁻¹.
//! let selection = Selection::new(Pattern::Columns, 4, 1);
//! let out = fsi_with_q(Parallelism::Serial, &m, &selection).expect("healthy");
//! assert_eq!(out.selected.len(), 2 * 8);
//! ```
pub use fsi_dense as dense;
pub use fsi_dqmc as dqmc;
pub use fsi_pcyclic as pcyclic;
pub use fsi_runtime as runtime;
pub use fsi_selinv as selinv;
pub use fsi_service as service;
