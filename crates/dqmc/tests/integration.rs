//! Integration tests of the DQMC engine against exactly solvable limits
//! and internal consistency requirements.

use fsi_dqmc::{run, DqmcConfig, SweepConfig, Sweeper};
use fsi_pcyclic::{BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
use fsi_selinv::Parallelism;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// At U = 0 the HS field decouples: every observable must equal the exact
/// free-fermion value regardless of the Monte Carlo dynamics.
#[test]
fn free_fermion_limit_is_exact() {
    let cfg = DqmcConfig {
        nx: 4,
        ny: 4,
        t: 1.0,
        u: 0.0,
        beta: 2.0,
        l: 16,
        c: 4,
        warmup: 1,
        measurements: 3,
        stabilize_every: 4,
        delay: 1,
        seed: 3,
    };
    let r = run(&cfg, Parallelism::Serial).expect("healthy");
    // Half filling exactly.
    assert!(
        (r.density.mean() - 1.0).abs() < 1e-10,
        "density {}",
        r.density.mean()
    );
    assert!(
        r.density.stderr() < 1e-10,
        "free density must not fluctuate"
    );
    // Double occupancy is exactly n↑·n↓ = 0.25.
    assert!((r.double_occupancy.mean() - 0.25).abs() < 1e-10);
    // Moment exactly 0.5.
    assert!((r.moment.mean() - 0.5).abs() < 1e-10);
    // Every proposal is accepted (the ratio is identically 1).
    assert!((r.acceptance.mean() - 1.0).abs() < 1e-12);
}

/// Exact benchmark: a single site (no hopping) at half filling has the
/// closed-form double occupancy
/// `⟨n↑n↓⟩ = 1/(2·(1 + e^{βU/2}·sech-ish…))` — more robustly, compare
/// against exact diagonalization of the 4-state single-site problem.
#[test]
fn single_site_atomic_limit_matches_exact_diagonalization() {
    // H = U(n↑−1/2)(n↓−1/2) (particle-hole symmetric single site).
    // States: |0⟩, |↑⟩, |↓⟩, |↑↓⟩ with energies U/4, −U/4, −U/4, U/4.
    let u = 4.0;
    let beta = 1.5;
    let x: f64 = beta * u / 4.0;
    let z = 2.0 * (-x).exp() + 2.0 * x.exp();
    // ⟨n↑n↓⟩ = e^{−βU/4}/Z  (only |↑↓⟩ contributes, weight e^{−βU/4}).
    let exact_docc = (-x).exp() / z;
    // DQMC on a 1×1 "lattice" (no neighbours → kinetic term vanishes;
    // the Trotter factorization is then EXACT, no discretization error).
    let cfg = DqmcConfig {
        nx: 1,
        ny: 1,
        t: 1.0,
        u,
        beta,
        l: 8,
        c: 4,
        warmup: 50,
        measurements: 400,
        stabilize_every: 4,
        delay: 1,
        seed: 17,
    };
    let r = run(&cfg, Parallelism::Serial).expect("healthy");
    let err = (r.double_occupancy.mean() - exact_docc).abs();
    // Monte Carlo error bar at 400 samples; allow 5 sigma + a floor.
    let tol = (5.0 * r.double_occupancy.stderr()).max(0.02);
    assert!(
        err < tol,
        "⟨n↑n↓⟩ = {} ± {} vs exact {exact_docc} (err {err}, tol {tol})",
        r.double_occupancy.mean(),
        r.double_occupancy.stderr()
    );
    assert!(
        (r.density.mean() - 1.0).abs() < 1e-8,
        "PH symmetry holds per config"
    );
}

/// Detailed balance smoke test: forward and reverse flips have reciprocal
/// Metropolis ratios.
#[test]
fn metropolis_ratios_are_reciprocal() {
    let builder = BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(8));
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let field = HsField::random(8, 4, &mut rng);
    let sweeper = Sweeper::new(&builder, field, SweepConfig::default()).expect("healthy");
    // Ratio of flipping (0, 2), then after flipping, the reverse ratio.
    let (r_up, r_dn) = sweeper.ratio(0, 2);
    let forward = r_up * r_dn;
    // Accept the flip by force: use the public sweep path via a crafted
    // single-step — easiest is a fresh sweeper with the flipped field.
    let mut flipped_field = sweeper.field().clone();
    flipped_field.flip(0, 2);
    let flipped = Sweeper::new(&builder, flipped_field, SweepConfig::default()).expect("healthy");
    let (ru2, rd2) = flipped.ratio(0, 2);
    let backward = ru2 * rd2;
    assert!(
        (forward * backward - 1.0).abs() < 1e-8,
        "detailed balance: {forward} × {backward} ≠ 1"
    );
}

/// The Green's function wrap chain around the full torus returns to the
/// starting frame.
#[test]
fn wrap_around_the_torus_is_identity() {
    let builder = BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(6));
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let field = HsField::random(6, 4, &mut rng);
    let cfg = SweepConfig {
        c: 3,
        ..SweepConfig::default()
    };
    let mut sweeper = Sweeper::new(&builder, field, cfg).expect("healthy");
    let g0 = sweeper.green(Spin::Up).clone();
    // Refresh at each slice in turn and come back to 0.
    for slice in [1usize, 2, 3, 4, 5, 0] {
        sweeper
            .refresh(slice, Parallelism::Serial)
            .expect("healthy");
    }
    let g_back = sweeper.green(Spin::Up).clone();
    assert!(
        fsi_dense::rel_error(&g_back, &g0) < 1e-9,
        "torus roundtrip drift {}",
        fsi_dense::rel_error(&g_back, &g0)
    );
}

/// Delayed updates at the simulation level reproduce the plain results.
#[test]
fn delayed_updates_do_not_change_the_simulation() {
    let base = DqmcConfig {
        nx: 2,
        ny: 2,
        t: 1.0,
        u: 4.0,
        beta: 2.0,
        l: 8,
        c: 4,
        warmup: 1,
        measurements: 3,
        stabilize_every: 4,
        delay: 1,
        seed: 21,
    };
    let plain = run(&base, Parallelism::Serial).expect("healthy");
    let delayed = run(
        &DqmcConfig {
            delay: 8,
            ..base.clone()
        },
        Parallelism::Serial,
    )
    .expect("healthy");
    assert!((plain.density.mean() - delayed.density.mean()).abs() < 1e-9);
    assert!((plain.moment.mean() - delayed.moment.mean()).abs() < 1e-9);
    assert!((plain.kinetic.mean() - delayed.kinetic.mean()).abs() < 1e-9);
}
