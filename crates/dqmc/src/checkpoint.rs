//! Durable checkpoint/restart for the DQMC sweep trajectory.
//!
//! Hour-scale runs (the paper's Fig. 9 regime, the large-β targets of
//! Luu et al.) die to OOM kills and node restarts far more often than to
//! numerical faults, and the in-process recovery ladder cannot help a
//! dead process. This module makes process death a resumable event with
//! a hard guarantee: **a run resumed from a checkpoint produces bitwise-
//! identical fields, Green's functions, sign, and measurement bins to an
//! uninterrupted run** — the crash-safety extension of the
//! reproducibility contract that already makes schedules interchangeable.
//!
//! The argument for bitwise equality is structural. At a sweep boundary
//! the sweep engine's state is fully determined by four things: the HS
//! field configuration, the in-force [`SweepConfig`] (recovery rungs 2–4
//! mutate it persistently, and `c`/wrap-strategy changes shift round-off),
//! the accumulated Monte Carlo sign, and the RNG stream position. Every
//! sweep begins with a from-scratch refresh, and warm caches are bitwise
//! equal to cold rebuilds, so a fresh [`Sweeper`] built from the
//! checkpointed field with the checkpointed config — sign and RNG
//! position reinstated — continues exactly as the original would have.
//!
//! [`SweepCheckpoint`] rides the [`fsi_runtime::ckpt`] envelope:
//! versioned, FNV-checksummed, written atomically (tmp + rename), and
//! rotated through two generations. A torn or corrupt current file is
//! detected on load and falls back to the previous generation (counted
//! and noted on the flight recorder); when both generations are bad the
//! caller starts from scratch.

use std::path::Path;

use fsi_pcyclic::{BlockBuilder, HsField};
use fsi_runtime::ckpt::{self, CkptError, Generation, Reader, Writer};
use fsi_runtime::health::FsiResult;
use fsi_selinv::Parallelism;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::sweep::{SweepConfig, Sweeper, WrapStrategy};

/// Payload version of [`SweepCheckpoint`]'s serialization.
pub const SWEEP_CKPT_VERSION: u32 = 1;

/// Everything needed to resume a sweep trajectory bitwise-exactly from a
/// sweep boundary (see the module docs for why this set is sufficient).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCheckpoint {
    /// Sweeps completed so far.
    pub sweep: u64,
    /// Time slices `L` (shape check on resume).
    pub l: usize,
    /// Lattice sites `N` (shape check on resume).
    pub n: usize,
    /// The HS field configuration at the boundary, flattened slice-major.
    pub field: Vec<i8>,
    /// ChaCha8 stream position (32-bit words consumed) of the trajectory
    /// RNG.
    pub rng_word_pos: u64,
    /// The accumulated Monte Carlo sign.
    pub sign: f64,
    /// The sweep configuration *in force* — including any persistent
    /// recovery-ladder mutations (shrunk `c`, dense-wrap fallback).
    pub cfg: SweepConfig,
    /// Accumulated per-sweep measurement bins `(sweep, quantities)`.
    pub bins: Vec<(u64, Vec<f64>)>,
}

fn wrap_as_u32(w: WrapStrategy) -> u32 {
    match w {
        WrapStrategy::Dense => 0,
        WrapStrategy::Factored => 1,
    }
}

fn wrap_from_u32(v: u32) -> Result<WrapStrategy, CkptError> {
    match v {
        0 => Ok(WrapStrategy::Dense),
        1 => Ok(WrapStrategy::Factored),
        _ => Err(CkptError::Malformed("unknown wrap strategy")),
    }
}

impl SweepCheckpoint {
    /// Serializes to envelope-ready payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.sweep);
        w.put_u64(self.l as u64);
        w.put_u64(self.n as u64);
        w.put_i8s(&self.field);
        w.put_u64(self.rng_word_pos);
        w.put_f64(self.sign);
        w.put_u64(self.cfg.c as u64);
        w.put_u64(self.cfg.stabilize_every as u64);
        w.put_u64(self.cfg.delay as u64);
        w.put_u32(wrap_as_u32(self.cfg.wrap));
        w.put_u32(self.cfg.incremental as u32);
        w.put_u32(self.cfg.track_drift as u32);
        w.put_u64(self.bins.len() as u64);
        for (sweep, quantities) in &self.bins {
            w.put_u64(*sweep);
            w.put_f64s(quantities);
        }
        w.into_bytes()
    }

    /// Deserializes what [`SweepCheckpoint::encode`] wrote.
    ///
    /// # Errors
    /// [`CkptError::Malformed`] on truncation, trailing garbage, or
    /// structurally impossible values.
    pub fn decode(payload: &[u8]) -> Result<Self, CkptError> {
        let mut r = Reader::new(payload);
        let sweep = r.take_u64()?;
        let l = r.take_u64()? as usize;
        let n = r.take_u64()? as usize;
        let field = r.take_i8s()?;
        if field.len() != l * n {
            return Err(CkptError::Malformed("field length != L*N"));
        }
        if !field.iter().all(|&x| x == 1 || x == -1) {
            return Err(CkptError::Malformed("field entries must be ±1"));
        }
        let rng_word_pos = r.take_u64()?;
        let sign = r.take_f64()?;
        let c = r.take_u64()? as usize;
        if c == 0 || (l > 0 && !l.is_multiple_of(c)) {
            return Err(CkptError::Malformed("cluster size must divide L"));
        }
        let cfg = SweepConfig {
            c,
            stabilize_every: r.take_u64()? as usize,
            delay: r.take_u64()? as usize,
            wrap: wrap_from_u32(r.take_u32()?)?,
            incremental: r.take_u32()? != 0,
            track_drift: r.take_u32()? != 0,
        };
        let n_bins = r.take_u64()? as usize;
        let mut bins = Vec::with_capacity(n_bins.min(1 << 20));
        for _ in 0..n_bins {
            let s = r.take_u64()?;
            bins.push((s, r.take_f64s()?));
        }
        if !r.is_empty() {
            return Err(CkptError::Malformed("trailing bytes after bins"));
        }
        Ok(SweepCheckpoint {
            sweep,
            l,
            n,
            field,
            rng_word_pos,
            sign,
            cfg,
            bins,
        })
    }

    /// Seals and stores at `path` atomically with two-generation
    /// rotation ([`fsi_runtime::ckpt::store`]). Returns the bytes
    /// written.
    ///
    /// # Errors
    /// Filesystem errors from the rotation or write.
    pub fn save(&self, path: &Path) -> std::io::Result<u64> {
        ckpt::store(path, SWEEP_CKPT_VERSION, &self.encode())
    }

    /// Loads from `path`, falling back to the previous generation when
    /// the current one is torn or corrupt.
    ///
    /// # Errors
    /// When neither generation yields a valid checkpoint (including the
    /// nothing-on-disk case, which callers treat as "start from
    /// scratch").
    pub fn load(path: &Path) -> Result<(Self, Generation), CkptError> {
        let (payload, generation) = ckpt::load(path, SWEEP_CKPT_VERSION)?;
        Ok((SweepCheckpoint::decode(&payload)?, generation))
    }
}

/// A checkpointable DQMC sweep driver: the warmup/measurement loop of
/// Alg. 4 reduced to its trajectory core (sweep + per-sweep bin), with
/// [`DurableSweeper::checkpoint`]/[`DurableSweeper::resume`] as the
/// crash-safety hooks. The service tier and the `bench_recovery` crash
/// drill both drive this type.
pub struct DurableSweeper<'a> {
    sweeper: Sweeper<'a>,
    rng: ChaCha8Rng,
    seed: u64,
    sweep: u64,
    bins: Vec<(u64, Vec<f64>)>,
}

impl<'a> DurableSweeper<'a> {
    /// Starts a fresh trajectory: RNG seeded from `seed`, initial field
    /// drawn from it (the same initialization as [`crate::sim::run`]).
    ///
    /// # Errors
    /// The initial refresh's unrecovered health failures.
    pub fn new(builder: &'a BlockBuilder, cfg: SweepConfig, seed: u64) -> FsiResult<Self> {
        let l = builder.params().l;
        let n = builder.lattice().n_sites();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let field = HsField::random(l, n, &mut rng);
        let sweeper = Sweeper::new(builder, field, cfg)?;
        Ok(DurableSweeper {
            sweeper,
            rng,
            seed,
            sweep: 0,
            bins: Vec::new(),
        })
    }

    /// Resumes from a checkpoint: rebuilds the sweeper from the stored
    /// field and in-force config, reinstates the sign, and fast-forwards
    /// a fresh seed-`seed` RNG to the stored stream position.
    ///
    /// # Errors
    /// Refresh failures, as in [`DurableSweeper::new`].
    ///
    /// # Panics
    /// When the checkpoint's `(L, N)` shape does not match `builder` —
    /// resuming against the wrong lattice is operator error, not a
    /// recoverable condition.
    pub fn resume(builder: &'a BlockBuilder, ckpt: SweepCheckpoint, seed: u64) -> FsiResult<Self> {
        assert_eq!(ckpt.l, builder.params().l, "checkpoint L mismatch");
        assert_eq!(ckpt.n, builder.lattice().n_sites(), "checkpoint N mismatch");
        let field = HsField::from_flat(ckpt.l, ckpt.n, &ckpt.field);
        let mut sweeper = Sweeper::new(builder, field, ckpt.cfg)?;
        sweeper.restore_sign(ckpt.sign);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_word_pos(ckpt.rng_word_pos);
        Ok(DurableSweeper {
            sweeper,
            rng,
            seed,
            sweep: ckpt.sweep,
            bins: ckpt.bins,
        })
    }

    /// Sweeps completed so far.
    pub fn sweeps_done(&self) -> u64 {
        self.sweep
    }

    /// The accumulated `(sweep, quantities)` bins.
    pub fn bins(&self) -> &[(u64, Vec<f64>)] {
        &self.bins
    }

    /// The underlying sweep engine (fields, Green's functions, sign).
    pub fn sweeper(&self) -> &Sweeper<'a> {
        &self.sweeper
    }

    /// Runs one sweep and records its measurement bin: the per-spin
    /// Green's-function traces plus the sign — cheap, slice-local, and
    /// bitwise-deterministic, which is what the crash drill compares.
    ///
    /// # Errors
    /// Unrecovered health failures from the sweep's recovery ladder.
    pub fn sweep_once(&mut self, par: Parallelism<'_>) -> FsiResult<()> {
        self.sweeper.sweep(&mut self.rng, par)?;
        let mut quantities = Vec::with_capacity(3);
        for spin in fsi_pcyclic::Spin::BOTH {
            let g = self.sweeper.green(spin);
            let mut tr = 0.0;
            for i in 0..g.rows() {
                tr += g[(i, i)];
            }
            quantities.push(tr);
        }
        quantities.push(self.sweeper.sign());
        self.bins.push((self.sweep, quantities));
        self.sweep += 1;
        Ok(())
    }

    /// Captures the resumable state at the current sweep boundary.
    pub fn checkpoint(&self) -> SweepCheckpoint {
        let field = self.sweeper.field();
        SweepCheckpoint {
            sweep: self.sweep,
            l: field.slices(),
            n: field.sites(),
            field: field.to_flat(),
            rng_word_pos: self.rng.word_pos(),
            sign: self.sweeper.sign(),
            cfg: *self.sweeper.config(),
            bins: self.bins.clone(),
        }
    }

    /// Runs until `total` sweeps are done, checkpointing to `path` every
    /// `every` sweeps (and once at the end). With `path = None` this is
    /// a plain uninterrupted run — the drill's reference arm.
    ///
    /// # Errors
    /// Unrecovered sweep failures.
    ///
    /// # Panics
    /// When a requested checkpoint cannot be written — silently losing
    /// durability would void the guarantee the caller asked for.
    pub fn run_to(
        &mut self,
        total: u64,
        par: Parallelism<'_>,
        path: Option<&Path>,
        every: u64,
    ) -> FsiResult<()> {
        while self.sweep < total {
            self.sweep_once(par)?;
            if let Some(path) = path {
                if self.sweep.is_multiple_of(every.max(1)) || self.sweep == total {
                    self.checkpoint().save(path).expect("checkpoint write");
                }
            }
        }
        Ok(())
    }

    /// The trajectory seed (matches what [`DurableSweeper::resume`]
    /// needs alongside the checkpoint).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_pcyclic::{HubbardParams, SquareLattice};

    fn builder() -> BlockBuilder {
        BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(8))
    }

    fn cfg() -> SweepConfig {
        SweepConfig {
            c: 4,
            stabilize_every: 4,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn checkpoint_encode_decode_round_trip() {
        let b = builder();
        let mut d = DurableSweeper::new(&b, cfg(), 7).expect("healthy");
        d.run_to(3, Parallelism::Serial, None, 1).expect("healthy");
        let ck = d.checkpoint();
        let decoded = SweepCheckpoint::decode(&ck.encode()).expect("round trip");
        assert_eq!(decoded, ck);
    }

    #[test]
    fn resume_is_bitwise_equal_to_uninterrupted() {
        let b = builder();
        let total = 6u64;

        // Reference: uninterrupted trajectory.
        let mut reference = DurableSweeper::new(&b, cfg(), 42).expect("healthy");
        reference
            .run_to(total, Parallelism::Serial, None, 1)
            .expect("healthy");

        // Interrupted at every possible boundary: checkpoint, drop,
        // resume, finish — bins, field, sign, and G must match bitwise.
        for stop in 1..total {
            let mut first = DurableSweeper::new(&b, cfg(), 42).expect("healthy");
            first
                .run_to(stop, Parallelism::Serial, None, 1)
                .expect("healthy");
            let ck = first.checkpoint();
            drop(first);
            let mut resumed = DurableSweeper::resume(&b, ck, 42).expect("healthy resume");
            resumed
                .run_to(total, Parallelism::Serial, None, 1)
                .expect("healthy");
            assert_eq!(resumed.bins(), reference.bins(), "bins differ, stop={stop}");
            assert_eq!(
                resumed.sweeper().field(),
                reference.sweeper().field(),
                "fields differ, stop={stop}"
            );
            assert_eq!(
                resumed.sweeper().sign().to_bits(),
                reference.sweeper().sign().to_bits(),
                "sign differs, stop={stop}"
            );
            for spin in fsi_pcyclic::Spin::BOTH {
                assert_eq!(
                    resumed.sweeper().green(spin).as_slice(),
                    reference.sweeper().green(spin).as_slice(),
                    "G^{spin:?} differs, stop={stop}"
                );
            }
        }
    }

    #[test]
    fn torn_file_falls_back_to_previous_generation() {
        let dir = std::env::temp_dir().join(format!("fsi-dqmc-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");

        let b = builder();
        let mut d = DurableSweeper::new(&b, cfg(), 5).expect("healthy");
        d.run_to(2, Parallelism::Serial, Some(&path), 1)
            .expect("healthy");
        let gen1 = SweepCheckpoint::load(&path).expect("clean load").0;
        assert_eq!(gen1.sweep, 2);

        // Tear the current generation mid-payload; the previous
        // generation (sweep 1) must serve the load.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let (ck, generation) = SweepCheckpoint::load(&path).expect("fallback");
        assert_eq!(generation, Generation::Previous);
        assert_eq!(ck.sweep, 1);

        // Resume from the fallback still reaches the reference bitwise.
        let mut resumed = DurableSweeper::resume(&b, ck, 5).expect("healthy");
        resumed
            .run_to(4, Parallelism::Serial, None, 1)
            .expect("healthy");
        let mut reference = DurableSweeper::new(&b, cfg(), 5).expect("healthy");
        reference
            .run_to(4, Parallelism::Serial, None, 1)
            .expect("healthy");
        assert_eq!(resumed.bins(), reference.bins());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
