//! # fsi-dqmc — determinant quantum Monte Carlo on the FSI kernel
//!
//! The end-to-end workload of the paper's §IV–V: a DQMC simulation of the
//! two-dimensional Hubbard model whose Green's-function phase runs on the
//! fast selected inversion algorithm.
//!
//! * [`stable`] — stabilized equal-time Green's functions via the
//!   CLS + BSOFI route (the paper notes Hirsch's stable low-temperature
//!   algorithm is block cyclic reduction in disguise), plus the naive
//!   product baseline for the stabilization ablation;
//! * [`sweep`] — Metropolis sweeps: determinant ratios from a single
//!   Green's-function diagonal element, O(N²) Sherman–Morrison updates,
//!   similarity wraps between slices, periodic restabilization;
//! * [`meas`] — equal-time observables (density, double occupancy, local
//!   moment, kinetic energy, spin correlations) and the time-dependent
//!   SPXX table computed from FSI's block rows + columns with per-task
//!   local accumulators;
//! * [`sim`] — the full warmup + measurement loop (Alg. 4) with the
//!   per-phase timing decomposition of Figs. 10–11;
//! * [`checkpoint`] — durable checkpoint/restart: versioned, checksummed
//!   sweep-boundary snapshots with a bitwise-identical-resume guarantee.

#![warn(missing_docs)]
// index loops mirror the site/slice indexing of the algorithms.
#![allow(clippy::needless_range_loop)]

pub mod checkpoint;
pub mod delayed;
pub mod meas;
pub mod sim;
pub mod stable;
pub mod sweep;

pub use checkpoint::{DurableSweeper, SweepCheckpoint, SWEEP_CKPT_VERSION};
pub use delayed::DelayedUpdates;
pub use meas::{
    equal_time, spin_zz_by_displacement, spxx, staggered_structure_factor, structure_factor_q,
    uniform_xy_susceptibility, Accumulator, EqualTime, SpxxTable,
};
pub use sim::{run, DqmcConfig, DqmcResults};
pub use stable::{equal_time_green_cached, equal_time_green_naive, equal_time_green_stable};
pub use sweep::{
    wrap_dense, wrap_factored, RecoveryStats, SweepConfig, SweepStats, Sweeper, WrapStrategy,
};
