//! Physical measurements (paper §IV).
//!
//! Two classes, as in QUEST:
//!
//! * **Equal-time** — need only diagonal blocks `G_σ(ℓ, ℓ)`: densities,
//!   double occupancy, local moment, kinetic energy, and the equal-time
//!   spin-spin correlation vs displacement class.
//! * **Time-dependent** — need off-diagonal blocks; the paper's example
//!   is SPXX, the XY spin-spin correlation, an `L × d_max` table built
//!   from *block rows and columns* of both spins' Green's functions. This
//!   is exactly why FSI's row/column patterns matter: the `(τ, d)` entry
//!   sums element-wise products `G↑(k,ℓ)[i,j]·G↓(ℓ,k)[j,i] + (↑↔↓)` over
//!   all block pairs at temporal distance `τ = T(k,ℓ)` and site pairs at
//!   spatial class `d = D(i,j)`.
//!
//! The element-wise loops are Level-1 work; as in the paper (§III-B, the
//! per-thread `local_measurement_quantities`), they run under a
//! `parallel_map` with one local accumulator table per work item, merged
//! at the end — no concurrent writes.
//!
//! (The paper's printed SPXX formula is partially garbled by OCR; the
//! reconstruction here keeps its documented structure — crossed-spin
//! products of `(k,ℓ)` and `(ℓ,k)` block entries, normalized by the
//! number of contributing block pairs `C(τ)` and the displacement class
//! sizes. DESIGN.md records this substitution.)

use fsi_dense::Matrix;
use fsi_pcyclic::{temporal_distance, SquareLattice};
use fsi_runtime::{parallel_map, Par, Schedule};
use fsi_selinv::SelectedInverse;

/// Equal-time scalar observables from one slice's Green's functions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EqualTime {
    /// `⟨n_↑⟩` averaged over sites.
    pub density_up: f64,
    /// `⟨n_↓⟩` averaged over sites.
    pub density_down: f64,
    /// `⟨n_↑ n_↓⟩` averaged over sites.
    pub double_occupancy: f64,
    /// Local moment `⟨m²⟩ = ⟨n_↑⟩ + ⟨n_↓⟩ − 2⟨n_↑n_↓⟩`.
    pub moment: f64,
    /// Kinetic energy per site, `−t Σ_{⟨ij⟩σ}⟨c†_{iσ}c_{jσ} + h.c.⟩ / N`.
    pub kinetic: f64,
}

/// Computes the equal-time observables from the diagonal blocks
/// `G_↑(ℓ,ℓ)` and `G_↓(ℓ,ℓ)` (with `G_{ij} = ⟨c_i c_j†⟩`, so
/// `⟨n_i⟩ = 1 − G_ii` and `⟨c†_i c_j⟩ = δ_ij − G_{ji}`).
pub fn equal_time(lattice: &SquareLattice, t: f64, g_up: &Matrix, g_dn: &Matrix) -> EqualTime {
    let n = lattice.n_sites();
    assert_eq!(g_up.rows(), n, "G_up block size mismatch");
    assert_eq!(g_dn.rows(), n, "G_down block size mismatch");
    let mut up = 0.0;
    let mut dn = 0.0;
    let mut docc = 0.0;
    let mut kin = 0.0;
    for i in 0..n {
        let nu = 1.0 - g_up[(i, i)];
        let nd = 1.0 - g_dn[(i, i)];
        up += nu;
        dn += nd;
        // Within a fixed HS configuration the two spin species are
        // independent, so ⟨n↑n↓⟩ factorizes per configuration.
        docc += nu * nd;
        for j in lattice.neighbors(i) {
            // ⟨c†_i c_j⟩_σ = −G_σ(j, i) for i ≠ j; adjacency already
            // counts both directions.
            kin += -t * (-(g_up[(j, i)]) - g_dn[(j, i)]);
        }
    }
    let nf = n as f64;
    EqualTime {
        density_up: up / nf,
        density_down: dn / nf,
        double_occupancy: docc / nf,
        moment: (up + dn - 2.0 * docc) / nf,
        kinetic: kin / nf,
    }
}

/// Equal-time z-spin correlation `⟨S^z_i S^z_j⟩` per displacement class,
/// from one slice's diagonal blocks (Wick-decomposed per configuration).
pub fn spin_zz_equal_time(lattice: &SquareLattice, g_up: &Matrix, g_dn: &Matrix) -> Vec<f64> {
    let n = lattice.n_sites();
    let classes = lattice.n_dist_classes();
    let mut acc = vec![0.0f64; classes];
    let counts = lattice.dist_class_counts();
    for i in 0..n {
        for j in 0..n {
            let d = lattice.dist_class(i, j);
            // ⟨SᶻᵢSᶻⱼ⟩ with Sᶻ = (n↑ − n↓)/2; Wick contraction within one
            // HS configuration (δ terms for i = j handled by the Green's
            // function identities).
            let nui = 1.0 - g_up[(i, i)];
            let ndi = 1.0 - g_dn[(i, i)];
            let nuj = 1.0 - g_up[(j, j)];
            let ndj = 1.0 - g_dn[(j, j)];
            let mut v = (nui - ndi) * (nuj - ndj);
            // Exchange terms (same spin only): ⟨c†ᵢcⱼc†ⱼcᵢ⟩ connected part.
            v += g_up[(j, i)] * ((if i == j { 1.0 } else { 0.0 }) - g_up[(i, j)]);
            v += g_dn[(j, i)] * ((if i == j { 1.0 } else { 0.0 }) - g_dn[(i, j)]);
            acc[d] += 0.25 * v;
        }
    }
    for (a, &cnt) in acc.iter_mut().zip(&counts) {
        *a /= cnt as f64;
    }
    acc
}

/// The SPXX table: `L × d_max`, entry `(τ, d)` is the XY spin-spin
/// correlation at temporal distance `τ` and displacement class `d`.
#[derive(Clone, Debug)]
pub struct SpxxTable {
    /// Row-major `L × d_max` data.
    data: Vec<f64>,
    /// Contributing block-pair count `C(τ)` per row.
    counts: Vec<usize>,
    l: usize,
    dmax: usize,
}

impl SpxxTable {
    fn zeros(l: usize, dmax: usize) -> Self {
        SpxxTable {
            data: vec![0.0; l * dmax],
            counts: vec![0; l],
            l,
            dmax,
        }
    }

    /// Number of temporal rows `L`.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Number of displacement classes `d_max`.
    pub fn dmax(&self) -> usize {
        self.dmax
    }

    /// Entry `(τ, d)`.
    pub fn at(&self, tau: usize, d: usize) -> f64 {
        self.data[tau * self.dmax + d]
    }

    /// The number of block pairs that contributed to row `τ` (the paper's
    /// `C(τ)`; 0 means the row is unavailable from this selection).
    pub fn count(&self, tau: usize) -> usize {
        self.counts[tau]
    }

    /// Adds another table (same shape) into this one — the accumulation
    /// across measurement sweeps.
    pub fn merge(&mut self, other: &SpxxTable) {
        assert_eq!((self.l, self.dmax), (other.l, other.dmax));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Scales all entries (e.g. by 1/measurements).
    pub fn scale(&mut self, f: f64) {
        for a in &mut self.data {
            *a *= f;
        }
    }
}

/// Computes the SPXX table from selected inversions of both spins.
///
/// A block pair `(k, ℓ)` contributes iff all four blocks
/// `G_σ(k,ℓ), G_σ(ℓ,k)` exist in the selections — with the paper's
/// "b rows + b columns" pattern that yields `C(τ) ≥ b` contributions for
/// *every* τ, which is the whole point of selecting rows and columns
/// simultaneously.
pub fn spxx(
    par: Par<'_>,
    lattice: &SquareLattice,
    l: usize,
    sel_up: &SelectedInverse,
    sel_dn: &SelectedInverse,
) -> SpxxTable {
    let dmax = lattice.n_dist_classes();
    // Enumerate contributing block pairs.
    let pairs: Vec<(usize, usize)> = (0..l)
        .flat_map(|k| (0..l).map(move |ell| (k, ell)))
        .filter(|&(k, ell)| {
            sel_up.contains(k, ell)
                && sel_up.contains(ell, k)
                && sel_dn.contains(k, ell)
                && sel_dn.contains(ell, k)
        })
        .collect();
    let class_counts = lattice.dist_class_counts();
    // One local table per pair (paper §III-B: per-thread local
    // measurement quantities to avoid concurrent writes), merged after.
    let locals = parallel_map(par, pairs.len(), Schedule::Dynamic(4), |p| {
        let (k, ell) = pairs[p];
        let tau = temporal_distance(k, ell, l);
        let up_kl = sel_up.get(k, ell).expect("filtered");
        let up_lk = sel_up.get(ell, k).expect("filtered");
        let dn_kl = sel_dn.get(k, ell).expect("filtered");
        let dn_lk = sel_dn.get(ell, k).expect("filtered");
        let n = lattice.n_sites();
        let mut local = vec![0.0f64; dmax];
        for i in 0..n {
            for j in 0..n {
                let d = lattice.dist_class(i, j);
                if tau == 0 {
                    // Equal-time Wick pairing:
                    // ⟨S⁺ᵢS⁻ⱼ⟩ = (δ_ji − G↑(j,i))·G↓(i,j), plus ↑↔↓.
                    let delta = if i == j { 1.0 } else { 0.0 };
                    local[d] += (delta - up_kl[(j, i)]) * dn_kl[(i, j)]
                        + (delta - dn_kl[(j, i)]) * up_kl[(i, j)];
                } else {
                    // Time-displaced pairing (τ > 0): the fermionic
                    // reordering ⟨c†(τ)c(0)⟩ = −G(0,τ) contributes the
                    // overall minus:
                    // ⟨S⁺ᵢ(τ)S⁻ⱼ(0)⟩ = −G↑(ℓ,k)(j,i)·G↓(k,ℓ)(i,j).
                    local[d] -= up_lk[(j, i)] * dn_kl[(i, j)] + dn_lk[(j, i)] * up_kl[(i, j)];
                }
            }
        }
        (tau, local)
    });
    let mut table = SpxxTable::zeros(l, dmax);
    for (tau, local) in locals {
        table.counts[tau] += 1;
        for (d, v) in local.into_iter().enumerate() {
            table.data[tau * dmax + d] += v;
        }
    }
    // Normalize: 1/(2C(τ)) per the paper, and per site pair in the class.
    for tau in 0..l {
        let c = table.counts[tau];
        if c == 0 {
            continue;
        }
        for d in 0..dmax {
            table.data[tau * dmax + d] /= 2.0 * c as f64 * class_counts[d] as f64;
        }
    }
    table
}

/// Equal-time z-spin correlation resolved by the full signed
/// displacement `r = (dx, dy) ∈ [0, nx) × [0, ny)` (not folded into
/// minimum-image classes): `C(r) = (1/N)·Σ_i ⟨Sᶻᵢ·Sᶻ_{i+r}⟩`.
///
/// This is the input of the momentum-space structure factor; translation
/// invariance (restored by the Monte Carlo average) makes the single-`i`
/// sum sufficient.
pub fn spin_zz_by_displacement(lattice: &SquareLattice, g_up: &Matrix, g_dn: &Matrix) -> Matrix {
    let n = lattice.n_sites();
    let (nx, ny) = (lattice.nx(), lattice.ny());
    let mut c = Matrix::zeros(nx, ny);
    for i in 0..n {
        let (xi, yi) = lattice.coords(i);
        for j in 0..n {
            let (xj, yj) = lattice.coords(j);
            let dx = (xj + nx - xi) % nx;
            let dy = (yj + ny - yi) % ny;
            let nui = 1.0 - g_up[(i, i)];
            let ndi = 1.0 - g_dn[(i, i)];
            let nuj = 1.0 - g_up[(j, j)];
            let ndj = 1.0 - g_dn[(j, j)];
            let mut v = (nui - ndi) * (nuj - ndj);
            v += g_up[(j, i)] * ((if i == j { 1.0 } else { 0.0 }) - g_up[(i, j)]);
            v += g_dn[(j, i)] * ((if i == j { 1.0 } else { 0.0 }) - g_dn[(i, j)]);
            c[(dx, dy)] += 0.25 * v / n as f64;
        }
    }
    c
}

/// Momentum-space spin structure factor over the whole Brillouin zone:
/// `S(q) = Σ_r C(r)·cos(q·r)` for `q = 2π(m/nx, n/ny)` — a real cosine
/// transform since `C(r) = C(−r)` up to Monte Carlo noise. Entry
/// `(m, n)` of the result is `S(q_mn)`; `(nx/2, ny/2)` is the
/// antiferromagnetic point `S(π, π)`.
pub fn structure_factor_q(c_of_r: &Matrix) -> Matrix {
    let (nx, ny) = (c_of_r.rows(), c_of_r.cols());
    Matrix::from_fn(nx, ny, |m, nq| {
        let qx = 2.0 * std::f64::consts::PI * m as f64 / nx as f64;
        let qy = 2.0 * std::f64::consts::PI * nq as f64 / ny as f64;
        let mut s = 0.0;
        for dx in 0..nx {
            for dy in 0..ny {
                s += c_of_r[(dx, dy)] * (qx * dx as f64 + qy * dy as f64).cos();
            }
        }
        s
    })
}

/// Antiferromagnetic (staggered) spin structure factor
/// `S(π,π) = (1/N)·Σ_{ij} (−1)^{i−j} ⟨Sᶻᵢ·Sᶻⱼ⟩`, computed from the
/// per-class equal-time correlations of [`spin_zz_equal_time`].
///
/// On bipartite lattices with even extents the parity `(−1)^{dx+dy}` is
/// well defined per displacement class. `S(π,π)` growing with `U` and
/// with `β` is the hallmark of antiferromagnetic correlations in the
/// half-filled Hubbard model — the physics the paper's measurement
/// pipeline exists to extract.
///
/// # Panics
/// Panics for odd lattice extents (staggering is ill-defined).
pub fn staggered_structure_factor(lattice: &SquareLattice, zz_per_class: &[f64]) -> f64 {
    assert!(
        lattice.nx().is_multiple_of(2) && lattice.ny().is_multiple_of(2),
        "staggered structure factor needs even extents"
    );
    assert_eq!(zz_per_class.len(), lattice.n_dist_classes());
    let counts = lattice.dist_class_counts();
    let w = lattice.nx() / 2 + 1;
    let mut s = 0.0;
    for (d, (&zz, &cnt)) in zz_per_class.iter().zip(&counts).enumerate() {
        let (dx, dy) = (d % w, d / w);
        let sign = if (dx + dy) % 2 == 0 { 1.0 } else { -1.0 };
        s += sign * zz * cnt as f64;
    }
    s / lattice.n_sites() as f64
}

/// Uniform XY magnetic susceptibility from the SPXX table:
/// `χ_xy = (Δτ/N)·Σ_τ Σ_{ij} ⟨S⁺ᵢ(τ)S⁻ⱼ(0) + h.c.⟩/2`, with the site
/// sums reconstructed from the per-class normalization.
///
/// This is the canonical *time-dependent* observable the paper's
/// rows+columns selection enables: it integrates the SPXX correlation
/// over imaginary time (the trapezoid degenerates to a plain sum on the
/// periodic τ torus).
pub fn uniform_xy_susceptibility(
    lattice: &SquareLattice,
    table: &SpxxTable,
    delta_tau: f64,
) -> f64 {
    let counts = lattice.dist_class_counts();
    let mut total = 0.0;
    for tau in 0..table.l() {
        if table.count(tau) == 0 {
            continue;
        }
        for (d, &cnt) in counts.iter().enumerate() {
            total += table.at(tau, d) * cnt as f64;
        }
    }
    delta_tau * total / lattice.n_sites() as f64
}

/// Streaming mean/variance accumulator for scalar observables.
#[derive(Clone, Debug, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Accumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample (Welford update).
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard error of the mean (0 for < 2 samples).
    pub fn stderr(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        (self.m2 / (self.n - 1) as f64 / self.n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, Spin};
    use fsi_selinv::{fsi_with_q, Parallelism, Pattern, Selection};

    fn free_green(l_slices: usize) -> (SquareLattice, Matrix) {
        // U = 0 free fermions: G is field-independent and exactly
        // (I + e^{βtK})⁻¹.
        let lat = SquareLattice::square(2);
        let builder = BlockBuilder::new(
            lat.clone(),
            HubbardParams {
                t: 1.0,
                u: 0.0,
                beta: 2.0,
                l: l_slices,
            },
        );
        let field = HsField::ones(l_slices, 4);
        let pc = hubbard_pcyclic(&builder, &field, Spin::Up);
        let g = fsi_pcyclic::green::equal_time_green_explicit(Par::Seq, &pc, 0);
        (lat, g)
    }

    #[test]
    fn free_fermion_half_filling() {
        let (lat, g) = free_green(8);
        let et = equal_time(&lat, 1.0, &g, &g);
        assert!((et.density_up - 0.5).abs() < 1e-10);
        assert!((et.density_down - 0.5).abs() < 1e-10);
        // Free fermions: ⟨n↑n↓⟩ = ⟨n↑⟩⟨n↓⟩ = 0.25.
        assert!((et.double_occupancy - 0.25).abs() < 1e-10);
        assert!((et.moment - 0.5).abs() < 1e-10);
        // Kinetic energy is negative (hopping lowers the energy).
        assert!(et.kinetic < 0.0, "kinetic {}", et.kinetic);
    }

    #[test]
    fn spin_zz_self_class_equals_quarter_moment() {
        let (lat, g) = free_green(8);
        let zz = spin_zz_equal_time(&lat, &g, &g);
        let et = equal_time(&lat, 1.0, &g, &g);
        // d = 0 class: ⟨(Sᶻᵢ)²⟩ = ⟨m²⟩/4.
        assert!(
            (zz[0] - et.moment / 4.0).abs() < 1e-10,
            "zz[0] = {} vs m²/4 = {}",
            zz[0],
            et.moment / 4.0
        );
    }

    #[test]
    fn structure_factor_q_consistent_with_staggered() {
        // S(π,π) via the full-BZ cosine transform must equal the
        // class-based staggered sum.
        let (lat, g) = free_green(8);
        let c_r = spin_zz_by_displacement(&lat, &g, &g);
        let s_q = structure_factor_q(&c_r);
        let zz = spin_zz_equal_time(&lat, &g, &g);
        let s_stag = staggered_structure_factor(&lat, &zz);
        let s_pipi = s_q[(lat.nx() / 2, lat.ny() / 2)];
        assert!(
            (s_pipi - s_stag).abs() < 1e-10,
            "S(pi,pi): transform {s_pipi} vs staggered {s_stag}"
        );
        // q = 0 entry is the total-spin fluctuation: non-negative.
        assert!(s_q[(0, 0)] > -1e-12);
    }

    #[test]
    fn staggered_factor_detects_alternating_pattern() {
        let lat = SquareLattice::square(4);
        let classes = lat.n_dist_classes();
        let w = lat.nx() / 2 + 1;
        // A perfectly staggered correlation: zz = +1 on even-parity
        // classes, −1 on odd ones → S(π,π) = Σ counts / N = N.
        let zz: Vec<f64> = (0..classes)
            .map(|d| {
                if (d % w + d / w).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        let s = staggered_structure_factor(&lat, &zz);
        assert!((s - lat.n_sites() as f64).abs() < 1e-12, "S = {s}");
        // A perfectly uniform correlation has S(π,π) = 0 on a balanced
        // lattice (equal counts of even/odd parity classes weighted by
        // multiplicity... the alternating sum of class counts vanishes).
        let uniform = vec![1.0; classes];
        let s_uni = staggered_structure_factor(&lat, &uniform);
        assert!(s_uni.abs() < 1e-9, "uniform S = {s_uni}");
    }

    #[test]
    fn susceptibility_integrates_the_table() {
        let lat = SquareLattice::square(2);
        let (_, table) = spxx_from_selection(8, 4, 1);
        let chi = uniform_xy_susceptibility(&lat, &table, 0.25);
        assert!(chi.is_finite());
        assert!(chi > 0.0, "physical susceptibility must be positive: {chi}");
        // Doubling Δτ doubles χ.
        let chi2 = uniform_xy_susceptibility(&lat, &table, 0.5);
        assert!((chi2 - 2.0 * chi).abs() < 1e-12);
    }

    #[test]
    fn spxx_onsite_equal_time_is_positive() {
        // ⟨S⁺ᵢSᵢ⁻ + Sᵢ⁻Sᵢ⁺⟩(τ=0) = ⟨n↑(1−n↓) + n↓(1−n↑)⟩ ≥ 0 — the
        // on-site, equal-time row is a density of states, not a sign
        // fitting parameter.
        let (_, table) = spxx_from_selection(8, 4, 1);
        assert!(table.at(0, 0) > 0.0, "SPXX(0,0) = {}", table.at(0, 0));
    }

    #[test]
    fn accumulator_statistics() {
        let mut a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.stderr(), 0.0);
        for x in [1.0, 2.0, 3.0, 4.0] {
            a.push(x);
        }
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-14);
        // stderr = sqrt(var/n) with var = 5/3.
        let want = (5.0 / 3.0f64 / 4.0).sqrt();
        assert!((a.stderr() - want).abs() < 1e-14);
    }

    fn spxx_from_selection(l: usize, c: usize, q: usize) -> (SquareLattice, SpxxTable) {
        let lat = SquareLattice::square(2);
        let builder = BlockBuilder::new(lat.clone(), HubbardParams::paper_validation(l));
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let field = HsField::random(l, 4, &mut rng);
        let mut sels = Vec::new();
        for spin in Spin::BOTH {
            let pc = hubbard_pcyclic(&builder, &field, spin);
            let rows = fsi_with_q(
                Parallelism::Serial,
                &pc,
                &Selection::new(Pattern::Rows, c, q),
            )
            .expect("healthy");
            let cols = fsi_with_q(
                Parallelism::Serial,
                &pc,
                &Selection::new(Pattern::Columns, c, q),
            )
            .expect("healthy");
            let mut merged = rows.selected;
            merged.merge(cols.selected);
            sels.push(merged);
        }
        let table = spxx(Par::Seq, &lat, l, &sels[0], &sels[1]);
        (lat, table)
    }

    #[test]
    fn spxx_covers_every_tau_with_rows_plus_columns() {
        let (_, table) = spxx_from_selection(8, 4, 1);
        for tau in 0..8 {
            assert!(
                table.count(tau) >= 2,
                "τ={tau}: C(τ) = {} < b",
                table.count(tau)
            );
        }
        assert_eq!(table.l(), 8);
        assert!(table.dmax() >= 4);
        // Values are finite.
        for tau in 0..8 {
            for d in 0..table.dmax() {
                assert!(table.at(tau, d).is_finite());
            }
        }
    }

    #[test]
    fn spxx_parallel_matches_sequential() {
        let lat = SquareLattice::square(2);
        let builder = BlockBuilder::new(lat.clone(), HubbardParams::paper_validation(8));
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(78);
        let field = HsField::random(8, 4, &mut rng);
        let mut sels = Vec::new();
        for spin in Spin::BOTH {
            let pc = hubbard_pcyclic(&builder, &field, spin);
            let rows = fsi_with_q(
                Parallelism::Serial,
                &pc,
                &Selection::new(Pattern::Rows, 4, 0),
            )
            .expect("healthy");
            let cols = fsi_with_q(
                Parallelism::Serial,
                &pc,
                &Selection::new(Pattern::Columns, 4, 0),
            )
            .expect("healthy");
            let mut merged = rows.selected;
            merged.merge(cols.selected);
            sels.push(merged);
        }
        let pool = fsi_runtime::ThreadPool::new(3);
        let seq = spxx(Par::Seq, &lat, 8, &sels[0], &sels[1]);
        let par = spxx(Par::Pool(&pool), &lat, 8, &sels[0], &sels[1]);
        for tau in 0..8 {
            assert_eq!(seq.count(tau), par.count(tau));
            for d in 0..seq.dmax() {
                assert!((seq.at(tau, d) - par.at(tau, d)).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn spxx_merge_and_scale() {
        let (_, t1) = spxx_from_selection(8, 4, 1);
        let mut acc = t1.clone();
        acc.merge(&t1);
        acc.scale(0.5);
        for tau in 0..8 {
            for d in 0..t1.dmax() {
                assert!((acc.at(tau, d) - t1.at(tau, d)).abs() < 1e-14);
            }
            assert_eq!(acc.count(tau), 2 * t1.count(tau));
        }
    }
}
