//! The DQMC sweep (paper Alg. 4, inner loops).
//!
//! A sweep visits every `(slice ℓ, site i)` and Metropolis-tests the flip
//! `h(ℓ, i) → −h(ℓ, i)`. The determinant ratio needs only one diagonal
//! element of the equal-time Green's function:
//!
//! ```text
//! γ_σ = e^{−2σν h(ℓ,i)} − 1
//! R_σ = 1 + γ_σ·(1 − Ĝ_σ[i,i]),         r = R_↑·R_↓
//! ```
//!
//! where `Ĝ_σ = (I + B_{ℓ−1}⋯B_ℓ)⁻¹` is the Green's function in the frame
//! where `B_ℓ` is the *innermost* factor — the frame in which a change to
//! `B_ℓ` is a rank-1 perturbation. On acceptance `Ĝ_σ` is updated by
//! Sherman–Morrison in O(N²):
//!
//! ```text
//! Ĝ' = Ĝ − (γ/R)·(e_i − Ĝe_i)·(e_iᵀĜ)
//! ```
//!
//! Moving to the next slice is the similarity wrap
//! `Ĝ(ℓ+1) = B_ℓ·Ĝ(ℓ)·B_ℓ⁻¹` (with the just-updated `B_ℓ`; the inverse is
//! analytic for Hubbard blocks). Wraps and rank-1 updates accumulate
//! round-off, so every `stabilize_every` slices the state is recomputed
//! from scratch through the CLS + BSOFI route of [`crate::stable`] — this
//! is precisely where FSI accelerates the sweep phase.
//!
//! Three structure exploitations keep the hot path lean:
//!
//! * **Factored wraps** ([`wrap_factored`]): `B = e^{tΔτK}·D` with
//!   `D = diag(e^{σνh})`, so the wrap is a diagonal similarity
//!   (`Ĝ[i,j] ← Ĝ[i,j]·d_i/d_j`, two `exp` calls total since `h ∈ {±1}`)
//!   followed by the kinetic conjugation — two scratch-buffered GEMMs, or
//!   `O(N·bonds)` bond sweeps when the builder carries a
//!   [`fsi_pcyclic::Checkerboard`]. No `B`/`B⁻¹` is materialized.
//! * **Incremental stabilization**: dense blocks and CLS cluster products
//!   are cached per spin ([`fsi_pcyclic::BlockCache`],
//!   [`fsi_selinv::ClusterCache`]) and only the slices flipped since the
//!   previous refresh are recomputed (dirty-slice tracking).
//! * **Spin-parallel phases**: the up/down channels of refresh, wrap, and
//!   delayed-update flush are independent and run as a two-way
//!   [`fsi_runtime::join`] over the pool, nested with the per-spin
//!   outer/inner parallelism.

use fsi_dense::{blas, gemm_op, MatMut, MatRef, Matrix, Op};
use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, BlockCache, HsField, Spin};
use fsi_runtime::health::{self, FsiError, FsiResult, Stage};
use fsi_runtime::{trace, workspace, Par};
use fsi_selinv::{auto_cluster_size, ClusterCache, Parallelism};
use rand::Rng;

use crate::stable::{equal_time_green_cached, equal_time_green_stable};

/// Accuracy target handed to [`auto_cluster_size`] when the recovery
/// ladder re-estimates the cluster size on suspect data — tighter than the
/// usual 1e-8 so the shrunk `c` has margin against the very conditioning
/// problem that tripped the probe.
pub const RECOVERY_TOL: f64 = 1e-10;

/// How the similarity wrap `Ĝ ← B·Ĝ·B⁻¹` applies the propagator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WrapStrategy {
    /// Materialize `B` and `B⁻¹` and run two dense GEMMs (the baseline;
    /// two fresh `N×N` allocations per slice per spin).
    Dense,
    /// Exploit `B = e^{tΔτK}·D`: diagonal similarity + kinetic
    /// conjugation through preallocated scratch, with the checkerboard
    /// bond sweep when the builder has one. Identical result up to
    /// round-off-level reassociation.
    Factored,
}

/// Tuning knobs of the sweep engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepConfig {
    /// Cluster size for the stabilized recomputation (`c ≈ √L`).
    pub c: usize,
    /// Recompute `Ĝ` from scratch after this many wraps (QUEST-style
    /// `nwrap`; sweeps always refresh at their start as well). Keep it a
    /// multiple of `c` — the incremental cluster cache only scores hits
    /// when consecutive refreshes anchor on the same `k mod c` residue.
    pub stabilize_every: usize,
    /// Delayed-update batch size: accepted flips are accumulated as
    /// low-rank factors and flushed into `Ĝ` with one rank-`delay` GEMM
    /// (see [`crate::delayed`]). `1` = plain immediate rank-1 updates.
    pub delay: usize,
    /// Wrap implementation; [`WrapStrategy::Factored`] by default.
    pub wrap: WrapStrategy,
    /// Reuse blocks/cluster products across stabilizations via
    /// dirty-slice tracking (bitwise-identical to cold rebuilds; on by
    /// default).
    pub incremental: bool,
    /// Measure `‖Ĝ_wrapped − Ĝ_fresh‖_max` at stabilization points into
    /// [`SweepStats::max_drift`]. Off by default — the diagnostic keeps
    /// the wrapped pair alive across the refresh.
    pub track_drift: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            c: 4,
            stabilize_every: 8,
            delay: 1,
            wrap: WrapStrategy::Factored,
            incremental: true,
            track_drift: false,
        }
    }
}

/// Counters reported by each sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SweepStats {
    /// Metropolis proposals made (`N·L` per sweep).
    pub proposed: usize,
    /// Proposals accepted.
    pub accepted: usize,
    /// Worst drift `‖Ĝ_wrapped − Ĝ_fresh‖_max` observed at stabilization
    /// points (0 when no stabilization happened mid-sweep).
    pub max_drift: f64,
}

impl SweepStats {
    /// Acceptance ratio in `[0, 1]`.
    pub fn acceptance(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }
}

/// Record of the self-healing recovery ladder's activity.
///
/// Every health event that reached the sweep driver is logged (in order),
/// together with how many times each escalation rung ran. The ladder is
/// deterministic: a given fault history produces exactly this sequence.
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// Rung 1 executions: invalidate both spins' block and cluster caches
    /// and retry (`recovery.invalidate_caches`).
    pub cache_invalidations: u64,
    /// Rung 2 executions: shrink the cluster size `c` (halved, capped by
    /// [`auto_cluster_size`] at [`RECOVERY_TOL`]) and retry
    /// (`recovery.shrink_cluster`).
    pub cluster_shrinks: u64,
    /// Rung 3 executions: permanent fallback to [`WrapStrategy::Dense`]
    /// (`recovery.dense_wrap`).
    pub dense_fallbacks: u64,
    /// Rung 4 executions: non-incremental, `c = 1` recomputation from
    /// scratch (`recovery.from_scratch`).
    pub from_scratch: u64,
    /// Every error the driver saw, in arrival order (the first entry of
    /// each burst is the original fault; later ones are retry failures).
    pub events: Vec<FsiError>,
}

impl RecoveryStats {
    /// Total escalation rungs executed.
    pub fn escalations(&self) -> u64 {
        self.cache_invalidations + self.cluster_shrinks + self.dense_fallbacks + self.from_scratch
    }

    /// Whether any recovery happened at all.
    pub fn any(&self) -> bool {
        !self.events.is_empty()
    }
}

/// The sweep engine: owns the HS field and the per-spin equal-time
/// Green's functions of the current slice frame.
pub struct Sweeper<'a> {
    builder: &'a BlockBuilder,
    field: HsField,
    cfg: SweepConfig,
    /// `Ĝ_σ` for the slice currently being updated; index 0 = up.
    g: [Matrix; 2],
    /// Monte Carlo weight sign tracked across accepted flips.
    sign: f64,
    wraps_since_stab: usize,
    /// Slices with at least one accepted flip since the last refresh;
    /// read by both spins' caches during the joined refresh, cleared
    /// afterwards.
    dirty: Vec<bool>,
    /// Per-spin dense-block caches (`[up, down]`).
    block_caches: [BlockCache; 2],
    /// Per-spin cluster-product caches (`[up, down]`).
    cluster_caches: [ClusterCache; 2],
    /// Escalation-ladder bookkeeping.
    recovery: RecoveryStats,
}

impl<'a> Sweeper<'a> {
    /// Creates a sweeper positioned at slice 0 (Green's functions
    /// computed from scratch).
    ///
    /// # Errors
    /// The initial refresh runs through the same recovery ladder as
    /// mid-sweep stabilizations; an error here means even the rung-4
    /// from-scratch recomputation failed (genuinely unusable input data).
    pub fn new(builder: &'a BlockBuilder, field: HsField, cfg: SweepConfig) -> FsiResult<Self> {
        assert_eq!(
            field.slices(),
            builder.params().l,
            "field/params L mismatch"
        );
        assert_eq!(
            field.sites(),
            builder.lattice().n_sites(),
            "field/lattice N mismatch"
        );
        let n = field.sites();
        let l = field.slices();
        let mut s = Sweeper {
            builder,
            field,
            cfg,
            g: [Matrix::zeros(n, n), Matrix::zeros(n, n)],
            sign: 1.0,
            wraps_since_stab: 0,
            dirty: vec![false; l],
            block_caches: [BlockCache::new(), BlockCache::new()],
            cluster_caches: [ClusterCache::new(), ClusterCache::new()],
            recovery: RecoveryStats::default(),
        };
        s.refresh(0, Parallelism::Serial)?;
        Ok(s)
    }

    /// The current HS field.
    pub fn field(&self) -> &HsField {
        &self.field
    }

    /// The tracked Monte Carlo sign.
    pub fn sign(&self) -> f64 {
        self.sign
    }

    /// Restores the tracked sign from a checkpoint. The sign is a
    /// multiplicative accumulation over every accepted flip of the whole
    /// trajectory — it cannot be recomputed from the current field alone,
    /// so [`crate::checkpoint::SweepCheckpoint`] carries it and resume
    /// paths reinstate it here. Not for general use: overwriting the
    /// sign mid-trajectory silently corrupts `⟨sign⟩` observables.
    pub fn restore_sign(&mut self, sign: f64) {
        self.sign = sign;
    }

    /// The `Ĝ_σ` of the current frame (tests / measurements at slice
    /// boundaries).
    pub fn green(&self, spin: Spin) -> &Matrix {
        &self.g[spin_idx(spin)]
    }

    /// Recomputes both spins' `Ĝ` from scratch for updating `slice`,
    /// running the self-healing recovery ladder on failure.
    ///
    /// `Ĝ(slice) = G(slice − 1)`: the cyclic product ends with
    /// `B_slice` as its innermost factor.
    ///
    /// The two spin channels run as a joined pair over the pool; with
    /// `cfg.incremental` the block and cluster caches limit the rebuild
    /// to slices flipped since the previous refresh.
    ///
    /// # Errors
    /// Returned only when every rung of the recovery ladder's escalation
    /// ladder failed; the last error is surfaced and also logged in
    /// [`Self::recovery_stats`].
    pub fn refresh(&mut self, slice: usize, par: Parallelism<'_>) -> FsiResult<()> {
        static REFRESH_NS: fsi_runtime::metrics::LazyHistogram =
            fsi_runtime::metrics::LazyHistogram::new("dqmc.refresh.ns");
        let start = std::time::Instant::now();
        let result = match self.refresh_once(slice, par) {
            Ok(()) => Ok(()),
            Err(e) => self.recover(slice, par, e),
        };
        REFRESH_NS.record(start.elapsed().as_nanos() as u64);
        result
    }

    /// One stabilization attempt, no recovery: the fallible core that both
    /// [`Self::refresh`] and the ladder's retries drive.
    fn refresh_once(&mut self, slice: usize, par: Parallelism<'_>) -> FsiResult<()> {
        let l = self.builder.params().l;
        let k = (slice + l - 1) % l;
        let (outer, inner) = par.split();
        let c = self.cfg.c;
        let builder = self.builder;
        let field = &self.field;
        let (g_up, g_dn) = if self.cfg.incremental {
            let dirty = &self.dirty;
            let [bc_up, bc_dn] = &mut self.block_caches;
            let [cc_up, cc_dn] = &mut self.cluster_caches;
            spin_join(
                par,
                move || {
                    bc_up.sync(builder, field, Spin::Up, dirty);
                    equal_time_green_cached(outer, inner, bc_up.blocks(), dirty, cc_up, k, c)
                },
                move || {
                    bc_dn.sync(builder, field, Spin::Down, dirty);
                    equal_time_green_cached(outer, inner, bc_dn.blocks(), dirty, cc_dn, k, c)
                },
            )
        } else {
            spin_join(
                par,
                || {
                    let pc = hubbard_pcyclic(builder, field, Spin::Up);
                    equal_time_green_stable(outer, inner, &pc, k, c)
                },
                || {
                    let pc = hubbard_pcyclic(builder, field, Spin::Down);
                    equal_time_green_stable(outer, inner, &pc, k, c)
                },
            )
        };
        // Both spins completed (the join has no early exit); surface the
        // first failure only after both channels are accounted for.
        self.g = [g_up?, g_dn?];
        self.dirty.iter_mut().for_each(|d| *d = false);
        self.wraps_since_stab = 0;
        Ok(())
    }

    /// The deterministic escalation ladder (tentpole of the robustness
    /// layer). Each rung emits a `recovery.*` trace span, applies a
    /// progressively blunter remedy, and retries the refresh:
    ///
    /// 1. `recovery.invalidate_caches` — drop both spins' block and
    ///    cluster caches (heals any corrupted cached state; retry is a
    ///    cold, bitwise-clean rebuild).
    /// 2. `recovery.shrink_cluster` — halve the cluster size (largest
    ///    divisor of `L` at most `c/2`, capped by [`auto_cluster_size`]
    ///    with the tightened [`RECOVERY_TOL`]) — the paper-§II-C remedy
    ///    for `κ(B)^c` chain-conditioning blowup.
    /// 3. `recovery.dense_wrap` — permanently fall back from the factored
    ///    similarity wrap to [`WrapStrategy::Dense`].
    /// 4. `recovery.from_scratch` — disable incremental reuse entirely and
    ///    recompute with `c = 1` (no clustering at all).
    ///
    /// Rungs 2–4 deliberately persist in the configuration: a matrix that
    /// needed them once will need them again, and a deterministic ladder
    /// must not oscillate.
    fn recover(&mut self, slice: usize, par: Parallelism<'_>, first: FsiError) -> FsiResult<()> {
        // Each rung is mirrored into the metrics registry and the flight
        // recorder; note_recovery also triggers an incident dump, so every
        // escalation ships the ring of spans that led up to it.
        fn rung(name: &'static str, stage: fsi_runtime::Stage) {
            fsi_runtime::metrics::counter(name).inc();
            fsi_runtime::metrics::flight::note_recovery(name, stage.name());
        }
        self.recovery.events.push(first.clone());
        {
            let _s = trace::span("recovery.invalidate_caches");
            rung("dqmc.recovery.invalidate_caches", first.stage());
            self.recovery.cache_invalidations += 1;
            self.invalidate_caches();
        }
        match self.refresh_once(slice, par) {
            Ok(()) => return Ok(()),
            Err(e) => self.recovery.events.push(e),
        }
        {
            let _s = trace::span("recovery.shrink_cluster");
            rung("dqmc.recovery.shrink_cluster", first.stage());
            self.recovery.cluster_shrinks += 1;
            self.cfg.c = self.shrunk_cluster_size();
            self.invalidate_caches();
        }
        match self.refresh_once(slice, par) {
            Ok(()) => return Ok(()),
            Err(e) => self.recovery.events.push(e),
        }
        {
            let _s = trace::span("recovery.dense_wrap");
            rung("dqmc.recovery.dense_wrap", first.stage());
            self.recovery.dense_fallbacks += 1;
            self.cfg.wrap = WrapStrategy::Dense;
            self.invalidate_caches();
        }
        match self.refresh_once(slice, par) {
            Ok(()) => return Ok(()),
            Err(e) => self.recovery.events.push(e),
        }
        {
            let _s = trace::span("recovery.from_scratch");
            rung("dqmc.recovery.from_scratch", first.stage());
            self.recovery.from_scratch += 1;
            self.cfg.incremental = false;
            self.cfg.c = 1;
        }
        match self.refresh_once(slice, par) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.recovery.events.push(e.clone());
                static FAILED: fsi_runtime::metrics::LazyCounter =
                    fsi_runtime::metrics::LazyCounter::new("dqmc.recovery.failed");
                FAILED.inc();
                Err(e)
            }
        }
    }

    /// Drops all cached per-spin state (dense blocks and cluster
    /// products); the next refresh is a full cold rebuild.
    fn invalidate_caches(&mut self) {
        for bc in &mut self.block_caches {
            bc.invalidate();
        }
        for cc in &mut self.cluster_caches {
            cc.invalidate();
        }
    }

    /// Rung-2 policy: the largest divisor of `L` no bigger than `c/2`,
    /// further capped by [`auto_cluster_size`] re-estimated on the current
    /// (suspect) up-spin matrix at the tightened [`RECOVERY_TOL`]. Always
    /// at least 1; [`fsi_selinv::growth_rate`] maps a singular block to an
    /// infinite rate, which caps the estimate at `c = 1` instead of
    /// panicking.
    fn shrunk_cluster_size(&self) -> usize {
        let l = self.builder.params().l;
        let pc = hubbard_pcyclic(self.builder, &self.field, Spin::Up);
        let cap = auto_cluster_size(&pc, RECOVERY_TOL);
        let half = (self.cfg.c / 2).max(1);
        (1..=half.min(cap))
            .filter(|d| l.is_multiple_of(*d))
            .max()
            .unwrap_or(1)
    }

    /// The recovery ladder's activity log (empty on a healthy run).
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// The sweep configuration as currently in force — recovery
    /// escalations mutate it (shrunk `c`, dense wraps, disabled
    /// incremental reuse), and harnesses read back what survived.
    pub fn config(&self) -> &SweepConfig {
        &self.cfg
    }

    /// `(hits, misses)` summed over both spins' cluster caches since
    /// construction — the counters the bench and the acceptance criterion
    /// ("warm refresh recomputes strictly fewer products") read.
    pub fn cluster_cache_stats(&self) -> (u64, u64) {
        (
            self.cluster_caches.iter().map(ClusterCache::hits).sum(),
            self.cluster_caches.iter().map(ClusterCache::misses).sum(),
        )
    }

    /// The Metropolis ratio factors `(R_↑, R_↓)` for flipping
    /// `h(slice, i)` in the current frame.
    pub fn ratio(&self, slice: usize, i: usize) -> (f64, f64) {
        let nu = self.builder.nu();
        let h = self.field.get(slice, i);
        let mut r = [0.0f64; 2];
        for spin in Spin::BOTH {
            let gamma = (-2.0 * spin.sign() * nu * h).exp() - 1.0;
            let gii = self.g[spin_idx(spin)][(i, i)];
            r[spin_idx(spin)] = 1.0 + gamma * (1.0 - gii);
        }
        (r[0], r[1])
    }

    /// Applies the accepted flip at `(slice, i)`: Sherman–Morrison update
    /// of both `Ĝ_σ`, field flip, dirty-slice marking, sign bookkeeping.
    fn apply_flip(&mut self, slice: usize, i: usize, r_up: f64, r_dn: f64) {
        let nu = self.builder.nu();
        let h = self.field.get(slice, i);
        let n = self.field.sites();
        for (spin, r) in Spin::BOTH.into_iter().zip([r_up, r_dn]) {
            let gamma = (-2.0 * spin.sign() * nu * h).exp() - 1.0;
            let g = &mut self.g[spin_idx(spin)];
            // u = e_i − G e_i (column), v = eᵢᵀ G (row).
            workspace::with_scratch2(n, n, |u, v| {
                for j in 0..n {
                    u[j] = -g[(j, i)];
                    v[j] = g[(i, j)];
                }
                u[i] += 1.0;
                blas::ger(-gamma / r, u, v, g.as_mut());
            });
        }
        self.field.flip(slice, i);
        self.dirty[slice] = true;
        self.sign *= (r_up * r_dn).signum();
    }

    /// Wraps both `Ĝ_σ` from the slice-`slice` frame to slice `slice+1`:
    /// `Ĝ ← B_slice·Ĝ·B_slice⁻¹` with the current (post-update) field,
    /// spins joined over the pool.
    ///
    /// A wrap whose output fails the [`Stage::Wrap`] probe is repaired by
    /// recomputing `Ĝ(slice+1)` from scratch through the recovery ladder —
    /// the wrapped pair is disposable, so stabilization *is* the remedy.
    fn wrap_to_next(&mut self, slice: usize, par: Parallelism<'_>) -> FsiResult<()> {
        let (_, inner) = par.split();
        let builder = self.builder;
        let field = &self.field;
        let strategy = self.cfg.wrap;
        let [g_up, g_dn] = &mut self.g;
        spin_join(
            par,
            || wrap_one(strategy, inner, builder, field, slice, Spin::Up, g_up),
            || wrap_one(strategy, inner, builder, field, slice, Spin::Down, g_dn),
        );
        self.wraps_since_stab += 1;
        let mut tripped = None;
        for g in &mut self.g {
            #[cfg(feature = "fault-inject")]
            health::inject::poison(Stage::Wrap, slice, g.as_mut_slice());
            if let Err(e) = health::check_block(Stage::Wrap, slice, g.as_slice()) {
                tripped = Some(e);
                break;
            }
        }
        if let Some(e) = tripped {
            self.recover(slice + 1, par, e.into())?;
        }
        Ok(())
    }

    /// Runs one full sweep over all `(ℓ, i)` (paper Alg. 4's "DQMC
    /// sweep"), refreshing the state at the start and stabilizing every
    /// `stabilize_every` wraps. Returns acceptance statistics.
    ///
    /// With `cfg.delay > 1`, accepted flips within a slice are batched
    /// through [`crate::delayed::DelayedUpdates`] and applied as rank-`k`
    /// GEMMs (identical trajectories up to round-off; tested).
    ///
    /// # Errors
    /// Only when the full recovery ladder fails (see [`Self::refresh`]);
    /// single faults are healed in place and merely logged in
    /// [`Self::recovery_stats`].
    pub fn sweep<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        par: Parallelism<'_>,
    ) -> FsiResult<SweepStats> {
        let l = self.builder.params().l;
        let n = self.field.sites();
        let nu = self.builder.nu();
        let (_, inner) = par.split();
        let mut stats = SweepStats::default();
        self.refresh(0, par)?;
        for slice in 0..l {
            if self.cfg.delay > 1 {
                // Delayed path: one accumulator per spin.
                let mut accs = [
                    crate::delayed::DelayedUpdates::new(n, self.cfg.delay),
                    crate::delayed::DelayedUpdates::new(n, self.cfg.delay),
                ];
                for i in 0..n {
                    let h = self.field.get(slice, i);
                    let gamma_up = (-2.0 * nu * h).exp() - 1.0;
                    let gamma_dn = (2.0 * nu * h).exp() - 1.0;
                    let r_up = 1.0 + gamma_up * (1.0 - accs[0].diag(&self.g[0], i));
                    let r_dn = 1.0 + gamma_dn * (1.0 - accs[1].diag(&self.g[1], i));
                    let p = r_up * r_dn;
                    stats.proposed += 1;
                    if rng.gen::<f64>() < p.abs().min(1.0) {
                        if accs[0].is_full() {
                            flush_both(par, inner, &mut accs, &mut self.g);
                        }
                        accs[0].push(&self.g[0], i, gamma_up, r_up);
                        accs[1].push(&self.g[1], i, gamma_dn, r_dn);
                        self.field.flip(slice, i);
                        self.dirty[slice] = true;
                        self.sign *= p.signum();
                        stats.accepted += 1;
                    }
                }
                flush_both(par, inner, &mut accs, &mut self.g);
            } else {
                for i in 0..n {
                    let (r_up, r_dn) = self.ratio(slice, i);
                    let p = r_up * r_dn;
                    stats.proposed += 1;
                    if rng.gen::<f64>() < p.abs().min(1.0) {
                        self.apply_flip(slice, i, r_up, r_dn);
                        stats.accepted += 1;
                    }
                }
            }
            if slice + 1 < l {
                self.wrap_to_next(slice, par)?;
                if self.wraps_since_stab >= self.cfg.stabilize_every {
                    if self.cfg.track_drift {
                        // Move the wrapped pair aside (no clone), refresh,
                        // and fold the element-wise difference.
                        let wrapped = std::mem::replace(
                            &mut self.g,
                            [Matrix::zeros(0, 0), Matrix::zeros(0, 0)],
                        );
                        self.refresh(slice + 1, par)?;
                        for (w, fresh) in wrapped.iter().zip(&self.g) {
                            let d = w
                                .as_slice()
                                .iter()
                                .zip(fresh.as_slice())
                                .map(|(a, b)| (a - b).abs())
                                .fold(0.0f64, f64::max);
                            stats.max_drift = stats.max_drift.max(d);
                        }
                    } else {
                        self.refresh(slice + 1, par)?;
                    }
                }
            }
        }
        static PROPOSED: fsi_runtime::metrics::LazyCounter =
            fsi_runtime::metrics::LazyCounter::new("dqmc.sweep.proposed");
        static ACCEPTED: fsi_runtime::metrics::LazyCounter =
            fsi_runtime::metrics::LazyCounter::new("dqmc.sweep.accepted");
        static ACCEPTANCE: fsi_runtime::metrics::LazyGauge =
            fsi_runtime::metrics::LazyGauge::new("dqmc.sweep.acceptance");
        static MAX_DRIFT: fsi_runtime::metrics::LazyGauge =
            fsi_runtime::metrics::LazyGauge::new("dqmc.sweep.max_drift");
        PROPOSED.add(stats.proposed as u64);
        ACCEPTED.add(stats.accepted as u64);
        ACCEPTANCE.set(stats.acceptance());
        if self.cfg.track_drift {
            MAX_DRIFT.set_max(stats.max_drift);
        }
        Ok(stats)
    }
}

fn spin_idx(spin: Spin) -> usize {
    match spin {
        Spin::Up => 0,
        Spin::Down => 1,
    }
}

/// Two-way fork of the up/down channels over the pool (the `sweep.spin_par`
/// trace span wraps the pair; flops charged inside count inclusively).
fn spin_join<RA, RB>(
    par: Parallelism<'_>,
    up: impl FnOnce() -> RA + Send,
    down: impl FnOnce() -> RB + Send,
) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    let _s = trace::span("sweep.spin_par");
    fsi_runtime::join(par.any_pool(), up, down)
}

/// Joined flush of both spins' delayed-update accumulators.
fn flush_both(
    par: Parallelism<'_>,
    inner: Par<'_>,
    accs: &mut [crate::delayed::DelayedUpdates; 2],
    g: &mut [Matrix; 2],
) {
    let [a_up, a_dn] = accs;
    let [g_up, g_dn] = g;
    spin_join(par, || a_up.flush(inner, g_up), || a_dn.flush(inner, g_dn));
}

fn wrap_one(
    strategy: WrapStrategy,
    par: Par<'_>,
    builder: &BlockBuilder,
    field: &HsField,
    slice: usize,
    spin: Spin,
    g: &mut Matrix,
) {
    match strategy {
        WrapStrategy::Dense => wrap_dense(par, builder, field, slice, spin, g),
        WrapStrategy::Factored => wrap_factored(par, builder, field, slice, spin, g),
    }
}

/// Dense similarity wrap `Ĝ ← B_slice·Ĝ·B_slice⁻¹` with materialized
/// factors — two fresh `N×N` matrices and two out-of-place GEMMs per call.
/// Kept as the baseline [`WrapStrategy::Dense`] and the equivalence oracle
/// for [`wrap_factored`].
pub fn wrap_dense(
    par: Par<'_>,
    builder: &BlockBuilder,
    field: &HsField,
    slice: usize,
    spin: Spin,
    g: &mut Matrix,
) {
    let b = builder.block(field, slice, spin);
    let binv = builder.block_inverse(field, slice, spin);
    let tmp = fsi_dense::mul_par(par, &b, g);
    *g = fsi_dense::mul_par(par, &tmp, &binv);
}

/// Factored similarity wrap.
///
/// With `B = e^{tΔτK}·D`, `D = diag(e^{σν h})`:
///
/// ```text
/// B·Ĝ·B⁻¹ = e^{tΔτK} · (D·Ĝ·D⁻¹) · e^{−tΔτK}
/// ```
///
/// The inner diagonal similarity is `Ĝ[i,j] ← Ĝ[i,j]·d_i/d_j` — and since
/// `h ∈ {±1}` only `e^{+σν}` and `e^{−σν}` ever occur, two transcendental
/// calls per slice instead of the dense path's `2N` (formerly `N²`). The
/// kinetic conjugation is two GEMMs through thread-local scratch (no
/// allocation), or two `O(N·bonds)` bond sweeps when the builder carries a
/// checkerboard backend. Matches [`wrap_dense`] up to round-off-level
/// reassociation (≪ 1e-12; property-tested).
pub fn wrap_factored(
    par: Par<'_>,
    builder: &BlockBuilder,
    field: &HsField,
    slice: usize,
    spin: Spin,
    g: &mut Matrix,
) {
    let _s = trace::span("wrap.factored");
    let n = g.rows();
    debug_assert_eq!(g.cols(), n);
    let nu = builder.nu();
    let d_up = (spin.sign() * nu).exp();
    let d_dn = (-spin.sign() * nu).exp();
    let h = field.row(slice);
    // Ĝ[i,j] *= d_i / d_j, column-major so j is outer.
    for (j, col) in g.as_mut_slice().chunks_exact_mut(n).enumerate() {
        let inv_dj = if h[j] > 0.0 { d_dn } else { d_up };
        for (x, &hi) in col.iter_mut().zip(&h) {
            let di = if hi > 0.0 { d_up } else { d_dn };
            *x *= di * inv_dj;
        }
    }
    trace::charge_flops(2 * (n * n) as u64);
    match builder.checkerboard() {
        Some(cb) => {
            cb.apply_left(g);
            cb.apply_right_inverse(g);
        }
        None => {
            workspace::with_scratch(n * n, |buf| {
                gemm_op(
                    par,
                    1.0,
                    Op::NoTrans,
                    builder.exp_k().view(0, 0, n, n),
                    Op::NoTrans,
                    g.view(0, 0, n, n),
                    0.0,
                    MatMut::from_slice(&mut *buf, n, n, n),
                );
                gemm_op(
                    par,
                    1.0,
                    Op::NoTrans,
                    MatRef::from_slice(&*buf, n, n, n),
                    Op::NoTrans,
                    builder.exp_k_inv().view(0, 0, n, n),
                    0.0,
                    g.as_mut(),
                );
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_dense::{getrf, rel_error};
    use fsi_pcyclic::{HubbardParams, SquareLattice};
    use fsi_runtime::Par;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_builder(l: usize) -> BlockBuilder {
        BlockBuilder::new(
            SquareLattice::square(2),
            HubbardParams {
                t: 1.0,
                u: 4.0,
                beta: 2.0,
                l,
            },
        )
    }

    /// Brute-force determinant of `W(k) = I + P(k)` for the current field.
    fn log_det_w(builder: &BlockBuilder, field: &HsField, spin: Spin, k: usize) -> (f64, f64) {
        let pc = hubbard_pcyclic(builder, field, spin);
        let w = fsi_pcyclic::green::w_matrix(Par::Seq, &pc, k);
        getrf(w).expect("nonsingular").sign_log_det()
    }

    #[test]
    fn metropolis_ratio_matches_brute_force_determinants() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let field = HsField::random(8, 4, &mut rng);
        for slice in [0usize, 2, 7] {
            let sweeper = {
                let mut s =
                    Sweeper::new(&builder, field.clone(), SweepConfig::default()).expect("healthy");
                s.refresh(slice, Parallelism::Serial).expect("healthy");
                s
            };
            for i in 0..4 {
                let (r_up, r_dn) = sweeper.ratio(slice, i);
                // Brute force: det W'(k) / det W(k) at k = slice − 1,
                // with the flipped field.
                let k = (slice + 8 - 1) % 8;
                let mut flipped = field.clone();
                flipped.flip(slice, i);
                for (spin, r) in Spin::BOTH.into_iter().zip([r_up, r_dn]) {
                    let (s0, ld0) = log_det_w(&builder, &field, spin, k);
                    let (s1, ld1) = log_det_w(&builder, &flipped, spin, k);
                    let want = s1 * s0 * (ld1 - ld0).exp();
                    assert!(
                        (r - want).abs() < 1e-8 * want.abs().max(1.0),
                        "slice {slice} site {i} {spin:?}: formula {r} vs brute {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn sherman_morrison_matches_recompute() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let field = HsField::random(8, 4, &mut rng);
        let mut sweeper = Sweeper::new(&builder, field, SweepConfig::default()).expect("healthy");
        // Force-accept a few flips at slice 0, then compare the updated G
        // against a from-scratch recomputation.
        for i in [0usize, 2, 3] {
            let (r_up, r_dn) = sweeper.ratio(0, i);
            sweeper.apply_flip(0, i, r_up, r_dn);
        }
        let updated = sweeper.g.clone();
        sweeper.refresh(0, Parallelism::Serial).expect("healthy");
        for idx in 0..2 {
            let err = rel_error(&updated[idx], &sweeper.g[idx]);
            assert!(err < 1e-9, "spin {idx}: SM drift {err}");
        }
    }

    #[test]
    fn wrap_matches_fresh_green() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let field = HsField::random(8, 4, &mut rng);
        let mut sweeper = Sweeper::new(&builder, field, SweepConfig::default()).expect("healthy");
        // Ĝ(0) → wrap → should equal fresh Ĝ(1).
        sweeper
            .wrap_to_next(0, Parallelism::Serial)
            .expect("healthy");
        let wrapped = sweeper.g.clone();
        sweeper.refresh(1, Parallelism::Serial).expect("healthy");
        for idx in 0..2 {
            let err = rel_error(&wrapped[idx], &sweeper.g[idx]);
            assert!(err < 1e-9, "spin {idx}: wrap err {err}");
        }
    }

    #[test]
    fn factored_wrap_matches_dense_wrap() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(30);
        let field = HsField::random(8, 4, &mut rng);
        let sweeper =
            Sweeper::new(&builder, field.clone(), SweepConfig::default()).expect("healthy");
        for spin in Spin::BOTH {
            for slice in [0usize, 3, 7] {
                let mut dense = sweeper.green(spin).clone();
                wrap_dense(Par::Seq, &builder, &field, slice, spin, &mut dense);
                let mut factored = sweeper.green(spin).clone();
                wrap_factored(Par::Seq, &builder, &field, slice, spin, &mut factored);
                let err = rel_error(&factored, &dense);
                assert!(err < 1e-12, "{spin:?} slice {slice}: {err}");
            }
        }
    }

    #[test]
    fn checkerboard_factored_wrap_matches_its_dense_wrap() {
        // With a checkerboard builder, both strategies use the *same*
        // Trotterized propagator, so they still agree to round-off.
        let builder = BlockBuilder::with_checkerboard(
            SquareLattice::square(2),
            HubbardParams {
                t: 1.0,
                u: 4.0,
                beta: 2.0,
                l: 8,
            },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let field = HsField::random(8, 4, &mut rng);
        let sweeper =
            Sweeper::new(&builder, field.clone(), SweepConfig::default()).expect("healthy");
        for spin in Spin::BOTH {
            let mut dense = sweeper.green(spin).clone();
            wrap_dense(Par::Seq, &builder, &field, 2, spin, &mut dense);
            let mut factored = sweeper.green(spin).clone();
            wrap_factored(Par::Seq, &builder, &field, 2, spin, &mut factored);
            let err = rel_error(&factored, &dense);
            assert!(err < 1e-12, "{spin:?}: {err}");
        }
    }

    #[test]
    fn incremental_sweep_matches_cold_sweep_exactly() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let field = HsField::random(8, 4, &mut rng);
        let run = |incremental: bool| {
            let cfg = SweepConfig {
                incremental,
                ..SweepConfig::default()
            };
            let mut s = Sweeper::new(&builder, field.clone(), cfg).expect("healthy");
            let mut rng = ChaCha8Rng::seed_from_u64(777);
            let mut accepted = 0;
            for _ in 0..3 {
                accepted += s
                    .sweep(&mut rng, Parallelism::Serial)
                    .expect("healthy")
                    .accepted;
            }
            (accepted, s.field().to_flat(), s.green(Spin::Up).clone())
        };
        let (acc_cold, field_cold, g_cold) = run(false);
        let (acc_warm, field_warm, g_warm) = run(true);
        assert_eq!(acc_cold, acc_warm, "trajectory must be identical");
        assert_eq!(field_cold, field_warm);
        assert_eq!(
            g_cold.as_slice(),
            g_warm.as_slice(),
            "incremental refresh must be bitwise"
        );
    }

    #[test]
    fn warm_refresh_scores_cache_hits() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let field = HsField::random(8, 4, &mut rng);
        // stabilize_every = 8 = L keeps refreshes anchored at slice 0
        // (k = 7, same residue mod c = 4 every time).
        let mut s = Sweeper::new(&builder, field, SweepConfig::default()).expect("healthy");
        let (h0, m0) = s.cluster_cache_stats();
        assert_eq!(h0, 0, "cold build has no hits");
        assert_eq!(m0, 2 * 2, "cold build recomputes b = L/c = 2 per spin");
        let mut rng = ChaCha8Rng::seed_from_u64(888);
        s.sweep(&mut rng, Parallelism::Serial).expect("healthy");
        let (h1, m1) = s.cluster_cache_stats();
        assert!(h1 > h0, "sweep-start refresh must reuse clean clusters");
        // A warm refresh recomputes strictly fewer products than cold.
        assert!(
            m1 - m0 < 2 * 2 || h1 > 0,
            "warm refresh should not be a full rebuild"
        );
    }

    #[test]
    fn sweep_is_deterministic_given_seed() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let field = HsField::random(8, 4, &mut rng);
        let run = |seed: u64| {
            let mut s =
                Sweeper::new(&builder, field.clone(), SweepConfig::default()).expect("healthy");
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let stats = s.sweep(&mut rng, Parallelism::Serial).expect("healthy");
            (stats, s.field().to_flat())
        };
        let (s1, f1) = run(99);
        let (s2, f2) = run(99);
        assert_eq!(s1.accepted, s2.accepted);
        assert_eq!(f1, f2);
        // A different seed gives a different trajectory (overwhelmingly).
        let (_, f3) = run(100);
        assert_ne!(f1, f3);
    }

    #[test]
    fn sweep_proposes_every_site_and_field_stays_pm1() {
        let builder = small_builder(4);
        let field = HsField::ones(4, 4);
        let mut sweeper = Sweeper::new(&builder, field, SweepConfig::default()).expect("healthy");
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let stats = sweeper
            .sweep(&mut rng, Parallelism::Serial)
            .expect("healthy");
        assert_eq!(stats.proposed, 4 * 4);
        assert!(stats.accepted <= stats.proposed);
        assert!((0.0..=1.0).contains(&stats.acceptance()));
        assert!(sweeper.field().to_flat().iter().all(|&x| x == 1 || x == -1));
        assert!(sweeper.sign().abs() == 1.0);
    }

    #[test]
    fn stabilization_drift_is_small_for_short_chains() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let field = HsField::random(8, 4, &mut rng);
        let mut sweeper = Sweeper::new(
            &builder,
            field,
            SweepConfig {
                c: 4,
                stabilize_every: 2,
                track_drift: true,
                ..SweepConfig::default()
            },
        )
        .expect("healthy");
        let stats = sweeper
            .sweep(&mut rng, Parallelism::Serial)
            .expect("healthy");
        assert!(
            stats.max_drift < 1e-8,
            "wrap drift should be tiny at β=2: {}",
            stats.max_drift
        );
    }

    #[test]
    fn delayed_sweep_matches_immediate_sweep() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let field = HsField::random(8, 4, &mut rng);
        let run = |delay: usize| {
            let cfg = SweepConfig {
                delay,
                ..SweepConfig::default()
            };
            let mut s = Sweeper::new(&builder, field.clone(), cfg).expect("healthy");
            let mut rng = ChaCha8Rng::seed_from_u64(500);
            let stats = s.sweep(&mut rng, Parallelism::Serial).expect("healthy");
            (
                stats.accepted,
                s.field().to_flat(),
                s.green(Spin::Up).clone(),
            )
        };
        let (acc1, field1, g1) = run(1);
        for delay in [2usize, 4, 16] {
            let (acc_d, field_d, g_d) = run(delay);
            assert_eq!(acc1, acc_d, "delay={delay}: acceptance count");
            assert_eq!(field1, field_d, "delay={delay}: trajectory");
            assert!(
                rel_error(&g1, &g_d) < 1e-9,
                "delay={delay}: G drift {}",
                rel_error(&g1, &g_d)
            );
        }
    }

    #[test]
    fn half_filling_free_fermions_density() {
        // U = 0: Ĝ is field-independent; ⟨n⟩ = 1 − tr G / N = 1/2 exactly
        // at half filling by particle-hole symmetry of e^{tΔτK}.
        let builder = BlockBuilder::new(
            SquareLattice::square(2),
            HubbardParams {
                t: 1.0,
                u: 0.0,
                beta: 2.0,
                l: 8,
            },
        );
        let field = HsField::ones(8, 4);
        let sweeper = Sweeper::new(&builder, field, SweepConfig::default()).expect("healthy");
        let g = sweeper.green(Spin::Up);
        let trace: f64 = (0..4).map(|i| g[(i, i)]).sum();
        let density = 1.0 - trace / 4.0;
        assert!(
            (density - 0.5).abs() < 1e-10,
            "free-fermion half filling: {density}"
        );
    }
}
