//! The DQMC sweep (paper Alg. 4, inner loops).
//!
//! A sweep visits every `(slice ℓ, site i)` and Metropolis-tests the flip
//! `h(ℓ, i) → −h(ℓ, i)`. The determinant ratio needs only one diagonal
//! element of the equal-time Green's function:
//!
//! ```text
//! γ_σ = e^{−2σν h(ℓ,i)} − 1
//! R_σ = 1 + γ_σ·(1 − Ĝ_σ[i,i]),         r = R_↑·R_↓
//! ```
//!
//! where `Ĝ_σ = (I + B_{ℓ−1}⋯B_ℓ)⁻¹` is the Green's function in the frame
//! where `B_ℓ` is the *innermost* factor — the frame in which a change to
//! `B_ℓ` is a rank-1 perturbation. On acceptance `Ĝ_σ` is updated by
//! Sherman–Morrison in O(N²):
//!
//! ```text
//! Ĝ' = Ĝ − (γ/R)·(e_i − Ĝe_i)·(e_iᵀĜ)
//! ```
//!
//! Moving to the next slice is the similarity wrap
//! `Ĝ(ℓ+1) = B_ℓ·Ĝ(ℓ)·B_ℓ⁻¹` (with the just-updated `B_ℓ`; the inverse is
//! analytic for Hubbard blocks). Wraps and rank-1 updates accumulate
//! round-off, so every `stabilize_every` slices the state is recomputed
//! from scratch through the CLS + BSOFI route of [`crate::stable`] — this
//! is precisely where FSI accelerates the sweep phase.

use fsi_dense::{blas, Matrix};
use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, Spin};
use fsi_selinv::Parallelism;
use rand::Rng;

use crate::stable::equal_time_green_stable;

/// Tuning knobs of the sweep engine.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Cluster size for the stabilized recomputation (`c ≈ √L`).
    pub c: usize,
    /// Recompute `Ĝ` from scratch after this many wraps (QUEST-style
    /// `nwrap`; sweeps always refresh at their start as well).
    pub stabilize_every: usize,
    /// Delayed-update batch size: accepted flips are accumulated as
    /// low-rank factors and flushed into `Ĝ` with one rank-`delay` GEMM
    /// (see [`crate::delayed`]). `1` = plain immediate rank-1 updates.
    pub delay: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            c: 4,
            stabilize_every: 8,
            delay: 1,
        }
    }
}

/// Counters reported by each sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SweepStats {
    /// Metropolis proposals made (`N·L` per sweep).
    pub proposed: usize,
    /// Proposals accepted.
    pub accepted: usize,
    /// Worst drift `‖Ĝ_wrapped − Ĝ_fresh‖_max` observed at stabilization
    /// points (0 when no stabilization happened mid-sweep).
    pub max_drift: f64,
}

impl SweepStats {
    /// Acceptance ratio in `[0, 1]`.
    pub fn acceptance(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }
}

/// The sweep engine: owns the HS field and the per-spin equal-time
/// Green's functions of the current slice frame.
pub struct Sweeper<'a> {
    builder: &'a BlockBuilder,
    field: HsField,
    cfg: SweepConfig,
    /// `Ĝ_σ` for the slice currently being updated; index 0 = up.
    g: [Matrix; 2],
    /// Monte Carlo weight sign tracked across accepted flips.
    sign: f64,
    wraps_since_stab: usize,
}

impl<'a> Sweeper<'a> {
    /// Creates a sweeper positioned at slice 0 (Green's functions
    /// computed from scratch).
    pub fn new(builder: &'a BlockBuilder, field: HsField, cfg: SweepConfig) -> Self {
        assert_eq!(
            field.slices(),
            builder.params().l,
            "field/params L mismatch"
        );
        assert_eq!(
            field.sites(),
            builder.lattice().n_sites(),
            "field/lattice N mismatch"
        );
        let n = field.sites();
        let mut s = Sweeper {
            builder,
            field,
            cfg,
            g: [Matrix::zeros(n, n), Matrix::zeros(n, n)],
            sign: 1.0,
            wraps_since_stab: 0,
        };
        s.refresh(0, Parallelism::Serial);
        s
    }

    /// The current HS field.
    pub fn field(&self) -> &HsField {
        &self.field
    }

    /// The tracked Monte Carlo sign.
    pub fn sign(&self) -> f64 {
        self.sign
    }

    /// The `Ĝ_σ` of the current frame (tests / measurements at slice
    /// boundaries).
    pub fn green(&self, spin: Spin) -> &Matrix {
        &self.g[spin_idx(spin)]
    }

    /// Recomputes both spins' `Ĝ` from scratch for updating `slice`.
    ///
    /// `Ĝ(slice) = G(slice − 1)`: the cyclic product ends with
    /// `B_slice` as its innermost factor.
    pub fn refresh(&mut self, slice: usize, par: Parallelism<'_>) {
        let l = self.builder.params().l;
        let k = (slice + l - 1) % l;
        let (outer, inner) = par.split();
        for spin in Spin::BOTH {
            let pc = hubbard_pcyclic(self.builder, &self.field, spin);
            self.g[spin_idx(spin)] = equal_time_green_stable(outer, inner, &pc, k, self.cfg.c);
        }
        self.wraps_since_stab = 0;
    }

    /// The Metropolis ratio factors `(R_↑, R_↓)` for flipping
    /// `h(slice, i)` in the current frame.
    pub fn ratio(&self, slice: usize, i: usize) -> (f64, f64) {
        let nu = self.builder.nu();
        let h = self.field.get(slice, i);
        let mut r = [0.0f64; 2];
        for spin in Spin::BOTH {
            let gamma = (-2.0 * spin.sign() * nu * h).exp() - 1.0;
            let gii = self.g[spin_idx(spin)][(i, i)];
            r[spin_idx(spin)] = 1.0 + gamma * (1.0 - gii);
        }
        (r[0], r[1])
    }

    /// Applies the accepted flip at `(slice, i)`: Sherman–Morrison update
    /// of both `Ĝ_σ`, field flip, sign bookkeeping.
    fn apply_flip(&mut self, slice: usize, i: usize, r_up: f64, r_dn: f64) {
        let nu = self.builder.nu();
        let h = self.field.get(slice, i);
        let n = self.field.sites();
        for (spin, r) in Spin::BOTH.into_iter().zip([r_up, r_dn]) {
            let gamma = (-2.0 * spin.sign() * nu * h).exp() - 1.0;
            let g = &mut self.g[spin_idx(spin)];
            // u = e_i − G e_i (column), v = eᵢᵀ G (row).
            let mut u = vec![0.0; n];
            let mut v = vec![0.0; n];
            for j in 0..n {
                u[j] = -g[(j, i)];
                v[j] = g[(i, j)];
            }
            u[i] += 1.0;
            blas::ger(-gamma / r, &u, &v, g.as_mut());
        }
        self.field.flip(slice, i);
        self.sign *= (r_up * r_dn).signum();
    }

    /// Wraps both `Ĝ_σ` from the slice-`slice` frame to slice `slice+1`:
    /// `Ĝ ← B_slice·Ĝ·B_slice⁻¹` with the current (post-update) field.
    fn wrap_to_next(&mut self, slice: usize) {
        for spin in Spin::BOTH {
            let b = self.builder.block(&self.field, slice, spin);
            let binv = self.builder.block_inverse(&self.field, slice, spin);
            let idx = spin_idx(spin);
            let tmp = fsi_dense::mul(&b, &self.g[idx]);
            self.g[idx] = fsi_dense::mul(&tmp, &binv);
        }
        self.wraps_since_stab += 1;
    }

    /// Runs one full sweep over all `(ℓ, i)` (paper Alg. 4's "DQMC
    /// sweep"), refreshing the state at the start and stabilizing every
    /// `stabilize_every` wraps. Returns acceptance statistics.
    ///
    /// With `cfg.delay > 1`, accepted flips within a slice are batched
    /// through [`crate::delayed::DelayedUpdates`] and applied as rank-`k`
    /// GEMMs (identical trajectories up to round-off; tested).
    pub fn sweep<R: Rng + ?Sized>(&mut self, rng: &mut R, par: Parallelism<'_>) -> SweepStats {
        let l = self.builder.params().l;
        let n = self.field.sites();
        let nu = self.builder.nu();
        let (_, inner) = par.split();
        let mut stats = SweepStats::default();
        self.refresh(0, par);
        for slice in 0..l {
            if self.cfg.delay > 1 {
                // Delayed path: one accumulator per spin.
                let mut accs = [
                    crate::delayed::DelayedUpdates::new(n, self.cfg.delay),
                    crate::delayed::DelayedUpdates::new(n, self.cfg.delay),
                ];
                for i in 0..n {
                    let h = self.field.get(slice, i);
                    let gamma_up = (-2.0 * nu * h).exp() - 1.0;
                    let gamma_dn = (2.0 * nu * h).exp() - 1.0;
                    let r_up = 1.0 + gamma_up * (1.0 - accs[0].diag(&self.g[0], i));
                    let r_dn = 1.0 + gamma_dn * (1.0 - accs[1].diag(&self.g[1], i));
                    let p = r_up * r_dn;
                    stats.proposed += 1;
                    if rng.gen::<f64>() < p.abs().min(1.0) {
                        if accs[0].is_full() {
                            accs[0].flush(inner, &mut self.g[0]);
                            accs[1].flush(inner, &mut self.g[1]);
                        }
                        accs[0].push(&self.g[0], i, gamma_up, r_up);
                        accs[1].push(&self.g[1], i, gamma_dn, r_dn);
                        self.field.flip(slice, i);
                        self.sign *= p.signum();
                        stats.accepted += 1;
                    }
                }
                accs[0].flush(inner, &mut self.g[0]);
                accs[1].flush(inner, &mut self.g[1]);
            } else {
                for i in 0..n {
                    let (r_up, r_dn) = self.ratio(slice, i);
                    let p = r_up * r_dn;
                    stats.proposed += 1;
                    if rng.gen::<f64>() < p.abs().min(1.0) {
                        self.apply_flip(slice, i, r_up, r_dn);
                        stats.accepted += 1;
                    }
                }
            }
            if slice + 1 < l {
                if self.wraps_since_stab + 1 >= self.cfg.stabilize_every {
                    // Measure the drift the wraps accumulated, then
                    // replace with the fresh state.
                    self.wrap_to_next(slice);
                    let wrapped = self.g.clone();
                    self.refresh(slice + 1, par);
                    for idx in 0..2 {
                        let mut d = wrapped[idx].clone();
                        d.sub_assign(&self.g[idx]);
                        stats.max_drift = stats.max_drift.max(d.max_abs());
                    }
                } else {
                    self.wrap_to_next(slice);
                }
            }
        }
        stats
    }
}

fn spin_idx(spin: Spin) -> usize {
    match spin {
        Spin::Up => 0,
        Spin::Down => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_dense::{getrf, rel_error};
    use fsi_pcyclic::{HubbardParams, SquareLattice};
    use fsi_runtime::Par;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_builder(l: usize) -> BlockBuilder {
        BlockBuilder::new(
            SquareLattice::square(2),
            HubbardParams {
                t: 1.0,
                u: 4.0,
                beta: 2.0,
                l,
            },
        )
    }

    /// Brute-force determinant of `W(k) = I + P(k)` for the current field.
    fn log_det_w(builder: &BlockBuilder, field: &HsField, spin: Spin, k: usize) -> (f64, f64) {
        let pc = hubbard_pcyclic(builder, field, spin);
        let w = fsi_pcyclic::green::w_matrix(Par::Seq, &pc, k);
        getrf(w).expect("nonsingular").sign_log_det()
    }

    #[test]
    fn metropolis_ratio_matches_brute_force_determinants() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let field = HsField::random(8, 4, &mut rng);
        for slice in [0usize, 2, 7] {
            let sweeper = {
                let mut s = Sweeper::new(&builder, field.clone(), SweepConfig::default());
                s.refresh(slice, Parallelism::Serial);
                s
            };
            for i in 0..4 {
                let (r_up, r_dn) = sweeper.ratio(slice, i);
                // Brute force: det W'(k) / det W(k) at k = slice − 1,
                // with the flipped field.
                let k = (slice + 8 - 1) % 8;
                let mut flipped = field.clone();
                flipped.flip(slice, i);
                for (spin, r) in Spin::BOTH.into_iter().zip([r_up, r_dn]) {
                    let (s0, ld0) = log_det_w(&builder, &field, spin, k);
                    let (s1, ld1) = log_det_w(&builder, &flipped, spin, k);
                    let want = s1 * s0 * (ld1 - ld0).exp();
                    assert!(
                        (r - want).abs() < 1e-8 * want.abs().max(1.0),
                        "slice {slice} site {i} {spin:?}: formula {r} vs brute {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn sherman_morrison_matches_recompute() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let field = HsField::random(8, 4, &mut rng);
        let mut sweeper = Sweeper::new(&builder, field, SweepConfig::default());
        // Force-accept a few flips at slice 0, then compare the updated G
        // against a from-scratch recomputation.
        for i in [0usize, 2, 3] {
            let (r_up, r_dn) = sweeper.ratio(0, i);
            sweeper.apply_flip(0, i, r_up, r_dn);
        }
        let updated = sweeper.g.clone();
        sweeper.refresh(0, Parallelism::Serial);
        for idx in 0..2 {
            let err = rel_error(&updated[idx], &sweeper.g[idx]);
            assert!(err < 1e-9, "spin {idx}: SM drift {err}");
        }
    }

    #[test]
    fn wrap_matches_fresh_green() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let field = HsField::random(8, 4, &mut rng);
        let mut sweeper = Sweeper::new(&builder, field, SweepConfig::default());
        // Ĝ(0) → wrap → should equal fresh Ĝ(1).
        sweeper.wrap_to_next(0);
        let wrapped = sweeper.g.clone();
        sweeper.refresh(1, Parallelism::Serial);
        for idx in 0..2 {
            let err = rel_error(&wrapped[idx], &sweeper.g[idx]);
            assert!(err < 1e-9, "spin {idx}: wrap err {err}");
        }
    }

    #[test]
    fn sweep_is_deterministic_given_seed() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let field = HsField::random(8, 4, &mut rng);
        let run = |seed: u64| {
            let mut s = Sweeper::new(&builder, field.clone(), SweepConfig::default());
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let stats = s.sweep(&mut rng, Parallelism::Serial);
            (stats, s.field().to_flat())
        };
        let (s1, f1) = run(99);
        let (s2, f2) = run(99);
        assert_eq!(s1.accepted, s2.accepted);
        assert_eq!(f1, f2);
        // A different seed gives a different trajectory (overwhelmingly).
        let (_, f3) = run(100);
        assert_ne!(f1, f3);
    }

    #[test]
    fn sweep_proposes_every_site_and_field_stays_pm1() {
        let builder = small_builder(4);
        let field = HsField::ones(4, 4);
        let mut sweeper = Sweeper::new(&builder, field, SweepConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let stats = sweeper.sweep(&mut rng, Parallelism::Serial);
        assert_eq!(stats.proposed, 4 * 4);
        assert!(stats.accepted <= stats.proposed);
        assert!((0.0..=1.0).contains(&stats.acceptance()));
        assert!(sweeper.field().to_flat().iter().all(|&x| x == 1 || x == -1));
        assert!(sweeper.sign().abs() == 1.0);
    }

    #[test]
    fn stabilization_drift_is_small_for_short_chains() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let field = HsField::random(8, 4, &mut rng);
        let mut sweeper = Sweeper::new(
            &builder,
            field,
            SweepConfig {
                c: 4,
                stabilize_every: 2,
                ..SweepConfig::default()
            },
        );
        let stats = sweeper.sweep(&mut rng, Parallelism::Serial);
        assert!(
            stats.max_drift < 1e-8,
            "wrap drift should be tiny at β=2: {}",
            stats.max_drift
        );
    }

    #[test]
    fn delayed_sweep_matches_immediate_sweep() {
        let builder = small_builder(8);
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let field = HsField::random(8, 4, &mut rng);
        let run = |delay: usize| {
            let cfg = SweepConfig {
                delay,
                ..SweepConfig::default()
            };
            let mut s = Sweeper::new(&builder, field.clone(), cfg);
            let mut rng = ChaCha8Rng::seed_from_u64(500);
            let stats = s.sweep(&mut rng, Parallelism::Serial);
            (
                stats.accepted,
                s.field().to_flat(),
                s.green(Spin::Up).clone(),
            )
        };
        let (acc1, field1, g1) = run(1);
        for delay in [2usize, 4, 16] {
            let (acc_d, field_d, g_d) = run(delay);
            assert_eq!(acc1, acc_d, "delay={delay}: acceptance count");
            assert_eq!(field1, field_d, "delay={delay}: trajectory");
            assert!(
                rel_error(&g1, &g_d) < 1e-9,
                "delay={delay}: G drift {}",
                rel_error(&g1, &g_d)
            );
        }
    }

    #[test]
    fn half_filling_free_fermions_density() {
        // U = 0: Ĝ is field-independent; ⟨n⟩ = 1 − tr G / N = 1/2 exactly
        // at half filling by particle-hole symmetry of e^{tΔτK}.
        let builder = BlockBuilder::new(
            SquareLattice::square(2),
            HubbardParams {
                t: 1.0,
                u: 0.0,
                beta: 2.0,
                l: 8,
            },
        );
        let field = HsField::ones(8, 4);
        let sweeper = Sweeper::new(&builder, field, SweepConfig::default());
        let g = sweeper.green(Spin::Up);
        let trace: f64 = (0..4).map(|i| g[(i, i)]).sum();
        let density = 1.0 - trace / 4.0;
        assert!(
            (density - 0.5).abs() < 1e-10,
            "free-fermion half filling: {density}"
        );
    }
}
