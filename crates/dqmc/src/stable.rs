//! Stabilized equal-time Green's function computation.
//!
//! The sweep needs `Ĝ_σ(ℓ) = (I + B_{ℓ−1}⋯B_{ℓ})⁻¹` recomputed from
//! scratch periodically: the Sherman–Morrison updates and the similarity
//! wraps accumulate round-off, and at low temperature the raw product
//! `P(ℓ)` has singular values spreading like `e^{±βW}` so naively forming
//! `I + P` loses everything.
//!
//! The stable route is exactly the paper's observation that Hirsch's
//! stable low-temperature algorithm *is* block cyclic reduction: cluster
//! the chain into `c`-fold products (CLS), then invert the reduced
//! p-cyclic matrix with orthogonal transforms (BSOFI). No explicit
//! `I + P` is ever formed; conditioning is confined to `c`-long products.
//!
//! Both the stable and the naive computation are exposed so the
//! stabilization ablation can measure the difference.

use fsi_dense::Matrix;
use fsi_pcyclic::BlockPCyclic;
use fsi_runtime::health::{self, FsiResult, Stage};
use fsi_runtime::Par;
use fsi_selinv::{bsofi_selected, cls, ClusterCache, SelectedPattern};

/// Stable `G(k, k)` via clustering + BSOFI (Hirsch/BCR route).
///
/// The shift `q` is chosen so that row `k` is a seed row of the reduction
/// (`k ≡ c−1−q (mod c)`), making the requested block directly available
/// in the reduced inverse.
///
/// # Errors
/// Surfaces the [`fsi_runtime::health`] probe events of every stage it
/// drives: bad cluster products ([`Stage::Cls`]), a singular/graded `R`
/// diagonal ([`Stage::Bsofi`]), and a non-finite assembled Green's
/// function ([`Stage::Green`]).
///
/// # Panics
/// Panics unless `c` divides `L` (a dimension contract, not data).
pub fn equal_time_green_stable(
    par_outer: Par<'_>,
    par_inner: Par<'_>,
    pc: &BlockPCyclic,
    k: usize,
    c: usize,
) -> FsiResult<Matrix> {
    let l = pc.l();
    assert!(l.is_multiple_of(c), "cluster size must divide L");
    assert!(k < l, "slice index out of range");
    let o = k % c;
    let q = c - 1 - o;
    let clustered = cls(par_outer, par_inner, pc, c, q);
    for m in 0..clustered.b() {
        health::check_block(Stage::Cls, m, clustered.reduced.block(m).as_slice())?;
    }
    let k0 = clustered
        .to_reduced(k)
        .expect("k is a seed row by construction");
    // Only Ḡ(k₀,k₀) is needed — request exactly that block instead of
    // materializing the dense reduced inverse.
    let mut sel = bsofi_selected(
        par_outer,
        par_inner,
        &clustered.reduced,
        &SelectedPattern::DiagonalBlock(k0),
    )?;
    let g = sel.remove(k0, k0).expect("requested block assembled");
    scan_green(k, g)
}

/// [`equal_time_green_stable`] with incremental clustering: the CLS stage
/// goes through `cache`, recomputing only the cluster products with a
/// dirty constituent slice (see [`fsi_selinv::ClusterCache`]). BSOFI and
/// the block extraction are unchanged — they depend on every cluster, so
/// there is nothing to reuse there.
///
/// Cache hits require the anchor residue `k mod c` to repeat across calls
/// (DQMC: `c | stabilize_every`); a changed residue re-keys the cache and
/// this call degenerates to a cold [`equal_time_green_stable`], bitwise.
///
/// # Errors
/// As [`equal_time_green_stable`], plus
/// [`fsi_runtime::health::HealthEvent::CacheInconsistent`] when a reused
/// cluster product fails its checksum. On any error the cache has already
/// been invalidated (see [`fsi_selinv::ClusterCache::cls`]), so a retry
/// is a clean cold build.
///
/// # Panics
/// Panics unless `c` divides `L`, `k < L`, and
/// `dirty.len() == blocks.len()` (dimension contracts, not data).
pub fn equal_time_green_cached(
    par_outer: Par<'_>,
    par_inner: Par<'_>,
    blocks: &[Matrix],
    dirty: &[bool],
    cache: &mut ClusterCache,
    k: usize,
    c: usize,
) -> FsiResult<Matrix> {
    let l = blocks.len();
    assert!(l.is_multiple_of(c), "cluster size must divide L");
    assert!(k < l, "slice index out of range");
    let o = k % c;
    let q = c - 1 - o;
    let (clustered, _rebuilt) = cache.cls(par_outer, par_inner, blocks, dirty, c, q)?;
    let k0 = clustered
        .to_reduced(k)
        .expect("k is a seed row by construction");
    let mut sel = bsofi_selected(
        par_outer,
        par_inner,
        &clustered.reduced,
        &SelectedPattern::DiagonalBlock(k0),
    )?;
    let g = sel.remove(k0, k0).expect("requested block assembled");
    scan_green(k, g)
}

/// Final output probe (plus injection hook) of an assembled equal-time
/// Green's function: the last gate before the block reaches the sweep.
#[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
fn scan_green(k: usize, mut g: Matrix) -> FsiResult<Matrix> {
    #[cfg(feature = "fault-inject")]
    health::inject::poison(Stage::Green, k, g.as_mut_slice());
    health::check_block(Stage::Green, k, g.as_slice())?;
    Ok(g)
}

/// Naive `G(k, k) = (I + P(k))⁻¹` via the explicit product — loses
/// accuracy once the product's condition number exhausts double
/// precision. Kept as the ablation baseline.
pub fn equal_time_green_naive(par: Par<'_>, pc: &BlockPCyclic, k: usize) -> Matrix {
    fsi_pcyclic::green::equal_time_green_explicit(par, pc, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_dense::rel_error;
    use fsi_pcyclic::{
        hubbard_pcyclic, random_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice,
    };
    use rand::SeedableRng;

    #[test]
    fn stable_matches_reference_for_every_slice() {
        let pc = random_pcyclic(3, 8, 50);
        let g_ref = pc.reference_green(Par::Seq);
        for k in 0..8 {
            let got = equal_time_green_stable(Par::Seq, Par::Seq, &pc, k, 4).expect("healthy");
            let want = pc.dense_block(&g_ref, k, k);
            assert!(rel_error(&got, &want) < 1e-9, "k={k}");
        }
    }

    #[test]
    fn stable_matches_naive_when_well_conditioned() {
        let builder =
            BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(8));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let field = HsField::random(8, 4, &mut rng);
        let pc = hubbard_pcyclic(&builder, &field, Spin::Up);
        for k in [0usize, 3, 7] {
            let stable = equal_time_green_stable(Par::Seq, Par::Seq, &pc, k, 4).expect("healthy");
            let naive = equal_time_green_naive(Par::Seq, &pc, k);
            assert!(rel_error(&stable, &naive) < 1e-9, "k={k}");
        }
    }

    #[test]
    fn cached_green_matches_uncached_bitwise() {
        let builder =
            BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(8));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let mut field = HsField::random(8, 4, &mut rng);
        let mut cache = fsi_selinv::ClusterCache::new();
        // Cold call, then a warm call after flipping a couple of slices —
        // both must equal the uncached computation bitwise.
        for (round, flips) in [vec![], vec![(2usize, 1usize), (3, 0)]]
            .into_iter()
            .enumerate()
        {
            let mut dirty = [false; 8];
            for (sl, site) in flips {
                field.flip(sl, site);
                dirty[sl] = true;
            }
            let pc = hubbard_pcyclic(&builder, &field, Spin::Up);
            let k = 3; // fixed residue so the warm call can reuse products
            let got =
                equal_time_green_cached(Par::Seq, Par::Seq, pc.blocks(), &dirty, &mut cache, k, 4)
                    .expect("healthy");
            let want = equal_time_green_stable(Par::Seq, Par::Seq, &pc, k, 4).expect("healthy");
            assert_eq!(got.as_slice(), want.as_slice(), "round {round} not bitwise");
        }
        assert!(cache.hits() > 0, "warm round must reuse clusters");
    }

    #[test]
    fn stable_beats_naive_at_low_temperature() {
        // β large → long ill-conditioned chains. Compare both against the
        // dense LU reference, which at this small size is itself reliable.
        let params = HubbardParams {
            t: 1.0,
            u: 4.0,
            beta: 12.0,
            l: 48,
        };
        let builder = BlockBuilder::new(SquareLattice::new(2, 1), params);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let field = HsField::random(48, 2, &mut rng);
        let pc = hubbard_pcyclic(&builder, &field, Spin::Up);
        let g_ref = pc.reference_green(Par::Seq);
        let want = pc.dense_block(&g_ref, 0, 0);
        let stable = equal_time_green_stable(Par::Seq, Par::Seq, &pc, 0, 6).expect("healthy");
        let naive = equal_time_green_naive(Par::Seq, &pc, 0);
        let err_stable = rel_error(&stable, &want);
        let err_naive = rel_error(&naive, &want);
        assert!(
            err_stable <= err_naive * 1.5 + 1e-12,
            "stable {err_stable} vs naive {err_naive}"
        );
        assert!(
            err_stable < 1e-6,
            "stable route stays accurate: {err_stable}"
        );
    }
}
