//! The full DQMC simulation (paper Alg. 4 and Fig. 7):
//!
//! ```text
//! initialize HS configuration h₀
//! warmup:      w × { DQMC sweep }
//! measurement: m × { DQMC sweep; Green's functions via FSI; physical
//!                    measurements }
//! ```
//!
//! Per measurement iteration the simulation computes, for both spins, the
//! selection the paper uses in §V-C: *all* diagonal blocks plus `b` block
//! rows plus `b` block columns of `G^σ` — one clustering + BSOFI shared by
//! the three wraps — then evaluates the equal-time observables on every
//! slice and the SPXX table from the rows/columns. The per-phase wall
//! times are recorded in a [`Profile`] with sections `"sweep"`, `"green"`
//! and `"measurement"`, which is exactly the decomposition Figs. 10–11
//! plot.

use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
use fsi_runtime::health::FsiResult;
use fsi_runtime::{Profile, Stopwatch};
use fsi_selinv::fsi::fsi_measurement_set;
use fsi_selinv::{Parallelism, SelectedInverse};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::meas::{
    equal_time, spin_zz_equal_time, spxx, staggered_structure_factor, uniform_xy_susceptibility,
    Accumulator, SpxxTable,
};
use crate::sweep::{SweepConfig, Sweeper};

/// Full configuration of a DQMC run.
#[derive(Clone, Debug)]
pub struct DqmcConfig {
    /// Lattice extent in x.
    pub nx: usize,
    /// Lattice extent in y.
    pub ny: usize,
    /// Hopping amplitude `t`.
    pub t: f64,
    /// On-site repulsion `U`.
    pub u: f64,
    /// Inverse temperature `β`.
    pub beta: f64,
    /// Imaginary-time slices `L`.
    pub l: usize,
    /// FSI cluster size `c` (divides `L`).
    pub c: usize,
    /// Warmup sweeps `w`.
    pub warmup: usize,
    /// Measurement sweeps `m`.
    pub measurements: usize,
    /// Stabilization interval (wraps between from-scratch refreshes).
    pub stabilize_every: usize,
    /// Delayed-update batch size (1 = immediate rank-1 updates).
    pub delay: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DqmcConfig {
    /// A laptop-scale configuration used by tests and examples.
    pub fn small() -> Self {
        DqmcConfig {
            nx: 2,
            ny: 2,
            t: 1.0,
            u: 4.0,
            beta: 2.0,
            l: 8,
            c: 4,
            warmup: 2,
            measurements: 4,
            stabilize_every: 4,
            delay: 1,
            seed: 1234,
        }
    }

    /// Hubbard parameters sub-struct.
    pub fn params(&self) -> HubbardParams {
        HubbardParams {
            t: self.t,
            u: self.u,
            beta: self.beta,
            l: self.l,
        }
    }
}

/// Averaged results of a DQMC run.
#[derive(Clone, Debug)]
pub struct DqmcResults {
    /// `⟨n_↑⟩ + ⟨n_↓⟩` (total density) accumulator.
    pub density: Accumulator,
    /// Double occupancy accumulator.
    pub double_occupancy: Accumulator,
    /// Local moment accumulator.
    pub moment: Accumulator,
    /// Kinetic energy per site accumulator.
    pub kinetic: Accumulator,
    /// Average Monte Carlo sign.
    pub avg_sign: Accumulator,
    /// Average Metropolis acceptance.
    pub acceptance: Accumulator,
    /// Staggered spin structure factor `S(π,π)` accumulator (only
    /// populated for even lattice extents).
    pub structure_factor: Accumulator,
    /// Uniform XY susceptibility accumulator (from the SPXX table).
    pub susceptibility: Accumulator,
    /// Accumulated SPXX table (mean over measurements).
    pub spxx: Option<SpxxTable>,
    /// Phase timing: `"sweep"`, `"green"`, `"measurement"`.
    pub profile: Profile,
}

/// Runs the full simulation under the given parallelism mode.
///
/// ```
/// use fsi_dqmc::{run, DqmcConfig};
/// use fsi_selinv::Parallelism;
/// let mut cfg = DqmcConfig::small();
/// cfg.measurements = 2;
/// let results = run(&cfg, Parallelism::Serial).expect("healthy run");
/// // Half filling by particle-hole symmetry.
/// assert!((results.density.mean() - 1.0).abs() < 0.2);
/// ```
///
/// # Errors
/// Surfaces any [`fsi_runtime::health`] event that survived the sweep
/// driver's recovery ladder (see [`crate::sweep::RecoveryStats`]), and any
/// probe trip inside the measurement-set inversions, which run outside the
/// ladder.
pub fn run(cfg: &DqmcConfig, par: Parallelism<'_>) -> FsiResult<DqmcResults> {
    let _dqmc_span = fsi_runtime::trace::span("dqmc");
    let lattice = SquareLattice::new(cfg.nx, cfg.ny);
    let builder = BlockBuilder::new(lattice.clone(), cfg.params());
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let field = HsField::random(cfg.l, lattice.n_sites(), &mut rng);
    let sweep_cfg = SweepConfig {
        c: cfg.c,
        stabilize_every: cfg.stabilize_every,
        delay: cfg.delay,
        ..SweepConfig::default()
    };
    let mut sweeper = Sweeper::new(&builder, field, sweep_cfg)?;
    let mut results = DqmcResults {
        density: Accumulator::new(),
        double_occupancy: Accumulator::new(),
        moment: Accumulator::new(),
        kinetic: Accumulator::new(),
        avg_sign: Accumulator::new(),
        acceptance: Accumulator::new(),
        structure_factor: Accumulator::new(),
        susceptibility: Accumulator::new(),
        spxx: None,
        profile: Profile::new(),
    };

    // Warmup stage.
    for _ in 0..cfg.warmup {
        let stats = results
            .profile
            .time("sweep", || sweeper.sweep(&mut rng, par))?;
        results.acceptance.push(stats.acceptance());
    }

    // Measurement stage.
    let (outer, _inner) = par.split();
    for _ in 0..cfg.measurements {
        let stats = results
            .profile
            .time("sweep", || sweeper.sweep(&mut rng, par))?;
        results.acceptance.push(stats.acceptance());

        // Green's functions: all diagonals + b rows + b cols, both spins,
        // sharing one clustering/BSOFI per spin (paper §V-C's selection).
        let q = rng.gen_range(0..cfg.c);
        let (selections, diag_blocks) = results.profile.time("green", || -> FsiResult<_> {
            let mut selections: Vec<SelectedInverse> = Vec::with_capacity(2);
            let mut diag_blocks: Vec<SelectedInverse> = Vec::with_capacity(2);
            for spin in Spin::BOTH {
                let pc = hubbard_pcyclic(&builder, sweeper.field(), spin);
                let (merged, diags) = fsi_measurement_set(par, &pc, cfg.c, q)?;
                diag_blocks.push(diags);
                selections.push(merged);
            }
            Ok((selections, diag_blocks))
        })?;

        // Physical measurements.
        let sw = Stopwatch::start();
        let meas_span = fsi_runtime::trace::span("measurement");
        let mut et_sum = crate::meas::EqualTime::default();
        for k in 0..cfg.l {
            let gu = diag_blocks[0].get(k, k).expect("diagonal block");
            let gd = diag_blocks[1].get(k, k).expect("diagonal block");
            let et = equal_time(&lattice, cfg.t, gu, gd);
            et_sum.density_up += et.density_up;
            et_sum.density_down += et.density_down;
            et_sum.double_occupancy += et.double_occupancy;
            et_sum.moment += et.moment;
            et_sum.kinetic += et.kinetic;
        }
        let lf = cfg.l as f64;
        results
            .density
            .push((et_sum.density_up + et_sum.density_down) / lf);
        results.double_occupancy.push(et_sum.double_occupancy / lf);
        results.moment.push(et_sum.moment / lf);
        results.kinetic.push(et_sum.kinetic / lf);
        results.avg_sign.push(sweeper.sign());

        // Structure factor S(π,π) from the slice-averaged zz correlation
        // (even extents only — staggering is ill-defined otherwise).
        if cfg.nx.is_multiple_of(2) && cfg.ny.is_multiple_of(2) {
            let mut zz_acc = vec![0.0; lattice.n_dist_classes()];
            for k in 0..cfg.l {
                let gu = diag_blocks[0].get(k, k).expect("diagonal block");
                let gd = diag_blocks[1].get(k, k).expect("diagonal block");
                for (a, v) in zz_acc.iter_mut().zip(spin_zz_equal_time(&lattice, gu, gd)) {
                    *a += v / cfg.l as f64;
                }
            }
            results
                .structure_factor
                .push(staggered_structure_factor(&lattice, &zz_acc));
        }

        let table = spxx(outer, &lattice, cfg.l, &selections[0], &selections[1]);
        results.susceptibility.push(uniform_xy_susceptibility(
            &lattice,
            &table,
            cfg.beta / cfg.l as f64,
        ));
        match &mut results.spxx {
            Some(acc) => acc.merge(&table),
            None => results.spxx = Some(table),
        }
        drop(meas_span);
        results.profile.add("measurement", sw.elapsed());
    }
    if let Some(t) = &mut results.spxx {
        if cfg.measurements > 0 {
            t.scale(1.0 / cfg.measurements as f64);
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_runtime::ThreadPool;

    #[test]
    fn small_simulation_runs_and_is_sane() {
        let cfg = DqmcConfig::small();
        let r = run(&cfg, Parallelism::Serial).expect("healthy");
        assert_eq!(r.density.count(), cfg.measurements as u64);
        // Half filling: total density ≈ 1 (loose MC tolerance, tiny run).
        assert!(
            (r.density.mean() - 1.0).abs() < 0.2,
            "density {}",
            r.density.mean()
        );
        // Repulsive U suppresses double occupancy below the free 0.25.
        assert!(
            r.double_occupancy.mean() < 0.26,
            "docc {}",
            r.double_occupancy.mean()
        );
        assert!(r.moment.mean() > 0.4, "moment {}", r.moment.mean());
        assert!(r.kinetic.mean() < 0.0, "kinetic {}", r.kinetic.mean());
        // No sign problem at half filling.
        assert!((r.avg_sign.mean() - 1.0).abs() < 1e-12);
        assert!(r.acceptance.mean() > 0.05 && r.acceptance.mean() < 0.99);
        // SPXX present with all τ rows covered.
        let spxx = r.spxx.as_ref().expect("spxx accumulated");
        for tau in 0..cfg.l {
            assert!(spxx.count(tau) > 0, "τ={tau} uncovered");
        }
        // New observables populated and finite.
        assert_eq!(r.structure_factor.count(), cfg.measurements as u64);
        assert!(r.structure_factor.mean().is_finite());
        assert!(r.structure_factor.mean() > 0.0, "AF correlations at U>0");
        assert!(r.susceptibility.mean().is_finite());
        // All three profile phases recorded.
        assert!(r.profile.seconds("sweep") > 0.0);
        assert!(r.profile.seconds("green") > 0.0);
        assert!(r.profile.seconds("measurement") > 0.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = DqmcConfig::small();
        let a = run(&cfg, Parallelism::Serial).expect("healthy");
        let b = run(&cfg, Parallelism::Serial).expect("healthy");
        assert_eq!(a.density.mean(), b.density.mean());
        assert_eq!(a.kinetic.mean(), b.kinetic.mean());
    }

    #[test]
    fn parallel_modes_reproduce_serial_physics() {
        let cfg = DqmcConfig {
            measurements: 2,
            warmup: 1,
            ..DqmcConfig::small()
        };
        let serial = run(&cfg, Parallelism::Serial).expect("healthy");
        let pool = ThreadPool::new(3);
        let omp = run(&cfg, Parallelism::OpenMp(&pool)).expect("healthy");
        // The Monte Carlo trajectory is identical (same seed, same
        // arithmetic); only scheduling differs.
        assert!(
            (serial.density.mean() - omp.density.mean()).abs() < 1e-9,
            "serial {} vs omp {}",
            serial.density.mean(),
            omp.density.mean()
        );
        let mkl = run(&cfg, Parallelism::MklStyle(&pool)).expect("healthy");
        assert!((serial.density.mean() - mkl.density.mean()).abs() < 1e-9);
    }

    #[test]
    fn interaction_strengthens_moment() {
        // ⟨m²⟩ grows with U (moment formation) — a qualitative physics
        // check DQMC must reproduce.
        let base = DqmcConfig {
            u: 0.5,
            warmup: 2,
            measurements: 6,
            ..DqmcConfig::small()
        };
        let weak = run(&base, Parallelism::Serial).expect("healthy");
        let strong = run(
            &DqmcConfig {
                u: 6.0,
                ..base.clone()
            },
            Parallelism::Serial,
        )
        .expect("healthy");
        assert!(
            strong.moment.mean() > weak.moment.mean(),
            "m²(U=6) = {} should exceed m²(U=0.5) = {}",
            strong.moment.mean(),
            weak.moment.mean()
        );
    }
}
