//! Delayed (blocked) Green's-function updates.
//!
//! The plain Metropolis sweep applies a rank-1 update of `Ĝ` after every
//! accepted flip — `O(N²)` of Level-2 work per acceptance. The delayed
//! update scheme of Chang et al. (the paper's reference \[4\], standard in
//! modern QUEST) instead *accumulates* up to `k` accepted flips as
//! low-rank factors and only materializes them into `Ĝ` every `k`
//! acceptances with one rank-`k` GEMM:
//!
//! ```text
//! Ĝ_current = Ĝ₀ + U·Vᵀ,     U: N×m, V: N×m  (m ≤ k accepted so far)
//! ```
//!
//! The Metropolis ratio needs `Ĝ_current[i,i]`, and an acceptance needs
//! column `i` and row `i` of `Ĝ_current` — all available in `O(N·m)` from
//! the factors. Flushing costs one `N×N×k` GEMM, so the Level-2 traffic
//! of the plain scheme becomes Level-3, the same transformation FSI
//! applies to the Green's-function phase.
//!
//! The accumulated-update algebra: an accepted flip at site `i` with
//! coefficient `γ/R` appends
//!
//! ```text
//! u = (e_i − g_col_i),  v = (γ/R)·g_row_i
//! ```
//!
//! where `g_col_i`/`g_row_i` are the *current* (factor-corrected) column
//! and row — so later updates see earlier ones, exactly like the
//! immediate scheme. `delayed == immediate` is asserted by tests to
//! 1e-9.

use fsi_dense::{gemm_op, Matrix, Op};
use fsi_runtime::Par;

/// Accumulator for up to `capacity` delayed rank-1 updates of an `N × N`
/// Green's function.
pub struct DelayedUpdates {
    /// Left factors, one column per accepted flip.
    u: Matrix,
    /// Right factors, one column per accepted flip (the update is
    /// `Σ_m u_m·v_mᵀ`).
    v: Matrix,
    /// Number of accumulated updates `m ≤ capacity`.
    m: usize,
    capacity: usize,
    n: usize,
}

impl DelayedUpdates {
    /// Creates an empty accumulator for `n × n` matrices holding at most
    /// `capacity` updates before a flush is required.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(n: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "delay capacity must be positive");
        DelayedUpdates {
            u: Matrix::zeros(n, capacity),
            v: Matrix::zeros(n, capacity),
            m: 0,
            capacity,
            n,
        }
    }

    /// Number of pending updates.
    pub fn pending(&self) -> usize {
        self.m
    }

    /// Whether the accumulator must be flushed before another update.
    pub fn is_full(&self) -> bool {
        self.m == self.capacity
    }

    /// Current effective diagonal element `Ĝ[i,i] + Σ u[i,m]·v[i,m]`.
    pub fn diag(&self, g0: &Matrix, i: usize) -> f64 {
        let mut d = g0[(i, i)];
        for m in 0..self.m {
            d += self.u[(i, m)] * self.v[(i, m)];
        }
        d
    }

    /// Current effective column `i` into `out`.
    pub fn col(&self, g0: &Matrix, i: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.n);
        for (j, o) in out.iter_mut().enumerate() {
            *o = g0[(j, i)];
        }
        for m in 0..self.m {
            let vim = self.v[(i, m)];
            if vim != 0.0 {
                for (j, o) in out.iter_mut().enumerate() {
                    *o += self.u[(j, m)] * vim;
                }
            }
        }
    }

    /// Current effective row `i` into `out`.
    pub fn row(&self, g0: &Matrix, i: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.n);
        for (j, o) in out.iter_mut().enumerate() {
            *o = g0[(i, j)];
        }
        for m in 0..self.m {
            let uim = self.u[(i, m)];
            if uim != 0.0 {
                for (j, o) in out.iter_mut().enumerate() {
                    *o += uim * self.v[(j, m)];
                }
            }
        }
    }

    /// Records an accepted flip at site `i` with Metropolis factor `r`
    /// and HS coefficient `gamma`: appends the rank-1 pair computed from
    /// the *current* effective column and row.
    ///
    /// # Panics
    /// Panics if the accumulator is full (callers check [`Self::is_full`]
    /// and flush first).
    pub fn push(&mut self, g0: &Matrix, i: usize, gamma: f64, r: f64) {
        assert!(!self.is_full(), "flush before pushing more updates");
        let m = self.m;
        let n = self.n;
        // Effective column/row land in thread-local scratch — push sits
        // on the per-acceptance hot path, so no allocator round-trips.
        fsi_runtime::workspace::with_scratch2(n, n, |col, row| {
            self.col(g0, i, col);
            self.row(g0, i, row);
            // Ĝ' = Ĝ − (γ/R)·(e_i − Ĝe_i)·(e_iᵀĜ):
            //   u_m = e_i − col_i,  v_m = −(γ/R)·row_i.
            let coef = -gamma / r;
            for j in 0..n {
                self.u[(j, m)] = -col[j];
                self.v[(j, m)] = coef * row[j];
            }
            self.u[(i, m)] += 1.0;
        });
        self.m += 1;
    }

    /// Materializes the pending updates into `g0` with one rank-`m` GEMM
    /// and clears the accumulator.
    pub fn flush(&mut self, par: Par<'_>, g0: &mut Matrix) {
        if self.m == 0 {
            return;
        }
        let u = self.u.view(0, 0, self.n, self.m);
        let v = self.v.view(0, 0, self.n, self.m);
        gemm_op(par, 1.0, Op::NoTrans, u, Op::Trans, v, 1.0, g0.as_mut());
        self.m = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_dense::{rel_error, test_matrix};

    /// Reference: immediate rank-1 application.
    fn immediate_update(g: &mut Matrix, i: usize, gamma: f64, r: f64) {
        let n = g.rows();
        let mut u = vec![0.0; n];
        let mut v = vec![0.0; n];
        for j in 0..n {
            u[j] = -g[(j, i)];
            v[j] = g[(i, j)];
        }
        u[i] += 1.0;
        fsi_dense::blas::ger(-gamma / r, &u, &v, g.as_mut());
    }

    #[test]
    fn delayed_equals_immediate_after_flush() {
        let n = 12;
        let g0 = test_matrix(n, n, 1);
        let flips = [(3usize, 0.7), (5, -0.4), (3, 0.9), (0, 0.2), (11, -0.8)];

        // Immediate chain.
        let mut g_imm = g0.clone();
        for &(i, gamma) in &flips {
            let r = 1.0 + gamma * (1.0 - g_imm[(i, i)]);
            immediate_update(&mut g_imm, i, gamma, r);
        }

        // Delayed chain with the same ratios.
        let mut g_del = g0.clone();
        let mut acc = DelayedUpdates::new(n, 8);
        for &(i, gamma) in &flips {
            let r = 1.0 + gamma * (1.0 - acc.diag(&g_del, i));
            acc.push(&g_del, i, gamma, r);
        }
        acc.flush(Par::Seq, &mut g_del);
        assert!(
            rel_error(&g_del, &g_imm) < 1e-12,
            "delayed vs immediate: {}",
            rel_error(&g_del, &g_imm)
        );
    }

    #[test]
    fn effective_accessors_track_pending_updates() {
        let n = 8;
        let mut g = test_matrix(n, n, 2);
        let mut acc = DelayedUpdates::new(n, 4);
        let mut g_check = g.clone();
        for (i, gamma) in [(1usize, 0.5), (6, -0.3)] {
            let r = 1.0 + gamma * (1.0 - acc.diag(&g, i));
            acc.push(&g, i, gamma, r);
            let r_check = 1.0 + gamma * (1.0 - g_check[(i, i)]);
            assert!((r - r_check).abs() < 1e-12);
            immediate_update(&mut g_check, i, gamma, r_check);
        }
        // diag/col/row views equal the immediately-updated matrix.
        for i in 0..n {
            assert!(
                (acc.diag(&g, i) - g_check[(i, i)]).abs() < 1e-12,
                "diag {i}"
            );
            let mut col = vec![0.0; n];
            acc.col(&g, i, &mut col);
            let mut row = vec![0.0; n];
            acc.row(&g, i, &mut row);
            for j in 0..n {
                assert!((col[j] - g_check[(j, i)]).abs() < 1e-12);
                assert!((row[j] - g_check[(i, j)]).abs() < 1e-12);
            }
        }
        assert_eq!(acc.pending(), 2);
        acc.flush(Par::Seq, &mut g);
        assert_eq!(acc.pending(), 0);
        assert!(rel_error(&g, &g_check) < 1e-12);
    }

    #[test]
    fn flush_of_empty_accumulator_is_a_noop() {
        let n = 5;
        let mut g = test_matrix(n, n, 3);
        let want = g.clone();
        let mut acc = DelayedUpdates::new(n, 2);
        acc.flush(Par::Seq, &mut g);
        assert_eq!(g, want);
    }

    #[test]
    #[should_panic(expected = "flush before pushing")]
    fn pushing_past_capacity_panics() {
        let n = 4;
        let g = test_matrix(n, n, 4);
        let mut acc = DelayedUpdates::new(n, 1);
        acc.push(&g, 0, 0.1, 1.0);
        acc.push(&g, 1, 0.1, 1.0);
    }
}
