//! Property-based tests of the runtime substrate: scheduling equivalence,
//! collective correctness, and simulator bounds on arbitrary inputs.

use fsi_runtime::sim::makespan;
use fsi_runtime::{comm, parallel_map, Par, Schedule, ThreadPool};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// parallel_map equals sequential map for any size/schedule/threads.
    #[test]
    fn parallel_map_equals_sequential(
        n in 0usize..200,
        threads in 1usize..6,
        chunk in 1usize..8,
        dynamic in any::<bool>(),
    ) {
        let pool = ThreadPool::new(threads);
        let schedule = if dynamic { Schedule::Dynamic(chunk) } else { Schedule::Static };
        let seq: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        let par = parallel_map(Par::Pool(&pool), n, schedule, |i| {
            (i as u64).wrapping_mul(0x9E37)
        });
        prop_assert_eq!(seq, par);
    }

    /// Reductions across any rank count equal the sequential fold.
    #[test]
    fn reduce_is_topology_invariant(values in prop::collection::vec(-100i64..100, 1..20)) {
        let want: i64 = values.iter().sum();
        for ranks in [1usize, 2, 3] {
            let ranks = ranks.min(values.len());
            let values = values.clone();
            let results = comm::run(ranks, move |rank| {
                let mine: i64 = comm::block_range(values.len(), rank.size(), rank.id())
                    .map(|i| values[i])
                    .sum();
                rank.reduce(mine, 1, |a, b| a + b)
            });
            prop_assert_eq!(results[0], Some(want));
        }
    }

    /// block_range partitions exactly and near-evenly for any (n, size).
    #[test]
    fn block_range_partitions(n in 0usize..1000, size in 1usize..17) {
        let mut seen = 0usize;
        let mut lens = Vec::new();
        let mut next = 0usize;
        for r in 0..size {
            let range = comm::block_range(n, size, r);
            prop_assert_eq!(range.start, next);
            next = range.end;
            seen += range.len();
            lens.push(range.len());
        }
        prop_assert_eq!(seen, n);
        let max = lens.iter().max().unwrap();
        let min = lens.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Makespan respects the two classical lower bounds and the
    /// one-worker upper bound.
    #[test]
    fn makespan_bounds(tasks in prop::collection::vec(0.001f64..1.0, 0..40), workers in 1usize..16) {
        let total: f64 = tasks.iter().sum();
        let longest = tasks.iter().cloned().fold(0.0, f64::max);
        let m = makespan(&tasks, workers);
        prop_assert!(m >= longest - 1e-12, "below longest task");
        prop_assert!(m >= total / workers as f64 - 1e-9, "below mean load");
        prop_assert!(m <= total + 1e-12, "above serial time");
        // Greedy list scheduling is a 2-approximation of the optimum,
        // which is itself ≥ max(longest, total/workers).
        let lower = longest.max(total / workers as f64);
        prop_assert!(m <= 2.0 * lower + 1e-9, "worse than 2x optimum bound");
    }

    /// Scatter + gather is the identity on any payload arrangement.
    #[test]
    fn scatter_gather_roundtrip(payload in prop::collection::vec(any::<i32>(), 1..12)) {
        let ranks = payload.len();
        let payload2 = payload.clone();
        let results = comm::run(ranks, move |rank| {
            let mine: i32 = rank.scatter(rank.is_root().then(|| payload2.clone()), 5);
            rank.gather(mine, 6)
        });
        prop_assert_eq!(results[0].clone(), Some(payload));
    }
}
