//! Concurrency and property tests of the always-on metrics registry and
//! the flight recorder: snapshots must lose no counts under contention,
//! histogram merge must be a commutative monoid, and the flight ring
//! must preserve per-thread event order.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes the tests that clear and inspect the (global) flight ring.
fn flight_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

use fsi_runtime::metrics::{self, flight};
use fsi_runtime::trace::Histogram;
use proptest::prelude::*;

/// Counts must survive heavy multi-thread contention exactly: every
/// `add` that returned before the final snapshot is in the final
/// snapshot. Threads hammer one shared counter and one histogram while
/// a snapshotter polls concurrently (polling must also never observe a
/// value above the true total).
#[test]
fn concurrent_counts_are_never_lost() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let c = metrics::counter("test.stress.lost_counts");
    let h = metrics::histogram("test.stress.lost_hist");
    let before_c = c.value();
    let before_h = h.snapshot();
    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                max_seen = max_seen.max(c.value());
                std::hint::spin_loop();
            }
            max_seen
        })
    };
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    c.add(1);
                    if i % 64 == 0 {
                        h.record(t as u64 + 1);
                    }
                }
            });
        }
    });
    stop.store(true, Ordering::Relaxed);
    let max_seen = poller.join().unwrap();
    let want = THREADS as u64 * PER_THREAD;
    assert_eq!(c.value() - before_c, want, "no increment may be dropped");
    assert!(max_seen <= before_c + want, "snapshot can never over-count");
    let dh = {
        let mut now = h.snapshot();
        now.subtract(&before_h);
        now
    };
    assert_eq!(dh.count(), THREADS as u64 * PER_THREAD.div_ceil(64));
}

/// The registry snapshot itself (not just one handle) must agree with
/// the per-handle values after the dust settles.
#[test]
fn registry_snapshot_agrees_with_handles() {
    let c = metrics::counter("test.stress.registry_agrees");
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..10_000 {
                    c.inc();
                }
            });
        }
    });
    let snap = metrics::snapshot();
    assert_eq!(snap.counter("test.stress.registry_agrees"), c.value());
}

/// One thread's flight events must appear in the ring in the order that
/// thread recorded them (the ring is shared, but `seq` is handed out
/// under the same lock as the push, so per-thread order is total).
#[test]
fn flight_ring_preserves_per_thread_order() {
    const THREADS: usize = 4;
    // Rounds kept below CAPACITY / THREADS so nothing we assert on has
    // been evicted.
    const ROUNDS: usize = 48;
    static NAMES: [&str; THREADS] = [
        "test.flight.t0",
        "test.flight.t1",
        "test.flight.t2",
        "test.flight.t3",
    ];
    let _guard = flight_lock();
    flight::clear();
    std::thread::scope(|s| {
        for name in NAMES {
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    flight::note(name);
                }
            });
        }
    });
    let events = flight::events();
    // Global sequence numbers are strictly increasing in ring order.
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq, "ring out of order");
    }
    for name in NAMES {
        let of_thread: Vec<_> = events.iter().filter(|e| e.name == name).collect();
        assert_eq!(of_thread.len(), ROUNDS, "{name}: events lost");
        // All events of one logical thread share the recorder's thread
        // index and appear seq-ordered (windows(2) above covers order;
        // here we check none interleaved onto another thread id).
        assert!(
            of_thread.iter().all(|e| e.thread == of_thread[0].thread),
            "{name}: thread id must be stable"
        );
    }
}

/// An incident dump renders every ring event, oldest first, as NDJSON
/// with a leading meta line.
#[test]
fn incident_dump_contains_the_ring() {
    let _guard = flight_lock();
    flight::clear();
    for _ in 0..10 {
        flight::note("test.flight.dumped");
    }
    flight::incident("test_reason");
    let dump = flight::last_dump().expect("incident stores a dump");
    let lines: Vec<&str> = dump.lines().collect();
    assert!(lines[0].contains("\"kind\":\"flight_meta\""));
    assert!(lines[0].contains("\"reason\":\"test_reason\""));
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"name\":\"test.flight.dumped\""))
            .count(),
        10
    );
}

fn arb_histogram() -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0u64..1_000_000_000, 0..40).prop_map(|values| {
        let mut h = Histogram::new();
        for v in values {
            h.record(v);
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram merge is commutative: a ∪ b == b ∪ a.
    #[test]
    fn histogram_merge_commutes(a in arb_histogram(), b in arb_histogram()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Histogram merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn histogram_merge_is_associative(
        a in arb_histogram(),
        b in arb_histogram(),
        c in arb_histogram(),
    ) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// subtract inverts merge: (a ∪ b) − a == b.
    #[test]
    fn histogram_subtract_inverts_merge(a in arb_histogram(), b in arb_histogram()) {
        let mut merged = a.clone();
        merged.merge(&b);
        merged.subtract(&a);
        prop_assert_eq!(merged, b);
    }

    /// Sharded histogram metrics agree with a sequentially built plain
    /// histogram for any value set, regardless of which threads record.
    #[test]
    fn sharded_histogram_matches_plain(values in prop::collection::vec(0u64..1_000_000, 0..64)) {
        let shard = metrics::HistogramMetric::new();
        let mut plain = Histogram::new();
        for &v in &values {
            plain.record(v);
        }
        std::thread::scope(|s| {
            for chunk in values.chunks(8) {
                let shard = &shard;
                s.spawn(move || {
                    for &v in chunk {
                        shard.record(v);
                    }
                });
            }
        });
        prop_assert_eq!(shard.snapshot(), plain);
    }
}
