//! Scheduling simulator for thread-scaling experiments on constrained hosts.
//!
//! The paper's scaling figures (Fig. 8 bottom, Fig. 11) were measured on a
//! 12-core Ivy Bridge socket. When the reproduction host exposes fewer
//! cores (CI containers are often single-core), wall-clock speedups cannot
//! be observed directly even though the parallel code paths run and are
//! verified for correctness. The figure harnesses therefore *also* report a
//! simulated makespan: each parallel region's independent task durations are
//! measured sequentially, then replayed through a greedy list scheduler with
//! `T` virtual workers. This reproduces the *shape* of the scaling curves —
//! near-ideal for FSI's flat task loops (b clusters, b² seeds), Amdahl-bound
//! for the "MKL-style" mode whose parallelism lives inside individual dense
//! calls — which is exactly the contrast the paper plots. The substitution
//! is documented in DESIGN.md and flagged in EXPERIMENTS.md output.

/// Greedy list-scheduling makespan: assigns each task (in the given order)
/// to the least-loaded of `workers` virtual workers and returns the final
/// maximum load. With tasks sorted longest-first this is the classic LPT
/// 4/3-approximation; in FSI's loops task order is the loop order, matching
/// the dynamic `parallel_for` schedule.
pub fn makespan(task_seconds: &[f64], workers: usize) -> f64 {
    assert!(workers > 0, "need at least one worker");
    if task_seconds.is_empty() {
        return 0.0;
    }
    let mut load = vec![0.0f64; workers.min(task_seconds.len())];
    for &t in task_seconds {
        // Index of the least-loaded worker.
        let (idx, _) = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
            .expect("at least one worker");
        load[idx] += t;
    }
    load.into_iter().fold(0.0, f64::max)
}

/// Amdahl-style model of a kernel whose internal parallel fraction is `f`
/// and whose parallelizable part splits into at most `max_chunks` pieces
/// (granularity limit — a GEMM over `n` columns cannot use more than
/// `n / chunk` threads).
///
/// Returns the modelled time on `workers` threads for a kernel measured at
/// `seq_seconds` on one thread.
pub fn amdahl(seq_seconds: f64, f: f64, workers: usize, max_chunks: usize) -> f64 {
    assert!((0.0..=1.0).contains(&f), "parallel fraction in [0,1]");
    let effective = workers.min(max_chunks.max(1)) as f64;
    seq_seconds * ((1.0 - f) + f / effective)
}

/// A recorded parallel region: the independent task durations of one
/// `parallel_for` loop, plus any serial time around it.
#[derive(Debug, Clone, Default)]
pub struct RegionTrace {
    /// Durations of the region's independent tasks, in seconds.
    pub tasks: Vec<f64>,
    /// Serial work attached to the region (runs on one thread regardless).
    pub serial: f64,
}

impl RegionTrace {
    /// Simulated execution time of this region on `workers` threads.
    pub fn simulated(&self, workers: usize) -> f64 {
        self.serial + makespan(&self.tasks, workers)
    }

    /// Total sequential time (1 worker).
    pub fn sequential(&self) -> f64 {
        self.serial + self.tasks.iter().sum::<f64>()
    }
}

/// A whole algorithm trace: regions execute one after another (each region
/// is a fork/join barrier, like an OpenMP parallel-do).
#[derive(Debug, Clone, Default)]
pub struct AlgorithmTrace {
    /// The fork/join regions in execution order.
    pub regions: Vec<RegionTrace>,
}

impl AlgorithmTrace {
    /// Adds a region from raw task durations.
    pub fn push_region(&mut self, tasks: Vec<f64>, serial: f64) {
        self.regions.push(RegionTrace { tasks, serial });
    }

    /// Simulated time on `workers` threads.
    pub fn simulated(&self, workers: usize) -> f64 {
        self.regions.iter().map(|r| r.simulated(workers)).sum()
    }

    /// Sequential time.
    pub fn sequential(&self) -> f64 {
        self.regions.iter().map(|r| r.sequential()).sum()
    }

    /// Speedup at `workers` threads relative to sequential execution.
    pub fn speedup(&self, workers: usize) -> f64 {
        let s = self.simulated(workers);
        if s <= 0.0 {
            return 1.0;
        }
        self.sequential() / s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_single_worker_is_sum() {
        let t = [1.0, 2.0, 3.0];
        assert!((makespan(&t, 1) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_uniform_tasks_scale_ideally() {
        let t = vec![1.0; 12];
        assert!((makespan(&t, 12) - 1.0).abs() < 1e-12);
        assert!((makespan(&t, 6) - 2.0).abs() < 1e-12);
        assert!((makespan(&t, 4) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_is_bounded_by_longest_task() {
        let t = [5.0, 0.1, 0.1, 0.1];
        assert!(makespan(&t, 8) >= 5.0);
        // And never better than sum/workers.
        assert!(makespan(&t, 2) >= 5.3 / 2.0);
    }

    #[test]
    fn makespan_empty_is_zero() {
        assert_eq!(makespan(&[], 4), 0.0);
    }

    #[test]
    fn makespan_monotone_in_workers() {
        let t: Vec<f64> = (1..20).map(|i| (i % 5 + 1) as f64).collect();
        let mut prev = f64::INFINITY;
        for w in 1..16 {
            let m = makespan(&t, w);
            assert!(m <= prev + 1e-12, "not monotone at {w}");
            prev = m;
        }
    }

    #[test]
    fn amdahl_limits() {
        // Fully parallel, no granularity limit: ideal scaling.
        assert!((amdahl(12.0, 1.0, 12, usize::MAX) - 1.0).abs() < 1e-12);
        // Fully serial: no scaling.
        assert!((amdahl(10.0, 0.0, 12, usize::MAX) - 10.0).abs() < 1e-12);
        // Granularity cap: 12 workers but only 3 chunks.
        assert!((amdahl(9.0, 1.0, 12, 3) - 3.0).abs() < 1e-12);
        // Classic Amdahl: f = 0.5, many workers → half the time remains.
        let t = amdahl(8.0, 0.5, 1000, usize::MAX);
        assert!((t - 4.004).abs() < 0.01);
    }

    #[test]
    fn trace_speedup_contrast_fsi_vs_mkl_style() {
        // FSI-like: 100 equal independent tasks → near-ideal speedup.
        let mut fsi = AlgorithmTrace::default();
        fsi.push_region(vec![0.01; 100], 0.0);
        let s12 = fsi.speedup(12);
        assert!(s12 > 10.0, "flat task loop should scale: {s12}");
        // MKL-style: a serial chain with a small parallelizable tail
        // behaves like Amdahl with small f.
        let mut mkl = AlgorithmTrace::default();
        for _ in 0..20 {
            mkl.push_region(vec![0.004; 2], 0.04);
        }
        let s12 = mkl.speedup(12);
        assert!(s12 < 1.5, "serial-dominated trace must not scale: {s12}");
    }
}
