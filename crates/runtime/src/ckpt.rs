//! Versioned, checksummed, atomically-written checkpoint envelopes.
//!
//! Long DQMC runs die for reasons the in-process recovery ladder cannot
//! touch: OOM kills, node reboots, operator restarts. The durability
//! story built on this module turns those into resumable events, under
//! one contract: **a resumed run must be bitwise-identical to an
//! uninterrupted one**, which demands that a checkpoint either loads
//! exactly as written or is rejected outright — a torn or bit-rotted
//! file silently accepted would corrupt the Monte Carlo trajectory in
//! ways no physics assertion downstream could attribute.
//!
//! The envelope is deliberately minimal: an 8-byte magic, a `u32`
//! payload version, the payload length, and an FNV-1a checksum over the
//! payload. FNV-1a is no cryptographic MAC, but its byte step
//! `h ← (h ⊕ b)·p` is invertible (the prime is odd), so *any* single
//! corrupted byte always changes the final hash — torn writes and media
//! bit-rot are detected deterministically, which is the failure model a
//! checkpoint faces.
//!
//! Files are written atomically (temp file in the same directory, then
//! rename) and rotated through two generations: [`store`] moves the
//! current file to `<path>.prev` before renaming the fresh one in, and
//! [`load`] falls back to the previous generation when the current one
//! is corrupt — reporting what it found so callers can feed the health
//! machinery. Two counters ride the always-on metrics registry:
//! `runtime.ckpt.corrupt` (envelope rejections) and
//! `runtime.ckpt.fallbacks` (loads served by the previous generation).

use std::io;
use std::path::{Path, PathBuf};

use crate::metrics::{flight, LazyCounter};

/// Envelope magic: identifies a file as an FSI checkpoint, any version.
pub const MAGIC: [u8; 8] = *b"FSICKPT\x01";

/// Envelope header length: magic + version + payload length + checksum.
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8;

static CORRUPT: LazyCounter = LazyCounter::new("runtime.ckpt.corrupt");
static FALLBACKS: LazyCounter = LazyCounter::new("runtime.ckpt.fallbacks");

/// Why a checkpoint failed to load. Every variant means "do not trust
/// this file" — the caller falls back to an older generation or a
/// from-scratch start, never to a partial parse.
#[derive(Debug)]
pub enum CkptError {
    /// The file could not be read at all (missing counts here too).
    Io(io::Error),
    /// The file is shorter than the envelope header.
    Truncated,
    /// The magic bytes do not identify an FSI checkpoint.
    BadMagic,
    /// The envelope parsed but carries an unexpected payload version.
    BadVersion {
        /// Version found in the envelope.
        found: u32,
        /// Version the caller expected.
        expected: u32,
    },
    /// The header's payload length disagrees with the file size (a torn
    /// write that lost the tail).
    LengthMismatch,
    /// The payload checksum does not match (bit rot or a torn write
    /// inside the payload).
    ChecksumMismatch,
    /// The payload deserializer found a structural impossibility.
    Malformed(&'static str),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io: {e}"),
            CkptError::Truncated => write!(f, "checkpoint truncated before header end"),
            CkptError::BadMagic => write!(f, "not an FSI checkpoint (bad magic)"),
            CkptError::BadVersion { found, expected } => {
                write!(f, "checkpoint version {found}, expected {expected}")
            }
            CkptError::LengthMismatch => write!(f, "checkpoint payload length mismatch"),
            CkptError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CkptError::Malformed(what) => write!(f, "checkpoint payload malformed: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// FNV-1a over raw bytes; the checksum of the envelope.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps `payload` in the envelope: magic, version, length, FNV-1a.
pub fn seal(version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates an envelope and returns the payload bytes.
///
/// # Errors
/// Every way a file can fail to be the checkpoint it claims to be:
/// truncation, wrong magic, wrong version, length mismatch, checksum
/// mismatch.
pub fn open(bytes: &[u8], expected_version: u32) -> Result<&[u8], CkptError> {
    if bytes.len() < HEADER_LEN {
        return Err(CkptError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != expected_version {
        return Err(CkptError::BadVersion {
            found: version,
            expected: expected_version,
        });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != len {
        return Err(CkptError::LengthMismatch);
    }
    let sum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    if fnv1a(payload) != sum {
        return Err(CkptError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Writes `bytes` to `path` atomically: a temp file in the same
/// directory, flushed, then renamed over the destination. A crash at any
/// point leaves either the old file or the new one — never a torn mix.
///
/// # Errors
/// Propagates filesystem errors (the temp file is cleaned up on rename
/// failure).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = tmp_path(path);
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// The sibling path holding the previous checkpoint generation.
pub fn prev_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".prev");
    path.with_file_name(name)
}

/// Seals `payload` and stores it at `path` with two-generation rotation:
/// an existing current file first becomes `<path>.prev`, then the fresh
/// envelope is written atomically. Returns the envelope size in bytes.
///
/// # Errors
/// Propagates filesystem errors from the rotation or the write.
pub fn store(path: &Path, version: u32, payload: &[u8]) -> io::Result<u64> {
    let sealed = seal(version, payload);
    if path.exists() {
        std::fs::rename(path, prev_path(path))?;
    }
    write_atomic(path, &sealed)?;
    Ok(sealed.len() as u64)
}

/// Which generation a [`load`] was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Generation {
    /// The current checkpoint file loaded cleanly.
    Current,
    /// The current file was corrupt or missing; the previous generation
    /// loaded cleanly.
    Previous,
}

/// Loads the payload at `path`, falling back to `<path>.prev` when the
/// current generation is corrupt or missing. Corruption is counted on
/// `runtime.ckpt.corrupt` and noted on the flight recorder; a fallback
/// additionally counts on `runtime.ckpt.fallbacks`.
///
/// # Errors
/// The *current* generation's error when both generations fail —
/// `Io(NotFound)` when neither file exists (the from-scratch case).
pub fn load(path: &Path, expected_version: u32) -> Result<(Vec<u8>, Generation), CkptError> {
    let current = read_envelope(path, expected_version);
    match current {
        Ok(payload) => Ok((payload, Generation::Current)),
        Err(current_err) => {
            if !matches!(current_err, CkptError::Io(ref e) if e.kind() == io::ErrorKind::NotFound) {
                CORRUPT.inc();
                flight::note("ckpt.corrupt");
            }
            match read_envelope(&prev_path(path), expected_version) {
                Ok(payload) => {
                    FALLBACKS.inc();
                    flight::note("ckpt.fallback_prev");
                    Ok((payload, Generation::Previous))
                }
                Err(_) => Err(current_err),
            }
        }
    }
}

fn read_envelope(path: &Path, expected_version: u32) -> Result<Vec<u8>, CkptError> {
    let bytes = std::fs::read(path)?;
    open(&bytes, expected_version).map(<[u8]>::to_vec)
}

/// Little-endian payload writer used by the checkpoint serializers.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty payload buffer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern (exact round trip, NaN included).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed `i8` slice (HS field configurations).
    pub fn put_i8s(&mut self, v: &[i8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend(v.iter().map(|&x| x as u8));
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian payload reader; every accessor fails loudly on
/// truncation instead of yielding zeros.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Whether every byte has been consumed (serializers assert this to
    /// catch schema drift).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.buf.len() < n {
            return Err(CkptError::Malformed("payload shorter than declared"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    /// [`CkptError::Malformed`] on truncation.
    pub fn take_u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    /// [`CkptError::Malformed`] on truncation.
    pub fn take_u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `f64` by bit pattern.
    ///
    /// # Errors
    /// [`CkptError::Malformed`] on truncation.
    pub fn take_f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    /// [`CkptError::Malformed`] on truncation or an absurd length.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let len = self.take_u64()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed `i8` slice.
    ///
    /// # Errors
    /// [`CkptError::Malformed`] on truncation.
    pub fn take_i8s(&mut self) -> Result<Vec<i8>, CkptError> {
        Ok(self.take_bytes()?.iter().map(|&b| b as i8).collect())
    }

    /// Reads a length-prefixed `f64` slice.
    ///
    /// # Errors
    /// [`CkptError::Malformed`] on truncation.
    pub fn take_f64s(&mut self) -> Result<Vec<f64>, CkptError> {
        let len = self.take_u64()? as usize;
        let raw = self.take(
            len.checked_mul(8)
                .ok_or(CkptError::Malformed("f64 slice overflow"))?,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8"))))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trip() {
        let payload = b"hello checkpoint".to_vec();
        let sealed = seal(3, &payload);
        assert_eq!(open(&sealed, 3).unwrap(), &payload[..]);
        assert!(matches!(
            open(&sealed, 4),
            Err(CkptError::BadVersion { .. })
        ));
    }

    #[test]
    fn any_single_byte_corruption_is_rejected() {
        // FNV-1a's byte step is invertible, so a single-byte substitution
        // anywhere in the payload must always flip the checksum; header
        // corruption trips magic/version/length checks instead.
        let sealed = seal(1, &[0xAB; 64]);
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert!(open(&bad, 1).is_err(), "byte {i} corruption undetected");
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let sealed = seal(1, &[7u8; 32]);
        for cut in 0..sealed.len() {
            assert!(open(&sealed[..cut], 1).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = Writer::new();
        w.put_u32(7);
        w.put_u64(u64::MAX);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_i8s(&[1, -1, 1]);
        w.put_f64s(&[1.5, f64::MIN_POSITIVE]);
        w.put_bytes(b"tenant");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_u32().unwrap(), 7);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.take_f64().unwrap().is_nan());
        assert_eq!(r.take_i8s().unwrap(), vec![1, -1, 1]);
        assert_eq!(r.take_f64s().unwrap(), vec![1.5, f64::MIN_POSITIVE]);
        assert_eq!(r.take_bytes().unwrap(), b"tenant");
        assert!(r.is_empty());
        assert!(r.take_u32().is_err(), "reads past the end fail loudly");
    }

    #[test]
    fn store_rotates_and_load_falls_back() {
        let dir = std::env::temp_dir().join(format!("fsi-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");

        // No file at all: NotFound io error.
        assert!(matches!(load(&path, 1), Err(CkptError::Io(_))));

        store(&path, 1, b"gen0").unwrap();
        let (p, g) = load(&path, 1).unwrap();
        assert_eq!((p.as_slice(), g), (&b"gen0"[..], Generation::Current));

        store(&path, 1, b"gen1").unwrap();
        assert!(prev_path(&path).exists(), "rotation keeps the old gen");

        // Torn current generation: fall back to prev.
        std::fs::write(&path, b"FSICKPT\x01torn").unwrap();
        let (p, g) = load(&path, 1).unwrap();
        assert_eq!((p.as_slice(), g), (&b"gen0"[..], Generation::Previous));

        // Both generations corrupt: the current error surfaces.
        std::fs::write(prev_path(&path), b"junk").unwrap();
        assert!(load(&path, 1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_not_appends() {
        let dir = std::env::temp_dir().join(format!("fsi-ckpt-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("a.json");
        write_atomic(&path, b"{\"long\":\"first version with padding\"}").unwrap();
        write_atomic(&path, b"{\"v\":2}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\":2}");
        assert!(!tmp_path(&path).exists(), "temp file cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
