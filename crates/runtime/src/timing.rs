//! Wall-clock timing utilities for the figure-regeneration harnesses.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed wall time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed wall time in seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restarts the stopwatch and returns the time elapsed up to the
    /// restart.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.start;
        self.start = now;
        d
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Accumulates wall time (and invocation counts) per named section.
///
/// Used to produce the per-stage breakdowns of Fig. 8 (top: CLS / BSOFI /
/// WRP) and Fig. 10 (Green's function vs. measurement time). Sections are
/// kept in a `BTreeMap` so report order is deterministic.
///
/// `Profile` is a thin adapter over [`crate::trace`]: [`Profile::time`]
/// also opens a trace span named after the section, so callers that only
/// consume profiles keep working while the structured collector sees the
/// same section boundaries (with flop attribution and hierarchy).
#[derive(Default, Debug, Clone)]
pub struct Profile {
    sections: BTreeMap<&'static str, (Duration, u64)>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` and charges the elapsed wall time to `section`. Also
    /// opens a trace span named `section` for the duration of `f`.
    ///
    /// Panic-safe: if `f` unwinds, the time spent up to the panic is still
    /// charged (and the span still recorded) before the panic propagates,
    /// so a crashed stage shows up in reports instead of vanishing.
    pub fn time<R>(&mut self, section: &'static str, f: impl FnOnce() -> R) -> R {
        struct Charge<'p> {
            profile: &'p mut Profile,
            section: &'static str,
            sw: Stopwatch,
            // Dropped after the time is charged, closing the span last so
            // it brackets the whole section.
            _span: crate::trace::SpanGuard,
        }
        impl Drop for Charge<'_> {
            fn drop(&mut self) {
                let elapsed = self.sw.elapsed();
                self.profile.add(self.section, elapsed);
            }
        }
        let _charge = Charge {
            _span: crate::trace::span(section),
            sw: Stopwatch::start(),
            profile: self,
            section,
        };
        f()
    }

    /// Charges an externally measured duration to `section`.
    pub fn add(&mut self, section: &'static str, d: Duration) {
        let entry = self.sections.entry(section).or_insert((Duration::ZERO, 0));
        entry.0 += d;
        entry.1 += 1;
    }

    /// Total time charged to `section` (zero if never charged).
    pub fn seconds(&self, section: &'static str) -> f64 {
        self.sections
            .get(section)
            .map(|(d, _)| d.as_secs_f64())
            .unwrap_or(0.0)
    }

    /// Number of times `section` was charged.
    pub fn count(&self, section: &'static str) -> u64 {
        self.sections.get(section).map(|(_, c)| *c).unwrap_or(0)
    }

    /// Sum over all sections, in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.sections.values().map(|(d, _)| d.as_secs_f64()).sum()
    }

    /// Iterates `(section, seconds, count)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64, u64)> + '_ {
        self.sections
            .iter()
            .map(|(name, (d, c))| (*name, d.as_secs_f64(), *c))
    }

    /// Merges another profile into this one (summing durations and counts).
    pub fn merge(&mut self, other: &Profile) {
        for (name, (d, c)) in &other.sections {
            let entry = self.sections.entry(name).or_insert((Duration::ZERO, 0));
            entry.0 += *d;
            entry.1 += *c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let mut sw = Stopwatch::start();
        std::hint::black_box((0..1000).sum::<u64>());
        assert!(sw.seconds() >= 0.0);
        let lap = sw.lap();
        assert!(lap >= Duration::ZERO);
        // After a lap the stopwatch restarts near zero.
        assert!(sw.seconds() < lap.as_secs_f64() + 1.0);
    }

    #[test]
    fn profile_accumulates_sections() {
        // Profile::time opens spans; hold the trace lock so a concurrent
        // trace test's collector drain doesn't see them.
        let _trace = crate::trace::test_lock();
        let mut p = Profile::new();
        let v = p.time("cls", || 21 * 2);
        assert_eq!(v, 42);
        p.add("cls", Duration::from_millis(10));
        p.add("wrap", Duration::from_millis(5));
        assert_eq!(p.count("cls"), 2);
        assert_eq!(p.count("wrap"), 1);
        assert_eq!(p.count("bsofi"), 0);
        assert!(p.seconds("cls") >= 0.010);
        assert!(p.total_seconds() >= p.seconds("cls") + p.seconds("wrap"));
    }

    #[test]
    fn profile_merge_sums() {
        let mut a = Profile::new();
        a.add("x", Duration::from_millis(2));
        let mut b = Profile::new();
        b.add("x", Duration::from_millis(3));
        b.add("y", Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.count("x"), 2);
        assert!((a.seconds("x") - 0.005).abs() < 1e-9);
        assert_eq!(a.count("y"), 1);
    }

    #[test]
    fn profile_time_charges_on_panic() {
        let _trace = crate::trace::test_lock();
        let mut p = Profile::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.time("crashing", || {
                std::hint::black_box((0..100).sum::<u64>());
                panic!("section died");
            })
        }));
        assert!(result.is_err());
        // The partial time was charged before the panic propagated.
        assert_eq!(p.count("crashing"), 1);
        assert!(p.seconds("crashing") >= 0.0);
        // The profile remains usable afterwards.
        p.time("after", || ());
        assert_eq!(p.count("after"), 1);
    }

    #[test]
    fn profile_merge_is_safe_from_many_threads() {
        use std::sync::Mutex;
        let total = Mutex::new(Profile::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let total = &total;
                s.spawn(move || {
                    let mut local = Profile::new();
                    for _ in 0..100 {
                        local.add("work", Duration::from_micros(t + 1));
                    }
                    local.add("setup", Duration::from_millis(1));
                    total.lock().unwrap().merge(&local);
                });
            }
        });
        let total = total.into_inner().unwrap();
        assert_eq!(total.count("work"), 800);
        assert_eq!(total.count("setup"), 8);
        // Sum of 100·(t+1) µs over t in 0..8 = 3600 µs.
        assert!((total.seconds("work") - 0.0036).abs() < 1e-9);
    }

    #[test]
    fn profile_iter_is_deterministic() {
        let mut p = Profile::new();
        p.add("wrap", Duration::from_millis(1));
        p.add("bsofi", Duration::from_millis(1));
        p.add("cls", Duration::from_millis(1));
        let names: Vec<_> = p.iter().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["bsofi", "cls", "wrap"]);
    }
}
