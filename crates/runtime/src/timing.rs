//! Wall-clock timing utilities for the figure-regeneration harnesses.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed wall time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed wall time in seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restarts the stopwatch and returns the time elapsed up to the
    /// restart.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.start;
        self.start = now;
        d
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Accumulates wall time (and invocation counts) per named section.
///
/// Used to produce the per-stage breakdowns of Fig. 8 (top: CLS / BSOFI /
/// WRP) and Fig. 10 (Green's function vs. measurement time). Sections are
/// kept in a `BTreeMap` so report order is deterministic.
#[derive(Default, Debug, Clone)]
pub struct Profile {
    sections: BTreeMap<&'static str, (Duration, u64)>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` and charges the elapsed wall time to `section`.
    pub fn time<R>(&mut self, section: &'static str, f: impl FnOnce() -> R) -> R {
        let sw = Stopwatch::start();
        let r = f();
        self.add(section, sw.elapsed());
        r
    }

    /// Charges an externally measured duration to `section`.
    pub fn add(&mut self, section: &'static str, d: Duration) {
        let entry = self.sections.entry(section).or_insert((Duration::ZERO, 0));
        entry.0 += d;
        entry.1 += 1;
    }

    /// Total time charged to `section` (zero if never charged).
    pub fn seconds(&self, section: &'static str) -> f64 {
        self.sections
            .get(section)
            .map(|(d, _)| d.as_secs_f64())
            .unwrap_or(0.0)
    }

    /// Number of times `section` was charged.
    pub fn count(&self, section: &'static str) -> u64 {
        self.sections.get(section).map(|(_, c)| *c).unwrap_or(0)
    }

    /// Sum over all sections, in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.sections.values().map(|(d, _)| d.as_secs_f64()).sum()
    }

    /// Iterates `(section, seconds, count)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64, u64)> + '_ {
        self.sections
            .iter()
            .map(|(name, (d, c))| (*name, d.as_secs_f64(), *c))
    }

    /// Merges another profile into this one (summing durations and counts).
    pub fn merge(&mut self, other: &Profile) {
        for (name, (d, c)) in &other.sections {
            let entry = self.sections.entry(name).or_insert((Duration::ZERO, 0));
            entry.0 += *d;
            entry.1 += *c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let mut sw = Stopwatch::start();
        std::hint::black_box((0..1000).sum::<u64>());
        assert!(sw.seconds() >= 0.0);
        let lap = sw.lap();
        assert!(lap >= Duration::ZERO);
        // After a lap the stopwatch restarts near zero.
        assert!(sw.seconds() < lap.as_secs_f64() + 1.0);
    }

    #[test]
    fn profile_accumulates_sections() {
        let mut p = Profile::new();
        let v = p.time("cls", || 21 * 2);
        assert_eq!(v, 42);
        p.add("cls", Duration::from_millis(10));
        p.add("wrap", Duration::from_millis(5));
        assert_eq!(p.count("cls"), 2);
        assert_eq!(p.count("wrap"), 1);
        assert_eq!(p.count("bsofi"), 0);
        assert!(p.seconds("cls") >= 0.010);
        assert!(p.total_seconds() >= p.seconds("cls") + p.seconds("wrap"));
    }

    #[test]
    fn profile_merge_sums() {
        let mut a = Profile::new();
        a.add("x", Duration::from_millis(2));
        let mut b = Profile::new();
        b.add("x", Duration::from_millis(3));
        b.add("y", Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.count("x"), 2);
        assert!((a.seconds("x") - 0.005).abs() < 1e-9);
        assert_eq!(a.count("y"), 1);
    }

    #[test]
    fn profile_iter_is_deterministic() {
        let mut p = Profile::new();
        p.add("wrap", Duration::from_millis(1));
        p.add("bsofi", Duration::from_millis(1));
        p.add("cls", Duration::from_millis(1));
        let names: Vec<_> = p.iter().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["bsofi", "cls", "wrap"]);
    }
}
