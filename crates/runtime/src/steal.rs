//! Work-stealing task queues for the multi-matrix drivers.
//!
//! The paper's Alg. 3 scatters matrices over ranks *statically* (a block
//! distribution fixed at submit time). That is the right shape when every
//! matrix costs the same, but a service mixing tenants with different
//! `(N, L, c)` shapes — or jobs that degrade mid-flight and redo work —
//! leaves ranks idle under a static scatter. [`StealQueues`] provides the
//! classic alternative: one deque per worker, owners pop oldest-first
//! from the front, and an idle worker *steals half* of the most-loaded
//! victim's deque from the back. Stealing half (rather than one task)
//! amortizes the synchronization cost over the haul, which is the
//! standard Cilk-style argument.
//!
//! The implementation favors simplicity over lock-freedom: each deque is
//! a `Mutex<VecDeque<T>>` and blocking acquisition uses one `Condvar`.
//! The tasks scheduled here are whole selected inversions (milliseconds
//! to seconds each), so queue overhead is noise; a Chase–Lev deque would
//! buy nothing measurable.
//!
//! Three always-on counters feed the metrics registry:
//! `runtime.steal.attempts` (calls that looked for a victim),
//! `runtime.steal.hits` (attempts that found work), and
//! `runtime.steal.tasks_moved` (total tasks migrated between deques).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::metrics::LazyCounter;

static STEAL_ATTEMPTS: LazyCounter = LazyCounter::new("runtime.steal.attempts");
static STEAL_HITS: LazyCounter = LazyCounter::new("runtime.steal.hits");
static STEAL_MOVED: LazyCounter = LazyCounter::new("runtime.steal.tasks_moved");

/// Per-worker task deques with steal-half load balancing.
///
/// `W` workers each own one deque. Producers push to any worker's deque
/// ([`StealQueues::push`]); worker `w` drains its own deque FIFO via
/// [`StealQueues::pop`] and falls back to stealing half of the fullest
/// other deque ([`StealQueues::steal_into`]). [`StealQueues::acquire`]
/// bundles both with blocking: it parks the worker until a task arrives
/// anywhere or the queues are [closed](StealQueues::close).
pub struct StealQueues<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    /// Tasks currently resident in any deque.
    pending: AtomicUsize,
    closed: AtomicBool,
    gate: Mutex<()>,
    cv: Condvar,
}

impl<T> StealQueues<T> {
    /// Creates one empty deque per worker. `workers` must be positive.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "StealQueues needs at least one worker");
        StealQueues {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Tasks currently queued across all deques (racy snapshot).
    pub fn len(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Whether every deque is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes `task` onto the back of `worker`'s deque and wakes one
    /// parked worker.
    pub fn push(&self, worker: usize, task: T) {
        self.deques[worker].lock().unwrap().push_back(task);
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.cv.notify_one();
    }

    /// Pushes a batch onto the back of `worker`'s deque under one lock
    /// acquisition and wakes all parked workers.
    pub fn push_batch(&self, worker: usize, tasks: impl IntoIterator<Item = T>) {
        let mut dq = self.deques[worker].lock().unwrap();
        let before = dq.len();
        dq.extend(tasks);
        let added = dq.len() - before;
        drop(dq);
        if added > 0 {
            self.pending.fetch_add(added, Ordering::AcqRel);
            self.cv.notify_all();
        }
    }

    /// Pops the oldest task from `worker`'s own deque (FIFO), if any.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let task = self.deques[worker].lock().unwrap().pop_front();
        if task.is_some() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
        }
        task
    }

    /// Steals roughly half of the fullest other deque into `thief`'s
    /// deque and returns one of the stolen tasks.
    ///
    /// Tasks are taken from the *back* of the victim (the youngest work,
    /// least likely to be cache-warm for the owner). Returns `None` when
    /// no victim has work.
    pub fn steal_into(&self, thief: usize) -> Option<T> {
        STEAL_ATTEMPTS.inc();
        // Pick the fullest victim by a racy scan; contention re-checks
        // under the victim's lock below.
        let victim = self
            .deques
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != thief)
            .max_by_key(|(_, dq)| dq.lock().unwrap().len())
            .map(|(i, _)| i)?;
        let mut haul: VecDeque<T> = {
            let mut dq = self.deques[victim].lock().unwrap();
            let take = dq.len().div_ceil(2);
            if take == 0 {
                return None;
            }
            let keep = dq.len() - take;
            dq.split_off(keep)
        };
        STEAL_HITS.inc();
        STEAL_MOVED.add(haul.len() as u64);
        // Hand one task straight to the thief; park the rest (in their
        // original order) on the thief's deque. `pending` is unchanged
        // for parked tasks and decremented for the returned one.
        let first = haul.pop_front().expect("haul is non-empty");
        self.pending.fetch_sub(1, Ordering::AcqRel);
        if !haul.is_empty() {
            let mut dq = self.deques[thief].lock().unwrap();
            dq.extend(haul);
            drop(dq);
            self.cv.notify_all();
        }
        Some(first)
    }

    /// Blocks until a task is available for `worker` (own deque first,
    /// then stealing) or the queues are closed and drained.
    ///
    /// Returns `None` only after [`StealQueues::close`] once every deque
    /// is empty — the worker-loop termination signal.
    pub fn acquire(&self, worker: usize) -> Option<T> {
        loop {
            if let Some(t) = self.pop(worker) {
                return Some(t);
            }
            if let Some(t) = self.steal_into(worker) {
                return Some(t);
            }
            let guard = self.gate.lock().unwrap();
            // Re-check with the gate held: a push between our scan and
            // the lock would otherwise be missed until the next notify.
            if !self.is_empty() {
                continue;
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            let _guard = self.cv.wait(guard).unwrap();
        }
    }

    /// Marks the queues closed and wakes every parked worker. Already
    /// queued tasks are still drained; [`StealQueues::acquire`] returns
    /// `None` only once the deques are empty.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let _gate = self.gate.lock().unwrap();
        self.cv.notify_all();
    }

    /// Whether [`StealQueues::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn local_pop_is_fifo() {
        let q = StealQueues::new(2);
        q.push(0, 1);
        q.push(0, 2);
        q.push(0, 3);
        assert_eq!(q.pop(0), Some(1));
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(0), Some(3));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn steal_takes_half_from_fullest_victim() {
        let q = StealQueues::new(3);
        q.push_batch(0, 0..8);
        q.push(1, 100);
        // Worker 2 steals: victim must be 0 (8 tasks), haul = 4.
        let got = q.steal_into(2).expect("victim has work");
        assert!((0..8).contains(&got));
        // Victim keeps the front half.
        assert_eq!(q.pop(0), Some(0));
        // The rest of the haul is on the thief's deque.
        let mut thief_tasks = Vec::new();
        while let Some(t) = q.pop(2) {
            thief_tasks.push(t);
        }
        assert_eq!(thief_tasks.len(), 3);
        assert_eq!(q.len(), 3 + 1); // [1,2,3] left on 0, [100] on 1
    }

    #[test]
    fn steal_returns_none_when_only_thief_has_work() {
        let q = StealQueues::new(2);
        q.push(0, 7u32);
        assert_eq!(q.steal_into(0), None);
        assert_eq!(q.pop(0), Some(7));
    }

    #[test]
    fn acquire_blocks_until_pushed_and_drains_after_close() {
        let q = Arc::new(StealQueues::new(2));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(t) = q2.acquire(1) {
                got.push(t);
            }
            got
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(0, 11u32); // consumer must steal it from worker 0
        q.push(1, 22);
        q.close();
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![11, 22]);
    }

    #[test]
    fn close_wakes_all_idle_workers() {
        let q = Arc::new(StealQueues::<u32>::new(4));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.acquire(w))
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn every_task_is_consumed_exactly_once_under_contention() {
        let workers = 4;
        let total = 2000u32;
        let q = Arc::new(StealQueues::new(workers));
        // Deliberately imbalanced: everything lands on worker 0.
        q.push_batch(0, 0..total);
        q.close();
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(t) = q.acquire(w) {
                        got.push(t);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..total).collect::<Vec<_>>());
        assert_eq!(q.len(), 0);
    }
}
