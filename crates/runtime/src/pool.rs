//! Persistent thread pool with scoped execution — the OpenMP analog.
//!
//! The pool owns `size - 1` background workers plus the calling thread,
//! mirroring OpenMP's fork/join model where the master thread participates in
//! the parallel region. Work is submitted through [`ThreadPool::scope`]:
//! jobs spawned inside a scope may borrow from the enclosing stack frame, and
//! the scope does not return until every job has finished (a completion latch
//! guarantees this, which is what makes the lifetime erasure inside sound).
//!
//! While a scope waits for its jobs it *helps*: it pops pending jobs off the
//! shared queue and runs them. This makes nested scopes (a parallel loop
//! whose body calls a parallel dense kernel) deadlock-free, at the cost of a
//! busy-ish wait bounded by job granularity. FSI jobs are O(N³) block
//! operations, so the helping loop overhead is negligible.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, Sender};

type Job = Box<dyn FnOnce() + Send>;

/// Parallelism selector threaded through the dense kernels.
///
/// The paper evaluates two execution styles on a single socket:
/// "FSI + OpenMP" (coarse loops parallel, dense kernels sequential) and
/// "pure MKL" (coarse loops sequential, dense kernels multi-threaded).
/// `Par` lets callers pick per call site which style a kernel runs under.
#[derive(Clone, Copy)]
pub enum Par<'p> {
    /// Run sequentially on the calling thread.
    Seq,
    /// Run on the given pool (the calling thread participates).
    Pool(&'p ThreadPool),
}

impl<'p> Par<'p> {
    /// Number of threads this selector will use (1 for [`Par::Seq`]).
    pub fn threads(&self) -> usize {
        match self {
            Par::Seq => 1,
            Par::Pool(p) => p.size(),
        }
    }

    /// Returns the pool if parallel.
    pub fn pool(&self) -> Option<&'p ThreadPool> {
        match self {
            Par::Seq => None,
            Par::Pool(p) => Some(p),
        }
    }
}

/// Live utilization counters for one background worker.
struct WorkerStat {
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    jobs: AtomicU64,
}

/// Snapshot of one background worker's utilization (see
/// [`ThreadPool::stats`]).
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// Time spent executing jobs.
    pub busy: Duration,
    /// Time spent waiting for jobs.
    pub idle: Duration,
    /// Jobs executed.
    pub jobs: u64,
}

impl WorkerStats {
    /// Fraction of tracked time this worker spent busy (0 if it has not
    /// been observed yet).
    pub fn utilization(&self) -> f64 {
        let total = (self.busy + self.idle).as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.busy.as_secs_f64() / total
        }
    }
}

/// Utilization snapshot of a whole pool (see [`ThreadPool::stats`]).
///
/// Covers the `size - 1` background workers; the scope-calling thread's
/// time shows up in trace spans instead. `queue_depth` is the number of
/// jobs queued but not yet picked up at snapshot time.
#[derive(Clone, Debug)]
pub struct PoolStats {
    /// One entry per background worker, in spawn order.
    pub workers: Vec<WorkerStats>,
    /// Jobs waiting in the shared queue right now.
    pub queue_depth: usize,
    /// Total pool size including the scope-calling thread.
    pub threads: usize,
}

struct PoolShared {
    tx: Sender<Job>,
    rx: Receiver<Job>,
    /// Set when the pool is dropped so workers exit.
    shutdown: AtomicBool,
    /// Utilization counters, one per background worker.
    stats: Vec<WorkerStat>,
}

/// A fixed-size persistent worker pool.
///
/// ```
/// use fsi_runtime::ThreadPool;
/// let pool = ThreadPool::new(4);
/// let mut out = vec![0usize; 16];
/// pool.scope(|s| {
///     for (i, slot) in out.iter_mut().enumerate() {
///         s.spawn(move || *slot = i * i);
///     }
/// });
/// assert_eq!(out[5], 25);
/// ```
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Creates a pool that runs jobs on `size` threads total: `size - 1`
    /// background workers plus the thread that calls [`ThreadPool::scope`].
    ///
    /// `size == 1` yields a pool with no background workers; scopes then
    /// execute every job inline, which makes single-thread baselines exact.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "thread pool must have at least one thread");
        let (tx, rx) = unbounded::<Job>();
        let shared = Arc::new(PoolShared {
            tx,
            rx,
            shutdown: AtomicBool::new(false),
            stats: (1..size)
                .map(|_| WorkerStat {
                    busy_ns: AtomicU64::new(0),
                    idle_ns: AtomicU64::new(0),
                    jobs: AtomicU64::new(0),
                })
                .collect(),
        });
        let workers = (1..size)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fsi-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w - 1))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            size,
        }
    }

    /// Creates a pool sized by `FSI_NUM_THREADS` or the hardware thread
    /// count.
    pub fn with_default_size() -> Self {
        Self::new(crate::default_threads())
    }

    /// Total thread count including the scope-calling thread.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshots worker utilization (busy vs. idle time, jobs executed)
    /// and the current queue depth. Counters accumulate over the pool's
    /// lifetime; diff two snapshots to measure a region.
    pub fn stats(&self) -> PoolStats {
        let stats = PoolStats {
            workers: self
                .shared
                .stats
                .iter()
                .map(|s| WorkerStats {
                    busy: Duration::from_nanos(s.busy_ns.load(Ordering::Relaxed)),
                    idle: Duration::from_nanos(s.idle_ns.load(Ordering::Relaxed)),
                    jobs: s.jobs.load(Ordering::Relaxed),
                })
                .collect(),
            queue_depth: self.shared.rx.len(),
            threads: self.size,
        };
        // Publish the aggregate view to the always-on metrics registry so
        // a service snapshot sees pool health without holding a pool ref.
        let (busy, idle) = stats.workers.iter().fold((0.0f64, 0.0f64), |(b, i), w| {
            (b + w.busy.as_secs_f64(), i + w.idle.as_secs_f64())
        });
        static UTILIZATION: crate::metrics::LazyGauge =
            crate::metrics::LazyGauge::new("runtime.pool.utilization");
        static QUEUE_DEPTH: crate::metrics::LazyGauge =
            crate::metrics::LazyGauge::new("runtime.pool.queue_depth");
        if busy + idle > 0.0 {
            UTILIZATION.set(busy / (busy + idle));
        }
        QUEUE_DEPTH.set(stats.queue_depth as f64);
        stats
    }

    /// Runs `f` with a [`ScopeHandle`] on which jobs borrowing from the
    /// current stack frame may be spawned; returns only after all spawned
    /// jobs have completed.
    ///
    /// If any job panics, the panic is re-raised on the calling thread after
    /// all other jobs have drained (so borrowed data is never accessed after
    /// the scope unwinds).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&ScopeHandle<'_, 'env>) -> R,
    {
        let latch = Arc::new(ScopeLatch {
            pending: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        let handle = ScopeHandle {
            pool: self,
            latch: Arc::clone(&latch),
            _env: std::marker::PhantomData,
        };
        let result = f(&handle);
        // Help-while-waiting: execute queued jobs (possibly from unrelated
        // scopes — jobs are self-contained, so this is safe) until our latch
        // clears.
        while latch.pending.load(Ordering::Acquire) != 0 {
            match self.shared.rx.try_recv() {
                Ok(job) => job(),
                Err(_) => std::thread::yield_now(),
            }
        }
        if latch.panicked.load(Ordering::Acquire) {
            panic!("a job spawned in a ThreadPool scope panicked");
        }
        result
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the workers with no-op jobs so they observe the flag.
        for _ in 0..self.workers.len() {
            let _ = self.shared.tx.send(Box::new(|| {}));
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, index: usize) {
    let stat = &shared.stats[index];
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let wait = Instant::now();
        let received = shared.rx.recv_timeout(Duration::from_millis(50));
        stat.idle_ns
            .fetch_add(wait.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match received {
            Ok(job) => {
                let run = Instant::now();
                job();
                stat.busy_ns
                    .fetch_add(run.elapsed().as_nanos() as u64, Ordering::Relaxed);
                stat.jobs.fetch_add(1, Ordering::Relaxed);
                static POOL_JOBS: crate::metrics::LazyCounter =
                    crate::metrics::LazyCounter::new("runtime.pool.jobs");
                POOL_JOBS.inc();
            }
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

struct ScopeLatch {
    pending: AtomicUsize,
    panicked: AtomicBool,
}

/// Handle for spawning borrowed jobs inside a [`ThreadPool::scope`].
///
/// `'scope` is the lifetime of the scope body; `'env` is the enclosing
/// environment jobs are allowed to borrow from.
pub struct ScopeHandle<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    latch: Arc<ScopeLatch>,
    _env: std::marker::PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> ScopeHandle<'scope, 'env> {
    /// Spawns `f` on the pool. `f` may borrow from the environment of the
    /// enclosing [`ThreadPool::scope`] call.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.latch.pending.fetch_add(1, Ordering::AcqRel);
        let latch = Arc::clone(&self.latch);
        // Capture the spawning thread's span context so flops the job
        // charges are attributed to the stage that launched it (None when
        // tracing is off — then with_context is a plain call).
        let ctx = crate::trace::current_context();
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let body = || crate::trace::with_context(ctx, f);
            if catch_unwind(AssertUnwindSafe(body)).is_err() {
                latch.panicked.store(true, Ordering::Release);
            }
            latch.pending.fetch_sub(1, Ordering::AcqRel);
        });
        // SAFETY (lifetime erasure): the job may borrow data with lifetime
        // 'env. `ThreadPool::scope` does not return until `latch.pending`
        // drops to zero, i.e. until this job has fully executed, so the
        // borrow cannot outlive the data. Panics are captured and re-raised
        // by the scope, preserving the same guarantee on unwind.
        let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
        if self.pool.size == 1 {
            // No background workers: run inline to avoid queue round-trips.
            job();
        } else {
            self.pool
                .shared
                .tx
                .send(job)
                .expect("thread pool queue closed");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..1000 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn scope_allows_disjoint_mutable_borrows() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0u64; 64];
        pool.scope(|s| {
            for (i, chunk) in data.chunks_mut(8).enumerate() {
                s.spawn(move || {
                    for x in chunk.iter_mut() {
                        *x = i as u64;
                    }
                });
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[63], 7);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let mut hit = false;
        pool.scope(|s| {
            s.spawn(|| hit = true);
        });
        assert!(hit);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                let total = &total;
                let pool_ref = &pool;
                s.spawn(move || {
                    pool_ref.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    #[should_panic(expected = "a job spawned in a ThreadPool scope panicked")]
    fn job_panic_propagates() {
        let pool = ThreadPool::new(2);
        pool.scope(|s| {
            s.spawn(|| panic!("boom"));
        });
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::new(2);
        let v = pool.scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn par_threads_reports_size() {
        let pool = ThreadPool::new(5);
        assert_eq!(Par::Pool(&pool).threads(), 5);
        assert_eq!(Par::Seq.threads(), 1);
        assert!(Par::Seq.pool().is_none());
        assert!(Par::Pool(&pool).pool().is_some());
    }

    #[test]
    fn sequential_scopes_reuse_workers() {
        let pool = ThreadPool::new(4);
        for round in 0..10 {
            let counter = AtomicU64::new(0);
            pool.scope(|s| {
                for _ in 0..32 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 32, "round {round}");
        }
    }
}
