//! Analytic floating-point-operation accounting.
//!
//! The paper reports performance in Gflop/s per FSI stage (Fig. 8) and
//! aggregate Tflop/s for the hybrid runs (Fig. 9). Rather than hardware
//! counters, we use the same convention the dense-linear-algebra community
//! uses: every kernel adds its *textbook* flop count to a counter
//! (`2mnk` for GEMM, `2/3 n³` for LU, `2n³ - 2/3 n³` extra for inversion,
//! `2n²(m - n/3)` for QR of an m×n panel, …). Dividing by wall time yields
//! the same "useful flops per second" metric the paper plots.
//!
//! Flops are attributed to the innermost open [`crate::trace`] span of the
//! charging thread (worker threads inherit the spawning span through the
//! pool), so concurrent regions measure independently. Harnesses bracket a
//! region with `trace::span(..)` and read flops from
//! [`crate::trace::SpanGuard::finish`] or the run report.
//!
//! The process-global counter behind [`flop_count`] / [`reset_flops`] /
//! [`FlopCounter`] still accumulates for backward compatibility, but those
//! entry points are deprecated: the global is shared by all threads, so
//! two concurrently measured regions each observe the other's kernels
//! (and `reset_flops` clobbers every enclosing measurement). Span-scoped
//! counters have neither race.

use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_FLOPS: AtomicU64 = AtomicU64::new(0);

/// Adds `n` flops to the current trace span (and to the deprecated global
/// counter, so existing [`FlopCounter`] callers keep working).
#[inline]
pub fn add_flops(n: u64) {
    GLOBAL_FLOPS.fetch_add(n, Ordering::Relaxed);
    crate::trace::charge_flops(n);
}

/// Current value of the global flop counter.
#[deprecated(
    since = "0.1.0",
    note = "process-global counter races between concurrently measured \
            regions; bracket the region with `trace::span` and read \
            `SpanStats::flops` instead"
)]
pub fn flop_count() -> u64 {
    GLOBAL_FLOPS.load(Ordering::Relaxed)
}

/// Resets the global flop counter to zero.
#[deprecated(
    since = "0.1.0",
    note = "resetting the process-global counter clobbers every other \
            in-flight measurement; use `trace::span` regions instead"
)]
pub fn reset_flops() {
    GLOBAL_FLOPS.store(0, Ordering::Relaxed);
}

/// Snapshot-based region counter on the process-global count.
#[deprecated(
    since = "0.1.0",
    note = "global snapshots include flops from unrelated threads; bracket \
            the region with `trace::span` and use `SpanStats` instead"
)]
pub struct FlopCounter {
    start: u64,
}

#[allow(deprecated)]
impl FlopCounter {
    /// Starts counting from the current global value.
    pub fn start() -> Self {
        FlopCounter {
            start: GLOBAL_FLOPS.load(Ordering::Relaxed),
        }
    }

    /// Flops accumulated since [`FlopCounter::start`].
    pub fn elapsed(&self) -> u64 {
        GLOBAL_FLOPS
            .load(Ordering::Relaxed)
            .wrapping_sub(self.start)
    }

    /// Convenience: elapsed flops divided by `seconds`, in Gflop/s.
    pub fn gflops(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        self.elapsed() as f64 / seconds / 1e9
    }
}

/// Textbook flop counts for the dense kernels, kept in one place so kernels
/// and complexity tables agree by construction.
pub mod counts {
    /// General matrix multiply `C += A·B`, A m×k, B k×n: `2mnk`.
    pub fn gemm(m: usize, n: usize, k: usize) -> u64 {
        2 * m as u64 * n as u64 * k as u64
    }

    /// LU factorization with partial pivoting of an m×n matrix (m ≥ n):
    /// `mn² − n³/3` flops (LAPACK working-note convention); for square n×n
    /// this is the familiar `2n³/3`.
    pub fn getrf(m: usize, n: usize) -> u64 {
        let (m, n) = (m as u64, n as u64);
        m * n * n - n * n * n / 3
    }

    /// Triangular solve with `nrhs` right-hand sides against an n×n factor:
    /// `n²·nrhs` multiply-adds = `2n²·nrhs` flops for one triangle; a full
    /// `getrs` (L then U) costs twice this.
    pub fn trsm(n: usize, nrhs: usize) -> u64 {
        (n as u64) * (n as u64) * (nrhs as u64)
    }

    /// Full inversion from an LU factorization (LAPACK GETRI): `4n³/3`
    /// beyond the factorization, totalling `2n³` with it.
    pub fn getri(n: usize) -> u64 {
        4 * (n as u64).pow(3) / 3
    }

    /// Householder QR of an m×n panel (m ≥ n): `2n²(m − n/3)` flops.
    pub fn geqrf(m: usize, n: usize) -> u64 {
        let (m, n) = (m as u64, n as u64);
        2 * n * n * m - 2 * n * n * n / 3
    }

    /// Applying Qᵀ (from an m×n panel factorization) to an m×k matrix:
    /// `4mnk − 2n²k` flops (ORMQR).
    pub fn ormqr(m: usize, n: usize, k: usize) -> u64 {
        let (m, n, k) = (m as u64, n as u64, k as u64);
        4 * m * n * k - 2 * n * n * k
    }

    /// Triangular inversion of an n×n triangle (TRTRI): `n³/3`.
    pub fn trtri(n: usize) -> u64 {
        (n as u64).pow(3) / 3
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn deprecated_global_shims_still_accumulate() {
        // The shims stay functional for external callers; span scoping is
        // exercised in trace::span tests. (Other tests in this binary may
        // add flops concurrently, so only deltas are asserted.)
        let before = flop_count();
        add_flops(10);
        add_flops(32);
        assert!(flop_count() >= before + 42);
    }

    #[test]
    fn region_counter_measures_delta() {
        let region = FlopCounter::start();
        add_flops(250);
        assert!(region.elapsed() >= 250);
        assert!(region.gflops(1.0) > 0.0);
        assert_eq!(region.gflops(0.0), 0.0);
    }

    #[test]
    fn counting_is_thread_safe() {
        let region = FlopCounter::start();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        add_flops(1);
                    }
                });
            }
        });
        assert!(region.elapsed() >= 8000);
    }

    #[test]
    fn textbook_counts_match_known_values() {
        // 2mnk for gemm.
        assert_eq!(counts::gemm(10, 20, 30), 12_000);
        // Square LU ≈ 2n³/3.
        let n = 30u64;
        assert_eq!(counts::getrf(30, 30), n * n * n - n * n * n / 3);
        // QR of square panel: 2n³ − 2n³/3 = (4/3)n³.
        assert_eq!(counts::geqrf(30, 30), 2 * n * n * n - 2 * n * n * n / 3);
        assert_eq!(counts::getri(10), 4 * 1000 / 3);
        assert_eq!(counts::trtri(9), 729 / 3);
        assert_eq!(counts::trsm(10, 5), 500);
        assert_eq!(counts::ormqr(20, 10, 5), 4 * 20 * 10 * 5 - 2 * 100 * 5);
    }
}
