//! The health flight recorder: a fixed-size ring of recent span
//! closures, health events, and recovery rungs, dumped when something
//! goes wrong.
//!
//! The PR-5 guardrails tell a driver *that* a stage tripped; they carry
//! no context about what the process was doing in the seconds before.
//! The recorder keeps the last [`CAPACITY`] events (each a few words) in
//! a mutex-guarded ring, and renders them to an NDJSON *incident dump*
//! whenever a [`crate::HealthEvent`] fires or the sweep driver's
//! recovery ladder runs a rung — so every incident ships its own
//! post-mortem without anyone having had tracing pre-armed.
//!
//! Dumps always land in an in-memory slot readable via [`last_dump`]
//! (harnesses and tests assert on it); when a dump directory is set —
//! [`set_dump_dir`] or the `FSI_FLIGHT_DIR` environment variable — each
//! incident is also written to `flight-<seq>-<reason>.ndjson` there, up
//! to [`MAX_DUMP_FILES`] files per process so a pathological event storm
//! cannot fill a disk.
//!
//! Span closures are recorded only while tracing is on (spans are no-ops
//! otherwise); health and recovery events are recorded whenever metrics
//! are enabled. Ring pushes take an uncontended mutex — fine at stage
//! granularity, and `FSI_TRACE=2` kernel storms degrade to contention,
//! not data loss.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use super::registry::{enabled, LazyCounter};

/// Events retained in the ring. Must comfortably exceed the 32 recent
/// spans an incident dump is required to carry.
pub const CAPACITY: usize = 256;

/// File-dump cap per process (the in-memory [`last_dump`] slot is
/// always refreshed regardless).
pub const MAX_DUMP_FILES: u64 = 64;

/// What kind of moment a [`FlightEvent`] captures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// A trace span closed (name + duration + flops).
    Span,
    /// A health probe raised a [`crate::HealthEvent`].
    Health,
    /// The recovery ladder executed a rung.
    Recovery,
    /// A free-form marker from a harness or driver.
    Note,
}

impl FlightKind {
    fn label(&self) -> &'static str {
        match self {
            FlightKind::Span => "span",
            FlightKind::Health => "health",
            FlightKind::Recovery => "recovery",
            FlightKind::Note => "note",
        }
    }
}

/// One recorded moment.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Global sequence number (gap-free across the whole process; the
    /// ring drops from the front, so `seq` exposes how much history was
    /// lost).
    pub seq: u64,
    /// Nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Small index of the recording thread (same numbering as trace
    /// spans).
    pub thread: u64,
    /// Event kind.
    pub kind: FlightKind,
    /// Span/event/rung name.
    pub name: &'static str,
    /// Stage label for health/recovery events (`""` otherwise).
    pub stage: &'static str,
    /// Span duration in ns (0 for non-span events).
    pub dur_ns: u64,
    /// Flops charged to the span (0 for non-span events).
    pub flops: u64,
}

struct Ring {
    events: VecDeque<FlightEvent>,
    next_seq: u64,
}

static RING: Mutex<Option<Ring>> = Mutex::new(None);
static LAST_DUMP: Mutex<Option<String>> = Mutex::new(None);
/// `None` until resolved: dump dir from `set_dump_dir` or
/// `FSI_FLIGHT_DIR` (empty string disables file dumps).
static DUMP_DIR: Mutex<Option<Option<PathBuf>>> = Mutex::new(None);
static DUMP_FILES_WRITTEN: AtomicU64 = AtomicU64::new(0);

static DUMPS: LazyCounter = LazyCounter::new("runtime.flight.dumps");

fn ring() -> MutexGuard<'static, Option<Ring>> {
    RING.lock().unwrap_or_else(|e| e.into_inner())
}

fn push(event_of: impl FnOnce(u64) -> FlightEvent) {
    let mut guard = ring();
    let r = guard.get_or_insert_with(|| Ring {
        events: VecDeque::with_capacity(CAPACITY),
        next_seq: 0,
    });
    let seq = r.next_seq;
    r.next_seq += 1;
    if r.events.len() == CAPACITY {
        r.events.pop_front();
    }
    r.events.push_back(event_of(seq));
}

/// Records a closed span. Called from the trace layer on every span
/// closure; cost is one short mutex push.
pub(crate) fn record_span(name: &'static str, t_ns: u64, thread: u64, dur_ns: u64, flops: u64) {
    if !enabled() {
        return;
    }
    push(|seq| FlightEvent {
        seq,
        t_ns,
        thread,
        kind: FlightKind::Span,
        name,
        stage: "",
        dur_ns,
        flops,
    });
}

fn record_mark(kind: FlightKind, name: &'static str, stage: &'static str) {
    if !enabled() {
        return;
    }
    let t_ns = crate::trace::now_ns();
    let thread = crate::trace::thread_index();
    push(|seq| FlightEvent {
        seq,
        t_ns,
        thread,
        kind,
        name,
        stage,
        dur_ns: 0,
        flops: 0,
    });
}

/// Records a health event and dumps the ring (the incident trigger).
pub fn note_health(name: &'static str, stage: &'static str) {
    record_mark(FlightKind::Health, name, stage);
    incident(name);
}

/// Records a recovery-ladder rung and dumps the ring.
pub fn note_recovery(rung: &'static str, stage: &'static str) {
    record_mark(FlightKind::Recovery, rung, stage);
    incident(rung);
}

/// Records a free-form marker (no dump).
pub fn note(name: &'static str) {
    record_mark(FlightKind::Note, name, "");
}

/// A copy of the ring's current contents, oldest first.
pub fn events() -> Vec<FlightEvent> {
    ring()
        .as_ref()
        .map(|r| r.events.iter().cloned().collect())
        .unwrap_or_default()
}

/// Empties the ring (tests and multi-phase harnesses).
pub fn clear() {
    if let Some(r) = ring().as_mut() {
        r.events.clear();
    }
    *LAST_DUMP.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Overrides the incident-dump directory (`None` disables file dumps).
/// When never called, the `FSI_FLIGHT_DIR` environment variable is
/// consulted on the first incident.
pub fn set_dump_dir(dir: Option<PathBuf>) {
    *DUMP_DIR.lock().unwrap_or_else(|e| e.into_inner()) = Some(dir);
}

fn dump_dir() -> Option<PathBuf> {
    let mut guard = DUMP_DIR.lock().unwrap_or_else(|e| e.into_inner());
    guard
        .get_or_insert_with(|| {
            std::env::var_os("FSI_FLIGHT_DIR")
                .filter(|v| !v.is_empty())
                .map(PathBuf::from)
        })
        .clone()
}

/// The NDJSON text of the most recent incident dump, if any.
pub fn last_dump() -> Option<String> {
    LAST_DUMP.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Renders the current ring to incident-dump NDJSON: a `flight_meta`
/// line followed by one `flight` line per event, oldest first (see
/// `results/schema.md`).
pub fn render(reason: &str) -> String {
    let events = events();
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let first_seq = events.first().map(|e| e.seq).unwrap_or(0);
    let mut out = String::with_capacity(64 * (events.len() + 1));
    out.push_str(&format!(
        "{{\"kind\":\"flight_meta\",\"schema\":1,\"reason\":\"{}\",\"unix_ms\":{},\"events\":{},\"first_seq\":{}}}\n",
        escape(reason),
        unix_ms,
        events.len(),
        first_seq,
    ));
    for e in &events {
        out.push_str(&format!(
            "{{\"kind\":\"flight\",\"seq\":{},\"t_ns\":{},\"thread\":{},\"type\":\"{}\",\"name\":\"{}\"",
            e.seq,
            e.t_ns,
            e.thread,
            e.kind.label(),
            escape(e.name),
        ));
        if !e.stage.is_empty() {
            out.push_str(&format!(",\"stage\":\"{}\"", escape(e.stage)));
        }
        if e.kind == FlightKind::Span {
            out.push_str(&format!(",\"dur_ns\":{},\"flops\":{}", e.dur_ns, e.flops));
        }
        out.push_str("}\n");
    }
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Installs a process-wide panic hook that dumps the flight ring (an
/// [`incident`] with reason `"panic"`) before delegating to the previous
/// hook, so post-mortem forensics exist even for crashes the health
/// layer never classified. Idempotent: only the first call installs;
/// later calls (other service starts, other harness mains in the same
/// process) are no-ops. Expected panics — `#[should_panic]` tests,
/// probes that intentionally unwind — still dump, which is harmless: the
/// file cap and the in-memory slot absorb them.
pub fn install_panic_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            incident("panic");
            previous(info);
        }));
    });
}

/// Dumps the ring now: refreshes [`last_dump`], bumps the
/// `runtime.flight.dumps` counter, and (dir configured, file cap not
/// yet hit) writes `flight-<n>-<reason>.ndjson`. Write errors are
/// swallowed — the recorder must never turn an incident into a panic.
pub fn incident(reason: &str) {
    if !enabled() {
        return;
    }
    let text = render(reason);
    *LAST_DUMP.lock().unwrap_or_else(|e| e.into_inner()) = Some(text.clone());
    DUMPS.inc();
    if let Some(dir) = dump_dir() {
        let n = DUMP_FILES_WRITTEN.fetch_add(1, Ordering::Relaxed);
        if n < MAX_DUMP_FILES {
            let slug: String = reason
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            let path = dir.join(format!("flight-{n:04}-{slug}.ndjson"));
            let _ = std::fs::create_dir_all(&dir);
            let _ = std::fs::write(path, text);
        }
    }
}
