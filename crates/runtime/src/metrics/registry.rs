//! Metric primitives (sharded counters, gauges, histograms) and the
//! process-wide registry that names them.
//!
//! Everything here is built for an *always-on* hot path: an increment is
//! one relaxed `fetch_add` on a cache-line-padded shard picked by a
//! thread-local index, so concurrent writers on different cores do not
//! bounce a line between them. Reads (snapshots) sum the shards; they are
//! rare and may run concurrently with writers — a snapshot is a moment's
//! view, never a torn count (each shard is read atomically, and counts
//! are only ever added, so a snapshot is a lower bound that some later
//! snapshot will include exactly).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::trace::Histogram;

/// Number of per-thread shards in a [`Counter`] / [`HistogramMetric`].
/// Threads hash onto shards by a process-assigned index, so up to
/// `SHARDS` concurrent writers proceed with zero line sharing.
pub const SHARDS: usize = 16;

/// One cache line per shard so neighboring shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Next metrics shard index handed to a new thread.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard slot, assigned round-robin at first use.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[inline]
fn shard_index() -> usize {
    SHARD.with(|&s| s)
}

/// Global metrics switch. On by default — the whole point of the registry
/// is to be cheap enough to leave on in release builds; the switch exists
/// so the paired-ratio overhead probe in `bench_sweep` can measure the
/// cost of flipping it.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// True when metric updates are being applied (the default).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables/disables metric updates. Handles stay valid either
/// way; disabled updates are dropped at the increment site.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A monotonically increasing event/quantity counter, sharded across
/// [`SHARDS`] cache lines.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Creates a detached counter (not in the registry); registry users
    /// go through [`counter`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter (relaxed; no-op while metrics are
    /// disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sums the shards: the counter's current value.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-value-wins `f64` gauge (stored as bits in one atomic).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a detached gauge holding `0.0`.
    pub fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the gauge (no-op while metrics are disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if !enabled() {
            return;
        }
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is greater than the current value
    /// (high-water mark semantics; NaN is ignored).
    pub fn set_max(&self, v: f64) {
        if !enabled() || v.is_nan() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Reads the gauge.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A shard of atomic histogram buckets (one cache-line-aligned block).
#[repr(align(64))]
struct HistShard {
    counts: [AtomicU64; crate::trace::BUCKETS],
    sum: AtomicU64,
}

impl Default for HistShard {
    fn default() -> Self {
        HistShard {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Histograms are bulkier than counters (65 words per shard), so they use
/// fewer shards; recording is still a pair of relaxed adds.
const HIST_SHARDS: usize = 4;

/// A lock-free latency/size histogram with the same 64 power-of-two
/// buckets as [`crate::trace::Histogram`]; shards merge into a plain
/// `Histogram` at snapshot time.
#[derive(Default)]
pub struct HistogramMetric {
    shards: [HistShard; HIST_SHARDS],
}

impl HistogramMetric {
    /// Creates a detached histogram metric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation (relaxed; no-op while metrics are
    /// disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        let shard = &self.shards[shard_index() % HIST_SHARDS];
        shard.counts[Histogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Merges the shards into an owned [`Histogram`] snapshot.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        let mut sum = 0u64;
        for shard in &self.shards {
            for (i, c) in shard.counts.iter().enumerate() {
                let c = c.load(Ordering::Relaxed);
                if c > 0 {
                    h.record_bucket(i, c);
                }
            }
            sum = sum.saturating_add(shard.sum.load(Ordering::Relaxed));
        }
        h.set_sum(sum);
        h
    }
}

/// A registered metric handle.
enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static HistogramMetric),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

static REGISTRY: OnceLock<Mutex<BTreeMap<String, Slot>>> = OnceLock::new();

fn registry() -> MutexGuard<'static, BTreeMap<String, Slot>> {
    REGISTRY
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Returns the registered counter named `name`, creating it on first use.
/// Handles are `&'static` (metrics live for the process) so hot sites
/// resolve the name once and increment forever after with no lock.
///
/// # Panics
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Slot::Counter(Box::leak(Box::new(Counter::new()))))
    {
        Slot::Counter(c) => c,
        other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
    }
}

/// Returns the registered gauge named `name`, creating it on first use.
///
/// # Panics
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Slot::Gauge(Box::leak(Box::new(Gauge::new()))))
    {
        Slot::Gauge(g) => g,
        other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
    }
}

/// Returns the registered histogram named `name`, creating it on first
/// use.
///
/// # Panics
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> &'static HistogramMetric {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Slot::Histogram(Box::leak(Box::new(HistogramMetric::new()))))
    {
        Slot::Histogram(h) => h,
        other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
    }
}

/// A counter handle resolvable in a `static`: the registry lookup runs
/// once on first use, increments after that are lock-free.
///
/// ```
/// use fsi_runtime::metrics::LazyCounter;
/// static CALLS: LazyCounter = LazyCounter::new("example.calls");
/// CALLS.inc();
/// ```
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// Declares a counter named `name` without touching the registry.
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying registered counter.
    #[inline]
    pub fn get(&self) -> &'static Counter {
        self.cell.get_or_init(|| counter(self.name))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.get().add(n);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.get().inc();
    }
}

/// A gauge handle resolvable in a `static` (see [`LazyCounter`]).
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    /// Declares a gauge named `name` without touching the registry.
    pub const fn new(name: &'static str) -> Self {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying registered gauge.
    #[inline]
    pub fn get(&self) -> &'static Gauge {
        self.cell.get_or_init(|| gauge(self.name))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.get().set(v);
    }

    /// High-water-mark update.
    pub fn set_max(&self, v: f64) {
        self.get().set_max(v);
    }
}

/// A histogram handle resolvable in a `static` (see [`LazyCounter`]).
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<&'static HistogramMetric>,
}

impl LazyHistogram {
    /// Declares a histogram named `name` without touching the registry.
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying registered histogram.
    #[inline]
    pub fn get(&self) -> &'static HistogramMetric {
        self.cell.get_or_init(|| histogram(self.name))
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.get().record(value);
    }
}

struct MeterInner {
    calls: &'static Counter,
    flops: &'static Counter,
    busy_ns: &'static Counter,
    gflops: &'static Gauge,
    latency: &'static HistogramMetric,
}

/// A bundled kernel/stage meter: `<name>.calls` and `<name>.flops`
/// counters for every observation, plus `<name>.busy_ns` /
/// `<name>.gflops` / a `<name>.ns` latency histogram for *timed*
/// observations ([`Meter::start`]).
///
/// The split exists because `Instant::now()` costs more than the kernels
/// it would meter at small sizes: hot callers count every invocation with
/// [`Meter::observe`] (two relaxed adds) and reserve the timed guard for
/// calls above a flop threshold of their choosing.
pub struct Meter {
    name: &'static str,
    cell: OnceLock<MeterInner>,
}

impl Meter {
    /// Declares a meter named `name` without touching the registry.
    pub const fn new(name: &'static str) -> Self {
        Meter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn inner(&self) -> &MeterInner {
        self.cell.get_or_init(|| MeterInner {
            calls: counter(&format!("{}.calls", self.name)),
            flops: counter(&format!("{}.flops", self.name)),
            busy_ns: counter(&format!("{}.busy_ns", self.name)),
            gflops: gauge(&format!("{}.gflops", self.name)),
            latency: histogram(&format!("{}.ns", self.name)),
        })
    }

    /// Counts one untimed observation of `flops` floating-point
    /// operations.
    #[inline]
    pub fn observe(&self, flops: u64) {
        if !enabled() {
            return;
        }
        let m = self.inner();
        m.calls.inc();
        m.flops.add(flops);
    }

    /// Opens a timed observation; the returned guard records duration,
    /// latency bucket, and attained Gflop/s when dropped. Returns an
    /// inert guard while metrics are disabled.
    #[inline]
    pub fn start(&self, flops: u64) -> MeterGuard<'_> {
        if !enabled() {
            return MeterGuard {
                meter: None,
                flops: 0,
                start: None,
            };
        }
        MeterGuard {
            meter: Some(self),
            flops,
            start: Some(Instant::now()),
        }
    }
}

/// RAII guard for a timed [`Meter`] observation.
pub struct MeterGuard<'m> {
    meter: Option<&'m Meter>,
    flops: u64,
    start: Option<Instant>,
}

impl Drop for MeterGuard<'_> {
    fn drop(&mut self) {
        let (Some(meter), Some(start)) = (self.meter, self.start) else {
            return;
        };
        let ns = start.elapsed().as_nanos() as u64;
        let m = meter.inner();
        m.calls.inc();
        m.flops.add(self.flops);
        m.busy_ns.add(ns);
        m.latency.record(ns);
        if ns > 0 && self.flops > 0 {
            m.gflops.set(self.flops as f64 / ns as f64);
        }
    }
}

/// One consistent view of every registered metric.
pub(super) struct RegistryView {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

/// Reads every registered metric under the registry lock (values are
/// each read atomically; see the module docs for the consistency model).
pub(super) fn read_all() -> RegistryView {
    let reg = registry();
    let mut view = RegistryView {
        counters: BTreeMap::new(),
        gauges: BTreeMap::new(),
        histograms: BTreeMap::new(),
    };
    for (name, slot) in reg.iter() {
        match slot {
            Slot::Counter(c) => {
                view.counters.insert(name.clone(), c.value());
            }
            Slot::Gauge(g) => {
                view.gauges.insert(name.clone(), g.get());
            }
            Slot::Histogram(h) => {
                view.histograms.insert(name.clone(), h.snapshot());
            }
        }
    }
    view
}
