//! Always-on process metrics: a named registry of lock-free counters,
//! gauges, and log-bucket histograms, plus the health flight recorder.
//!
//! The trace layer ([`crate::trace`]) answers "where did *this run's*
//! time and flops go" — opt-in, post-hoc, file-oriented. This module is
//! the complementary *service* view the ROADMAP's
//! Green's-function-as-a-service tier needs: cheap enough to leave on in
//! release builds (a counter increment is one relaxed `fetch_add` on a
//! thread-sharded cache line), queryable at any moment via
//! [`snapshot`], and exportable to both Prometheus text exposition
//! ([`MetricsSnapshot::to_prometheus`]) and the workspace's JSON schema
//! ([`MetricsSnapshot::to_json`], `results/schema.md`).
//!
//! ## Naming
//!
//! Metric names are dotted paths, `<crate>.<subsystem>.<what>`:
//! `dense.gemm.flops`, `selinv.cluster_cache.hits`,
//! `dqmc.recovery.invalidate_caches`, `runtime.pool.utilization`. The
//! Prometheus exporter maps dots to underscores and prefixes `fsi_`.
//!
//! ## Snapshot / delta
//!
//! [`snapshot`] reads every registered metric into a
//! [`MetricsSnapshot`]; [`MetricsSnapshot::delta_since`] subtracts an
//! earlier snapshot so a driver can attribute counts to one sweep, one
//! job, or one tenant without resetting anything (counters are
//! monotonic and never reset).
//!
//! ## Flight recorder
//!
//! [`flight`] keeps a fixed ring of recent span closures, health
//! events, and recovery rungs, and dumps it (NDJSON) whenever a
//! [`crate::HealthEvent`] fires or the recovery ladder escalates — see
//! the module docs.

pub mod flight;
mod registry;

pub use registry::{
    counter, enabled, gauge, histogram, set_enabled, Counter, Gauge, HistogramMetric, LazyCounter,
    LazyGauge, LazyHistogram, Meter, MeterGuard, SHARDS,
};

use std::collections::BTreeMap;

use crate::trace::{Histogram, Json};

/// A point-in-time view of every registered metric.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Capture time, ms since the Unix epoch.
    pub unix_ms: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Captures the current value of every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let view = registry::read_all();
    MetricsSnapshot {
        unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        counters: view.counters,
        gauges: view.gauges,
        histograms: view.histograms,
    }
}

impl MetricsSnapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (`None` when absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The change since `earlier`: counters and histograms are
    /// subtracted (saturating — a metric born after `earlier` reports
    /// its full value), gauges keep their current reading (a gauge is a
    /// level, not a flow).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (name, v) in out.counters.iter_mut() {
            *v = v.saturating_sub(earlier.counter(name));
        }
        for (name, h) in out.histograms.iter_mut() {
            if let Some(base) = earlier.histograms.get(name) {
                h.subtract(base);
            }
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Dotted names become underscored and gain an `fsi_` prefix;
    /// histograms render as cumulative `_bucket{le="..."}` series with
    /// `_sum` / `_count`, using each bucket's upper bound in nanoseconds
    /// as its `le` label.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", fmt_f64(*v)));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (i, c) in h.nonzero_buckets() {
                cum += c;
                let (_, hi) = Histogram::bucket_bounds(i);
                out.push_str(&format!("{n}_bucket{{le=\"{hi}\"}} {cum}\n"));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cum}\n"));
            out.push_str(&format!("{n}_sum {}\n", h.sum()));
            out.push_str(&format!("{n}_count {}\n", h.count()));
        }
        out
    }

    /// Renders the snapshot as a `kind: "metrics"` JSON object (schema
    /// in `results/schema.md`).
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Int(v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets = h
                    .nonzero_buckets()
                    .map(|(i, c)| Json::Arr(vec![Json::Int(i as u64), Json::Int(c)]))
                    .collect();
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("sum".into(), Json::Int(h.sum())),
                        ("buckets".into(), Json::Arr(buckets)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("kind".into(), Json::Str("metrics".into())),
            ("schema".into(), Json::Int(1)),
            ("unix_ms".into(), Json::Int(self.unix_ms)),
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(histograms)),
        ])
    }
}

/// Maps a dotted metric name onto the Prometheus grammar:
/// `dense.gemm.flops` → `fsi_dense_gemm_flops`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("fsi_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// `f64` formatting without ever producing `NaN`-adjacent surprises in
/// the exposition (`inf`/`NaN` render as Prometheus' `+Inf`/`NaN`).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.into()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_accumulate() {
        let c = counter("test.mod.counter_a");
        c.add(3);
        c.inc();
        assert!(counter("test.mod.counter_a").value() >= 4);
        // Same name returns the same handle.
        assert!(std::ptr::eq(c, counter("test.mod.counter_a")));
    }

    #[test]
    fn gauges_last_write_and_high_water() {
        let g = gauge("test.mod.gauge_a");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5, "set_max never lowers");
        g.set_max(9.0);
        assert_eq!(g.get(), 9.0);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        counter("test.mod.kind_clash");
        gauge("test.mod.kind_clash");
    }

    #[test]
    fn histogram_metric_snapshots_to_plain_histogram() {
        let h = histogram("test.mod.hist_a");
        h.record(100);
        h.record(100_000);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.sum(), 100_100);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_histograms() {
        let c = counter("test.mod.delta_c");
        let h = histogram("test.mod.delta_h");
        c.add(5);
        h.record(64);
        let before = snapshot();
        c.add(7);
        h.record(64);
        h.record(1024);
        let delta = snapshot().delta_since(&before);
        assert_eq!(delta.counter("test.mod.delta_c"), 7);
        let dh = &delta.histograms["test.mod.delta_h"];
        assert_eq!(dh.count(), 2);
        assert_eq!(dh.sum(), 64 + 1024);
    }

    #[test]
    fn disabled_metrics_drop_updates() {
        let c = counter("test.mod.disabled_c");
        // The global switch is shared; serialize with the trace test lock
        // (other tests here don't toggle it).
        let _guard = crate::trace::test_lock();
        let before = c.value();
        set_enabled(false);
        c.add(100);
        set_enabled(true);
        assert_eq!(c.value(), before);
        c.add(1);
        assert_eq!(c.value(), before + 1);
    }

    #[test]
    fn prometheus_exposition_shape() {
        counter("test.mod.prom_c").add(2);
        gauge("test.mod.prom_g").set(1.5);
        histogram("test.mod.prom_h").record(100);
        let text = snapshot().to_prometheus();
        assert!(text.contains("# TYPE fsi_test_mod_prom_c counter"));
        assert!(text.contains("fsi_test_mod_prom_g 1.5"));
        assert!(text.contains("fsi_test_mod_prom_h_bucket{le=\"+Inf\"}"));
        assert!(text.contains("fsi_test_mod_prom_h_count"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "line {line:?}");
        }
    }

    #[test]
    fn json_export_parses_back() {
        counter("test.mod.json_c").add(1);
        let json = snapshot().to_json();
        let mut text = String::new();
        json.write(&mut text);
        let parsed = Json::parse(&text).expect("self-emitted JSON parses");
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("metrics"));
        assert!(
            parsed
                .get("counters")
                .and_then(|c| c.get("test.mod.json_c"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
                >= 1
        );
    }

    #[test]
    fn meter_records_calls_flops_and_latency() {
        static M: Meter = Meter::new("test.mod.meter");
        M.observe(10);
        {
            let _g = M.start(1_000_000);
        }
        let snap = snapshot();
        assert_eq!(snap.counter("test.mod.meter.calls"), 2);
        assert_eq!(snap.counter("test.mod.meter.flops"), 1_000_010);
        assert_eq!(snap.histograms["test.mod.meter.ns"].count(), 1);
        assert!(snap.counter("test.mod.meter.busy_ns") > 0);
    }
}
