//! In-process message-passing ranks — the MPI analog.
//!
//! The paper's multi-matrix driver (Alg. 3) distributes Hubbard matrices over
//! MPI processes with `MPI_Scatter` and aggregates measurement quantities
//! with `MPI_Reduce`. This module reproduces that programming model inside a
//! single process: [`run`] spawns one OS thread per rank, each receiving a
//! [`Rank`] handle with point-to-point `send`/`recv` and the collectives the
//! paper uses.
//!
//! Messages are typed (`T: Send + 'static`) and matched on `(source, tag)`,
//! like MPI's `(source, tag)` envelope matching. Out-of-order arrivals are
//! parked in a per-rank pending queue, so a rank may interleave traffic from
//! several peers without deadlock, as long as every send is eventually
//! matched by a recv with the same envelope and type.
//!
//! This substitution (documented in DESIGN.md) preserves the communication
//! *pattern* of the paper's experiments — ownership of disjoint matrix
//! subsets, root-scatter of Hubbard-Stratonovich fields, reduction of local
//! measurement sums — while running on one machine.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::Mutex;

use crossbeam_channel::{unbounded, Receiver, Sender};

/// An envelope-addressed message: `(source, tag, payload)`.
type Packet = (usize, u64, Box<dyn Any + Send>);

/// Per-rank communication endpoint handed to the rank body by [`run`].
pub struct Rank {
    id: usize,
    size: usize,
    /// Senders to every rank's inbox (including our own, enabling self-sends
    /// used by uniform collective code at the root).
    outboxes: Vec<Sender<Packet>>,
    inbox: Receiver<Packet>,
    /// Arrived-but-unmatched packets.
    pending: Mutex<VecDeque<Packet>>,
}

impl Rank {
    /// This rank's id in `0..size`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Total number of ranks in the universe.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether this rank is the conventional root (rank 0).
    pub fn is_root(&self) -> bool {
        self.id == 0
    }

    /// Sends `value` to rank `dest` with the given `tag`. Never blocks
    /// (buffered, like an `MPI_Isend` that is always completed).
    ///
    /// # Panics
    /// Panics if `dest` is out of range or the destination has exited.
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: u64, value: T) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        self.outboxes[dest]
            .send((self.id, tag, Box::new(value)))
            .expect("destination rank has exited");
    }

    /// Blocks until a message from `source` with `tag` and payload type `T`
    /// arrives, and returns it.
    ///
    /// # Panics
    /// Panics if a matching envelope arrives whose payload is not a `T`
    /// (a type error in the program, analogous to an MPI datatype mismatch).
    pub fn recv<T: Send + 'static>(&self, source: usize, tag: u64) -> T {
        // First scan the pending queue for an earlier arrival.
        {
            let mut pending = self.pending.lock().expect("pending queue poisoned");
            if let Some(pos) = pending
                .iter()
                .position(|(s, t, _)| *s == source && *t == tag)
            {
                let (_, _, payload) = pending.remove(pos).expect("position just found");
                return downcast::<T>(payload, source, tag);
            }
        }
        loop {
            let (s, t, payload) = self
                .inbox
                .recv()
                .expect("all senders dropped while receiving");
            if s == source && t == tag {
                return downcast::<T>(payload, source, tag);
            }
            self.pending
                .lock()
                .expect("pending queue poisoned")
                .push_back((s, t, payload));
        }
    }

    /// Root scatters one element of `items` to each rank (root keeps
    /// `items[0]`); non-roots receive theirs. Mirrors `MPI_Scatter`.
    ///
    /// # Panics
    /// On the root, panics unless `items.len() == self.size()`.
    pub fn scatter<T: Send + 'static>(&self, items: Option<Vec<T>>, tag: u64) -> T {
        if self.is_root() {
            let items = items.expect("root must supply the items to scatter");
            assert_eq!(items.len(), self.size, "scatter needs one item per rank");
            let mut mine = None;
            for (dest, item) in items.into_iter().enumerate() {
                if dest == self.id {
                    mine = Some(item);
                } else {
                    self.send(dest, tag, item);
                }
            }
            mine.expect("root item present")
        } else {
            self.recv(0, tag)
        }
    }

    /// Gathers one value from each rank at the root; returns `Some(values)`
    /// in rank order at the root and `None` elsewhere. Mirrors `MPI_Gather`.
    pub fn gather<T: Send + 'static>(&self, value: T, tag: u64) -> Option<Vec<T>> {
        if self.is_root() {
            // The root is rank 0, so its own contribution leads the vector.
            let mut out = Vec::with_capacity(self.size);
            out.push(value);
            for src in 1..self.size {
                out.push(self.recv(src, tag));
            }
            Some(out)
        } else {
            self.send(0, tag, value);
            None
        }
    }

    /// Broadcasts the root's value to all ranks. Mirrors `MPI_Bcast`.
    pub fn broadcast<T: Clone + Send + 'static>(&self, value: Option<T>, tag: u64) -> T {
        if self.is_root() {
            let value = value.expect("root must supply the broadcast value");
            for dest in 1..self.size {
                self.send(dest, tag, value.clone());
            }
            value
        } else {
            self.recv(0, tag)
        }
    }

    /// Reduces one value per rank at the root with the associative `op`;
    /// returns `Some(total)` at the root, `None` elsewhere. Mirrors
    /// `MPI_Reduce`. Reduction is applied in rank order, so `op` need not be
    /// commutative.
    pub fn reduce<T, F>(&self, value: T, tag: u64, op: F) -> Option<T>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.gather(value, tag).map(|vals| {
            let mut it = vals.into_iter();
            let first = it.next().expect("universe has at least one rank");
            it.fold(first, op)
        })
    }

    /// Reduce followed by broadcast: every rank gets the total. Mirrors
    /// `MPI_Allreduce`.
    pub fn allreduce<T, F>(&self, value: T, tag: u64, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let total = self.reduce(value, tag, op);
        self.broadcast(total, tag ^ ALLREDUCE_PHASE2)
    }

    /// Binomial-tree broadcast: `O(log₂ size)` rounds instead of the flat
    /// broadcast's `O(size)` sends from the root — the algorithm real MPI
    /// implementations use at scale. Semantically identical to
    /// [`Rank::broadcast`].
    pub fn broadcast_tree<T: Clone + Send + 'static>(&self, value: Option<T>, tag: u64) -> T {
        let size = self.size;
        let me = self.id;
        let mut have: Option<T> = if me == 0 {
            Some(value.expect("root must supply the broadcast value"))
        } else {
            None
        };
        // Round r: ranks with id < 2^r forward to id + 2^r.
        let mut span = 1usize;
        while span < size {
            if me < span {
                let dest = me + span;
                if dest < size {
                    let v = have.as_ref().expect("sender holds the value").clone();
                    self.send(dest, tag ^ TREE_PHASE ^ span as u64, v);
                }
            } else if me < 2 * span && have.is_none() {
                let src = me - span;
                have = Some(self.recv(src, tag ^ TREE_PHASE ^ span as u64));
            }
            span *= 2;
        }
        have.expect("every rank is reached by the tree")
    }

    /// Binomial-tree reduction to the root: `O(log₂ size)` rounds.
    /// `op` must be associative; it is applied in a fixed tree order, so
    /// results are deterministic (and equal to the flat reduction for
    /// commutative-associative ops like `+` on integers).
    pub fn reduce_tree<T, F>(&self, value: T, tag: u64, op: F) -> Option<T>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        let size = self.size;
        let me = self.id;
        let mut acc = Some(value);
        // Round r: ranks with 2^r bit set send to (id − 2^r); others
        // receive and fold.
        let mut span = 1usize;
        while span < size {
            if me & span != 0 {
                // Sender: ship the accumulator and exit.
                let v = acc.take().expect("accumulator present before sending");
                self.send(me - span, tag ^ TREE_PHASE ^ span as u64, v);
                break;
            } else if me + span < size {
                let v: T = self.recv(me + span, tag ^ TREE_PHASE ^ span as u64);
                let cur = acc.take().expect("accumulator present");
                acc = Some(op(cur, v));
            }
            span *= 2;
        }
        if me == 0 {
            acc
        } else {
            None
        }
    }

    /// Blocks until every rank has entered the barrier. Mirrors
    /// `MPI_Barrier`. Implemented as gather + broadcast of unit.
    pub fn barrier(&self, tag: u64) {
        let _ = self.gather((), tag);
        self.broadcast(Some(()), tag ^ BARRIER_PHASE2);
    }
}

const ALLREDUCE_PHASE2: u64 = 0x8000_0000_0000_0001;
const TREE_PHASE: u64 = 0x4000_0000_0000_0000;
const BARRIER_PHASE2: u64 = 0x8000_0000_0000_0002;

fn downcast<T: 'static>(payload: Box<dyn Any + Send>, source: usize, tag: u64) -> T {
    *payload.downcast::<T>().unwrap_or_else(|_| {
        panic!(
            "type mismatch receiving from rank {source} tag {tag}: expected {}",
            std::any::type_name::<T>()
        )
    })
}

/// Spawns `size` ranks, runs `body` on each with its [`Rank`] handle, and
/// returns the per-rank results in rank order — the `MPI_Init` /
/// `MPI_Finalize` bracket of the paper's Alg. 3.
///
/// Rank 0 runs on the calling thread so single-rank runs have zero spawn
/// overhead and panics surface naturally.
///
/// # Panics
/// Panics if `size == 0` or if any rank body panics.
pub fn run<R, F>(size: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    assert!(size > 0, "universe needs at least one rank");
    let mut txs = Vec::with_capacity(size);
    let mut rxs = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded::<Packet>();
        txs.push(tx);
        rxs.push(rx);
    }
    let ranks: Vec<Rank> = rxs
        .into_iter()
        .enumerate()
        .map(|(id, inbox)| Rank {
            id,
            size,
            outboxes: txs.clone(),
            inbox,
            pending: Mutex::new(VecDeque::new()),
        })
        .collect();
    drop(txs);

    let body = &body;
    let mut iter = ranks.into_iter();
    let rank0 = iter.next().expect("size > 0");
    // Rank threads inherit the caller's trace context so their spans and
    // flop charges attribute to the span enclosing the rank launch.
    let ctx = crate::trace::current_context();
    std::thread::scope(|s| {
        let handles: Vec<_> = iter
            .map(|rank| {
                let ctx = ctx.clone();
                s.spawn(move || {
                    let r = crate::trace::with_context(ctx, || body(&rank));
                    (rank.id, r)
                })
            })
            .collect();
        let r0 = body(&rank0);
        let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();
        results[0] = Some(r0);
        for h in handles {
            let (id, r) = h.join().expect("a rank panicked");
            results[id] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every rank produced a result"))
            .collect()
    })
}

/// Splits `n` work items across `size` ranks as evenly as possible and
/// returns the half-open range owned by `rank` — the block distribution the
/// paper uses for `m_per_MPI = m / num_MPI_process`.
pub fn block_range(n: usize, size: usize, rank: usize) -> std::ops::Range<usize> {
    assert!(rank < size);
    let base = n / size;
    let extra = n % size;
    let lo = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    lo..lo + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        let results = run(2, |rank| {
            if rank.id() == 0 {
                rank.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                rank.recv::<f64>(1, 8)
            } else {
                let v: Vec<f64> = rank.recv(0, 7);
                let s: f64 = v.iter().sum();
                rank.send(0, 8, s);
                s
            }
        });
        assert_eq!(results, vec![6.0, 6.0]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let results = run(2, |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, 10u32);
                rank.send(1, 2, 20u32);
                0
            } else {
                // Receive in the reverse order of sending.
                let b: u32 = rank.recv(0, 2);
                let a: u32 = rank.recv(0, 1);
                (b - a) as i32
            }
        });
        assert_eq!(results[1], 10);
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let results = run(4, |rank| {
            let mine: usize = rank.scatter(rank.is_root().then(|| vec![100, 101, 102, 103]), 3);
            assert_eq!(mine, 100 + rank.id());
            rank.gather(mine * 2, 4)
        });
        assert_eq!(results[0], Some(vec![200, 202, 204, 206]));
        assert!(results[1..].iter().all(Option::is_none));
    }

    #[test]
    fn reduce_sums_in_rank_order() {
        let results = run(5, |rank| rank.reduce(rank.id() as u64 + 1, 9, |a, b| a + b));
        assert_eq!(results[0], Some(15));
    }

    #[test]
    fn allreduce_gives_everyone_the_total() {
        let results = run(3, |rank| {
            rank.allreduce(vec![rank.id() as f64], 11, |mut a, b| {
                a.extend(b);
                a
            })
        });
        for r in results {
            assert_eq!(r, vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn broadcast_reaches_all() {
        let results = run(4, |rank| {
            rank.broadcast(rank.is_root().then_some(String::from("hs-field")), 5)
        });
        assert!(results.iter().all(|s| s == "hs-field"));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        run(4, |rank| {
            before.fetch_add(1, Ordering::SeqCst);
            rank.barrier(42);
            if before.load(Ordering::SeqCst) != 4 {
                violations.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(violations.load(std::sync::atomic::Ordering::SeqCst), 0);
    }

    #[test]
    fn tree_broadcast_matches_flat() {
        for size in [1usize, 2, 3, 5, 8, 13] {
            let results = run(size, |rank| {
                rank.broadcast_tree(rank.is_root().then(|| vec![size, 42]), 21)
            });
            assert!(results.iter().all(|v| v == &vec![size, 42]), "size {size}");
        }
    }

    #[test]
    fn tree_reduce_matches_flat() {
        for size in [1usize, 2, 3, 5, 8, 13] {
            let results = run(size, |rank| {
                let flat = rank.reduce(rank.id() as u64 + 1, 22, |a, b| a + b);
                rank.barrier(23);
                let tree = rank.reduce_tree(rank.id() as u64 + 1, 24, |a, b| a + b);
                (flat, tree)
            });
            let want = (size as u64 * (size as u64 + 1)) / 2;
            assert_eq!(results[0], (Some(want), Some(want)), "size {size}");
            assert!(results[1..].iter().all(|(f, t)| f.is_none() && t.is_none()));
        }
    }

    #[test]
    fn tree_reduce_is_deterministic_for_floats() {
        // Same tree order every run → identical floating-point totals.
        let run_once = || {
            run(7, |rank| {
                rank.reduce_tree(0.1 * (rank.id() as f64 + 1.0), 25, |a, b| a + b)
            })[0]
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn single_rank_universe_works() {
        let results = run(1, |rank| {
            assert!(rank.is_root());
            let v: u8 = rank.scatter(Some(vec![9]), 0);
            let g = rank.gather(v, 1);
            let r = rank.reduce(1u32, 2, |a, b| a + b);
            let b = rank.broadcast(Some(3i32), 3);
            rank.barrier(4);
            (v, g, r, b)
        });
        assert_eq!(results[0], (9, Some(vec![9]), Some(1), 3));
    }

    #[test]
    fn block_range_partitions_exactly() {
        for n in [0usize, 1, 7, 24, 100] {
            for size in [1usize, 2, 3, 5, 8] {
                let mut total = 0;
                let mut next = 0;
                for rank in 0..size {
                    let r = block_range(n, size, rank);
                    assert_eq!(r.start, next, "contiguous");
                    next = r.end;
                    total += r.len();
                }
                assert_eq!(total, n);
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn block_range_is_balanced() {
        let sizes: Vec<usize> = (0..6).map(|r| block_range(2400, 6, r).len()).collect();
        assert!(sizes.iter().all(|&s| s == 400));
        let sizes: Vec<usize> = (0..7).map(|r| block_range(10, 7, r).len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }
}
