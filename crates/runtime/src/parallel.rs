//! Data-parallel loops over index ranges — the `!$omp parallel do` analog.
//!
//! The FSI algorithm's parallel structure is two flat loops: the clustering
//! stage iterates over `b` independent clusters and the wrapping stage over
//! `b²` independent seeds (paper §III-B). Both map directly onto
//! [`parallel_for`] / [`parallel_map`] with either static (contiguous chunk
//! per thread, OpenMP `schedule(static)`) or dynamic (atomic work counter,
//! OpenMP `schedule(dynamic,chunk)`) scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::pool::Par;

/// Loop-scheduling policy, mirroring OpenMP's `schedule` clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Split the iteration space into one contiguous chunk per thread.
    /// Lowest overhead; best when iterations are uniform (CLS clusters).
    Static,
    /// Threads pull chunks of the given size off an atomic counter.
    /// Best when iteration cost varies (wrapping seeds near boundaries).
    Dynamic(usize),
}

impl Schedule {
    /// A dynamic schedule with chunk size 1.
    pub const fn dynamic() -> Self {
        Schedule::Dynamic(1)
    }
}

/// Runs `f(i)` for every `i in 0..n` using the parallelism selector `par`.
///
/// `f` only receives the index; any output must go through interior
/// mutability or per-index disjoint data the caller arranges. For producing
/// one value per index, prefer [`parallel_map`].
pub fn parallel_for<F>(par: Par<'_>, n: usize, schedule: Schedule, f: F)
where
    F: Fn(usize) + Sync,
{
    let Some(pool) = par.pool() else {
        for i in 0..n {
            f(i);
        }
        return;
    };
    let threads = pool.size().min(n.max(1));
    if threads <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let f = &f;
    match schedule {
        Schedule::Static => {
            // ceil-divided contiguous ranges, one per participating thread.
            let chunk = n.div_ceil(threads);
            pool.scope(|s| {
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    if lo >= hi {
                        break;
                    }
                    s.spawn(move || {
                        for i in lo..hi {
                            f(i);
                        }
                    });
                }
            });
        }
        Schedule::Dynamic(chunk) => {
            let chunk = chunk.max(1);
            let next = AtomicUsize::new(0);
            let next = &next;
            pool.scope(|s| {
                for _ in 0..threads {
                    s.spawn(move || loop {
                        let lo = next.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + chunk).min(n);
                        for i in lo..hi {
                            f(i);
                        }
                    });
                }
            });
        }
    }
}

/// Computes `f(i)` for every `i in 0..n` and collects the results in index
/// order.
///
/// Results are written into pre-sized slots guarded by a mutex-free protocol:
/// each index is produced exactly once, so a `Mutex<Vec<Option<T>>>` would be
/// uncontended; we use one anyway for simplicity since locking happens once
/// per O(N³)-flop work item.
pub fn parallel_map<T, F>(par: Par<'_>, n: usize, schedule: Schedule, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if par.pool().is_none() || n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    parallel_for(par, n, schedule, |i| {
        let v = f(i);
        *slots[i].lock().expect("parallel_map slot poisoned") = Some(v);
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("parallel_map slot poisoned")
                .expect("parallel_map produced no value for an index")
        })
        .collect()
}

/// Runs two closures, in parallel when `par` carries a multi-thread pool,
/// and returns both results — the structured two-way fork the spin-parallel
/// DQMC sweep phases use (`!$omp sections` with two sections).
///
/// `fb` is spawned onto the pool while `fa` runs on the calling thread; the
/// scope's help-while-waiting protocol makes nesting further pool work
/// inside either closure deadlock-free.
pub fn join<RA, RB, FA, FB>(par: Par<'_>, fa: FA, fb: FB) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    FA: FnOnce() -> RA + Send,
    FB: FnOnce() -> RB + Send,
{
    let Some(pool) = par.pool() else {
        let ra = fa();
        let rb = fb();
        return (ra, rb);
    };
    if pool.size() <= 1 {
        let ra = fa();
        let rb = fb();
        return (ra, rb);
    }
    let rb_slot: Mutex<Option<RB>> = Mutex::new(None);
    let mut ra_slot: Option<RA> = None;
    pool.scope(|s| {
        let rb_ref = &rb_slot;
        s.spawn(move || {
            *rb_ref.lock().expect("join slot poisoned") = Some(fb());
        });
        ra_slot = Some(fa());
    });
    let ra = ra_slot.expect("join: fa did not run");
    let rb = rb_slot
        .into_inner()
        .expect("join slot poisoned")
        .expect("join: fb did not run");
    (ra, rb)
}

/// Two-stage look-ahead pipeline over `0..n`: `stage_a(i)` produces the
/// item the critical chain depends on (e.g. a panel QR), `stage_b(i, &item)`
/// performs its trailing update. On a pool, `stage_b(i)` overlaps
/// `stage_a(i + 1)` — the classic look-ahead schedule of right-looking
/// factorizations — with `stage_a` kept on the calling thread so the
/// critical chain never waits behind queued trailing work.
///
/// Returns the `stage_a` items in index order. Both stages see indices in
/// order (`stage_a`: `0, 1, …`; `stage_b(i)` only after `stage_a(i)`), so
/// state carried inside either closure (`FnMut`) observes the same
/// sequence as a serial run; with deterministic kernels the overlapped
/// schedule is bitwise-identical to `Par::Seq`.
pub fn pipeline<T, FA, FB>(par: Par<'_>, n: usize, mut stage_a: FA, mut stage_b: FB) -> Vec<T>
where
    T: Send + Sync,
    FA: FnMut(usize) -> T + Send,
    FB: FnMut(usize, &T) + Send,
{
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return out;
    }
    let mut cur = stage_a(0);
    for i in 0..n - 1 {
        // fb is spawned onto the pool, fa runs on the caller (see `join`).
        let (next, ()) = join(par, || stage_a(i + 1), || stage_b(i, &cur));
        out.push(std::mem::replace(&mut cur, next));
    }
    stage_b(n - 1, &cur);
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_for_covers_range() {
        let hits = AtomicU64::new(0);
        parallel_for(Par::Seq, 100, Schedule::Static, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn static_schedule_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let flags: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
        parallel_for(Par::Pool(&pool), 97, Schedule::Static, |i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, f) in flags.iter().enumerate() {
            assert_eq!(f.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn dynamic_schedule_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let flags: Vec<AtomicU64> = (0..101).map(|_| AtomicU64::new(0)).collect();
        parallel_for(Par::Pool(&pool), 101, Schedule::Dynamic(3), |i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, f) in flags.iter().enumerate() {
            assert_eq!(f.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn map_preserves_index_order() {
        let pool = ThreadPool::new(4);
        let v = parallel_map(Par::Pool(&pool), 64, Schedule::dynamic(), |i| i * i);
        assert_eq!(v.len(), 64);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn map_sequential_matches_parallel() {
        let pool = ThreadPool::new(3);
        let seq = parallel_map(Par::Seq, 33, Schedule::Static, |i| 3 * i + 1);
        let par = parallel_map(Par::Pool(&pool), 33, Schedule::Static, |i| 3 * i + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_ranges() {
        let pool = ThreadPool::new(2);
        let v: Vec<usize> = parallel_map(Par::Pool(&pool), 0, Schedule::Static, |i| i);
        assert!(v.is_empty());
        let v = parallel_map(Par::Pool(&pool), 1, Schedule::Static, |i| i + 7);
        assert_eq!(v, vec![7]);
    }

    #[test]
    fn more_threads_than_items() {
        let pool = ThreadPool::new(8);
        let v = parallel_map(Par::Pool(&pool), 3, Schedule::Static, |i| i);
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn join_returns_both_results_sequentially() {
        let (a, b) = join(Par::Seq, || 2 + 2, || "spin down");
        assert_eq!(a, 4);
        assert_eq!(b, "spin down");
    }

    #[test]
    fn join_returns_both_results_on_pool() {
        let pool = ThreadPool::new(4);
        let (a, b) = join(Par::Pool(&pool), || vec![1, 2, 3], || 7u64);
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(b, 7);
    }

    #[test]
    fn join_nests_with_inner_parallel_loops() {
        // Each arm runs a parallel_for over the same pool — the scope's
        // help-while-waiting protocol must keep this deadlock-free.
        let pool = ThreadPool::new(4);
        let par = Par::Pool(&pool);
        let (a, b) = join(
            par,
            || {
                let hits = AtomicU64::new(0);
                parallel_for(par, 50, Schedule::dynamic(), |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                hits.into_inner()
            },
            || {
                let hits = AtomicU64::new(0);
                parallel_for(par, 70, Schedule::Static, |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                hits.into_inner()
            },
        );
        assert_eq!((a, b), (50, 70));
    }

    #[test]
    fn join_on_size_one_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let (a, b) = join(Par::Pool(&pool), || 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn pipeline_returns_items_in_order_and_runs_both_stages() {
        let pool = ThreadPool::new(4);
        for par in [Par::Seq, Par::Pool(&pool)] {
            let b_sum = AtomicU64::new(0);
            let items = pipeline(
                par,
                17,
                |i| (i * i) as u64,
                |i, item| {
                    assert_eq!(*item, (i * i) as u64);
                    b_sum.fetch_add(*item, Ordering::Relaxed);
                },
            );
            assert_eq!(items, (0..17).map(|i| (i * i) as u64).collect::<Vec<_>>());
            assert_eq!(
                b_sum.into_inner(),
                (0..17u64).map(|i| i * i).sum::<u64>(),
                "stage_b must run once per item"
            );
        }
    }

    #[test]
    fn pipeline_stage_state_sees_serial_order() {
        // Both closures carry state across iterations; the pipeline must
        // feed them indices in the same order as a serial loop would.
        let pool = ThreadPool::new(3);
        for par in [Par::Seq, Par::Pool(&pool)] {
            let mut a_state = 0u64;
            let mut b_trace = Vec::new();
            let items = pipeline(
                par,
                9,
                |i| {
                    a_state += i as u64 + 1;
                    a_state
                },
                |i, item| b_trace.push((i, *item)),
            );
            // a_state follows the serial recurrence: prefix sums of i+1.
            let mut want = Vec::new();
            let mut acc = 0u64;
            for i in 0..9u64 {
                acc += i + 1;
                want.push(acc);
            }
            assert_eq!(items, want);
            let want_trace: Vec<(usize, u64)> =
                want.iter().enumerate().map(|(i, &v)| (i, v)).collect();
            assert_eq!(b_trace, want_trace);
        }
    }

    #[test]
    fn pipeline_empty_and_singleton() {
        let pool = ThreadPool::new(2);
        let v: Vec<u32> = pipeline(Par::Pool(&pool), 0, |_| 1, |_, _| {});
        assert!(v.is_empty());
        let hits = AtomicU64::new(0);
        let v = pipeline(
            Par::Pool(&pool),
            1,
            |i| i + 40,
            |_, _| {
                hits.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(v, vec![40]);
        assert_eq!(hits.into_inner(), 1);
    }
}
