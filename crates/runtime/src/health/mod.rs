//! Numerical health guardrails: stage-boundary probes, structured
//! health events, and (feature-gated) deterministic fault injection.
//!
//! The FSI pipeline caps the cluster size `c` *statically* because chain
//! conditioning grows like `κ(B)^c` (paper §II-C), but a long Monte Carlo
//! run also needs *runtime* defenses: a singular pivot, a NaN escaping an
//! exponential, or a corrupted cache entry must surface as a structured
//! [`HealthEvent`] a driver can react to — never as a panic that aborts a
//! multi-hour sweep, and never as silent corruption of measurements.
//!
//! The module is deliberately placed at the bottom of the workspace
//! dependency graph: it knows nothing about matrices, only about `f64`
//! buffers and stage labels, so every crate (dense, selinv, dqmc, bench)
//! can raise and interpret the same events.
//!
//! Probe sites (each `O(N²)` or cheaper — negligible next to the `O(N³)`
//! kernels they guard):
//!
//! | stage     | probe                                                      |
//! |-----------|------------------------------------------------------------|
//! | `cls`     | non-finite / magnitude scan of recomputed cluster products |
//! | `cache`   | checksum verification of *reused* cluster products         |
//! | `bsofi`   | `R`-diagonal pivot magnitude + ratio, output block scan    |
//! | `wrap`    | non-finite / magnitude scan of each wrapped `Ĝ`            |
//! | `green`   | final scan of the assembled equal-time Green's function    |
//!
//! Probes are gated by a global [`set_probes_enabled`] switch (on by
//! default) so harnesses can measure their clean-path overhead.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "fault-inject")]
pub mod inject;

/// Pipeline stage a health event or error is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Clustering / block cyclic reduction (Alg. 1 step 2).
    Cls,
    /// Reuse of cached cluster products (incremental CLS).
    Cache,
    /// Structured orthogonal inversion of the reduced matrix.
    Bsofi,
    /// Wrapping recurrences / similarity wraps.
    Wrap,
    /// Equal-time Green's-function assembly.
    Green,
    /// The Metropolis sweep driver itself.
    Sweep,
}

impl Stage {
    /// Stable lowercase label, matching the trace-span vocabulary.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Cls => "cls",
            Stage::Cache => "cache",
            Stage::Bsofi => "bsofi",
            Stage::Wrap => "wrap",
            Stage::Green => "green",
            Stage::Sweep => "sweep",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured numerical-health event raised by a stage-boundary probe.
///
/// Events carry enough context (stage + block / column / magnitude) for a
/// recovery policy to decide how hard to escalate, and each is mirrored
/// as a `health.*` trace span so the observability layer shows what
/// tripped without a side channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealthEvent {
    /// A NaN or ±Inf appeared in the given block of the given stage.
    NonFinite {
        /// Stage whose output scan tripped.
        stage: Stage,
        /// Block (or slice) index within the stage.
        block: usize,
    },
    /// An exactly zero pivot: the factored matrix is singular to working
    /// precision.
    SingularPivot {
        /// Stage whose factorization tripped.
        stage: Stage,
        /// Global column index of the zero pivot.
        column: usize,
    },
    /// Conditioning beyond the usable range — either a pivot-magnitude
    /// ratio past [`KAPPA_MAX`] or entries past [`MAGNITUDE_MAX`]
    /// (an overflow-bound proxy for `κ(B)^c` blowup, paper §II-C).
    IllConditioned {
        /// Stage whose probe tripped.
        stage: Stage,
        /// The offending condition proxy (pivot ratio or max magnitude).
        kappa: f64,
    },
    /// A cached entry no longer matches the checksum recorded when it was
    /// stored: the cache was corrupted between refreshes.
    CacheInconsistent {
        /// Stage that attempted the reuse.
        stage: Stage,
        /// Index of the corrupted cached entry.
        block: usize,
    },
}

impl HealthEvent {
    /// The stage this event is attributed to.
    pub fn stage(&self) -> Stage {
        match self {
            HealthEvent::NonFinite { stage, .. }
            | HealthEvent::SingularPivot { stage, .. }
            | HealthEvent::IllConditioned { stage, .. }
            | HealthEvent::CacheInconsistent { stage, .. } => *stage,
        }
    }

    /// Stable `health.*` label for this event kind, matching the
    /// trace-span and metrics vocabulary.
    pub fn label(&self) -> &'static str {
        match self {
            HealthEvent::NonFinite { .. } => "health.non_finite",
            HealthEvent::SingularPivot { .. } => "health.singular_pivot",
            HealthEvent::IllConditioned { .. } => "health.ill_conditioned",
            HealthEvent::CacheInconsistent { .. } => "health.cache_inconsistent",
        }
    }

    /// Mirrors the event into every observability surface: a
    /// zero-duration `health.*` trace span (NDJSON exporter and
    /// [`crate::RunReport`] counters), a `health.*` metrics counter, and
    /// a flight-recorder entry — which triggers an incident dump, so
    /// every health event ships its own post-mortem context.
    pub fn record(&self) {
        let name = self.label();
        crate::metrics::counter(name).inc();
        crate::metrics::flight::note_health(name, self.stage().name());
        crate::trace::span(name).finish();
    }
}

impl fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthEvent::NonFinite { stage, block } => {
                write!(f, "non-finite value in {stage} block {block}")
            }
            HealthEvent::SingularPivot { stage, column } => {
                write!(f, "singular pivot in {stage} at column {column}")
            }
            HealthEvent::IllConditioned { stage, kappa } => {
                write!(f, "ill-conditioned {stage} stage (κ ≈ {kappa:.3e})")
            }
            HealthEvent::CacheInconsistent { stage, block } => {
                write!(f, "cache entry {block} inconsistent at {stage} reuse")
            }
        }
    }
}

/// Error type of the fallible FSI / DQMC public APIs.
///
/// Extends the dense layer's data-dependent failures with the
/// health-probe events; dimension mismatches stay XERBLA-style panics
/// (programming errors, not data).
#[derive(Debug, Clone, PartialEq)]
pub enum FsiError {
    /// A stage-boundary probe raised a health event.
    Health(HealthEvent),
    /// An iterative routine hit its iteration cap without converging.
    NoConvergence {
        /// Stage the routine ran in.
        stage: Stage,
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl FsiError {
    /// The stage the failure is attributed to.
    pub fn stage(&self) -> Stage {
        match self {
            FsiError::Health(e) => e.stage(),
            FsiError::NoConvergence { stage, .. } => *stage,
        }
    }

    /// The underlying health event, if this error wraps one.
    pub fn health_event(&self) -> Option<&HealthEvent> {
        match self {
            FsiError::Health(e) => Some(e),
            FsiError::NoConvergence { .. } => None,
        }
    }
}

impl From<HealthEvent> for FsiError {
    fn from(e: HealthEvent) -> Self {
        FsiError::Health(e)
    }
}

impl fmt::Display for FsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsiError::Health(e) => e.fmt(f),
            FsiError::NoConvergence { stage, iterations } => {
                write!(f, "{stage}: no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for FsiError {}

/// Result alias for the fallible FSI / DQMC APIs.
pub type FsiResult<T> = std::result::Result<T, FsiError>;

/// Pivot-magnitude ratio above which a factorization is declared
/// unusable: `max|R_ii| / min|R_ii| > KAPPA_MAX` leaves no significant
/// bits in double precision.
pub const KAPPA_MAX: f64 = 1e14;

/// Entry magnitude above which a block is declared overflow-bound.
/// Healthy Green's-function and propagator blocks live many orders of
/// magnitude below this; crossing it means the chain conditioning has
/// blown up even if no Inf has been produced yet.
pub const MAGNITUDE_MAX: f64 = 1e100;

static PROBES: AtomicBool = AtomicBool::new(true);

/// Whether the stage-boundary probes are active (default: yes).
pub fn probes_enabled() -> bool {
    PROBES.load(Ordering::Relaxed)
}

/// Globally enables/disables the stage-boundary probes. Intended for
/// harnesses measuring clean-path probe overhead; leave on in production.
pub fn set_probes_enabled(on: bool) {
    PROBES.store(on, Ordering::Relaxed);
}

/// Scans a stage-output buffer: raises [`HealthEvent::NonFinite`] on the
/// first NaN/Inf and [`HealthEvent::IllConditioned`] when the magnitude
/// exceeds [`MAGNITUDE_MAX`]. No-op while probes are disabled.
pub fn check_block(stage: Stage, block: usize, data: &[f64]) -> Result<(), HealthEvent> {
    if !probes_enabled() {
        return Ok(());
    }
    // Branchless unrolled scan that lowers to packed mul/add/max: the
    // poison lanes accumulate `x * 0.0` (±0.0 for finite `x`, NaN for
    // NaN/Inf, and NaN survives the sum); the magnitude lanes use select
    // semantics instead of `f64::max` so they compile to a plain `maxpd`
    // — their NaN behaviour is irrelevant because the poison sum flags
    // every non-finite entry first.
    const W: usize = 8;
    let mut poison = [0.0f64; W];
    let mut mx = [0.0f64; W];
    let mut chunks = data.chunks_exact(W);
    for ch in &mut chunks {
        for i in 0..W {
            poison[i] += ch[i] * 0.0;
            let a = ch[i].abs();
            mx[i] = if a > mx[i] { a } else { mx[i] };
        }
    }
    let mut p = 0.0f64;
    let mut max_abs = 0.0f64;
    for i in 0..W {
        p += poison[i];
        max_abs = max_abs.max(mx[i]);
    }
    for &x in chunks.remainder() {
        p += x * 0.0;
        max_abs = max_abs.max(x.abs());
    }
    if p != 0.0 {
        let event = HealthEvent::NonFinite { stage, block };
        event.record();
        return Err(event);
    }
    if max_abs > MAGNITUDE_MAX {
        let event = HealthEvent::IllConditioned {
            stage,
            kappa: max_abs,
        };
        event.record();
        return Err(event);
    }
    Ok(())
}

/// Checks the diagonal of a triangular factor: an exactly zero entry is a
/// [`HealthEvent::SingularPivot`], and a `max/min` magnitude ratio past
/// [`KAPPA_MAX`] is [`HealthEvent::IllConditioned`] (the pivot ratio is a
/// free lower bound on the factor's condition number). `offset` shifts
/// the reported column index so block-local diagonals report global
/// positions. No-op while probes are disabled.
pub fn check_pivots(stage: Stage, offset: usize, diag: &[f64]) -> Result<(), HealthEvent> {
    if !probes_enabled() || diag.is_empty() {
        return Ok(());
    }
    let mut min_abs = f64::INFINITY;
    let mut max_abs = 0.0f64;
    let mut argmin = 0usize;
    for (i, &d) in diag.iter().enumerate() {
        let a = d.abs();
        if !d.is_finite() {
            let event = HealthEvent::NonFinite {
                stage,
                block: offset + i,
            };
            event.record();
            return Err(event);
        }
        if a < min_abs {
            min_abs = a;
            argmin = i;
        }
        max_abs = max_abs.max(a);
    }
    if min_abs == 0.0 {
        let event = HealthEvent::SingularPivot {
            stage,
            column: offset + argmin,
        };
        event.record();
        return Err(event);
    }
    let ratio = max_abs / min_abs;
    if ratio > KAPPA_MAX {
        let event = HealthEvent::IllConditioned {
            stage,
            kappa: ratio,
        };
        event.record();
        return Err(event);
    }
    Ok(())
}

/// FNV-1a checksum over the raw bit patterns of a buffer. Any corruption
/// of a cached entry — including quiet finite bit-flips no magnitude scan
/// can see — changes the checksum. Always computed (not probe-gated): it
/// is the *verification* that is gated, at the call sites.
pub fn checksum(data: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in data {
        let bits = x.to_bits();
        for shift in [0u32, 16, 32, 48] {
            h ^= (bits >> shift) & 0xffff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that read or toggle the global probe switch.
    fn probe_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn clean_buffer_passes_all_probes() {
        let data = [1.0, -2.5, 1e10, 0.0];
        assert!(check_block(Stage::Cls, 0, &data).is_ok());
        assert!(check_pivots(Stage::Bsofi, 0, &[1.0, -3.0, 0.5]).is_ok());
    }

    #[test]
    fn nan_and_inf_raise_non_finite() {
        let _g = probe_guard();
        let got = check_block(Stage::Green, 3, &[1.0, f64::NAN]).unwrap_err();
        assert_eq!(
            got,
            HealthEvent::NonFinite {
                stage: Stage::Green,
                block: 3
            }
        );
        assert!(check_block(Stage::Wrap, 0, &[f64::INFINITY]).is_err());
    }

    #[test]
    fn huge_magnitude_raises_ill_conditioned() {
        let _g = probe_guard();
        let err = check_block(Stage::Cls, 1, &[1.0, 1e200]).unwrap_err();
        match err {
            HealthEvent::IllConditioned { stage, kappa } => {
                assert_eq!(stage, Stage::Cls);
                assert!(kappa >= 1e200);
            }
            other => panic!("wrong event {other:?}"),
        }
    }

    #[test]
    fn pivot_probe_flags_zero_and_graded_diagonals() {
        let _g = probe_guard();
        let err = check_pivots(Stage::Bsofi, 4, &[1.0, 0.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            HealthEvent::SingularPivot {
                stage: Stage::Bsofi,
                column: 5
            }
        );
        let err = check_pivots(Stage::Bsofi, 0, &[1.0, 1e-20]).unwrap_err();
        assert!(matches!(err, HealthEvent::IllConditioned { .. }));
    }

    #[test]
    fn disabling_probes_short_circuits() {
        let _g = probe_guard();
        set_probes_enabled(false);
        assert!(check_block(Stage::Cls, 0, &[f64::NAN]).is_ok());
        assert!(check_pivots(Stage::Bsofi, 0, &[0.0]).is_ok());
        set_probes_enabled(true);
        assert!(check_block(Stage::Cls, 0, &[f64::NAN]).is_err());
    }

    #[test]
    fn checksum_sees_any_bit_flip() {
        let a = vec![1.0, 2.0, 3.0, -4.0];
        let mut b = a.clone();
        let base = checksum(&a);
        assert_eq!(base, checksum(&b), "deterministic");
        b[2] = f64::from_bits(b[2].to_bits() ^ 0x1);
        assert_ne!(base, checksum(&b), "single low-mantissa flip detected");
    }

    #[test]
    fn error_formatting_and_accessors() {
        let e: FsiError = HealthEvent::IllConditioned {
            stage: Stage::Cls,
            kappa: 1e15,
        }
        .into();
        assert_eq!(e.stage(), Stage::Cls);
        assert!(e.to_string().contains("ill-conditioned"));
        assert!(e.health_event().is_some());
        let e = FsiError::NoConvergence {
            stage: Stage::Green,
            iterations: 8,
        };
        assert_eq!(e.stage(), Stage::Green);
        assert!(e.to_string().contains("8 iterations"));
        assert!(e.health_event().is_none());
    }
}
