//! Deterministic fault injection for drilling the health probes.
//!
//! Compiled only under the `fault-inject` feature, so production builds
//! carry zero injection code. A *plan* is armed globally — one
//! [`Site`] (stage + block + fault kind) with a fire budget — and the
//! pipeline's injection hooks call [`poison`] at each stage boundary;
//! when the site matches and the budget is not exhausted, the buffer is
//! poisoned in place. Multi-fire plans keep poisoning retries, which is
//! how the drill pushes the recovery ladder past its first rung.
//!
//! Everything is mutex-protected and seed-free: a given (plan, workload)
//! pair fires at exactly the same program points every run, so recovery
//! trajectories are reproducible and the proptests can assert
//! determinism.

use std::sync::{Mutex, MutexGuard};

use super::Stage;

/// Matches any block index at the armed stage.
pub const ANY_BLOCK: usize = usize::MAX;

/// The kind of corruption written into a matched buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Writes a NaN into the middle of the buffer.
    Nan,
    /// Writes +Inf into the first entry.
    Inf,
    /// Writes a huge-but-finite value (1e300) — corruption that survives
    /// `is_finite` checks and must be caught by the magnitude probe.
    Huge,
    /// Rescales the whole buffer by 1e200, modeling the `κ(B)^c`
    /// conditioning blowup of an over-long cluster chain (paper §II-C).
    /// (Scaling *down* instead would yield a healthy-looking but wrong
    /// matrix that no cheap probe can distinguish — see the drill notes.)
    Scale,
    /// Flips one low mantissa bit of the middle entry — a quiet finite
    /// corruption only the cache checksum can see.
    BitFlip,
}

impl FaultKind {
    /// Stable label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Nan => "nan",
            FaultKind::Inf => "inf",
            FaultKind::Huge => "huge",
            FaultKind::Scale => "scale",
            FaultKind::BitFlip => "bitflip",
        }
    }
}

/// An injection site: which stage/block to poison and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// Stage whose boundary hook should fire.
    pub stage: Stage,
    /// Block index to match, or [`ANY_BLOCK`].
    pub block: usize,
    /// Corruption to apply.
    pub kind: FaultKind,
}

struct Plan {
    site: Site,
    fires_left: u32,
    fired: u64,
}

static PLAN: Mutex<Option<Plan>> = Mutex::new(None);

fn plan() -> MutexGuard<'static, Option<Plan>> {
    PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms a single-fire fault at `site` (replacing any previous plan).
pub fn arm(site: Site) {
    arm_times(site, 1);
}

/// Arms a fault that fires on the first `fires` matching boundaries —
/// sticky faults re-poison recovery retries and push the ladder deeper.
pub fn arm_times(site: Site, fires: u32) {
    *plan() = Some(Plan {
        site,
        fires_left: fires,
        fired: 0,
    });
}

/// Disarms the current plan and returns how many times it fired.
pub fn disarm() -> u64 {
    plan().take().map(|p| p.fired).unwrap_or(0)
}

/// How many times the current plan has fired so far.
pub fn fired() -> u64 {
    plan().as_ref().map(|p| p.fired).unwrap_or(0)
}

/// Injection hook: called by the pipeline at each stage boundary with
/// the buffer that stage just produced (or is about to reuse). Poisons
/// it in place when the armed site matches.
pub fn poison(stage: Stage, block: usize, data: &mut [f64]) {
    let mut guard = plan();
    let Some(p) = guard.as_mut() else { return };
    if p.fires_left == 0 || p.site.stage != stage {
        return;
    }
    if p.site.block != ANY_BLOCK && p.site.block != block {
        return;
    }
    if data.is_empty() {
        return;
    }
    apply(p.site.kind, data);
    p.fires_left -= 1;
    p.fired += 1;
}

fn apply(kind: FaultKind, data: &mut [f64]) {
    let mid = data.len() / 2;
    match kind {
        FaultKind::Nan => data[mid] = f64::NAN,
        FaultKind::Inf => data[0] = f64::INFINITY,
        FaultKind::Huge => data[mid] = 1e300,
        FaultKind::Scale => data.iter_mut().for_each(|x| *x *= 1e200),
        FaultKind::BitFlip => data[mid] = f64::from_bits(data[mid].to_bits() ^ 0x4),
    }
}

/// Serializes tests that arm the global plan (they would otherwise race).
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_match_stage_block_and_budget() {
        let _l = test_lock();
        arm_times(
            Site {
                stage: Stage::Cls,
                block: 1,
                kind: FaultKind::Nan,
            },
            2,
        );
        let mut buf = vec![1.0; 8];
        poison(Stage::Bsofi, 1, &mut buf);
        poison(Stage::Cls, 0, &mut buf);
        assert!(buf.iter().all(|x| x.is_finite()), "no match, no poison");
        poison(Stage::Cls, 1, &mut buf);
        assert!(buf[4].is_nan(), "matched site poisons the midpoint");
        assert_eq!(fired(), 1);
        buf[4] = 1.0;
        poison(Stage::Cls, 1, &mut buf);
        poison(Stage::Cls, 1, &mut buf);
        assert_eq!(disarm(), 2, "budget caps the fires");
    }

    #[test]
    fn any_block_and_kinds() {
        let _l = test_lock();
        for (kind, check) in [
            (
                FaultKind::Inf,
                &(|b: &[f64]| b[0].is_infinite()) as &dyn Fn(&[f64]) -> bool,
            ),
            (FaultKind::Huge, &|b: &[f64]| b[2] == 1e300),
            (FaultKind::Scale, &|b: &[f64]| b[0] == 1e200),
            (FaultKind::BitFlip, &|b: &[f64]| {
                b[2] != 1.0 && b[2].is_finite()
            }),
        ] {
            arm(Site {
                stage: Stage::Wrap,
                block: ANY_BLOCK,
                kind,
            });
            let mut buf = vec![1.0; 5];
            poison(Stage::Wrap, 17, &mut buf);
            assert!(check(&buf), "{kind:?}");
            disarm();
        }
    }
}
