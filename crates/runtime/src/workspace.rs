//! Thread-local reusable scratch buffers for kernel workspaces.
//!
//! The packed GEMM engine needs two pack buffers (an `MC × KC` panel of A
//! and a `KC × NC` panel of B) on every call, and the blocked QR
//! application needs a `kb × n` reflector workspace per block. Allocating
//! those with `Vec` on every kernel invocation puts an allocator
//! round-trip on the hottest path of the workspace; this module instead
//! keeps a small per-thread pool of `f64` buffers that kernels borrow for
//! the duration of one call.
//!
//! The pool is a stack: [`with_scratch`] pops a buffer (allocating only if
//! the pool is empty), grows it if needed, hands it to the closure, and
//! pushes it back afterwards. Nested borrows simply pop further buffers,
//! so the mechanism is reentrancy-safe — a kernel that borrows scratch may
//! call another kernel that borrows scratch — and pool worker threads
//! (which persist across [`crate::ThreadPool::scope`] calls) reuse their
//! buffers across every job they run.
//!
//! Buffer contents are **not** cleared between borrows: callers must treat
//! the slice as uninitialized garbage and overwrite every element they
//! read back (the pack routines and `beta = 0` accumulations do exactly
//! that). Newly grown regions are zero-filled only because `Vec::resize`
//! requires a fill value.

use crate::metrics::LazyCounter;
use std::cell::RefCell;

/// Scratch borrows served (pool hit or miss): the denominator for pool
/// churn. The batched small-GEMM paths exist to keep this flat across a
/// refresh — one borrow per worker chunk instead of one per product.
static BORROWS: LazyCounter = LazyCounter::new("runtime.workspace.borrows");
/// Borrows that had to touch the allocator (empty pool, or a growing
/// resize). Steady state should serve every borrow from the pool, so this
/// counter staying near its warm-up value is the health signal.
static ALLOCS: LazyCounter = LazyCounter::new("runtime.workspace.allocs");

thread_local! {
    /// Per-thread stack of reusable buffers. Depth is bounded by the
    /// deepest nesting of `with_scratch` calls (≤ 3 in this workspace:
    /// B-pack > A-pack, or LARFB workspace > pack pair).
    static SCRATCH: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Borrows a thread-local scratch slice of `len` `f64`s for the duration
/// of `f`.
///
/// The slice contents are unspecified on entry (stale data from a previous
/// borrow); the caller must overwrite before reading. Reentrant: `f` may
/// itself call [`with_scratch`].
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    BORROWS.inc();
    let popped = SCRATCH.with(|s| s.borrow_mut().pop());
    let pool_miss = popped.is_none();
    let mut buf = popped.unwrap_or_default();
    if pool_miss || buf.len() < len {
        ALLOCS.inc();
    }
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    let out = f(&mut buf[..len]);
    SCRATCH.with(|s| s.borrow_mut().push(buf));
    out
}

/// Borrows two independent thread-local scratch slices at once (the
/// pack-buffer pair of the GEMM engine).
pub fn with_scratch2<R>(
    len_a: usize,
    len_b: usize,
    f: impl FnOnce(&mut [f64], &mut [f64]) -> R,
) -> R {
    with_scratch(len_a, |a| with_scratch(len_b, |b| f(a, b)))
}

/// Drops every buffer cached by the calling thread (tests and
/// memory-sensitive harnesses).
pub fn clear_thread_scratch() {
    SCRATCH.with(|s| s.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_has_requested_length() {
        with_scratch(17, |s| assert_eq!(s.len(), 17));
        with_scratch(3, |s| assert_eq!(s.len(), 3));
    }

    #[test]
    fn buffers_are_reused_across_calls() {
        clear_thread_scratch();
        let p1 = with_scratch(64, |s| {
            s.fill(1.0);
            s.as_ptr() as usize
        });
        let p2 = with_scratch(64, |s| s.as_ptr() as usize);
        assert_eq!(p1, p2, "second borrow reuses the pooled allocation");
    }

    #[test]
    fn nested_borrows_are_distinct() {
        with_scratch(8, |a| {
            a.fill(1.0);
            with_scratch(8, |b| {
                b.fill(2.0);
                assert!(a.iter().all(|&x| x == 1.0));
            });
            assert!(a.iter().all(|&x| x == 1.0));
        });
    }

    #[test]
    fn scratch2_gives_disjoint_slices() {
        with_scratch2(10, 20, |a, b| {
            assert_eq!(a.len(), 10);
            assert_eq!(b.len(), 20);
            a.fill(-1.0);
            b.fill(3.0);
            assert!(a.iter().all(|&x| x == -1.0));
        });
    }
}
