//! Structured tracing and metrics for FSI stages, dense kernels, and DQMC
//! sweeps.
//!
//! The paper's figures are all statements about *where time and flops go*:
//! Fig. 8 splits FSI wall time into CLS / BSOFI / WRP, Fig. 9 reports
//! aggregate Tflop/s across hybrid ranks, Fig. 10 splits a DQMC sweep into
//! Green's-function vs. measurement time. This module is the single
//! instrumentation substrate behind all of those reports:
//!
//! * [`span`] / [`kernel_span`] — hierarchical RAII spans
//!   (`span("fsi")` > `span("cls")` > `kernel_span("gemm")`) with
//!   per-span flop and byte counters. Flops charged via
//!   [`crate::flops::add_flops`] land on the innermost span of the current
//!   thread, and [`crate::ThreadPool`] propagates span context to worker
//!   threads, so parallel kernels attribute to the stage that launched
//!   them.
//! * [`Histogram`] — fixed log₂-bucket latency histograms, mergeable
//!   across threads and runs.
//! * [`RunReport`] — drains the collector into a serializable snapshot
//!   with two exporters: NDJSON (one record per span; schema in
//!   `results/schema.md`) and Chrome `trace_event` JSON.
//! * `ThreadPool::stats` — busy/idle time per worker and queue depth,
//!   attached to reports via [`RunReport::with_pool`].
//!
//! Tracing is off by default and costs one relaxed atomic load per
//! potential span or charge. The `FSI_TRACE` environment variable (or
//! [`set_level`]) turns it on: `1`/`stages` records stage spans,
//! `2`/`kernels` additionally records every dense-kernel invocation.

mod histogram;
mod json;
mod report;
mod span;

pub use histogram::{Histogram, BUCKETS};
pub use json::{Json, JsonError};
pub use report::{RunReport, SpanRow, StageTotal, WorkerRow, SCHEMA_VERSION};
pub use span::{
    charge_bytes, charge_flops, clear, current_context, drain, enabled, kernel_span,
    kernels_enabled, level, set_level, span, with_context, SpanContext, SpanGuard, SpanRecord,
    SpanStats, TraceData, TraceLevel,
};

#[doc(hidden)]
pub use span::test_lock;

pub(crate) use span::{now_ns, thread_index};

/// Opens a stage span: `let _s = span!("cls");`. Sugar for
/// [`trace::span`](span()).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
}

/// Opens a kernel span: `let _s = kernel_span!("gemm");`. Sugar for
/// [`trace::kernel_span`](kernel_span()).
#[macro_export]
macro_rules! kernel_span {
    ($name:expr) => {
        $crate::trace::kernel_span($name)
    };
}
