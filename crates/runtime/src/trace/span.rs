//! Hierarchical spans with span-scoped counters and a thread-safe
//! collector.
//!
//! A span brackets one stage or kernel invocation. Guards nest through a
//! thread-local stack, so `span("fsi")` followed by `span("cls")` records
//! `cls` as a child of `fsi` without any plumbing through call signatures.
//! Each span owns atomic flop/byte counters; [`charge_flops`] adds to the
//! *innermost* span of the current thread, and worker threads inherit the
//! spawning span through [`current_context`] / [`with_context`] (the
//! [`crate::ThreadPool`] does this automatically), so parallel kernels
//! attribute their flops to the stage that launched them. When a guard
//! drops, its totals roll up into the parent, making every recorded flop
//! count *inclusive* of children — matching how the paper reports
//! per-stage Gflop/s.
//!
//! Finished spans are appended to a process-global collector drained by
//! [`drain`] (typically via `RunReport::capture`). Collection is O(1)
//! amortized per span: one mutex push plus a histogram update.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use super::histogram::Histogram;

/// How much of the span hierarchy is recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceLevel {
    /// No spans are recorded; [`span`] and [`kernel_span`] are no-ops.
    Off = 0,
    /// Stage-granularity spans only ([`span`]); kernel spans are no-ops.
    Stages = 1,
    /// Everything, including per-kernel-invocation spans
    /// ([`kernel_span`]).
    Kernels = 2,
}

const LEVEL_UNINIT: u8 = u8::MAX;

/// Current level; lazily initialized from `FSI_TRACE` on first read.
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

/// Monotonic time origin for `start_ns` timestamps.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Next span id (ids are unique per process, never reused).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Next small per-thread index handed out by [`thread_index`].
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

/// Spans kept verbatim before the collector starts counting drops (the
/// per-name histograms and parent rollups still see every span).
const MAX_RECORDS: usize = 1 << 20;

fn parse_env_level() -> u8 {
    match std::env::var("FSI_TRACE") {
        Err(_) => TraceLevel::Off as u8,
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "false" | "no" => TraceLevel::Off as u8,
            "2" | "kernels" | "full" | "all" => TraceLevel::Kernels as u8,
            _ => TraceLevel::Stages as u8,
        },
    }
}

/// Returns the active trace level (reading `FSI_TRACE` on first call:
/// unset/`0`/`off` → [`TraceLevel::Off`], `2`/`kernels`/`full` →
/// [`TraceLevel::Kernels`], anything else → [`TraceLevel::Stages`]).
#[inline]
pub fn level() -> TraceLevel {
    let v = LEVEL.load(Ordering::Relaxed);
    let v = if v == LEVEL_UNINIT {
        let parsed = parse_env_level();
        // Racing initializers compute the same value, so a plain store
        // after re-check is fine; set_level wins if it ran in between.
        let _ = LEVEL.compare_exchange(LEVEL_UNINIT, parsed, Ordering::Relaxed, Ordering::Relaxed);
        LEVEL.load(Ordering::Relaxed)
    } else {
        v
    };
    match v {
        2 => TraceLevel::Kernels,
        1 => TraceLevel::Stages,
        _ => TraceLevel::Off,
    }
}

/// Overrides the trace level for the whole process (harnesses call this so
/// stage flops are attributed even when `FSI_TRACE` is unset).
pub fn set_level(l: TraceLevel) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// True when stage spans are being recorded.
#[inline]
pub fn enabled() -> bool {
    level() >= TraceLevel::Stages
}

/// True when kernel-granularity spans are being recorded.
#[inline]
pub fn kernels_enabled() -> bool {
    level() >= TraceLevel::Kernels
}

/// Shared per-span state: identity plus live counters that children and
/// worker threads add to concurrently.
struct SpanCtx {
    id: u64,
    name: &'static str,
    parent: Option<u64>,
    flops: AtomicU64,
    bytes: AtomicU64,
}

thread_local! {
    /// Innermost open span of this thread (the charge target).
    static CURRENT: RefCell<Option<Arc<SpanCtx>>> = const { RefCell::new(None) };
    /// Cached small thread index for span records.
    static THREAD_INDEX: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn thread_index() -> u64 {
    THREAD_INDEX.with(|&i| i)
}

pub(crate) fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One finished span as stored by the collector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within this process.
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Static span name (stage or kernel label).
    pub name: &'static str,
    /// Small index of the thread that opened the span.
    pub thread: u64,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Flops charged to this span, inclusive of children.
    pub flops: u64,
    /// Bytes charged to this span, inclusive of children.
    pub bytes: u64,
}

/// Everything drained from the collector by [`drain`].
#[derive(Debug, Default)]
pub struct TraceData {
    /// Finished spans in completion order.
    pub records: Vec<SpanRecord>,
    /// Per-name latency histograms (merged across threads).
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Spans not kept verbatim because `MAX_RECORDS` (2²⁰) was reached; their
    /// durations and flops still appear in histograms and parent rollups.
    pub dropped: u64,
}

#[derive(Default)]
struct Collector {
    records: Vec<SpanRecord>,
    histograms: BTreeMap<&'static str, Histogram>,
    dropped: u64,
}

static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

fn collector() -> MutexGuard<'static, Option<Collector>> {
    // A panic inside a traced region can poison the lock; the data is a
    // plain append log, so recovering it is always safe.
    COLLECTOR.lock().unwrap_or_else(|e| e.into_inner())
}

/// Drains all finished spans and histograms collected so far.
pub fn drain() -> TraceData {
    let mut guard = collector();
    match guard.take() {
        Some(c) => TraceData {
            records: c.records,
            histograms: c.histograms,
            dropped: c.dropped,
        },
        None => TraceData::default(),
    }
}

/// Discards all collected spans and histograms.
pub fn clear() {
    *collector() = None;
}

/// Summary handed back by [`SpanGuard::finish`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanStats {
    /// Wall time between open and finish.
    pub wall: Duration,
    /// Flops charged to the span, inclusive of children.
    pub flops: u64,
    /// Bytes charged to the span, inclusive of children.
    pub bytes: u64,
}

impl SpanStats {
    /// Attained rate in Gflop/s (0 for a zero-duration span).
    pub fn gflops(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.flops as f64 / s / 1e9
        }
    }
}

struct GuardInner {
    ctx: Arc<SpanCtx>,
    /// The span this one replaced as the thread's innermost (also the
    /// rollup target).
    prev: Option<Arc<SpanCtx>>,
    start: Instant,
    start_ns: u64,
}

/// RAII guard for an open span; the span is finalized (counters rolled up
/// into the parent, record pushed to the collector) when the guard drops.
///
/// Guards are thread-bound: they must be dropped on the thread that opened
/// them (the type is `!Send`, so the compiler enforces this).
pub struct SpanGuard {
    inner: Option<GuardInner>,
    /// Spans maintain a per-thread stack; keep the guard on its thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    fn inactive() -> Self {
        SpanGuard {
            inner: None,
            _not_send: std::marker::PhantomData,
        }
    }

    fn open(name: &'static str) -> Self {
        let parent = CURRENT.with(|c| c.borrow().clone());
        let ctx = Arc::new(SpanCtx {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            name,
            parent: parent.as_ref().map(|p| p.id),
            flops: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        });
        CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&ctx)));
        let start_ns = now_ns();
        SpanGuard {
            inner: Some(GuardInner {
                ctx,
                prev: parent,
                start: Instant::now(),
                start_ns,
            }),
            _not_send: std::marker::PhantomData,
        }
    }

    /// True if this guard is actually recording (false when tracing is
    /// disabled at the relevant level).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Charges flops directly to this span (normally [`charge_flops`] is
    /// used instead, which targets the innermost span of the current
    /// thread).
    pub fn add_flops(&self, n: u64) {
        if let Some(inner) = &self.inner {
            inner.ctx.flops.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Charges bytes directly to this span.
    pub fn add_bytes(&self, n: u64) {
        if let Some(inner) = &self.inner {
            inner.ctx.bytes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Closes the span now and returns its measured stats (zeroes when the
    /// guard was inactive). Harnesses use this to print per-stage rates
    /// without re-deriving them from the collector.
    pub fn finish(mut self) -> SpanStats {
        self.close().unwrap_or_default()
    }

    fn close(&mut self) -> Option<SpanStats> {
        let inner = self.inner.take()?;
        let wall = inner.start.elapsed();
        let dur_ns = wall.as_nanos() as u64;
        // Pop the thread-local stack before touching shared state.
        CURRENT.with(|c| *c.borrow_mut() = inner.prev.clone());
        let flops = inner.ctx.flops.load(Ordering::Relaxed);
        let bytes = inner.ctx.bytes.load(Ordering::Relaxed);
        // Inclusive rollup: children close before their parent, so by the
        // time the parent reads its own counters they contain the whole
        // subtree.
        if let Some(parent) = &inner.prev {
            parent.flops.fetch_add(flops, Ordering::Relaxed);
            parent.bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        let record = SpanRecord {
            id: inner.ctx.id,
            parent: inner.ctx.parent,
            name: inner.ctx.name,
            thread: thread_index(),
            start_ns: inner.start_ns,
            dur_ns,
            flops,
            bytes,
        };
        // Feed the flight recorder before taking the collector lock so an
        // incident dump triggered between the two still sees this span.
        crate::metrics::flight::record_span(
            record.name,
            record.start_ns,
            record.thread,
            dur_ns,
            flops,
        );
        let mut guard = collector();
        let c = guard.get_or_insert_with(Collector::default);
        c.histograms
            .entry(inner.ctx.name)
            .or_default()
            .record(dur_ns);
        if c.records.len() < MAX_RECORDS {
            c.records.push(record);
        } else {
            c.dropped += 1;
        }
        Some(SpanStats { wall, flops, bytes })
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

/// Opens a stage-granularity span (`fsi`, `cls`, `sweep`, …). Returns an
/// inactive guard when tracing is [`TraceLevel::Off`].
pub fn span(name: &'static str) -> SpanGuard {
    if enabled() {
        SpanGuard::open(name)
    } else {
        SpanGuard::inactive()
    }
}

/// Opens a kernel-granularity span (`gemm`, `geqrf`, …). Active only at
/// [`TraceLevel::Kernels`] — per-invocation spans are too hot for the
/// default stage level.
pub fn kernel_span(name: &'static str) -> SpanGuard {
    if kernels_enabled() {
        SpanGuard::open(name)
    } else {
        SpanGuard::inactive()
    }
}

/// Adds `n` flops to the innermost open span of the current thread (no-op
/// when tracing is off or no span is open). `fsi_runtime::flops::add_flops`
/// calls this, so kernels need no extra instrumentation for attribution.
#[inline]
pub fn charge_flops(n: u64) {
    if level() == TraceLevel::Off {
        return;
    }
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.flops.fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// Adds `n` bytes of memory traffic to the innermost open span of the
/// current thread.
#[inline]
pub fn charge_bytes(n: u64) {
    if level() == TraceLevel::Off {
        return;
    }
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.bytes.fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// A cloneable handle to an open span, used to carry span identity across
/// threads (see [`with_context`]).
#[derive(Clone)]
pub struct SpanContext(Arc<SpanCtx>);

/// Returns a handle to the innermost open span of the current thread, if
/// tracing is on and a span is open. [`crate::ThreadPool`] captures this at
/// spawn time so jobs charge the span that launched them.
pub fn current_context() -> Option<SpanContext> {
    if level() == TraceLevel::Off {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone()).map(SpanContext)
}

/// Runs `f` with `ctx` installed as the current span of this thread,
/// restoring the previous context afterwards (also on unwind). With `None`
/// this is just `f()`.
pub fn with_context<R>(ctx: Option<SpanContext>, f: impl FnOnce() -> R) -> R {
    let Some(SpanContext(target)) = ctx else {
        return f();
    };
    struct Restore(Option<Arc<SpanCtx>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(target));
    let _restore = Restore(prev);
    f()
}

/// Serializes tests that toggle the global trace level or drain the global
/// collector; the test harness runs tests concurrently in one process, so
/// such tests must hold this lock for their whole body.
#[doc(hidden)]
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reset() {
        clear();
        set_level(TraceLevel::Stages);
    }

    #[test]
    fn nested_spans_record_parent_links_and_rollup() {
        let _guard = test_lock();
        reset();
        {
            let outer = span("fsi");
            {
                let _inner = span("cls");
                charge_flops(100);
            }
            {
                let _inner = span("bsofi");
                charge_flops(40);
            }
            charge_flops(2);
            let stats = outer.finish();
            assert_eq!(stats.flops, 142, "parent is inclusive of children");
        }
        let data = drain();
        set_level(TraceLevel::Off);
        assert_eq!(data.records.len(), 3);
        let cls = data.records.iter().find(|r| r.name == "cls").unwrap();
        let fsi = data.records.iter().find(|r| r.name == "fsi").unwrap();
        assert_eq!(cls.parent, Some(fsi.id));
        assert_eq!(cls.flops, 100);
        assert_eq!(fsi.flops, 142);
        assert!(fsi.parent.is_none());
        // Children complete (and are recorded) before the parent.
        assert!(
            data.records.iter().position(|r| r.name == "cls").unwrap()
                < data.records.iter().position(|r| r.name == "fsi").unwrap()
        );
        assert_eq!(data.histograms["fsi"].count(), 1);
    }

    #[test]
    fn off_level_records_nothing() {
        let _guard = test_lock();
        clear();
        set_level(TraceLevel::Off);
        let g = span("ghost");
        assert!(!g.is_active());
        charge_flops(5);
        drop(g);
        assert!(drain().records.is_empty());
    }

    #[test]
    fn kernel_spans_gated_by_level() {
        let _guard = test_lock();
        reset();
        assert!(!kernel_span("gemm").is_active());
        set_level(TraceLevel::Kernels);
        assert!(kernel_span("gemm").is_active());
        set_level(TraceLevel::Off);
        clear();
    }

    #[test]
    fn context_propagates_across_threads() {
        let _guard = test_lock();
        reset();
        {
            let outer = span("stage");
            let ctx = current_context();
            assert!(ctx.is_some());
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let ctx = ctx.clone();
                    s.spawn(move || {
                        with_context(ctx, || charge_flops(10));
                    });
                }
            });
            assert_eq!(outer.finish().flops, 40);
        }
        let data = drain();
        set_level(TraceLevel::Off);
        assert_eq!(data.records.len(), 1);
        assert_eq!(data.records[0].flops, 40);
    }

    #[test]
    fn finish_returns_wall_time() {
        let _guard = test_lock();
        reset();
        let g = span("timed");
        std::thread::sleep(Duration::from_millis(2));
        let stats = g.finish();
        assert!(stats.wall >= Duration::from_millis(1));
        assert!(stats.gflops() >= 0.0);
        set_level(TraceLevel::Off);
        clear();
    }
}
