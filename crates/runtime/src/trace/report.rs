//! Run reports: the NDJSON and Chrome `trace_event` exporters.
//!
//! A [`RunReport`] is the serializable snapshot of one traced run: every
//! finished span, the per-name latency histograms, worker utilization from
//! the thread pool, and a small meta header. The NDJSON form (one JSON
//! object per line, see `results/schema.md` at the workspace root) is the
//! stable machine-readable format; the Chrome form is a convenience view
//! loadable in `chrome://tracing` / Perfetto. Both are hand-rolled on the
//! tiny [`super::json`] model so the workspace stays dependency-free.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use super::histogram::Histogram;
use super::json::Json;
use super::span;
use crate::pool::ThreadPool;

/// NDJSON schema version; bump when a record shape changes.
pub const SCHEMA_VERSION: u32 = 1;

/// One finished span as exported (owned strings so parsed reports and
/// captured reports are the same type).
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRow {
    /// Unique span id within the run.
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Stage or kernel label.
    pub name: String,
    /// Small index of the thread that ran the span.
    pub thread: u64,
    /// Start time in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Flops charged to the span, inclusive of children.
    pub flops: u64,
    /// Bytes charged to the span, inclusive of children.
    pub bytes: u64,
}

impl SpanRow {
    /// Duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.dur_ns as f64 / 1e9
    }

    /// Attained rate in Gflop/s.
    pub fn gflops(&self) -> f64 {
        if self.dur_ns == 0 {
            0.0
        } else {
            self.flops as f64 / self.seconds() / 1e9
        }
    }
}

/// Per-worker utilization as exported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerRow {
    /// Worker index (1-based; worker 0 is the scope-calling thread, which
    /// is not tracked here).
    pub worker: u64,
    /// Nanoseconds spent executing jobs.
    pub busy_ns: u64,
    /// Nanoseconds spent waiting for jobs.
    pub idle_ns: u64,
    /// Number of jobs executed.
    pub jobs: u64,
}

impl WorkerRow {
    /// Fraction of tracked time spent busy (0 when nothing was tracked).
    pub fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

/// Aggregate over all spans sharing a name.
#[derive(Clone, Debug, PartialEq)]
pub struct StageTotal {
    /// Span name.
    pub name: String,
    /// Total wall seconds across invocations.
    pub seconds: f64,
    /// Total flops (inclusive of children).
    pub flops: u64,
    /// Total bytes (inclusive of children).
    pub bytes: u64,
    /// Invocation count.
    pub count: u64,
}

impl StageTotal {
    /// Attained rate in Gflop/s.
    pub fn gflops(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.flops as f64 / self.seconds / 1e9
        }
    }
}

/// The full serializable snapshot of one traced run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Schema version of the NDJSON format.
    pub schema: u32,
    /// Name of the producing harness (e.g. `fig8_top`).
    pub command: String,
    /// Thread count the run was configured with.
    pub threads: u64,
    /// Capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Every finished span, in completion order.
    pub spans: Vec<SpanRow>,
    /// Per-name latency histograms.
    pub histograms: Vec<(String, Histogram)>,
    /// Thread-pool worker utilization (empty if no pool was attached).
    pub workers: Vec<WorkerRow>,
    /// Pending jobs in the pool queue at capture time.
    pub queue_depth: u64,
    /// Spans not exported because the collector cap was reached.
    pub dropped: u64,
}

impl RunReport {
    /// Drains the global span collector into a report. `command` names the
    /// producing harness; `threads` defaults to [`crate::default_threads`]
    /// until [`RunReport::with_pool`] overrides it.
    pub fn capture(command: &str) -> RunReport {
        let data = span::drain();
        RunReport {
            schema: SCHEMA_VERSION,
            command: command.to_string(),
            threads: crate::default_threads() as u64,
            unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            spans: data
                .records
                .into_iter()
                .map(|r| SpanRow {
                    id: r.id,
                    parent: r.parent,
                    name: r.name.to_string(),
                    thread: r.thread,
                    start_ns: r.start_ns,
                    dur_ns: r.dur_ns,
                    flops: r.flops,
                    bytes: r.bytes,
                })
                .collect(),
            histograms: data
                .histograms
                .into_iter()
                .map(|(name, h)| (name.to_string(), h))
                .collect(),
            workers: Vec::new(),
            queue_depth: 0,
            dropped: data.dropped,
        }
    }

    /// Attaches worker utilization and queue depth from a pool.
    pub fn with_pool(mut self, pool: &ThreadPool) -> Self {
        let stats = pool.stats();
        self.threads = stats.threads as u64;
        self.queue_depth = stats.queue_depth as u64;
        self.workers = stats
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| WorkerRow {
                worker: i as u64 + 1,
                busy_ns: w.busy.as_nanos() as u64,
                idle_ns: w.idle.as_nanos() as u64,
                jobs: w.jobs,
            })
            .collect();
        self
    }

    /// Aggregates spans by name, in name order.
    pub fn stage_totals(&self) -> Vec<StageTotal> {
        let mut by_name: BTreeMap<&str, StageTotal> = BTreeMap::new();
        for row in &self.spans {
            let t = by_name.entry(&row.name).or_insert_with(|| StageTotal {
                name: row.name.clone(),
                seconds: 0.0,
                flops: 0,
                bytes: 0,
                count: 0,
            });
            t.seconds += row.seconds();
            t.flops += row.flops;
            t.bytes += row.bytes;
            t.count += 1;
        }
        by_name.into_values().collect()
    }

    /// Total wall seconds over spans named `name`.
    pub fn seconds_of(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|r| r.name == name)
            .map(SpanRow::seconds)
            .sum()
    }

    /// Total flops (inclusive) over spans named `name`.
    pub fn flops_of(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.flops)
            .sum()
    }

    /// Number of spans named `name` — the span-as-counter idiom the cluster
    /// cache uses (`cls.cache_hit` / `cls.cache_miss` occurrences).
    pub fn count_of(&self, name: &str) -> usize {
        self.spans.iter().filter(|r| r.name == name).count()
    }

    /// Structural signature of the span tree, one entry per span in
    /// completion order: `path flops=F bytes=B`, where `path` is the
    /// slash-joined ancestor chain. Ids, timestamps, and thread indices
    /// are excluded, so two identical serial runs produce identical
    /// signatures (the determinism contract tested in
    /// `tests/observability.rs`).
    pub fn tree_signature(&self) -> Vec<String> {
        let names: BTreeMap<u64, (&str, Option<u64>)> = self
            .spans
            .iter()
            .map(|r| (r.id, (r.name.as_str(), r.parent)))
            .collect();
        self.spans
            .iter()
            .map(|r| {
                let mut path = vec![r.name.as_str()];
                let mut cur = r.parent;
                while let Some(id) = cur {
                    match names.get(&id) {
                        Some((name, parent)) => {
                            path.push(name);
                            cur = *parent;
                        }
                        None => break, // parent fell outside the capture
                    }
                }
                path.reverse();
                format!("{} flops={} bytes={}", path.join("/"), r.flops, r.bytes)
            })
            .collect()
    }

    /// Renders the per-stage table harnesses print (name, calls, wall
    /// seconds, Gflop/s, p50/p99 latency from the histograms).
    pub fn stage_table(&self) -> String {
        let hists: BTreeMap<&str, &Histogram> = self
            .histograms
            .iter()
            .map(|(n, h)| (n.as_str(), h))
            .collect();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>8} {:>12} {:>10} {:>11} {:>11}\n",
            "span", "calls", "wall (s)", "Gflop/s", "p50", "p99"
        ));
        for t in self.stage_totals() {
            let (p50, p99) = hists
                .get(t.name.as_str())
                .map(|h| (h.quantile(0.5), h.quantile(0.99)))
                .unwrap_or((0, 0));
            out.push_str(&format!(
                "{:<14} {:>8} {:>12.6} {:>10.3} {:>11} {:>11}\n",
                t.name,
                t.count,
                t.seconds,
                t.gflops(),
                format_ns(p50),
                format_ns(p99),
            ));
        }
        out
    }

    /// Serializes to NDJSON (see `results/schema.md`).
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        Json::Obj(vec![
            ("kind".into(), Json::Str("meta".into())),
            ("schema".into(), Json::Int(self.schema as u64)),
            ("command".into(), Json::Str(self.command.clone())),
            ("threads".into(), Json::Int(self.threads)),
            ("unix_ms".into(), Json::Int(self.unix_ms)),
            ("queue_depth".into(), Json::Int(self.queue_depth)),
            ("dropped".into(), Json::Int(self.dropped)),
        ])
        .write(&mut out);
        out.push('\n');
        for s in &self.spans {
            Json::Obj(vec![
                ("kind".into(), Json::Str("span".into())),
                ("id".into(), Json::Int(s.id)),
                (
                    "parent".into(),
                    s.parent.map(Json::Int).unwrap_or(Json::Null),
                ),
                ("name".into(), Json::Str(s.name.clone())),
                ("thread".into(), Json::Int(s.thread)),
                ("start_ns".into(), Json::Int(s.start_ns)),
                ("dur_ns".into(), Json::Int(s.dur_ns)),
                ("flops".into(), Json::Int(s.flops)),
                ("bytes".into(), Json::Int(s.bytes)),
            ])
            .write(&mut out);
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            let buckets = h
                .nonzero_buckets()
                .map(|(i, c)| Json::Arr(vec![Json::Int(i as u64), Json::Int(c)]))
                .collect();
            Json::Obj(vec![
                ("kind".into(), Json::Str("hist".into())),
                ("name".into(), Json::Str(name.clone())),
                ("sum_ns".into(), Json::Int(h.sum())),
                ("buckets".into(), Json::Arr(buckets)),
            ])
            .write(&mut out);
            out.push('\n');
        }
        for w in &self.workers {
            Json::Obj(vec![
                ("kind".into(), Json::Str("worker".into())),
                ("worker".into(), Json::Int(w.worker)),
                ("busy_ns".into(), Json::Int(w.busy_ns)),
                ("idle_ns".into(), Json::Int(w.idle_ns)),
                ("jobs".into(), Json::Int(w.jobs)),
            ])
            .write(&mut out);
            out.push('\n');
        }
        out
    }

    /// Parses the NDJSON form back into a report (exact inverse of
    /// [`RunReport::to_ndjson`]).
    pub fn parse_ndjson(text: &str) -> Result<RunReport, String> {
        let mut report = RunReport::default();
        let mut saw_meta = false;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let bad = |what: &str| format!("line {}: missing/invalid {what}", lineno + 1);
            let u = |key: &str| v.get(key).and_then(Json::as_u64).ok_or_else(|| bad(key));
            match v.get("kind").and_then(Json::as_str) {
                Some("meta") => {
                    saw_meta = true;
                    report.schema = u("schema")? as u32;
                    report.command = v
                        .get("command")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("command"))?
                        .to_string();
                    report.threads = u("threads")?;
                    report.unix_ms = u("unix_ms")?;
                    report.queue_depth = u("queue_depth")?;
                    report.dropped = u("dropped")?;
                }
                Some("span") => report.spans.push(SpanRow {
                    id: u("id")?,
                    parent: match v.get("parent") {
                        Some(Json::Null) | None => None,
                        Some(p) => Some(p.as_u64().ok_or_else(|| bad("parent"))?),
                    },
                    name: v
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("name"))?
                        .to_string(),
                    thread: u("thread")?,
                    start_ns: u("start_ns")?,
                    dur_ns: u("dur_ns")?,
                    flops: u("flops")?,
                    bytes: u("bytes")?,
                }),
                Some("hist") => {
                    let name = v
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("name"))?
                        .to_string();
                    let mut h = Histogram::new();
                    for pair in v
                        .get("buckets")
                        .and_then(Json::as_array)
                        .ok_or_else(|| bad("buckets"))?
                    {
                        let pair = pair.as_array().ok_or_else(|| bad("buckets"))?;
                        let (Some(i), Some(c)) = (
                            pair.first().and_then(Json::as_u64),
                            pair.get(1).and_then(Json::as_u64),
                        ) else {
                            return Err(bad("buckets"));
                        };
                        h.record_bucket(i as usize, c);
                    }
                    h.set_sum(u("sum_ns")?);
                    report.histograms.push((name, h));
                }
                Some("worker") => report.workers.push(WorkerRow {
                    worker: u("worker")?,
                    busy_ns: u("busy_ns")?,
                    idle_ns: u("idle_ns")?,
                    jobs: u("jobs")?,
                }),
                Some(other) => return Err(format!("line {}: unknown kind {other:?}", lineno + 1)),
                None => return Err(bad("kind")),
            }
        }
        if !saw_meta {
            return Err("no meta record".to_string());
        }
        Ok(report)
    }

    /// Serializes to Chrome `trace_event` JSON (open in `chrome://tracing`
    /// or Perfetto). Span rows become complete (`"ph":"X"`) events; worker
    /// rows become metadata counters in `args`.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<Json> = self
            .spans
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(s.name.clone())),
                    ("cat".into(), Json::Str("fsi".into())),
                    ("ph".into(), Json::Str("X".into())),
                    ("ts".into(), Json::Num(s.start_ns as f64 / 1e3)),
                    ("dur".into(), Json::Num(s.dur_ns as f64 / 1e3)),
                    ("pid".into(), Json::Int(1)),
                    ("tid".into(), Json::Int(s.thread)),
                    (
                        "args".into(),
                        Json::Obj(vec![
                            ("flops".into(), Json::Int(s.flops)),
                            ("bytes".into(), Json::Int(s.bytes)),
                        ]),
                    ),
                ])
            })
            .collect();
        for w in &self.workers {
            events.push(Json::Obj(vec![
                ("name".into(), Json::Str(format!("worker-{}", w.worker))),
                ("cat".into(), Json::Str("pool".into())),
                ("ph".into(), Json::Str("M".into())),
                ("pid".into(), Json::Int(1)),
                ("tid".into(), Json::Int(w.worker)),
                (
                    "args".into(),
                    Json::Obj(vec![
                        ("busy_ns".into(), Json::Int(w.busy_ns)),
                        ("idle_ns".into(), Json::Int(w.idle_ns)),
                        ("jobs".into(), Json::Int(w.jobs)),
                    ]),
                ),
            ]));
        }
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(events)),
            ("displayTimeUnit".into(), Json::Str("ms".into())),
        ])
        .to_string()
    }

    /// Writes the NDJSON form to `path`, creating parent directories.
    pub fn write_ndjson(&self, path: &Path) -> io::Result<()> {
        write_creating_dirs(path, &self.to_ndjson())
    }

    /// Writes the Chrome trace form to `path`, creating parent
    /// directories.
    pub fn write_chrome_trace(&self, path: &Path) -> io::Result<()> {
        write_creating_dirs(path, &self.to_chrome_trace())
    }
}

fn write_creating_dirs(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, contents)
}

fn format_ns(ns: u64) -> String {
    if ns == 0 {
        "-".to_string()
    } else if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut h = Histogram::new();
        h.record(1_500);
        h.record(90_000);
        RunReport {
            schema: SCHEMA_VERSION,
            command: "test".into(),
            threads: 4,
            unix_ms: 1_700_000_000_000,
            spans: vec![
                SpanRow {
                    id: 1,
                    parent: None,
                    name: "fsi".into(),
                    thread: 0,
                    start_ns: 0,
                    dur_ns: 100_000,
                    flops: 300,
                    bytes: 64,
                },
                SpanRow {
                    id: 2,
                    parent: Some(1),
                    name: "cls".into(),
                    thread: 0,
                    start_ns: 10,
                    dur_ns: 60_000,
                    flops: 200,
                    bytes: 32,
                },
            ],
            histograms: vec![("fsi".into(), h)],
            workers: vec![WorkerRow {
                worker: 1,
                busy_ns: 75,
                idle_ns: 25,
                jobs: 3,
            }],
            queue_depth: 0,
            dropped: 0,
        }
    }

    #[test]
    fn ndjson_round_trips_exactly() {
        let report = sample_report();
        let text = report.to_ndjson();
        let parsed = RunReport::parse_ndjson(&text).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(RunReport::parse_ndjson("").is_err());
        assert!(RunReport::parse_ndjson("{\"kind\":\"span\"}").is_err());
        assert!(RunReport::parse_ndjson("not json").is_err());
    }

    #[test]
    fn stage_totals_aggregate_by_name() {
        let mut report = sample_report();
        report.spans.push(SpanRow {
            id: 3,
            parent: Some(1),
            name: "cls".into(),
            thread: 1,
            start_ns: 70_000,
            dur_ns: 40_000,
            flops: 100,
            bytes: 0,
        });
        let totals = report.stage_totals();
        let cls = totals.iter().find(|t| t.name == "cls").unwrap();
        assert_eq!(cls.count, 2);
        assert_eq!(cls.flops, 300);
        assert!((cls.seconds - 1e-4).abs() < 1e-12);
        assert!(cls.gflops() > 0.0);
        assert_eq!(report.flops_of("cls"), 300);
        assert!(report.seconds_of("fsi") > 0.0);
    }

    #[test]
    fn tree_signature_ignores_ids_and_threads() {
        let a = sample_report();
        let mut b = sample_report();
        for s in &mut b.spans {
            s.id += 100;
            s.parent = s.parent.map(|p| p + 100);
            s.thread += 7;
            s.start_ns += 999;
        }
        assert_eq!(a.tree_signature(), b.tree_signature());
        assert_eq!(a.tree_signature()[1], "fsi/cls flops=200 bytes=32");
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let text = sample_report().to_chrome_trace();
        let v = Json::parse(&text).unwrap();
        let events = v.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 3); // 2 spans + 1 worker
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
    }

    #[test]
    fn stage_table_lists_all_stages() {
        let table = sample_report().stage_table();
        assert!(table.contains("cls"));
        assert!(table.contains("fsi"));
        assert!(table.contains("Gflop/s"));
    }
}
