//! Minimal JSON value model, writer, and parser.
//!
//! The run-report exporters need JSON but the workspace builds without
//! registry access, so this module hand-rolls the small subset we use:
//! objects with string keys, arrays, strings, booleans, null, and numbers.
//! Unsigned integers get their own variant so flop counts serialize
//! exactly (no `f64` round-trip at 2⁵³).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, written without a decimal point.
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

impl fmt::Display for Json {
    /// Serializes to a compact single-line string (`to_string()`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Error produced by [`Json::parse`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// Description of the failure.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Field lookup on an object (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Value as `u64` if it is an integer (or an integral `Num`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// Value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Value as `&str` if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Value as `bool` if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Value as an array slice if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Appends the serialized form to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest round-trip formatting, but it
                    // omits the decimal point for integral values; that is
                    // still valid JSON.
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null"); // JSON has no NaN/inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not expected in our own output;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("kind".into(), Json::Str("span".into())),
            ("id".into(), Json::Int(u64::MAX)),
            ("parent".into(), Json::Null),
            ("gflops".into(), Json::Num(12.5)),
            (
                "buckets".into(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::Int(3), Json::Int(17)]),
                    Json::Bool(true),
                ]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn big_integers_are_exact() {
        let n = (1u64 << 53) + 1; // not representable in f64
        let text = Json::Int(n).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let text = Json::Str(s.to_string()).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 1, "b": -2.5, "c": "x", "d": [1], "e": false}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(-2.5));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("d").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("e").unwrap().as_bool(), Some(false));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"abc"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
