//! Fixed log-bucket latency histograms.
//!
//! Span durations range from sub-microsecond kernel calls to multi-second
//! sweeps, so linear buckets are useless. Each histogram has 64 buckets
//! where bucket `i` covers `[2^i, 2^(i+1))` nanoseconds (bucket 0 also
//! absorbs zero). The representation is a plain array of counters, so
//! merging histograms from different threads or runs is element-wise
//! addition and recording is branch-free arithmetic on the leading-zero
//! count.

/// Number of log₂ buckets; covers the full `u64` nanosecond range.
pub const BUCKETS: usize = 64;

/// A mergeable latency histogram with power-of-two bucket edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket covering `value`: `floor(log2(value))`, with
    /// 0 and 1 both landing in bucket 0.
    pub fn bucket_index(value: u64) -> usize {
        63 - (value | 1).leading_zeros() as usize
    }

    /// Half-open value range `[lo, hi)` covered by bucket `i` (bucket 63's
    /// upper bound saturates at `u64::MAX`).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        let lo = if i == 0 { 0 } else { 1u64 << i };
        let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
        (lo, hi)
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Adds `count` pre-aggregated observations to bucket `bucket` with a
    /// known value total (used when reconstructing from a serialized
    /// report).
    pub fn record_bucket(&mut self, bucket: usize, count: u64) {
        self.counts[bucket.min(BUCKETS - 1)] += count;
    }

    /// Sets the exact sum of observed values (serialization round-trip).
    pub fn set_sum(&mut self, sum: u64) {
        self.sum = sum;
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Element-wise saturating subtraction of an earlier snapshot of the
    /// same histogram (delta semantics for `metrics::MetricsSnapshot`).
    /// Buckets and sums only ever grow, so on genuine before/after pairs
    /// the saturation never engages.
    pub fn subtract(&mut self, earlier: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(earlier.counts.iter()) {
            *a = a.saturating_sub(*b);
        }
        self.sum = self.sum.saturating_sub(earlier.sum);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Exact sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean of observed values (0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Iterates `(bucket_index, count)` over non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`); 0 if the histogram is empty. Resolution is one
    /// bucket, i.e. a factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_bounds(i).1.saturating_sub(1).max(1);
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(1023), 9);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bounds_partition_the_range() {
        for i in 0..BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo < hi);
            if i > 0 {
                assert_eq!(Histogram::bucket_bounds(i - 1).1, lo);
            }
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1 + 2 + 3 + 1000 + 1_000_000);
        assert!((h.mean() - h.sum() as f64 / 5.0).abs() < 1e-9);
        assert_eq!(h.bucket_count(1), 2); // 2 and 3
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(5);
        b.record(700);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 710);
        assert_eq!(a.bucket_count(Histogram::bucket_index(5)), 2);
    }

    #[test]
    fn quantile_brackets_the_median() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(100); // bucket 6: [64, 128)
        }
        let median = h.quantile(0.5);
        assert!((64..256).contains(&median), "median bound {median}");
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }
}
