//! # fsi-runtime — HPC runtime substrate for the FSI workspace
//!
//! The FSI paper (Jiang, Bai, Scalettar, IPDPS 2016) parallelizes the
//! selected-inversion kernel with a *hybrid MPI/OpenMP* model: MPI ranks own
//! independent Hubbard matrices (coarse grain) while OpenMP threads
//! parallelize the clustering and wrapping loops inside one matrix (fine
//! grain). This crate provides Rust-native equivalents of both layers so the
//! rest of the workspace can reproduce the paper's parallel experiments on a
//! single machine:
//!
//! * [`ThreadPool`] — a persistent worker pool with scoped execution,
//!   [`ThreadPool::scope`], and data-parallel loops ([`parallel_for`],
//!   [`parallel_map`]) with static or dynamic scheduling. This is the
//!   OpenMP analog: pools of an exact size are created for the thread-count
//!   sweeps of Fig. 8 (bottom) and Fig. 11.
//! * [`comm`] — in-process "ranks" with point-to-point messaging and the
//!   collectives the paper uses (`Scatter`, `Gather`, `Broadcast`, `Reduce`,
//!   `Allreduce`, `Barrier`). This is the MPI analog used by the multi-matrix
//!   driver (Alg. 3) and the Fig. 9 hybrid sweep.
//! * [`steal`] — per-worker task deques with Cilk-style steal-half load
//!   balancing. The multi-matrix service tier schedules whole selected
//!   inversions through [`StealQueues`] instead of Alg. 3's static
//!   scatter, so mixed-shape tenant jobs cannot strand a rank idle.
//! * [`flops`] — analytic floating-point-operation accounting. The paper
//!   reports Gflop/s rates for each FSI stage; our dense kernels add their
//!   textbook flop counts to a global counter so harnesses can report the
//!   same rates without hardware performance counters.
//! * [`timing`] — stopwatches and named-section profiles used by the
//!   figure-regeneration harnesses.
//! * [`workspace`] — thread-local reusable scratch buffers: the packed
//!   GEMM engine and the blocked QR application borrow their pack/reflector
//!   workspaces from a per-thread pool instead of allocating per call.
//! * [`trace`] — structured tracing: hierarchical spans with span-scoped
//!   flop/byte counters, log-bucket latency histograms, pool utilization,
//!   and NDJSON / Chrome `trace_event` exporters. Enabled with `FSI_TRACE`
//!   (`1`/`stages` or `2`/`kernels`); off by default at near-zero cost.
//! * [`metrics`] — always-on process metrics: a named registry of
//!   lock-free sharded counters, gauges, and histograms with
//!   snapshot/delta semantics and Prometheus/JSON exporters, plus the
//!   health **flight recorder** — a ring of recent span closures, health
//!   events, and recovery rungs dumped automatically on incidents.
//!
//! The crate is dependency-free apart from the vendored channel used by
//! the pool and has no knowledge of linear algebra; it sits at the bottom
//! of the workspace dependency graph.

#![warn(missing_docs)]

pub mod ckpt;
pub mod comm;
pub mod flops;
pub mod health;
pub mod metrics;
pub mod parallel;
pub mod pool;
pub mod sim;
pub mod steal;
pub mod timing;
pub mod trace;
pub mod workspace;

#[allow(deprecated)] // shims kept for external callers of the old API
pub use flops::{flop_count, reset_flops, FlopCounter};
pub use health::{FsiError, FsiResult, HealthEvent, Stage};
pub use metrics::{Meter, MetricsSnapshot};
pub use parallel::{join, parallel_for, parallel_map, pipeline, Schedule};
pub use pool::{Par, PoolStats, ScopeHandle, ThreadPool, WorkerStats};
pub use steal::StealQueues;
pub use timing::{Profile, Stopwatch};
pub use trace::{RunReport, SpanGuard, SpanStats, TraceLevel};

/// Returns the number of hardware threads available to this process.
///
/// Used as the default pool size when the `FSI_NUM_THREADS` environment
/// variable is not set.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Returns the default thread count: `FSI_NUM_THREADS` if set and valid,
/// otherwise [`hardware_threads`].
pub fn default_threads() -> usize {
    std::env::var("FSI_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(hardware_threads)
}
