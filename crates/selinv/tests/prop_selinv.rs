//! Property-based tests of the selected-inversion layer: the tridiagonal
//! extension, BSOFI's factor structure, and the stability policy.

use fsi_runtime::{Par, ThreadPool};
use fsi_selinv::tridiag::{random_tridiagonal, TridiagFactor};
use fsi_selinv::{bsofi, bsofi_selected, max_stable_cluster, SelectedPattern, StructuredQr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Tridiagonal selected columns equal the dense inverse for arbitrary
    /// shapes.
    #[test]
    fn tridiag_columns_match_dense(n in 1usize..4, l in 1usize..7, seed in any::<u64>()) {
        let t = random_tridiagonal(n, l, seed);
        let f = TridiagFactor::factor(&t);
        let col = seed as usize % l;
        let sel = f.selected_columns(Par::Seq, &[col]);
        let g_ref = t.reference_inverse(Par::Seq);
        for i in 0..l {
            let got = sel.get(i, col).expect("column block");
            let want = t.dense_block(&g_ref, i, col);
            prop_assert!(
                fsi_dense::rel_error(got, &want) < 1e-7,
                "({i},{col}) of (n={n}, l={l})"
            );
        }
    }

    /// Every tridiagonal diagonal block inverts correctly.
    #[test]
    fn tridiag_diagonals_match_dense(n in 1usize..4, l in 1usize..7, seed in any::<u64>()) {
        let t = random_tridiagonal(n, l, seed);
        let f = TridiagFactor::factor(&t);
        let diags = f.all_diagonals(Par::Seq);
        prop_assert_eq!(diags.len(), l);
        let g_ref = t.reference_inverse(Par::Seq);
        for j in 0..l {
            let want = t.dense_block(&g_ref, j, j);
            prop_assert!(
                fsi_dense::rel_error(diags.get(j, j).expect("diag"), &want) < 1e-7,
                "j={j}"
            );
        }
    }

    /// BSOFI's structured QR really produces Qᵀ·M = R with the documented
    /// sparsity for arbitrary p-cyclic matrices.
    #[test]
    fn structured_qr_factors_arbitrary_pcyclic(n in 2usize..4, b in 2usize..6, seed in any::<u64>()) {
        let pc = fsi_pcyclic::random_pcyclic(n, b, seed);
        let f = StructuredQr::factor(Par::Seq, &pc);
        let mut m = pc.assemble_dense();
        f.apply_qt_left(Par::Seq, &mut m);
        let r = f.assemble_r();
        prop_assert!(fsi_dense::rel_error(&m, &r) < 1e-9);
        // Zero pattern: strictly-below-diagonal blocks vanish.
        for i in 1..b {
            for j in 0..i {
                let blk = pc.dense_block(&m, i, j);
                prop_assert!(blk.max_abs() < 1e-10, "({i},{j}) not eliminated");
            }
        }
    }

    /// Selected assembly equals the dense inverse restricted to the
    /// pattern, for every pattern shape and arbitrary p-cyclic matrices.
    #[test]
    fn bsofi_selected_matches_dense_restricted(
        n in 2usize..4,
        b in 1usize..6,
        seed in any::<u64>(),
    ) {
        let pc = fsi_pcyclic::random_pcyclic(n, b, seed);
        let dense = bsofi(Par::Seq, Par::Seq, &pc);
        let mut patterns = vec![SelectedPattern::Diagonals, SelectedPattern::Full];
        patterns.push(SelectedPattern::DiagonalBlock(seed as usize % b));
        for pattern in patterns {
            let sel = bsofi_selected(Par::Seq, Par::Seq, &pc, &pattern).expect("healthy");
            let coords = pattern.coordinates(b);
            prop_assert_eq!(sel.len(), coords.len());
            for (k, l) in coords {
                let got = sel.get(k, l).expect("requested block");
                let want = pc.dense_block(&dense, k, l);
                let err = fsi_dense::rel_error(got, &want);
                prop_assert!(err < 1e-13, "(n={n}, b={b}) {pattern:?} ({k},{l}): {err}");
            }
        }
    }

    /// The look-ahead pipelined factor is bitwise identical to the serial
    /// schedule: every kernel call sees the same inputs either way.
    #[test]
    fn lookahead_factor_bitwise_equals_serial(
        n in 2usize..4,
        b in 2usize..6,
        seed in any::<u64>(),
    ) {
        let pool = ThreadPool::new(3);
        let pc = fsi_pcyclic::random_pcyclic(n, b, seed);
        let serial = StructuredQr::factor(Par::Seq, &pc);
        let look = StructuredQr::factor_lookahead(Par::Pool(&pool), Par::Seq, &pc);
        prop_assert_eq!(serial.assemble_r().as_slice(), look.assemble_r().as_slice());
        let gs = serial.inverse(Par::Seq, Par::Seq);
        let gl = look.inverse(Par::Seq, Par::Seq);
        prop_assert_eq!(gs.as_slice(), gl.as_slice());
    }

    /// The stability cap is monotone: tighter tolerance or a worse growth
    /// rate can only shrink the admissible cluster size.
    #[test]
    fn stability_cap_is_monotone(l in 1usize..64, rate in 1.0f64..100.0, tol_exp in 1usize..12) {
        let tol = 10f64.powi(-(tol_exp as i32));
        let c = max_stable_cluster(l, rate, tol);
        prop_assert!(c >= 1 && c <= l);
        prop_assert!(l % c == 0);
        let c_tighter = max_stable_cluster(l, rate, tol / 100.0);
        prop_assert!(c_tighter <= c, "tighter tolerance grew the cap");
        let c_worse = max_stable_cluster(l, rate * 10.0, tol);
        prop_assert!(c_worse <= c, "worse rate grew the cap");
    }

    /// The measurement set always covers every τ row of an SPXX-style
    /// pairing: for each τ there is a pair (k, ℓ) with both (k,ℓ) and
    /// (ℓ,k) present.
    #[test]
    fn measurement_set_covers_all_temporal_distances(
        b in 1usize..4,
        c in 1usize..4,
        seed in any::<u64>(),
    ) {
        let l = b * c;
        let pc = fsi_pcyclic::random_pcyclic(2, l, seed);
        let q = seed as usize % c;
        let (merged, _) =
            fsi_selinv::fsi::fsi_measurement_set(fsi_selinv::Parallelism::Serial, &pc, c, q)
                .expect("healthy");
        for tau in 0..l {
            let covered = (0..l).any(|k| {
                let ell = (k + l - tau) % l;
                merged.contains(k, ell) && merged.contains(ell, k)
            });
            prop_assert!(covered, "τ={tau} uncovered for (l={l}, c={c}, q={q})");
        }
    }
}
