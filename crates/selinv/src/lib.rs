//! # fsi-selinv — the Fast Selected Inversion algorithm
//!
//! The paper's primary contribution: computing selected blocks of the
//! inverse of a block p-cyclic matrix (a Green's function) in
//! `O(b²c·N³)` flops instead of the explicit form's `O(b³c²·N³)` or the
//! dense baseline's `O((NL)³)`.
//!
//! The pipeline (Alg. 1), one module per stage:
//!
//! * [`cls`](mod@cls) — factor-of-`c` block cyclic reduction with a random shift
//!   `q`: `L` blocks collapse into `b = L/c` cluster products;
//! * [`cache`] — incremental clustering: dirty-slice tracking reuses the
//!   cluster products untouched since the previous refresh;
//! * [`bsofi`](mod@bsofi) — inverse of the reduced matrix by the block structured
//!   orthogonal factorization of Gogolenko–Bai–Scalettar, with a
//!   look-ahead pipelined factor and a pattern-aware selected-assembly
//!   path that skips the dense materialization for diagonal requests;
//! * [`wrap`](mod@wrap) — the reduced inverse's blocks are exact blocks of the
//!   original Green's function (`Ḡ(k₀,ℓ₀) = G(ck₀+o, cℓ₀+o)`); the
//!   adjacency relations (4)–(7) grow the selection from those seeds;
//! * [`fsi`](mod@fsi) — the driver tying the stages together, with the paper's two
//!   single-socket execution styles (coarse-grained "OpenMP" vs
//!   fine-grained "MKL") selectable per run;
//! * [`patterns`] — the four selection shapes S1–S4 and the sparse
//!   selected-inverse container;
//! * [`baselines`] — full LU inversion, the explicit expression, and
//!   unreduced BSOFI, for validation and the complexity table;
//! * [`multi`] — the hybrid ranks×threads application to many Green's
//!   functions (Alg. 3) plus the Edison node-memory model of Fig. 9;
//! * [`flops`] — the closed-form complexity formulas of §II-C;
//! * [`tridiag`] — the paper's stated future work: the FSI recipe
//!   (structured factorization + seeds + wrapping recurrences) applied to
//!   block tridiagonal matrices.

#![deny(missing_docs)]

pub mod baselines;
pub mod bsofi;
pub mod cache;
pub mod cls;
pub mod flops;
pub mod fsi;
pub mod multi;
pub mod patterns;
pub mod stability;
pub mod tridiag;
pub mod wrap;

pub use bsofi::{bsofi, bsofi_selected, StructuredQr};
pub use cache::ClusterCache;
pub use cls::{cls, cls_flops, cls_incremental_flops, Clustered};
pub use flops::{bsofi_selected_flops, structured_qr_flops};
pub use fsi::{fsi, fsi_with_q, FsiOutput, Parallelism, ReducedInverse};
pub use multi::{
    generate_fields, per_rank_bytes, run_multi, shift_for, trace_measure, JobStep, MatrixTask,
    MemoryModel, MultiConfig, MultiResult, Scheduling, TaskSnapshot,
};
pub use patterns::{Pattern, SelectedInverse, SelectedPattern, Selection};
pub use stability::{auto_cluster_size, growth_rate, max_stable_cluster};
pub use tridiag::{random_tridiagonal, BlockTridiagonal, TridiagFactor};
pub use wrap::{
    wrap, wrap_all_diagonals, wrap_all_diagonals_selected, wrap_selected, BlockFactors,
};
