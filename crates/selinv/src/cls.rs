//! CLS — the clustering stage of FSI (block cyclic reduction).
//!
//! A factor-of-`c` block cyclic reduction collapses the `L`-block p-cyclic
//! matrix `M` into a `b = L/c`-block p-cyclic matrix `M̄` whose blocks are
//! descending products of `c` consecutive original blocks (paper Alg. 1,
//! `CLS(M, c, q)`):
//!
//! ```text
//! b̄[m] = b[c·m + o] · b[c·m + o − 1] ⋯ b[c·m + o − c + 1]   (indices mod L)
//! o = c − 1 − q
//! ```
//!
//! The crucial structural fact (paper Eq. (8)) is that `M̄`'s Green's
//! function is an exact subsample of the original:
//! `Ḡ(k₀, ℓ₀) = G(c·k₀ + o, c·ℓ₀ + o)` — clustering loses no information
//! about the selected rows, it only changes which blocks are *directly*
//! available. Cost `2b(c−1)N³`; the `b` cluster products are independent
//! ("embarrassingly parallel"). In the sequential-GEMM modes they advance
//! in lockstep through [`fsi_dense::gemm_batched`] — one batched engine
//! dispatch per chain position instead of `b·(c−1)` small GEMM calls —
//! while the MKL-style mode (pool inside each GEMM) keeps per-cluster
//! chains under `parallel_map`.
//!
//! The cluster size trades reduction against round-off: each product chain
//! multiplies `c` matrices whose singular values spread multiplicatively,
//! so large `c` loses precision (paper cites the stability analysis of
//! Bai–Chen–Scalettar–Yamazaki and recommends `c ≈ √L`). The
//! `ablation_cluster_size` bench sweeps this trade-off.

use fsi_dense::{chain_mul, gemm_batched, BatchOperand, MatMut, MatRef, Matrix, Op};
use fsi_pcyclic::BlockPCyclic;
use fsi_runtime::{parallel_map, Par, Schedule};

/// The output of the clustering stage.
#[derive(Clone, Debug)]
pub struct Clustered {
    /// The reduced `b`-block p-cyclic matrix `M̄`.
    pub reduced: BlockPCyclic,
    /// Cluster size.
    pub c: usize,
    /// Random shift `q ∈ 0..c`.
    pub q: usize,
    /// Original block count `L`.
    pub l_original: usize,
}

impl Clustered {
    /// The 0-based offset `o = c − 1 − q`: original row `o + m·c` is the
    /// reduced row `m`.
    pub fn offset(&self) -> usize {
        self.c - 1 - self.q
    }

    /// Maps a reduced block row `k₀` to its original block row
    /// `c·k₀ + o`.
    pub fn to_original(&self, k0: usize) -> usize {
        self.c * k0 + self.offset()
    }

    /// Maps an original block row to its reduced row if it is a seed row.
    pub fn to_reduced(&self, k: usize) -> Option<usize> {
        let o = self.offset();
        (k % self.c == o % self.c && k >= o % self.c).then(|| (k - o) / self.c)
    }

    /// Number of reduced block rows `b = L/c`.
    pub fn b(&self) -> usize {
        self.reduced.l()
    }
}

/// Runs the clustering stage.
///
/// `par_clusters` parallelizes *across* the `b` independent cluster chains
/// (the paper's OpenMP loop); `par_gemm` parallelizes *inside* each chain's
/// products (the "MKL-style" mode). Passing a pool to both would
/// oversubscribe — the FSI drivers pass a pool to exactly one.
///
/// # Panics
/// Panics unless `c` divides `L` and `q < c`.
pub fn cls(
    par_clusters: Par<'_>,
    par_gemm: Par<'_>,
    pc: &BlockPCyclic,
    c: usize,
    q: usize,
) -> Clustered {
    let l = pc.l();
    assert!(
        c > 0 && l.is_multiple_of(c),
        "cluster size c={c} must divide L={l}"
    );
    assert!(q < c, "shift q={q} must be < c={c}");
    let b = l / c;
    let o = c - 1 - q;
    static METER: fsi_runtime::metrics::Meter = fsi_runtime::metrics::Meter::new("selinv.cls");
    let _meter = METER.start(cls_flops(pc.n(), l, c));
    // The batched lockstep path streams all `b` chains through
    // `gemm_batched` step by step (one engine dispatch per chain
    // position). It is bitwise identical to the per-cluster path — each
    // chain performs the same product sequence through the same small-GEMM
    // kernels — but amortizes dispatch and accounting across the batch.
    // The MKL-style mode (`par_gemm` holding the pool) keeps the
    // per-cluster path so each product parallelizes internally.
    let blocks = if par_gemm.threads() <= 1 {
        cluster_products_batched(par_clusters, pc.blocks(), c, o)
    } else {
        parallel_map(par_clusters, b, Schedule::Static, |m| {
            cluster_product(par_gemm, pc.blocks(), c * m + o, c)
        })
    };
    Clustered {
        reduced: BlockPCyclic::new(blocks),
        c,
        q,
        l_original: l,
    }
}

/// All `b` cluster chains advanced in lockstep: chain step `s` is one
/// [`gemm_batched`] call multiplying every cluster's running product by
/// its next (descending) factor with `beta = 0` store-mode writeback.
/// Two `Vec<Matrix>` ping-pong as accumulator and output, so the whole
/// refresh allocates `2b` matrices once and reuses them across steps.
fn cluster_products_batched(par: Par<'_>, blocks: &[Matrix], c: usize, o: usize) -> Vec<Matrix> {
    let l = blocks.len();
    let b = l / c;
    let n = blocks[0].rows();
    static BATCH_METER: fsi_runtime::metrics::Meter =
        fsi_runtime::metrics::Meter::new("selinv.cls.batch");
    static BATCH_HIST: fsi_runtime::metrics::LazyHistogram =
        fsi_runtime::metrics::LazyHistogram::new("selinv.cls.batch.clusters");
    let _meter = BATCH_METER.start(cls_flops(n, l, c));
    BATCH_HIST.record(b as u64);
    // Chain start: b̄[m] ← b[c·m + o].
    let mut acc: Vec<Matrix> = (0..b).map(|m| blocks[(c * m + o) % l].clone()).collect();
    if c == 1 {
        return acc;
    }
    let mut out: Vec<Matrix> = (0..b).map(|_| Matrix::zeros(n, n)).collect();
    for s in 1..c {
        // Step s multiplies every running product by b[c·m + o − s].
        let accr: Vec<MatRef<'_>> = acc.iter().map(|m| m.as_ref()).collect();
        let factors: Vec<MatRef<'_>> = (0..b)
            .map(|m| blocks[(c * m + o + l - s) % l].as_ref())
            .collect();
        let mut outs: Vec<MatMut<'_>> = out.iter_mut().map(|m| m.as_mut()).collect();
        gemm_batched(
            par,
            1.0,
            Op::NoTrans,
            BatchOperand::Each(&accr),
            Op::NoTrans,
            BatchOperand::Each(&factors),
            0.0,
            &mut outs,
        );
        drop(outs);
        std::mem::swap(&mut acc, &mut out);
    }
    acc
}

/// Descending cyclic product of `count` blocks starting at `from`:
/// `b[from]·b[from−1]⋯` (left-to-right accumulation, matching the paper's
/// chain order). Delegates to [`chain_mul`], whose ping-pong buffers keep
/// a `c`-factor chain at two allocations instead of one per factor.
///
/// Takes a raw block slice rather than a [`BlockPCyclic`] so the
/// incremental [`crate::cache::ClusterCache`] performs the *identical*
/// product sequence a cold [`cls`] would. The bitwise-equality contract
/// between warm and cold refreshes rests on every route — this per-cluster
/// chain and the batched lockstep path of `cluster_products_batched` —
/// executing the same descending factor products through the same
/// small-GEMM kernels in the same accumulation order.
pub(crate) fn cluster_product(
    par: Par<'_>,
    blocks: &[Matrix],
    from: usize,
    count: usize,
) -> Matrix {
    let l = blocks.len();
    let mut idx = from % l;
    let mut factors = Vec::with_capacity(count);
    factors.push(&blocks[idx]);
    for _ in 1..count {
        idx = (idx + l - 1) % l;
        factors.push(&blocks[idx]);
    }
    chain_mul(par, &factors)
}

/// Closed-form flop count of the clustering stage (paper §II-C):
/// `2b(c−1)N³`.
pub fn cls_flops(n: usize, l: usize, c: usize) -> u64 {
    let b = (l / c) as u64;
    2 * b * (c as u64 - 1) * (n as u64).pow(3)
}

/// Flop count of an incremental clustering pass that recomputed only
/// `rebuilt` of the `b` cluster products: `2·rebuilt·(c−1)·N³`.
pub fn cls_incremental_flops(n: usize, c: usize, rebuilt: usize) -> u64 {
    2 * rebuilt as u64 * (c as u64 - 1) * (n as u64).pow(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_dense::rel_error;
    use fsi_pcyclic::random_pcyclic;
    use fsi_runtime::ThreadPool;

    #[test]
    fn cluster_blocks_are_the_right_products() {
        let pc = random_pcyclic(3, 12, 1);
        let cl = cls(Par::Seq, Par::Seq, &pc, 4, 2);
        assert_eq!(cl.b(), 3);
        assert_eq!(cl.offset(), 1);
        // b̄[0] = b[1]·b[0]·b[11]·b[10].
        let want = fsi_dense::chain_mul(
            Par::Seq,
            &[pc.block(1), pc.block(0), pc.block(11), pc.block(10)],
        );
        assert!(rel_error(cl.reduced.block(0), &want) < 1e-13);
        // b̄[2] = b[9]·b[8]·b[7]·b[6].
        let want = fsi_dense::chain_mul(
            Par::Seq,
            &[pc.block(9), pc.block(8), pc.block(7), pc.block(6)],
        );
        assert!(rel_error(cl.reduced.block(2), &want) < 1e-13);
    }

    #[test]
    fn seed_identity_reduced_green_subsamples_original() {
        // Paper Eq. (8): Ḡ(k₀, ℓ₀) = G(c·k₀ + o, c·ℓ₀ + o), for every
        // (c, q) combination.
        let pc = random_pcyclic(2, 8, 2);
        let g_ref = pc.reference_green(Par::Seq);
        for c in [2usize, 4] {
            for q in 0..c {
                let cl = cls(Par::Seq, Par::Seq, &pc, c, q);
                let g_red = cl.reduced.reference_green(Par::Seq);
                let b = cl.b();
                for k0 in 0..b {
                    for l0 in 0..b {
                        let got = cl.reduced.dense_block(&g_red, k0, l0);
                        let want = pc.dense_block(&g_ref, cl.to_original(k0), cl.to_original(l0));
                        assert!(
                            rel_error(&got, &want) < 1e-8,
                            "c={c} q={q} ({k0},{l0}): {}",
                            rel_error(&got, &want)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn index_mapping_roundtrip() {
        let pc = random_pcyclic(2, 20, 3);
        let cl = cls(Par::Seq, Par::Seq, &pc, 5, 3);
        for k0 in 0..cl.b() {
            let orig = cl.to_original(k0);
            assert_eq!(cl.to_reduced(orig), Some(k0));
        }
        // Non-seed rows map to None.
        assert_eq!(cl.to_reduced(cl.offset() + 1), None);
    }

    #[test]
    fn batched_cls_matches_per_cluster_chains_bitwise() {
        // The lockstep batched path must reproduce the per-cluster chain
        // products bit for bit — the warm/cold cache contract and the
        // stabilization tests rest on this.
        let pc = random_pcyclic(5, 12, 9);
        let (c, q) = (4, 1);
        let cl = cls(Par::Seq, Par::Seq, &pc, c, q);
        let o = cl.offset();
        for m in 0..cl.b() {
            let want = cluster_product(Par::Seq, pc.blocks(), c * m + o, c);
            assert_eq!(cl.reduced.block(m), &want, "cluster {m} differs");
        }
    }

    #[test]
    fn parallel_cls_matches_sequential() {
        let pool = ThreadPool::new(4);
        let pc = random_pcyclic(6, 12, 4);
        let seq = cls(Par::Seq, Par::Seq, &pc, 3, 1);
        let par = cls(Par::Pool(&pool), Par::Seq, &pc, 3, 1);
        for m in 0..seq.b() {
            assert!(rel_error(par.reduced.block(m), seq.reduced.block(m)) < 1e-15);
        }
        // And the MKL-style parallelization (inside the gemms).
        let mkl = cls(Par::Seq, Par::Pool(&pool), &pc, 3, 1);
        for m in 0..seq.b() {
            assert!(rel_error(mkl.reduced.block(m), seq.reduced.block(m)) < 1e-14);
        }
    }

    #[test]
    fn c_equal_one_is_identity_reduction() {
        let pc = random_pcyclic(3, 5, 5);
        let cl = cls(Par::Seq, Par::Seq, &pc, 1, 0);
        assert_eq!(cl.b(), 5);
        for m in 0..5 {
            assert!(rel_error(cl.reduced.block(m), pc.block(m)) < 1e-15);
        }
    }

    #[test]
    fn c_equal_l_reduces_to_single_block() {
        let pc = random_pcyclic(2, 6, 6);
        let cl = cls(Par::Seq, Par::Seq, &pc, 6, 0);
        assert_eq!(cl.b(), 1);
        // The single block is the full cyclic product P(L−1).
        let want = fsi_pcyclic::green::cyclic_product_full(Par::Seq, &pc, 5);
        assert!(rel_error(cl.reduced.block(0), &want) < 1e-12);
    }

    #[test]
    fn flop_formula_matches_paper() {
        // 2b(c−1)N³ for (N, L, c) = (100, 100, 10): b = 10.
        assert_eq!(cls_flops(100, 100, 10), 2 * 10 * 9 * 1_000_000);
    }
}
