//! BSOFI — block structured orthogonal factorization inversion
//! (Gogolenko, Bai, Scalettar, Euro-Par 2014; stage 2 of FSI).
//!
//! Computes the inverse `Ḡ = M̄⁻¹` of a (reduced) block p-cyclic matrix
//! with `b` block rows of size `N`, in `O(b²N³)` flops instead of the
//! `O(b³N³)` of a dense factorization, by exploiting the p-cyclic
//! sparsity:
//!
//! **Stage A — structured QR.** Eliminate the subdiagonal blocks with a
//! chain of `b−1` Householder QRs of `2N × N` panels
//! `[D_i; −b̄_{i+1}]`, each orthogonal transform touching only block rows
//! `(i, i+1)`. The corner block `b̄_0` smears down the last block column as
//! the chain advances; the resulting `R` is block *upper bidiagonal plus a
//! dense last block column*:
//!
//! ```text
//!     | R00 E0          C0  |
//!     |     R11 E1      C1  |
//! R = |         R22 ... ... |        Q = Q̃0·Q̃1⋯Q̃_{b−1}
//!     |             ... E_  |
//!     |                 R__ |
//! ```
//!
//! Each panel's work splits into a *critical chain* (the QR itself plus
//! the superdiagonal column update that produces the next panel's `D`)
//! and *trailing work* (the corner's last-column update). The factor
//! routine runs them as a two-stage look-ahead pipeline
//! ([`fsi_runtime::pipeline`]): on a pool, the trailing update of panel
//! `i` overlaps the QR of panel `i+1`, with bitwise-identical output to
//! the serial order (the kernels are deterministic and the overlapped
//! calls see identical inputs).
//!
//! **Stage B — structured `R⁻¹`.** Because `R⁻¹`'s last block row is zero
//! left of the diagonal, the back-substitution recurrences collapse to
//! short products: `X_ij = −R_ii⁻¹(E_i X_{i+1,j} + C_i X_{b−1,j})` with the
//! `C` term active only in the last column. Block columns (or rows — see
//! below) are independent → parallel.
//!
//! **Stage C — `Ḡ = X·Qᵀ`.** Right-apply the stored panel transforms in
//! reverse; each `Q̃_iᵀ` touches a `2N`-wide column slab, applied with the
//! compact-WY kernels so the stage is GEMM-rich.
//!
//! Two assembly paths share the factorization:
//!
//! * [`bsofi`] materializes the full dense `bN × bN` inverse — what the
//!   S3/S4 (rows/columns) wraps need, since every block of `Ḡ` seeds a
//!   walk.
//! * [`bsofi_selected`] assembles only the block rows a
//!   [`SelectedPattern`] requests (PSelInv-style: restrict the inversion
//!   to the sparsity pattern of the request). Row `k` of `X = R⁻¹` is the
//!   chain `X_kk = R_kk⁻¹`, `X_kj = X_{k,j−1}·W_j` with the shared
//!   couplings `W_j = −E_{j−1}·R_jj⁻¹`, plus the shared last column; and
//!   because column `ℓ` of `Ḡ` is final once transforms `b−1, …, ℓ−1`
//!   have been applied, a diagonal-only request replaces the in-place
//!   slab applies of stage C with a *live-column chain*: materialize the
//!   column half of each `Q̃ᵢᵀ` the request needs and advance the one
//!   still-live column block with plain GEMMs (see
//!   [`StructuredQr::selected`]). For the S1/S2 diagonal patterns this
//!   drops the stage B+C constant from ≈`9b²N³` to ≈`3b²N³`, keeps the
//!   work in clean tall GEMMs, and skips the dense materialization.

use fsi_dense::tri::invert_upper;
use fsi_dense::{gemm, geqrf, Matrix, QrFactor};
use fsi_pcyclic::BlockPCyclic;
use fsi_runtime::health::{self, FsiResult, HealthEvent, Stage};
use fsi_runtime::{trace, Par, Schedule};

use crate::patterns::{SelectedInverse, SelectedPattern};

/// Computes the dense inverse `Ḡ = M̄⁻¹` (a `bN × bN` matrix).
///
/// `par_cols` parallelizes the look-ahead pipeline of stage A and the
/// independent block columns of stage B (FSI's OpenMP mode); `par_gemm`
/// parallelizes inside the dense kernels (the "MKL-style" mode). The FSI
/// drivers pass a pool to exactly one of the two.
///
/// ```
/// use fsi_runtime::Par;
/// let m = fsi_pcyclic::random_pcyclic(3, 4, 7);
/// let g = fsi_selinv::bsofi(Par::Seq, Par::Seq, &m);
/// // Ḡ really is the inverse of the assembled matrix.
/// let mut prod = fsi_dense::mul(&m.assemble_dense(), &g);
/// prod.add_diag(-1.0);
/// assert!(prod.max_abs() < 1e-10);
/// ```
pub fn bsofi(par_cols: Par<'_>, par_gemm: Par<'_>, pc: &BlockPCyclic) -> Matrix {
    let b = pc.l();
    if b == 1 {
        // Degenerate single-block matrix: M̄ = I + b̄0; invert via QR to
        // stay in the BSOFI (orthogonal) family.
        let mut m = pc.block(0).clone();
        m.add_diag(1.0);
        let f = geqrf(m);
        let mut x = f.r();
        invert_upper(x.as_mut());
        zero_strict_lower(&mut x);
        f.apply_qt_right(par_gemm, x.as_mut());
        return x;
    }

    let factor = StructuredQr::factor_lookahead(par_cols, par_gemm, pc);
    factor.inverse(par_cols, par_gemm)
}

/// Computes only the blocks of `Ḡ = M̄⁻¹` a [`SelectedPattern`] requests,
/// skipping the dense materialization (and, for sparse patterns, most of
/// the stage B/C flops) of [`bsofi`].
///
/// The result is exact — the same factorization and the same kernel
/// family as the dense path, merely restricted to the requested rows —
/// and agrees with the dense inverse to rounding (property-tested at
/// 1e-13). Work is traced under the `bsofi.selected` span with the
/// factorization nested under `bsofi.lookahead`; the measured flops equal
/// [`crate::flops::bsofi_selected_flops`] exactly.
///
/// Data-dependent failure is fallible, not fatal: a zero or wildly graded
/// `R` diagonal ([`StructuredQr::check_health`]) and any non-finite or
/// overflow-bound assembled block surface as an `Err` before the bad
/// numbers can escape into a caller's Green's function.
///
/// ```
/// use fsi_runtime::Par;
/// use fsi_selinv::{bsofi, bsofi_selected, SelectedPattern};
/// let m = fsi_pcyclic::random_pcyclic(2, 3, 5);
/// let sel = bsofi_selected(Par::Seq, Par::Seq, &m, &SelectedPattern::Diagonals)
///     .expect("well-conditioned test matrix");
/// let dense = bsofi(Par::Seq, Par::Seq, &m);
/// for k in 0..3 {
///     let got = sel.get(k, k).expect("diagonal block");
///     let want = m.dense_block(&dense, k, k);
///     assert!(fsi_dense::rel_error(got, &want) < 1e-13);
/// }
/// ```
pub fn bsofi_selected(
    par_cols: Par<'_>,
    par_gemm: Par<'_>,
    pc: &BlockPCyclic,
    pattern: &SelectedPattern,
) -> FsiResult<SelectedInverse> {
    let _span = trace::span("bsofi.selected");
    static METER: fsi_runtime::metrics::Meter =
        fsi_runtime::metrics::Meter::new("selinv.bsofi.selected");
    let _meter = METER.start(crate::flops::bsofi_selected_flops(pc.n(), pc.l(), pattern));
    let b = pc.l();
    if b == 1 {
        let _ = pattern.rows(1); // bounds-check DiagonalBlock requests
        let mut m = pc.block(0).clone();
        m.add_diag(1.0);
        let f = geqrf(m);
        let mut x = f.r();
        // Pivot probe before the triangular inversion divides by R_ii.
        let diag: Vec<f64> = (0..x.rows()).map(|i| x[(i, i)]).collect();
        health::check_pivots(Stage::Bsofi, 0, &diag)?;
        invert_upper(x.as_mut());
        zero_strict_lower(&mut x);
        f.apply_qt_right(par_gemm, x.as_mut());
        let mut out = SelectedInverse::new();
        out.insert(0, 0, x);
        scan_selected(&mut out)?;
        return Ok(out);
    }
    let factor = StructuredQr::factor_lookahead(par_cols, par_gemm, pc);
    factor.check_health()?;
    let mut out = factor.selected(par_cols, par_gemm, pattern);
    scan_selected(&mut out)?;
    Ok(out)
}

/// Output-boundary probe of an assembled selection: visits blocks in
/// coordinate order (deterministic over the hash map), runs the injection
/// hook, and scans for non-finite / overflow-bound entries.
fn scan_selected(sel: &mut SelectedInverse) -> Result<(), HealthEvent> {
    for (k, l) in sel.sorted_coordinates() {
        let blk = sel.get_mut(k, l).expect("coordinate just listed");
        #[cfg(feature = "fault-inject")]
        health::inject::poison(Stage::Bsofi, k, blk.as_mut_slice());
        health::check_block(Stage::Bsofi, k, blk.as_slice())?;
    }
    Ok(())
}

/// The structured QR factorization of a block p-cyclic matrix
/// (stage A output, reusable for tests and for solving).
pub struct StructuredQr {
    /// Panel factorizations: `qrs[i]` for `i < b−1` factors the `2N × N`
    /// panel at block rows `(i, i+1)`; `qrs[b−1]` factors the final
    /// `N × N` diagonal block.
    qrs: Vec<QrFactor>,
    /// Superdiagonal fill `E_i = R(i, i+1)` for `i = 0..b−1`;
    /// `e[b−2]` is the merged last-column entry `R(b−2, b−1)`.
    e: Vec<Matrix>,
    /// Last-column fill `C_i = R(i, b−1)` for `i = 0..b−3` (empty if
    /// `b < 3`).
    c: Vec<Matrix>,
    /// Cached diagonal factors `R_jj` (extracted once at factor time so
    /// the assembly inner loops never re-materialize them).
    r_diags: Vec<Matrix>,
    n: usize,
    b: usize,
}

impl StructuredQr {
    /// Runs stage A on the p-cyclic matrix, panels strictly in order (the
    /// serial reference schedule; see [`Self::factor_lookahead`]).
    ///
    /// # Panics
    /// Panics if `b < 2` (use [`bsofi`] which handles `b = 1`).
    pub fn factor(par_gemm: Par<'_>, pc: &BlockPCyclic) -> Self {
        Self::factor_impl(Par::Seq, par_gemm, pc)
    }

    /// Stage A with look-ahead pipelining: on a pool, the trailing
    /// last-column update of panel `i` overlaps the QR + superdiagonal
    /// update of panel `i+1` (the critical chain stays on the calling
    /// thread). Output is bitwise-identical to [`Self::factor`] — every
    /// kernel call sees the same inputs in either schedule. Traced under
    /// the `bsofi.lookahead` span.
    ///
    /// # Panics
    /// Panics if `b < 2`.
    pub fn factor_lookahead(par_pipeline: Par<'_>, par_gemm: Par<'_>, pc: &BlockPCyclic) -> Self {
        let _span = trace::span("bsofi.lookahead");
        Self::factor_impl(par_pipeline, par_gemm, pc)
    }

    fn factor_impl(par_pipe: Par<'_>, par_gemm: Par<'_>, pc: &BlockPCyclic) -> Self {
        let n = pc.n();
        let b = pc.l();
        assert!(b >= 2, "StructuredQr requires at least two block rows");
        static METER: fsi_runtime::metrics::Meter =
            fsi_runtime::metrics::Meter::new("selinv.bsofi.factor");
        let _meter = METER.start(crate::flops::structured_qr_flops(n, b));
        let mut e: Vec<Matrix> = Vec::with_capacity(b - 1);
        let mut c: Vec<Matrix> = Vec::with_capacity(b.saturating_sub(2));
        // Current diagonal block D_i (starts as the identity at row 0) and
        // the corner fill propagating down the last column.
        let mut d_cur = Matrix::identity(n);
        let mut corner = pc.block(0).clone();
        // Panels 0..b−2 run as a two-stage pipeline: stage A carries the
        // critical chain (QR of [D_i; −b̄_{i+1}], then the column-(i+1)
        // update [0; I] → (E_i, D_{i+1})), stage B the trailing chain (the
        // last-column update [corner; 0] → (C_i, corner')).
        let mut qrs = {
            let d_cur = &mut d_cur;
            let e = &mut e;
            let corner = &mut corner;
            let c = &mut c;
            fsi_runtime::pipeline(
                par_pipe,
                b - 2,
                move |i| {
                    let mut panel = Matrix::zeros(2 * n, n);
                    panel.set_block(0, 0, d_cur.as_ref());
                    {
                        let mut bottom = panel.view_mut(n, 0, n, n);
                        bottom.copy_from(pc.block(i + 1).as_ref());
                        bottom.scale(-1.0);
                    }
                    let f = geqrf(panel);
                    // Column i+1 currently holds [0; I] in rows (i, i+1).
                    let mut col = Matrix::zeros(2 * n, n);
                    col.view_mut(n, 0, n, n)
                        .copy_from(Matrix::identity(n).as_ref());
                    f.apply_qt_left(par_gemm, col.as_mut());
                    e.push(col.block(0, 0, n, n));
                    *d_cur = col.block(n, 0, n, n);
                    f
                },
                move |_i, f: &QrFactor| {
                    // Last column currently holds [corner; 0].
                    let mut last = Matrix::zeros(2 * n, n);
                    last.set_block(0, 0, corner.as_ref());
                    f.apply_qt_left(par_gemm, last.as_mut());
                    c.push(last.block(0, 0, n, n));
                    *corner = last.block(n, 0, n, n);
                },
            )
        };
        // Panel b−2: column b−1 IS the last column, holding [corner; I] —
        // the superdiagonal and corner fills merge, so the two pipeline
        // chains converge and this panel runs after the pipeline drains.
        {
            let mut panel = Matrix::zeros(2 * n, n);
            panel.set_block(0, 0, d_cur.as_ref());
            {
                let mut bottom = panel.view_mut(n, 0, n, n);
                bottom.copy_from(pc.block(b - 1).as_ref());
                bottom.scale(-1.0);
            }
            let f = geqrf(panel);
            let mut last = Matrix::zeros(2 * n, n);
            last.set_block(0, 0, corner.as_ref());
            last.view_mut(n, 0, n, n)
                .copy_from(Matrix::identity(n).as_ref());
            f.apply_qt_left(par_gemm, last.as_mut());
            e.push(last.block(0, 0, n, n));
            d_cur = last.block(n, 0, n, n);
            qrs.push(f);
        }
        // Final N × N diagonal block.
        qrs.push(geqrf(d_cur));
        let r_diags = qrs
            .iter()
            .map(|f| {
                let mut r = Matrix::zeros(n, n);
                f.write_r(r.as_mut());
                r
            })
            .collect();
        StructuredQr {
            qrs,
            e,
            c,
            r_diags,
            n,
            b,
        }
    }

    /// Block size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Block row count `b`.
    pub fn b(&self) -> usize {
        self.b
    }

    /// The upper-triangular `N × N` diagonal factor `R_jj` (borrowed from
    /// the cache built at factor time — no per-call allocation).
    pub fn r_diag(&self, j: usize) -> &Matrix {
        &self.r_diags[j]
    }

    /// Stage-boundary health probe on the factorization: checks the
    /// stacked `R_jj` diagonals (the pivots every stage B/C division goes
    /// through) for zeros, non-finite values, and a magnitude spread past
    /// [`fsi_runtime::health::KAPPA_MAX`]. Essentially free — the
    /// diagonals are cached at factor time and the scan is `O(bN)`.
    ///
    /// Reported column indices are global (block `j` contributes columns
    /// `jN..(j+1)N`).
    pub fn check_health(&self) -> Result<(), HealthEvent> {
        if !health::probes_enabled() {
            return Ok(());
        }
        let mut diag = Vec::with_capacity(self.b * self.n);
        for j in 0..self.b {
            let r = self.r_diag(j);
            for i in 0..self.n {
                diag.push(r[(i, i)]);
            }
        }
        health::check_pivots(Stage::Bsofi, 0, &diag)
    }

    /// Superdiagonal fill `E_j` (`j = b−2` is the merged last-column
    /// entry).
    pub fn e_block(&self, j: usize) -> &Matrix {
        &self.e[j]
    }

    /// Last-column fill `C_j` for `j ≤ b−3`.
    pub fn c_block(&self, j: usize) -> &Matrix {
        &self.c[j]
    }

    /// Assembles the dense `R` factor (tests / inspection; O((bN)²)).
    pub fn assemble_r(&self) -> Matrix {
        let (n, b) = (self.n, self.b);
        let mut r = Matrix::zeros(b * n, b * n);
        for j in 0..b {
            r.set_block(j * n, j * n, self.r_diag(j).as_ref());
        }
        for (i, e) in self.e.iter().enumerate() {
            r.set_block(i * n, (i + 1) * n, e.as_ref());
        }
        for (i, cblk) in self.c.iter().enumerate() {
            r.set_block(i * n, (b - 1) * n, cblk.as_ref());
        }
        r
    }

    /// Applies the accumulated `Qᵀ` from the right to a dense `? × bN`
    /// matrix (stage C primitive): `X := X·Qᵀ`.
    pub fn apply_qt_right(&self, par_gemm: Par<'_>, x: &mut Matrix) {
        let (n, b) = (self.n, self.b);
        assert_eq!(x.cols(), b * n, "apply_qt_right width mismatch");
        let rows = x.rows();
        // Qᵀ = Q̃_{b−1}ᵀ·Q̃_{b−2}ᵀ⋯Q̃_0ᵀ; right-multiplication applies the
        // leftmost factor first.
        for i in (0..b).rev() {
            let width = if i == b - 1 { n } else { 2 * n };
            let slab = x.view_mut(0, i * n, rows, width);
            self.qrs[i].apply_qt_right(par_gemm, slab);
        }
    }

    /// Applies `Qᵀ` from the left to a dense `bN × ?` matrix:
    /// `X := Qᵀ·X` (used to verify `QᵀM̄ = R` and to solve systems).
    pub fn apply_qt_left(&self, par_gemm: Par<'_>, x: &mut Matrix) {
        let (n, b) = (self.n, self.b);
        assert_eq!(x.rows(), b * n, "apply_qt_left height mismatch");
        let cols = x.cols();
        // Qᵀ·X applies Q̃_0ᵀ first.
        for i in 0..b {
            let height = if i == b - 1 { n } else { 2 * n };
            let slab = x.view_mut(i * n, 0, height, cols);
            self.qrs[i].apply_qt_left(par_gemm, slab);
        }
    }

    /// Stage B + C: the dense inverse `Ḡ = R⁻¹·Qᵀ`.
    pub fn inverse(&self, par_cols: Par<'_>, par_gemm: Par<'_>) -> Matrix {
        let (n, b) = (self.n, self.b);
        let dim = b * n;
        let rinv = self.rinv_diagonals();
        let mut g = Matrix::zeros(dim, dim);
        // Stage B: build X = R⁻¹ column by column (independent columns →
        // parallel_map), then write the blocks into the dense output.
        let columns: Vec<Vec<(usize, Matrix)>> =
            fsi_runtime::parallel_map(par_cols, b, Schedule::Dynamic(1), |j| {
                self.rinv_column(par_gemm, &rinv, j)
            });
        for (j, col) in columns.into_iter().enumerate() {
            for (i, blk) in col {
                g.set_block(i * n, j * n, blk.as_ref());
            }
        }
        // Stage C: Ḡ = X·Qᵀ.
        self.apply_qt_right_cols(par_cols, par_gemm, &mut g);
        g
    }

    /// Pattern-restricted stage B + C: assembles only the requested
    /// blocks of `Ḡ` (see [`bsofi_selected`]). `par_rows` parallelizes
    /// the stage C row bands of dense ([`SelectedPattern::Full`])
    /// requests; `par_gemm` parallelizes inside the kernels.
    pub fn selected(
        &self,
        par_rows: Par<'_>,
        par_gemm: Par<'_>,
        pattern: &SelectedPattern,
    ) -> SelectedInverse {
        let (n, b) = (self.n, self.b);
        let rows = pattern.rows(b);
        let kmin = rows[0];
        let rinv = self.rinv_diagonals();
        // Shared interior couplings W_j = −E_{j−1}·R_jj⁻¹: every row whose
        // recurrence passes column j multiplies by the same W_j.
        let mut w: Vec<Option<Matrix>> = (0..b).map(|_| None).collect();
        for (j, slot) in w.iter_mut().enumerate().take(b - 1).skip(kmin + 1) {
            let mut wj = Matrix::zeros(n, n);
            gemm(
                par_gemm,
                -1.0,
                self.e[j - 1].as_ref(),
                rinv[j].as_ref(),
                0.0,
                wj.as_mut(),
            );
            *slot = Some(wj);
        }
        // Shared last block column X_{i,b−1} for i ≥ kmin (the only column
        // whose recurrence needs the C fills).
        let x_last = self.rinv_last_column_from(par_gemm, &rinv, kmin);
        // Stage B: the requested rows of X = R⁻¹, written straight into a
        // stacked buffer (band p ↔ block row rows[p]) — no per-row
        // temporaries or restacking copies.
        let mut buf = Matrix::zeros(rows.len() * n, b * n);
        self.fill_x_rows(par_gemm, &rows, &rinv, &w, &x_last, kmin, &mut buf);
        if matches!(pattern, SelectedPattern::Full) {
            // Dense request: stage C degenerates to the full right-apply.
            self.apply_qt_right_cols(par_rows, par_gemm, &mut buf);
            let mut out = SelectedInverse::new();
            for (p, &k) in rows.iter().enumerate() {
                for l in pattern.cols_for_row(k, b) {
                    out.insert(k, l, buf.block(p * n, l * n, n, n));
                }
            }
            return out;
        }
        self.diagonal_chain(par_gemm, &rows, &buf)
    }

    /// Writes the requested rows of `X = R⁻¹` into `buf` (band `p` ↔
    /// block row `rows[p]`): the diagonal blocks `X_kk = R_kk⁻¹` and the
    /// shared last column first, then the chain columns
    /// `X_kj = X_{k,j−1}·W_j` — batched per column, since every requested
    /// row `k < j` advances with the *same* `W_j`, into one tall
    /// `(prefix·N) × N × N` GEMM. Same flops as per-row chains, far
    /// better kernel shapes.
    #[allow(clippy::too_many_arguments)]
    fn fill_x_rows(
        &self,
        par_gemm: Par<'_>,
        rows: &[usize],
        rinv: &[Matrix],
        w: &[Option<Matrix>],
        x_last: &[Matrix],
        kmin: usize,
        buf: &mut Matrix,
    ) {
        let (n, b) = (self.n, self.b);
        for (p, &k) in rows.iter().enumerate() {
            if k < b - 1 {
                buf.set_block(p * n, k * n, rinv[k].as_ref());
            }
            buf.set_block(p * n, (b - 1) * n, x_last[k - kmin].as_ref());
        }
        for (j, w_j) in w.iter().enumerate().take(b - 1).skip(kmin + 1) {
            let prefix = rows.partition_point(|&k| k < j);
            if prefix == 0 {
                continue;
            }
            // Column j−1 of every chain row is complete (previous sweep
            // step, or the diagonal block for row j−1 itself).
            let (src, dst) = buf
                .view_mut(0, (j - 1) * n, prefix * n, 2 * n)
                .split_at_col(n);
            gemm(
                par_gemm,
                1.0,
                src.as_ref(),
                w_j.as_ref().expect("W_j computed for j > kmin").as_ref(),
                0.0,
                dst,
            );
        }
    }

    /// Stage C for diagonal requests, as a live-column chain.
    ///
    /// With the panel transforms applied right-to-left, column `ℓ` of `Ḡ`
    /// is final once transform `ℓ−1` has run, and at transform `i` only
    /// two column blocks of the evolving product are ever read again:
    /// column `i` for the requested rows `k ≤ i` (input to transform
    /// `i−1`) and column `i+1` for row `i+1` (that row's final diagonal —
    /// its column-`i` input is `X(i+1, i) = 0`). So instead of in-place
    /// compact-WY slab applies, materialize the column half of `Q̃ᵢᵀ`
    /// each group needs (one ORMQR on an `N`-wide identity block) and
    /// advance the live block with plain GEMMs:
    ///
    /// ```text
    /// live ← X(:, b−1)·Q̃_{b−1}ᵀ
    /// for i = b−2, …:
    ///   Ḡ(i+1, i+1) = live[i+1]·Z[N.., :]         Z = Q̃ᵢᵀ·[0; I]
    ///   live[..gA]  = X(.., i)·Z'[..N, :]
    ///               + live[..gA]·Z'[N.., :]       Z' = Q̃ᵢᵀ·[I; 0]
    /// ```
    ///
    /// The GEMM shapes are tall and clean (`gA·N × N × N`), which is why
    /// this path beats the dense inverse by more than its flop ratio.
    fn diagonal_chain(&self, par_gemm: Par<'_>, rows: &[usize], buf: &Matrix) -> SelectedInverse {
        let (n, b) = (self.n, self.b);
        let r_cnt = rows.len();
        let kmin = rows[0];
        let mut out = SelectedInverse::new();
        // live := X(:, b−1)·Q̃_{b−1}ᵀ (the final panel is N-wide).
        let mut z_last = Matrix::identity(n);
        self.qrs[b - 1].apply_qt_left(par_gemm, z_last.as_mut());
        let mut live = Matrix::zeros(r_cnt * n, n);
        gemm(
            par_gemm,
            1.0,
            buf.view(0, (b - 1) * n, r_cnt * n, n),
            z_last.as_ref(),
            0.0,
            live.as_mut(),
        );
        let mut scratch = Matrix::zeros(r_cnt * n, n);
        let mut z = Matrix::zeros(2 * n, 2 * n);
        for i in (kmin.saturating_sub(1)..b - 1).rev() {
            // The gA requested rows `k ≤ i` precede row i+1 in the stack.
            let ga = rows.partition_point(|&k| k <= i);
            let has_b = rows.get(ga) == Some(&(i + 1));
            if ga == 0 && !has_b {
                continue;
            }
            // Materialize only the column halves of Q̃ᵢᵀ this step reads
            // (columns 0..N feed the live advance, columns N..2N the
            // finished diagonal); one apply on a shifted identity covers
            // both, and the ORMQR charge is linear in the width either way.
            let lo = if ga > 0 { 0 } else { n };
            let hi = if has_b { 2 * n } else { n };
            fill_shifted_identity(&mut z, lo, hi - lo);
            self.qrs[i].apply_qt_left(par_gemm, z.view_mut(0, 0, 2 * n, hi - lo));
            if has_b {
                let mut g = Matrix::zeros(n, n);
                gemm(
                    par_gemm,
                    1.0,
                    live.view(ga * n, 0, n, n),
                    z.view(n, n - lo, n, n),
                    0.0,
                    g.as_mut(),
                );
                out.insert(i + 1, i + 1, g);
            }
            if ga > 0 {
                gemm(
                    par_gemm,
                    1.0,
                    buf.view(0, i * n, ga * n, n),
                    z.view(0, 0, n, n),
                    0.0,
                    scratch.view_mut(0, 0, ga * n, n),
                );
                gemm(
                    par_gemm,
                    1.0,
                    live.view(0, 0, ga * n, n),
                    z.view(n, 0, n, n),
                    1.0,
                    scratch.view_mut(0, 0, ga * n, n),
                );
                std::mem::swap(&mut live, &mut scratch);
            }
        }
        if kmin == 0 {
            out.insert(0, 0, live.block(0, 0, n, n));
        }
        out
    }

    /// The diagonal inverses `R_jj⁻¹` (independent; cheap: `b` triangles
    /// of size `N`).
    fn rinv_diagonals(&self) -> Vec<Matrix> {
        (0..self.b)
            .map(|j| {
                let mut r = self.r_diag(j).clone();
                invert_upper(r.as_mut());
                zero_strict_lower(&mut r);
                r
            })
            .collect()
    }

    /// Stage C with row-band parallelism: each pool worker owns a disjoint
    /// horizontal band of `X` and applies the panel chain to it (the panel
    /// transforms act on columns, so row bands are independent).
    fn apply_qt_right_cols(&self, par_rows: Par<'_>, par_gemm: Par<'_>, x: &mut Matrix) {
        let rows = x.rows();
        let threads = par_rows.threads().min(rows).max(1);
        if threads <= 1 {
            self.apply_qt_right(par_gemm, x);
            return;
        }
        let pool = par_rows.pool().expect("threads > 1 implies pool");
        let chunk = rows.div_ceil(threads);
        // Split into disjoint row bands.
        let mut bands = Vec::new();
        let mut rest = x.as_mut();
        while rest.rows() > chunk {
            let (head, tail) = rest.split_at_row(chunk);
            bands.push(head);
            rest = tail;
        }
        bands.push(rest);
        pool.scope(|s| {
            for band in bands {
                let mut band = band;
                s.spawn(move || {
                    let (n, b) = (self.n, self.b);
                    for i in (0..b).rev() {
                        let width = if i == b - 1 { n } else { 2 * n };
                        let rows_band = band.rows();
                        let slab = band.rb_mut().submatrix(0, i * n, rows_band, width);
                        self.qrs[i].apply_qt_right(Par::Seq, slab);
                    }
                });
            }
        });
    }

    /// Computes the nonzero blocks of column `j` of `X = R⁻¹`:
    /// returns `(block_row, block)` pairs.
    fn rinv_column(&self, par_gemm: Par<'_>, rinv: &[Matrix], j: usize) -> Vec<(usize, Matrix)> {
        let n = self.n;
        let b = self.b;
        let mut out = Vec::with_capacity(j + 1);
        out.push((j, rinv[j].clone()));
        if j == 0 {
            return out;
        }
        let last_col = j == b - 1;
        // Walk upward: X_ij = −R_ii⁻¹·(E_i·X_{i+1,j} [+ C_i·X_{b−1,j}]).
        let x_last = if last_col { Some(&rinv[b - 1]) } else { None };
        let mut x_below: Matrix = rinv[j].clone();
        for i in (0..j).rev() {
            let mut t = Matrix::zeros(n, n);
            gemm(
                par_gemm,
                -1.0,
                self.e[i].as_ref(),
                x_below.as_ref(),
                0.0,
                t.as_mut(),
            );
            if last_col && i <= b.saturating_sub(3) && i < self.c.len() {
                if let Some(xl) = x_last {
                    gemm(
                        par_gemm,
                        -1.0,
                        self.c[i].as_ref(),
                        xl.as_ref(),
                        1.0,
                        t.as_mut(),
                    );
                }
            }
            let mut xij = Matrix::zeros(n, n);
            gemm(
                par_gemm,
                1.0,
                rinv[i].as_ref(),
                t.as_ref(),
                0.0,
                xij.as_mut(),
            );
            out.push((i, xij));
            x_below = out.last().expect("just pushed").1.clone();
        }
        out
    }

    /// The last block column `X_{i,b−1}` of `X = R⁻¹` for `i ≥ stop`, via
    /// the same upward recurrence as [`Self::rinv_column`] truncated at
    /// `stop`. Entry `i` lands at index `i − stop`.
    fn rinv_last_column_from(
        &self,
        par_gemm: Par<'_>,
        rinv: &[Matrix],
        stop: usize,
    ) -> Vec<Matrix> {
        let (n, b) = (self.n, self.b);
        let mut out = vec![Matrix::zeros(0, 0); b - stop];
        out[b - 1 - stop] = rinv[b - 1].clone();
        for i in (stop..b - 1).rev() {
            let mut t = Matrix::zeros(n, n);
            gemm(
                par_gemm,
                -1.0,
                self.e[i].as_ref(),
                out[i + 1 - stop].as_ref(),
                0.0,
                t.as_mut(),
            );
            if i <= b.saturating_sub(3) && i < self.c.len() {
                gemm(
                    par_gemm,
                    -1.0,
                    self.c[i].as_ref(),
                    out[b - 1 - stop].as_ref(),
                    1.0,
                    t.as_mut(),
                );
            }
            let mut xi = Matrix::zeros(n, n);
            gemm(
                par_gemm,
                1.0,
                rinv[i].as_ref(),
                t.as_ref(),
                0.0,
                xi.as_mut(),
            );
            out[i - stop] = xi;
        }
        out
    }
}

/// Fills the first `cols` columns of `z` with an identity block whose
/// top-left corner is at row `off`, zeros elsewhere — the right-hand side
/// that materializes column `off..off+cols` of `Q̃ᵢᵀ` under
/// [`QrFactor::apply_qt_left`].
fn fill_shifted_identity(z: &mut Matrix, off: usize, cols: usize) {
    let rows = z.rows();
    for j in 0..cols {
        for i in 0..rows {
            z[(i, j)] = 0.0;
        }
        z[(off + j, j)] = 1.0;
    }
}

/// Zeroes the strict lower triangle (invert_upper leaves the reflector
/// storage there untouched).
fn zero_strict_lower(m: &mut Matrix) {
    let n = m.rows();
    for j in 0..n {
        for i in j + 1..n {
            m[(i, j)] = 0.0;
        }
    }
}

/// Closed-form flop count of full BSOFI (paper §II-C): `≈ 7b²N³`. The
/// exact kernel-by-kernel counts (including the selected-assembly paths)
/// live in [`crate::flops::bsofi_selected_flops`].
pub fn bsofi_flops(n: usize, b: usize) -> u64 {
    7 * (b as u64).pow(2) * (n as u64).pow(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_dense::{mul, rel_error};
    use fsi_pcyclic::random_pcyclic;
    use fsi_runtime::ThreadPool;

    #[test]
    fn qt_m_equals_r() {
        let pc = random_pcyclic(4, 5, 1);
        let f = StructuredQr::factor(Par::Seq, &pc);
        let mut m = pc.assemble_dense();
        f.apply_qt_left(Par::Seq, &mut m);
        let r = f.assemble_r();
        assert!(rel_error(&m, &r) < 1e-12, "QᵀM ≠ R: {}", rel_error(&m, &r));
        // R's unstored positions really are zero: check one below-diagonal
        // and one interior block of QᵀM against zero.
        let below = pc.dense_block(&m, 3, 1);
        assert!(below.max_abs() < 1e-12);
    }

    #[test]
    fn bsofi_matches_dense_inverse_various_sizes() {
        for &(n, b) in &[(2usize, 2usize), (3, 3), (4, 4), (3, 6), (5, 2), (2, 8)] {
            let pc = random_pcyclic(n, b, (n * 31 + b) as u64);
            let got = bsofi(Par::Seq, Par::Seq, &pc);
            let want = pc.reference_green(Par::Seq);
            assert!(
                rel_error(&got, &want) < 1e-9,
                "(n={n}, b={b}): rel err {}",
                rel_error(&got, &want)
            );
        }
    }

    #[test]
    fn bsofi_single_block() {
        let pc = random_pcyclic(5, 1, 9);
        let got = bsofi(Par::Seq, Par::Seq, &pc);
        let want = pc.reference_green(Par::Seq);
        assert!(rel_error(&got, &want) < 1e-10);
    }

    #[test]
    fn bsofi_inverse_residual() {
        // MḠ = I directly, independent of the LU reference.
        let pc = random_pcyclic(6, 4, 10);
        let g = bsofi(Par::Seq, Par::Seq, &pc);
        let m = pc.assemble_dense();
        let mut prod = mul(&m, &g);
        prod.add_diag(-1.0);
        assert!(prod.max_abs() < 1e-10, "MḠ − I: {}", prod.max_abs());
    }

    #[test]
    fn parallel_modes_match_sequential() {
        let pool = ThreadPool::new(4);
        let pc = random_pcyclic(5, 6, 11);
        let seq = bsofi(Par::Seq, Par::Seq, &pc);
        let cols_par = bsofi(Par::Pool(&pool), Par::Seq, &pc);
        let gemm_par = bsofi(Par::Seq, Par::Pool(&pool), &pc);
        assert!(rel_error(&cols_par, &seq) < 1e-12);
        assert!(rel_error(&gemm_par, &seq) < 1e-12);
    }

    #[test]
    fn lookahead_factor_is_bitwise_identical_to_serial() {
        let pool = ThreadPool::new(3);
        for &(n, b) in &[(3usize, 2usize), (2, 3), (4, 5), (3, 8)] {
            let pc = random_pcyclic(n, b, (17 * n + b) as u64);
            let serial = StructuredQr::factor(Par::Seq, &pc);
            let look = StructuredQr::factor_lookahead(Par::Pool(&pool), Par::Seq, &pc);
            assert_eq!(
                serial.assemble_r().as_slice(),
                look.assemble_r().as_slice(),
                "(n={n}, b={b}) R factors differ"
            );
            let gs = serial.inverse(Par::Seq, Par::Seq);
            let gl = look.inverse(Par::Seq, Par::Seq);
            assert_eq!(
                gs.as_slice(),
                gl.as_slice(),
                "(n={n}, b={b}) inverses differ"
            );
        }
    }

    #[test]
    fn selected_patterns_match_dense_inverse() {
        for &(n, b) in &[(2usize, 2usize), (3, 4), (2, 6), (4, 3)] {
            let pc = random_pcyclic(n, b, (n * 13 + b * 7) as u64);
            let dense = bsofi(Par::Seq, Par::Seq, &pc);
            let mut patterns = vec![SelectedPattern::Diagonals, SelectedPattern::Full];
            patterns.extend((0..b).map(SelectedPattern::DiagonalBlock));
            for pattern in patterns {
                let sel = bsofi_selected(Par::Seq, Par::Seq, &pc, &pattern).expect("healthy");
                let coords = pattern.coordinates(b);
                assert_eq!(sel.len(), coords.len(), "{pattern:?} block count");
                for (k, l) in coords {
                    let got = sel.get(k, l).expect("requested block");
                    let want = pc.dense_block(&dense, k, l);
                    let err = rel_error(got, &want);
                    assert!(err < 1e-13, "(n={n}, b={b}) {pattern:?} ({k},{l}): {err}");
                }
            }
        }
    }

    #[test]
    fn selected_single_block_matrix() {
        let pc = random_pcyclic(4, 1, 19);
        let want = pc.reference_green(Par::Seq);
        for pattern in [
            SelectedPattern::Diagonals,
            SelectedPattern::DiagonalBlock(0),
            SelectedPattern::Full,
        ] {
            let sel = bsofi_selected(Par::Seq, Par::Seq, &pc, &pattern).expect("healthy");
            assert_eq!(sel.len(), 1);
            let got = sel.get(0, 0).expect("single block");
            assert!(rel_error(got, &want) < 1e-10, "{pattern:?}");
        }
    }

    #[test]
    fn selected_parallel_modes_match_sequential() {
        let pool = ThreadPool::new(4);
        let pc = random_pcyclic(5, 6, 23);
        for pattern in [
            SelectedPattern::Diagonals,
            SelectedPattern::DiagonalBlock(3),
            SelectedPattern::Full,
        ] {
            let seq = bsofi_selected(Par::Seq, Par::Seq, &pc, &pattern).expect("healthy");
            let rows_par =
                bsofi_selected(Par::Pool(&pool), Par::Seq, &pc, &pattern).expect("healthy");
            let gemm_par =
                bsofi_selected(Par::Seq, Par::Pool(&pool), &pc, &pattern).expect("healthy");
            for (coord, blk) in seq.iter() {
                let r = rows_par.get(coord.0, coord.1).expect("rows-par block");
                let g = gemm_par.get(coord.0, coord.1).expect("gemm-par block");
                assert_eq!(
                    blk.as_slice(),
                    r.as_slice(),
                    "{pattern:?} rows-par {coord:?}"
                );
                assert_eq!(
                    blk.as_slice(),
                    g.as_slice(),
                    "{pattern:?} gemm-par {coord:?}"
                );
            }
        }
    }

    #[test]
    fn hubbard_reduced_matrix_inverts() {
        use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, SquareLattice};
        use rand::SeedableRng;
        let builder =
            BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(8));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let field = HsField::random(8, 4, &mut rng);
        let pc = hubbard_pcyclic(&builder, &field, fsi_pcyclic::Spin::Up);
        let cl = crate::cls::cls(Par::Seq, Par::Seq, &pc, 4, 1);
        let got = bsofi(Par::Seq, Par::Seq, &cl.reduced);
        let want = cl.reduced.reference_green(Par::Seq);
        assert!(rel_error(&got, &want) < 1e-9);
    }

    #[test]
    fn r_has_documented_sparsity() {
        let pc = random_pcyclic(3, 5, 12);
        let f = StructuredQr::factor(Par::Seq, &pc);
        let r = f.assemble_r();
        // Interior blocks (i, j) with i+1 < j < b−1 are zero.
        let blk = pc.dense_block(&r, 0, 2);
        assert_eq!(blk.max_abs(), 0.0);
        let blk = pc.dense_block(&r, 1, 3);
        assert_eq!(blk.max_abs(), 0.0);
        // Diagonal factors are upper triangular.
        for j in 0..5 {
            let d = f.r_diag(j);
            for col in 0..3 {
                for row in col + 1..3 {
                    assert_eq!(d[(row, col)], 0.0);
                }
            }
        }
    }

    #[test]
    fn r_diag_is_borrowed_and_stable() {
        let pc = random_pcyclic(3, 4, 14);
        let f = StructuredQr::factor(Par::Seq, &pc);
        // Two calls return the same cached storage, not fresh copies.
        let a: *const Matrix = f.r_diag(2);
        let b: *const Matrix = f.r_diag(2);
        assert_eq!(a, b);
    }

    #[test]
    fn flop_formula_matches_paper() {
        assert_eq!(bsofi_flops(100, 10), 7 * 100 * 1_000_000);
    }
}
