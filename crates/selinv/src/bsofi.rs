//! BSOFI — block structured orthogonal factorization inversion
//! (Gogolenko, Bai, Scalettar, Euro-Par 2014; stage 2 of FSI).
//!
//! Computes the *full* dense inverse `Ḡ = M̄⁻¹` of a (reduced) block
//! p-cyclic matrix with `b` block rows of size `N`, in `O(b²N³)` flops
//! instead of the `O(b³N³)` of a dense factorization, by exploiting the
//! p-cyclic sparsity:
//!
//! **Stage A — structured QR.** Eliminate the subdiagonal blocks with a
//! chain of `b−1` Householder QRs of `2N × N` panels
//! `[D_i; −b̄_{i+1}]`, each orthogonal transform touching only block rows
//! `(i, i+1)`. The corner block `b̄_0` smears down the last block column as
//! the chain advances; the resulting `R` is block *upper bidiagonal plus a
//! dense last block column*:
//!
//! ```text
//!     | R00 E0          C0  |
//!     |     R11 E1      C1  |
//! R = |         R22 ... ... |        Q = Q̃0·Q̃1⋯Q̃_{b−1}
//!     |             ... E_  |
//!     |                 R__ |
//! ```
//!
//! **Stage B — structured `R⁻¹`.** Because `R⁻¹`'s last block row is zero
//! left of the diagonal, the back-substitution recurrences collapse to
//! short products: `X_ij = −R_ii⁻¹(E_i X_{i+1,j} + C_i X_{b−1,j})` with the
//! `C` term active only in the last column. Block columns are independent →
//! parallel.
//!
//! **Stage C — `Ḡ = X·Qᵀ`.** Right-apply the stored panel transforms in
//! reverse; each `Q̃_iᵀ` touches a `bN × 2N` column slab, applied with the
//! compact-WY kernels so the stage is GEMM-rich.

use fsi_dense::tri::invert_upper;
use fsi_dense::{gemm, geqrf, Matrix, QrFactor};
use fsi_pcyclic::BlockPCyclic;
use fsi_runtime::{Par, Schedule};

/// Computes the dense inverse `Ḡ = M̄⁻¹` (a `bN × bN` matrix).
///
/// `par_cols` parallelizes the independent block columns of stage B (FSI's
/// OpenMP mode); `par_gemm` parallelizes inside the dense kernels of stages
/// A and C (the "MKL-style" mode). The FSI drivers pass a pool to exactly
/// one of the two.
///
/// ```
/// use fsi_runtime::Par;
/// let m = fsi_pcyclic::random_pcyclic(3, 4, 7);
/// let g = fsi_selinv::bsofi(Par::Seq, Par::Seq, &m);
/// // Ḡ really is the inverse of the assembled matrix.
/// let mut prod = fsi_dense::mul(&m.assemble_dense(), &g);
/// prod.add_diag(-1.0);
/// assert!(prod.max_abs() < 1e-10);
/// ```
pub fn bsofi(par_cols: Par<'_>, par_gemm: Par<'_>, pc: &BlockPCyclic) -> Matrix {
    let b = pc.l();
    if b == 1 {
        // Degenerate single-block matrix: M̄ = I + b̄0; invert via QR to
        // stay in the BSOFI (orthogonal) family.
        let mut m = pc.block(0).clone();
        m.add_diag(1.0);
        let f = geqrf(m);
        let mut x = f.r();
        invert_upper(x.as_mut());
        zero_strict_lower(&mut x);
        f.apply_qt_right(par_gemm, x.as_mut());
        return x;
    }

    let factor = StructuredQr::factor(par_gemm, pc);
    factor.inverse(par_cols, par_gemm)
}

/// The structured QR factorization of a block p-cyclic matrix
/// (stage A output, reusable for tests and for solving).
pub struct StructuredQr {
    /// Panel factorizations: `qrs[i]` for `i < b−1` factors the `2N × N`
    /// panel at block rows `(i, i+1)`; `qrs[b−1]` factors the final
    /// `N × N` diagonal block.
    qrs: Vec<QrFactor>,
    /// Superdiagonal fill `E_i = R(i, i+1)` for `i = 0..b−1`;
    /// `e[b−2]` is the merged last-column entry `R(b−2, b−1)`.
    e: Vec<Matrix>,
    /// Last-column fill `C_i = R(i, b−1)` for `i = 0..b−3` (empty if
    /// `b < 3`).
    c: Vec<Matrix>,
    n: usize,
    b: usize,
}

impl StructuredQr {
    /// Runs stage A on the p-cyclic matrix.
    ///
    /// # Panics
    /// Panics if `b < 2` (use [`bsofi`] which handles `b = 1`).
    pub fn factor(par_gemm: Par<'_>, pc: &BlockPCyclic) -> Self {
        let n = pc.n();
        let b = pc.l();
        assert!(b >= 2, "StructuredQr requires at least two block rows");
        let mut qrs = Vec::with_capacity(b);
        let mut e = Vec::with_capacity(b - 1);
        let mut c = Vec::with_capacity(b.saturating_sub(2));
        // Current diagonal block D_i (starts as the identity at row 0) and
        // the corner fill propagating down the last column.
        let mut d_cur = Matrix::identity(n);
        let mut corner = pc.block(0).clone();
        for i in 0..b - 1 {
            // Panel [D_i; −b̄_{i+1}].
            let mut panel = Matrix::zeros(2 * n, n);
            panel.set_block(0, 0, d_cur.as_ref());
            {
                let mut bottom = panel.view_mut(n, 0, n, n);
                bottom.copy_from(pc.block(i + 1).as_ref());
                bottom.scale(-1.0);
            }
            let f = geqrf(panel);
            if i + 1 < b - 1 {
                // Column i+1 currently holds [0; I] in rows (i, i+1).
                let mut col = Matrix::zeros(2 * n, n);
                col.view_mut(n, 0, n, n)
                    .copy_from(Matrix::identity(n).as_ref());
                f.apply_qt_left(par_gemm, col.as_mut());
                e.push(col.block(0, 0, n, n));
                d_cur = col.block(n, 0, n, n);
                // Last column currently holds [corner; 0].
                let mut last = Matrix::zeros(2 * n, n);
                last.set_block(0, 0, corner.as_ref());
                f.apply_qt_left(par_gemm, last.as_mut());
                c.push(last.block(0, 0, n, n));
                corner = last.block(n, 0, n, n);
            } else {
                // i+1 == b−1: the next column IS the last column, holding
                // [corner; I]; the superdiagonal and corner fills merge.
                let mut last = Matrix::zeros(2 * n, n);
                last.set_block(0, 0, corner.as_ref());
                last.view_mut(n, 0, n, n)
                    .copy_from(Matrix::identity(n).as_ref());
                f.apply_qt_left(par_gemm, last.as_mut());
                e.push(last.block(0, 0, n, n));
                d_cur = last.block(n, 0, n, n);
            }
            qrs.push(f);
        }
        // Final N × N diagonal block.
        qrs.push(geqrf(d_cur));
        StructuredQr { qrs, e, c, n, b }
    }

    /// Block size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Block row count `b`.
    pub fn b(&self) -> usize {
        self.b
    }

    /// The upper-triangular `N × N` diagonal factor `R_jj`.
    pub fn r_diag(&self, j: usize) -> Matrix {
        self.qrs[j].r()
    }

    /// Superdiagonal fill `E_j` (`j = b−2` is the merged last-column
    /// entry).
    pub fn e_block(&self, j: usize) -> &Matrix {
        &self.e[j]
    }

    /// Last-column fill `C_j` for `j ≤ b−3`.
    pub fn c_block(&self, j: usize) -> &Matrix {
        &self.c[j]
    }

    /// Assembles the dense `R` factor (tests / inspection; O((bN)²)).
    pub fn assemble_r(&self) -> Matrix {
        let (n, b) = (self.n, self.b);
        let mut r = Matrix::zeros(b * n, b * n);
        for j in 0..b {
            r.set_block(j * n, j * n, self.r_diag(j).as_ref());
        }
        for (i, e) in self.e.iter().enumerate() {
            r.set_block(i * n, (i + 1) * n, e.as_ref());
        }
        for (i, cblk) in self.c.iter().enumerate() {
            r.set_block(i * n, (b - 1) * n, cblk.as_ref());
        }
        r
    }

    /// Applies the accumulated `Qᵀ` from the right to a dense `? × bN`
    /// matrix (stage C primitive): `X := X·Qᵀ`.
    pub fn apply_qt_right(&self, par_gemm: Par<'_>, x: &mut Matrix) {
        let (n, b) = (self.n, self.b);
        assert_eq!(x.cols(), b * n, "apply_qt_right width mismatch");
        let rows = x.rows();
        // Qᵀ = Q̃_{b−1}ᵀ·Q̃_{b−2}ᵀ⋯Q̃_0ᵀ; right-multiplication applies the
        // leftmost factor first.
        for i in (0..b).rev() {
            let width = if i == b - 1 { n } else { 2 * n };
            let slab = x.view_mut(0, i * n, rows, width);
            self.qrs[i].apply_qt_right(par_gemm, slab);
        }
    }

    /// Applies `Qᵀ` from the left to a dense `bN × ?` matrix:
    /// `X := Qᵀ·X` (used to verify `QᵀM̄ = R` and to solve systems).
    pub fn apply_qt_left(&self, par_gemm: Par<'_>, x: &mut Matrix) {
        let (n, b) = (self.n, self.b);
        assert_eq!(x.rows(), b * n, "apply_qt_left height mismatch");
        let cols = x.cols();
        // Qᵀ·X applies Q̃_0ᵀ first.
        for i in 0..b {
            let height = if i == b - 1 { n } else { 2 * n };
            let slab = x.view_mut(i * n, 0, height, cols);
            self.qrs[i].apply_qt_left(par_gemm, slab);
        }
    }

    /// Stage B + C: the dense inverse `Ḡ = R⁻¹·Qᵀ`.
    pub fn inverse(&self, par_cols: Par<'_>, par_gemm: Par<'_>) -> Matrix {
        let (n, b) = (self.n, self.b);
        let dim = b * n;
        // Diagonal inverses R_jj⁻¹ (independent → parallel-friendly, but
        // cheap: b triangles of size N).
        let rinv: Vec<Matrix> = (0..b)
            .map(|j| {
                let mut r = self.r_diag(j);
                invert_upper(r.as_mut());
                zero_strict_lower(&mut r);
                r
            })
            .collect();
        let mut g = Matrix::zeros(dim, dim);
        // Stage B: build X = R⁻¹ column by column (independent columns →
        // parallel_map), then write the blocks into the dense output.
        let columns: Vec<Vec<(usize, Matrix)>> =
            fsi_runtime::parallel_map(par_cols, b, Schedule::Dynamic(1), |j| {
                self.rinv_column(par_gemm, &rinv, j)
            });
        for (j, col) in columns.into_iter().enumerate() {
            for (i, blk) in col {
                g.set_block(i * n, j * n, blk.as_ref());
            }
        }
        // Stage C: Ḡ = X·Qᵀ.
        self.apply_qt_right_cols(par_cols, par_gemm, &mut g);
        g
    }

    /// Stage C with row-band parallelism: each pool worker owns a disjoint
    /// horizontal band of `X` and applies the panel chain to it (the panel
    /// transforms act on columns, so row bands are independent).
    fn apply_qt_right_cols(&self, par_rows: Par<'_>, par_gemm: Par<'_>, x: &mut Matrix) {
        let rows = x.rows();
        let threads = par_rows.threads().min(rows).max(1);
        if threads <= 1 {
            self.apply_qt_right(par_gemm, x);
            return;
        }
        let pool = par_rows.pool().expect("threads > 1 implies pool");
        let chunk = rows.div_ceil(threads);
        // Split into disjoint row bands.
        let mut bands = Vec::new();
        let mut rest = x.as_mut();
        while rest.rows() > chunk {
            let (head, tail) = rest.split_at_row(chunk);
            bands.push(head);
            rest = tail;
        }
        bands.push(rest);
        pool.scope(|s| {
            for band in bands {
                let mut band = band;
                s.spawn(move || {
                    let (n, b) = (self.n, self.b);
                    for i in (0..b).rev() {
                        let width = if i == b - 1 { n } else { 2 * n };
                        let rows_band = band.rows();
                        let slab = band.rb_mut().submatrix(0, i * n, rows_band, width);
                        self.qrs[i].apply_qt_right(Par::Seq, slab);
                    }
                });
            }
        });
    }

    /// Computes the nonzero blocks of column `j` of `X = R⁻¹`:
    /// returns `(block_row, block)` pairs.
    fn rinv_column(&self, par_gemm: Par<'_>, rinv: &[Matrix], j: usize) -> Vec<(usize, Matrix)> {
        let n = self.n;
        let b = self.b;
        let mut out = Vec::with_capacity(j + 1);
        out.push((j, rinv[j].clone()));
        if j == 0 {
            return out;
        }
        let last_col = j == b - 1;
        // Walk upward: X_ij = −R_ii⁻¹·(E_i·X_{i+1,j} [+ C_i·X_{b−1,j}]).
        let x_last = if last_col { Some(&rinv[b - 1]) } else { None };
        let mut x_below: Matrix = rinv[j].clone();
        for i in (0..j).rev() {
            let mut t = Matrix::zeros(n, n);
            gemm(
                par_gemm,
                -1.0,
                self.e[i].as_ref(),
                x_below.as_ref(),
                0.0,
                t.as_mut(),
            );
            if last_col && i <= b.saturating_sub(3) && i < self.c.len() {
                if let Some(xl) = x_last {
                    gemm(
                        par_gemm,
                        -1.0,
                        self.c[i].as_ref(),
                        xl.as_ref(),
                        1.0,
                        t.as_mut(),
                    );
                }
            }
            let mut xij = Matrix::zeros(n, n);
            gemm(
                par_gemm,
                1.0,
                rinv[i].as_ref(),
                t.as_ref(),
                0.0,
                xij.as_mut(),
            );
            out.push((i, xij));
            x_below = out.last().expect("just pushed").1.clone();
        }
        out
    }
}

/// Zeroes the strict lower triangle (invert_upper leaves the reflector
/// storage there untouched).
fn zero_strict_lower(m: &mut Matrix) {
    let n = m.rows();
    for j in 0..n {
        for i in j + 1..n {
            m[(i, j)] = 0.0;
        }
    }
}

/// Closed-form flop count of BSOFI (paper §II-C): `≈ 7b²N³`.
pub fn bsofi_flops(n: usize, b: usize) -> u64 {
    7 * (b as u64).pow(2) * (n as u64).pow(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_dense::{mul, rel_error};
    use fsi_pcyclic::random_pcyclic;
    use fsi_runtime::ThreadPool;

    #[test]
    fn qt_m_equals_r() {
        let pc = random_pcyclic(4, 5, 1);
        let f = StructuredQr::factor(Par::Seq, &pc);
        let mut m = pc.assemble_dense();
        f.apply_qt_left(Par::Seq, &mut m);
        let r = f.assemble_r();
        assert!(rel_error(&m, &r) < 1e-12, "QᵀM ≠ R: {}", rel_error(&m, &r));
        // R's unstored positions really are zero: check one below-diagonal
        // and one interior block of QᵀM against zero.
        let below = pc.dense_block(&m, 3, 1);
        assert!(below.max_abs() < 1e-12);
    }

    #[test]
    fn bsofi_matches_dense_inverse_various_sizes() {
        for &(n, b) in &[(2usize, 2usize), (3, 3), (4, 4), (3, 6), (5, 2), (2, 8)] {
            let pc = random_pcyclic(n, b, (n * 31 + b) as u64);
            let got = bsofi(Par::Seq, Par::Seq, &pc);
            let want = pc.reference_green(Par::Seq);
            assert!(
                rel_error(&got, &want) < 1e-9,
                "(n={n}, b={b}): rel err {}",
                rel_error(&got, &want)
            );
        }
    }

    #[test]
    fn bsofi_single_block() {
        let pc = random_pcyclic(5, 1, 9);
        let got = bsofi(Par::Seq, Par::Seq, &pc);
        let want = pc.reference_green(Par::Seq);
        assert!(rel_error(&got, &want) < 1e-10);
    }

    #[test]
    fn bsofi_inverse_residual() {
        // MḠ = I directly, independent of the LU reference.
        let pc = random_pcyclic(6, 4, 10);
        let g = bsofi(Par::Seq, Par::Seq, &pc);
        let m = pc.assemble_dense();
        let mut prod = mul(&m, &g);
        prod.add_diag(-1.0);
        assert!(prod.max_abs() < 1e-10, "MḠ − I: {}", prod.max_abs());
    }

    #[test]
    fn parallel_modes_match_sequential() {
        let pool = ThreadPool::new(4);
        let pc = random_pcyclic(5, 6, 11);
        let seq = bsofi(Par::Seq, Par::Seq, &pc);
        let cols_par = bsofi(Par::Pool(&pool), Par::Seq, &pc);
        let gemm_par = bsofi(Par::Seq, Par::Pool(&pool), &pc);
        assert!(rel_error(&cols_par, &seq) < 1e-12);
        assert!(rel_error(&gemm_par, &seq) < 1e-12);
    }

    #[test]
    fn hubbard_reduced_matrix_inverts() {
        use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, SquareLattice};
        use rand::SeedableRng;
        let builder =
            BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(8));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let field = HsField::random(8, 4, &mut rng);
        let pc = hubbard_pcyclic(&builder, &field, fsi_pcyclic::Spin::Up);
        let cl = crate::cls::cls(Par::Seq, Par::Seq, &pc, 4, 1);
        let got = bsofi(Par::Seq, Par::Seq, &cl.reduced);
        let want = cl.reduced.reference_green(Par::Seq);
        assert!(rel_error(&got, &want) < 1e-9);
    }

    #[test]
    fn r_has_documented_sparsity() {
        let pc = random_pcyclic(3, 5, 12);
        let f = StructuredQr::factor(Par::Seq, &pc);
        let r = f.assemble_r();
        // Interior blocks (i, j) with i+1 < j < b−1 are zero.
        let blk = pc.dense_block(&r, 0, 2);
        assert_eq!(blk.max_abs(), 0.0);
        let blk = pc.dense_block(&r, 1, 3);
        assert_eq!(blk.max_abs(), 0.0);
        // Diagonal factors are upper triangular.
        for j in 0..5 {
            let d = f.r_diag(j);
            for col in 0..3 {
                for row in col + 1..3 {
                    assert_eq!(d[(row, col)], 0.0);
                }
            }
        }
    }

    #[test]
    fn flop_formula_matches_paper() {
        assert_eq!(bsofi_flops(100, 10), 7 * 100 * 1_000_000);
    }
}
