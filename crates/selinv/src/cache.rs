//! Incremental clustering — reuse of CLS cluster products across refreshes.
//!
//! A DQMC stabilization re-runs CLS over all `b = L/c` cluster products,
//! but between two stabilizations the sweep touches at most
//! `stabilize_every` consecutive slices: every cluster whose `c`
//! constituent slices are all clean is *identical* to last time. The
//! [`ClusterCache`] keeps the previous products and recomputes only the
//! stale ones — a `stabilize_every`-slice window intersects
//! `O(window/c + 1)` of the `b` clusters, so the clustering stage drops
//! from `2b(c−1)N³` flops to `2·rebuilt·(c−1)·N³`
//! ([`crate::cls::cls_incremental_flops`]).
//!
//! Reuse is keyed on `(N, L, c, o)`: the offset `o = c−1−q` decides which
//! slices seed the chains, so a refresh anchored at a different
//! `k mod c` shares *no* products with the cache and triggers a full
//! rebuild. DQMC drivers that want hits must stabilize on a fixed residue —
//! `c | stabilize_every` (the default configuration satisfies this).
//!
//! Correctness is bitwise, not approximate: stale products rebuild through
//! the per-cluster `cluster_product` chain, which performs the identical
//! descending product sequence — through the same small-GEMM kernels with
//! deterministic writeback — as a cold [`crate::cls()`] run's batched
//! lockstep path, and clean products are reused verbatim. (Warm rebuilds
//! stay per-cluster so each `cls.cache_miss` span carries exactly one
//! chain's flops.) Each reused product opens a zero-flop
//! `cls.cache_hit` span and each recomputation a `cls.cache_miss` span
//! (whose inclusive flops are the chain's GEMM count), so `RunReport`
//! exposes hit/miss counters without a side channel.

use fsi_dense::Matrix;
use fsi_pcyclic::BlockPCyclic;
use fsi_runtime::health::{self, FsiResult, HealthEvent, Stage};
use fsi_runtime::{parallel_map, trace, Par, Schedule};

use crate::cls::{cluster_product, Clustered};

/// Shape-and-anchor key: `(N, L, c, o)`.
type CacheKey = (usize, usize, usize, usize);

/// Dirty-slice-tracking cache of the `b` CLS cluster products.
///
/// Each stored product carries an FNV checksum recorded at computation
/// time; a reuse re-verifies the checksum (when
/// [`fsi_runtime::health::probes_enabled`]) and surfaces corruption as
/// [`HealthEvent::CacheInconsistent`] instead of silently feeding a
/// damaged product into BSOFI. Every error path [`Self::invalidate`]s
/// first, so a failed call never leaves poisoned entries behind — the
/// next call is a clean cold build.
///
/// ```
/// use fsi_runtime::Par;
/// use fsi_selinv::ClusterCache;
/// let pc = fsi_pcyclic::random_pcyclic(4, 8, 3);
/// let blocks: Vec<_> = (0..pc.l()).map(|k| pc.block(k).clone()).collect();
/// let mut cache = ClusterCache::new();
/// // Cold build: all b = L/c = 2 cluster products are computed.
/// let clean = vec![false; blocks.len()];
/// let (_, rebuilt) = cache
///     .cls(Par::Seq, Par::Seq, &blocks, &clean, 4, 2)
///     .expect("healthy");
/// assert_eq!(rebuilt, 2);
/// // One dirty slice: only the cluster containing it is recomputed.
/// let mut dirty = clean.clone();
/// dirty[0] = true;
/// let (clustered, rebuilt) = cache
///     .cls(Par::Seq, Par::Seq, &blocks, &dirty, 4, 2)
///     .expect("healthy");
/// assert_eq!(rebuilt, 1);
/// assert_eq!((cache.hits(), cache.misses()), (1, 3));
/// assert_eq!(clustered.b(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ClusterCache {
    key: Option<CacheKey>,
    products: Vec<Matrix>,
    sums: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl ClusterCache {
    /// An empty cache; the first [`Self::cls`] is a full (cold) build.
    pub fn new() -> Self {
        ClusterCache::default()
    }

    /// Cluster products reused verbatim since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cluster products recomputed since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops the cached products; the next [`Self::cls`] is cold.
    pub fn invalidate(&mut self) {
        self.key = None;
        self.products.clear();
        self.sums.clear();
    }

    /// Incremental [`crate::cls()`]: recomputes only the cluster products
    /// with a dirty constituent slice (all of them on a cold or re-keyed
    /// cache) and reuses the rest. Returns the clustered matrix plus the
    /// number of products rebuilt.
    ///
    /// `dirty[k]` marks original slice `k` as changed since the previous
    /// call. The caller clears the mask; this method only reads it.
    ///
    /// # Errors
    /// [`HealthEvent::CacheInconsistent`] when a reused product fails its
    /// stored checksum, [`HealthEvent::NonFinite`] /
    /// [`HealthEvent::IllConditioned`] (at [`Stage::Cls`]) when a
    /// recomputed product fails the output scan. The cache is invalidated
    /// before any error is returned.
    ///
    /// # Panics
    /// Panics unless `c` divides `blocks.len()`, `q < c`, and
    /// `dirty.len() == blocks.len()` (dimension contracts, not data).
    pub fn cls(
        &mut self,
        par_clusters: Par<'_>,
        par_gemm: Par<'_>,
        blocks: &[Matrix],
        dirty: &[bool],
        c: usize,
        q: usize,
    ) -> FsiResult<(Clustered, usize)> {
        let l = blocks.len();
        assert!(
            c > 0 && l.is_multiple_of(c),
            "cluster size c={c} must divide L={l}"
        );
        assert!(q < c, "shift q={q} must be < c={c}");
        assert_eq!(dirty.len(), l, "dirty mask length mismatch");
        let n = blocks.first().map(|b| b.rows()).unwrap_or(0);
        let b = l / c;
        let o = c - 1 - q;

        let key = (n, l, c, o);
        let cold = self.key != Some(key) || self.products.len() != b;
        let stale: Vec<usize> = (0..b)
            .filter(|&m| cold || (0..c).any(|j| dirty[(c * m + o + l - j) % l]))
            .collect();

        // Verify the reused products before spending flops on the rebuild:
        // a corrupted entry invalidates everything and aborts the call.
        let mut stale_iter = stale.iter().copied().peekable();
        for m in 0..b {
            if stale_iter.peek() == Some(&m) {
                stale_iter.next();
                continue;
            }
            #[cfg(feature = "fault-inject")]
            health::inject::poison(Stage::Cache, m, self.products[m].as_mut_slice());
            if health::probes_enabled()
                && health::checksum(self.products[m].as_slice()) != self.sums[m]
            {
                let event = HealthEvent::CacheInconsistent {
                    stage: Stage::Cache,
                    block: m,
                };
                event.record();
                self.invalidate();
                return Err(event.into());
            }
            trace::span("cls.cache_hit").finish();
        }
        #[allow(unused_mut)]
        let mut recomputed = parallel_map(par_clusters, stale.len(), Schedule::Static, |i| {
            let _s = trace::span("cls.cache_miss");
            cluster_product(par_gemm, blocks, c * stale[i] + o, c)
        });
        for (i, &m) in stale.iter().enumerate() {
            #[cfg(feature = "fault-inject")]
            health::inject::poison(Stage::Cls, m, recomputed[i].as_mut_slice());
            if let Err(event) = health::check_block(Stage::Cls, m, recomputed[i].as_slice()) {
                self.invalidate();
                return Err(event.into());
            }
        }

        if cold {
            self.products = vec![Matrix::zeros(0, 0); b];
            self.sums = vec![0; b];
        }
        for (m, prod) in stale.iter().zip(recomputed) {
            self.sums[*m] = health::checksum(prod.as_slice());
            self.products[*m] = prod;
        }
        self.key = Some(key);
        self.hits += (b - stale.len()) as u64;
        self.misses += stale.len() as u64;
        static HITS: fsi_runtime::metrics::LazyCounter =
            fsi_runtime::metrics::LazyCounter::new("selinv.cluster_cache.hits");
        static MISSES: fsi_runtime::metrics::LazyCounter =
            fsi_runtime::metrics::LazyCounter::new("selinv.cluster_cache.misses");
        HITS.add((b - stale.len()) as u64);
        MISSES.add(stale.len() as u64);

        let clustered = Clustered {
            reduced: BlockPCyclic::new(self.products.clone()),
            c,
            q,
            l_original: l,
        };
        Ok((clustered, stale.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cls::cls;
    use fsi_pcyclic::random_pcyclic;

    fn assert_bitwise(a: &Clustered, b: &Clustered) {
        assert_eq!(a.b(), b.b());
        for m in 0..a.b() {
            assert_eq!(
                a.reduced.block(m).as_slice(),
                b.reduced.block(m).as_slice(),
                "cluster {m} not bitwise equal"
            );
        }
    }

    #[test]
    fn cold_cache_matches_plain_cls_bitwise() {
        let pc = random_pcyclic(4, 12, 31);
        let mut cache = ClusterCache::new();
        let (warm, rebuilt) = cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &[false; 12], 4, 1)
            .expect("healthy");
        assert_eq!(rebuilt, 3, "cold build recomputes every cluster");
        let cold = cls(Par::Seq, Par::Seq, &pc, 4, 1);
        assert_bitwise(&warm, &cold);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn dirty_slices_invalidate_exactly_their_clusters() {
        let mut pc = random_pcyclic(3, 12, 32);
        let mut cache = ClusterCache::new();
        let (_, _) = cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &[false; 12], 4, 2)
            .expect("healthy");
        // o = 1: cluster 0 covers slices {1, 0, 11, 10}, cluster 1 covers
        // {5, 4, 3, 2}, cluster 2 covers {9, 8, 7, 6}. Perturb slice 3.
        let mut blocks = pc.blocks().to_vec();
        blocks[3] = random_pcyclic(3, 1, 99).block(0).clone();
        pc = BlockPCyclic::new(blocks);
        let mut dirty = [false; 12];
        dirty[3] = true;
        let (warm, rebuilt) = cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &dirty, 4, 2)
            .expect("healthy");
        assert_eq!(rebuilt, 1, "one dirty slice → one stale cluster");
        assert_eq!(cache.hits(), 2);
        let cold = cls(Par::Seq, Par::Seq, &pc, 4, 2);
        assert_bitwise(&warm, &cold);
    }

    #[test]
    fn wraparound_cluster_sees_dirty_tail_slice() {
        let pc = random_pcyclic(2, 8, 33);
        let mut cache = ClusterCache::new();
        cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &[false; 8], 4, 0)
            .expect("healthy");
        // o = 3: cluster 0 covers slices {3, 2, 1, 0} and cluster 1 covers
        // {7, 6, 5, 4}. Dirty slice 7 must invalidate cluster 1 only.
        let mut dirty = [false; 8];
        dirty[7] = true;
        let (_, rebuilt) = cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &dirty, 4, 0)
            .expect("healthy");
        assert_eq!(rebuilt, 1);
        // o = 1 (q = 2): cluster 0 covers {1, 0, 7, 6} — wraps past L.
        let mut cache = ClusterCache::new();
        cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &[false; 8], 4, 2)
            .expect("healthy");
        let (_, rebuilt) = cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &dirty, 4, 2)
            .expect("healthy");
        assert_eq!(rebuilt, 1, "wraparound constituent must go stale");
    }

    #[test]
    fn changing_anchor_or_shape_forces_full_rebuild() {
        let pc = random_pcyclic(2, 12, 34);
        let mut cache = ClusterCache::new();
        cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &[false; 12], 4, 1)
            .expect("healthy");
        // Different q → different offset → no reusable products.
        let (_, rebuilt) = cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &[false; 12], 4, 2)
            .expect("healthy");
        assert_eq!(rebuilt, 3);
        // Different c likewise.
        let (_, rebuilt) = cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &[false; 12], 3, 0)
            .expect("healthy");
        assert_eq!(rebuilt, 4);
        // Same key again with a clean mask → all hits.
        let (_, rebuilt) = cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &[false; 12], 3, 0)
            .expect("healthy");
        assert_eq!(rebuilt, 0);
    }

    #[test]
    fn randomized_dirty_patterns_match_cold_rebuild_bitwise() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let mut pc = random_pcyclic(3, 16, 35);
        let mut cache = ClusterCache::new();
        cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &[false; 16], 4, 3)
            .expect("healthy");
        for round in 0..10 {
            let mut dirty = [false; 16];
            let mut blocks = pc.blocks().to_vec();
            for k in 0..16 {
                if rng.gen::<f64>() < 0.2 {
                    dirty[k] = true;
                    blocks[k] = random_pcyclic(3, 1, (1000 + round * 16 + k) as u64)
                        .block(0)
                        .clone();
                }
            }
            pc = BlockPCyclic::new(blocks);
            let (warm, _) = cache
                .cls(Par::Seq, Par::Seq, pc.blocks(), &dirty, 4, 3)
                .expect("healthy");
            let cold = cls(Par::Seq, Par::Seq, &pc, 4, 3);
            assert_bitwise(&warm, &cold);
        }
    }

    #[test]
    fn invalidate_resets_to_cold() {
        let pc = random_pcyclic(2, 8, 36);
        let mut cache = ClusterCache::new();
        cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &[false; 8], 2, 0)
            .expect("healthy");
        cache.invalidate();
        let (_, rebuilt) = cache
            .cls(Par::Seq, Par::Seq, pc.blocks(), &[false; 8], 2, 0)
            .expect("healthy");
        assert_eq!(rebuilt, 4);
    }
}
