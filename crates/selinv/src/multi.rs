//! Parallel application of FSI to many Green's functions (paper Alg. 3)
//! and the node-memory model behind Fig. 9.
//!
//! DQMC needs selected inversions of *tens of thousands* of independent
//! p-cyclic matrices. Alg. 3 distributes them over MPI ranks: the root
//! generates the Hubbard–Stratonovich field parameters `h` (cheap to ship,
//! unlike the matrices), each rank builds its matrices locally and runs
//! the OpenMP FSI per matrix, and local measurement quantities are
//! combined with `MPI_Reduce`. This module reproduces that loop on the
//! in-process ranks of [`fsi_runtime::comm`], with the per-matrix stage
//! loop factored into a resumable [`MatrixTask`] state machine
//! ([`JobStep`]) that schedulers can interleave.
//!
//! Two [`Scheduling`] disciplines drive the same task machinery:
//!
//! * [`Scheduling::Static`] is the paper-literal Alg. 3 — a block scatter
//!   fixed at submit time, one in-process rank per share, collectives for
//!   the reduction.
//! * [`Scheduling::WorkStealing`] (the default) seeds the same block
//!   distribution into per-worker deques ([`fsi_runtime::StealQueues`])
//!   and lets idle workers steal half of the fullest victim's backlog —
//!   the shape the `fsi-service` crate builds its multi-tenant job queue
//!   on.
//!
//! Both disciplines produce **bitwise-identical** results for the same
//! `(seed, matrices, c, pattern)`: fields come from one root RNG stream
//! in matrix order, each matrix's shift `q` is derived from
//! `(seed, index)` alone (never from the rank that happens to run it),
//! and measurement vectors are summed in matrix-index order.
//!
//! The memory model captures why the paper's Fig. 9 favors the hybrid
//! configuration: a rank must hold its matrix, the reduced inverse `Ḡ`,
//! and the selected blocks simultaneously; with 12 ranks per socket the
//! per-rank budget (≈2.5 GB on Edison) is exceeded already at `N = 576`,
//! so pure MPI configurations are infeasible exactly where the paper's
//! OOM-killer anecdote places them.
//!
//! Each matrix's clustering stage is the batched small-GEMM hot shape: in
//! the `Serial` and `OpenMp` rank configurations (`par_gemm` sequential)
//! the per-matrix CLS rides [`fsi_dense::gemm_batched`]'s lockstep path,
//! so a multi-matrix run issues one batched dispatch per chain position
//! per matrix instead of `b·(c−1)` individual small products. The
//! `selinv.multi.matrices` counter tracks driver progress in the metrics
//! registry.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, BlockPCyclic, HsField, Spin};
use fsi_runtime::ckpt::{CkptError, Reader as CkptReader, Writer as CkptWriter};
use fsi_runtime::health::{FsiError, FsiResult};
use fsi_runtime::{comm, StealQueues, Stopwatch, ThreadPool};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::fsi::{FsiOutput, Parallelism};
use crate::patterns::{Pattern, SelectedInverse, Selection};

/// How a multi-matrix run distributes matrices over workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduling {
    /// The paper-literal Alg. 3: a block scatter fixed at submit time,
    /// executed on in-process ranks with collectives.
    Static,
    /// Per-worker deques with steal-half rebalancing
    /// ([`fsi_runtime::StealQueues`]); tolerates heterogeneous per-matrix
    /// cost without stranding workers idle.
    #[default]
    WorkStealing,
}

/// Configuration of a multi-matrix FSI run.
#[derive(Clone, Debug)]
pub struct MultiConfig {
    /// Number of message-passing ranks (MPI processes).
    pub ranks: usize,
    /// OpenMP-style threads per rank.
    pub threads_per_rank: usize,
    /// Number of independent Green's functions (matrices).
    pub matrices: usize,
    /// Cluster size `c`.
    pub c: usize,
    /// Selection pattern computed per matrix.
    pub pattern: Pattern,
    /// RNG seed for field generation and the per-matrix shift `q`.
    pub seed: u64,
    /// Task distribution discipline.
    pub scheduling: Scheduling,
}

/// Result of a multi-matrix run.
#[derive(Clone, Debug)]
pub struct MultiResult {
    /// Globally reduced measurement quantities (sum over matrices).
    pub global_measurements: Vec<f64>,
    /// Wall-clock seconds of the parallel region.
    pub seconds: f64,
    /// Total matrices processed.
    pub matrices: usize,
}

/// The per-matrix measurement hook: reduces a selected inversion to a
/// vector of quantities, which are summed across matrices and ranks (the
/// paper's `local_measurement_quantities` → `MPI_Reduce`).
pub type MeasureFn = dyn Fn(&SelectedInverse) -> Vec<f64> + Sync;

/// Where a [`MatrixTask`] stands in its stage pipeline.
///
/// The steps mirror the per-matrix body of Alg. 3: build the p-cyclic
/// matrix from the scattered field, run the selected inversion (Alg. 1),
/// measure. A scheduler may park a task between any two steps and resume
/// it on a different worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStep {
    /// Assemble the block p-cyclic matrix from the HS field.
    Build,
    /// Run FSI (CLS → BSOFI → wrap) on the built matrix.
    Invert,
    /// Reduce the selected inversion to measurement quantities.
    Measure,
    /// All stages complete; [`MatrixTask::quantities`] is available.
    Done,
}

/// One matrix's resumable unit of work.
///
/// Owns the HS field and all intermediate state, so a scheduler can
/// advance it step by step ([`MatrixTask::step`]) or to completion
/// ([`MatrixTask::run`]) on whichever worker holds it. The shift `q` is
/// derived from `(seed, index, c)` alone, so results are independent of
/// which worker executes the task and in what order.
///
/// [`MatrixTask::degrade`] implements the per-job rung of the §II-C
/// recovery ladder: it halves the cluster size and rewinds the task to
/// [`JobStep::Build`], so one sick job retries smaller without touching
/// its neighbors.
pub struct MatrixTask {
    index: usize,
    field: HsField,
    c: usize,
    pattern: Pattern,
    seed: u64,
    step: JobStep,
    pc: Option<BlockPCyclic>,
    out: Option<FsiOutput>,
    quantities: Option<Vec<f64>>,
    degradations: u32,
}

impl MatrixTask {
    /// Creates a task for matrix `index` with the given field and
    /// selection parameters. `seed` is the *run* seed; the per-matrix
    /// shift is derived from it and `index` (see [`shift_for`]).
    pub fn new(index: usize, field: HsField, c: usize, pattern: Pattern, seed: u64) -> Self {
        assert!(c > 0, "cluster size must be positive");
        MatrixTask {
            index,
            field,
            c,
            pattern,
            seed,
            step: JobStep::Build,
            pc: None,
            out: None,
            quantities: None,
            degradations: 0,
        }
    }

    /// The matrix index this task computes.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The cluster size the task currently runs with (shrinks on
    /// [`MatrixTask::degrade`]).
    pub fn c(&self) -> usize {
        self.c
    }

    /// How many times [`MatrixTask::degrade`] has fired.
    pub fn degradations(&self) -> u32 {
        self.degradations
    }

    /// The current pipeline position.
    pub fn step_now(&self) -> JobStep {
        self.step
    }

    /// Whether the task has completed all stages.
    pub fn is_done(&self) -> bool {
        self.step == JobStep::Done
    }

    /// The measurement quantities, once [`JobStep::Done`].
    pub fn quantities(&self) -> Option<&[f64]> {
        self.quantities.as_deref()
    }

    /// Consumes the task, returning `(index, quantities)`.
    ///
    /// # Panics
    /// If the task is not [`JobStep::Done`].
    pub fn into_quantities(self) -> (usize, Vec<f64>) {
        (
            self.index,
            self.quantities.expect("task must be Done before harvest"),
        )
    }

    /// Advances the pipeline by exactly one step and returns the *new*
    /// position. A no-op at [`JobStep::Done`].
    ///
    /// # Errors
    /// Propagates health-probe failures from the inversion; the task
    /// stays at its current step so the caller may [`MatrixTask::degrade`]
    /// and retry.
    pub fn step(
        &mut self,
        par: Parallelism<'_>,
        builder: &BlockBuilder,
        measure: &MeasureFn,
    ) -> FsiResult<JobStep> {
        static MATRICES: fsi_runtime::metrics::LazyCounter =
            fsi_runtime::metrics::LazyCounter::new("selinv.multi.matrices");
        match self.step {
            JobStep::Build => {
                self.pc = Some(hubbard_pcyclic(builder, &self.field, Spin::Up));
                self.step = JobStep::Invert;
            }
            JobStep::Invert => {
                let pc = self.pc.as_ref().expect("Build ran before Invert");
                let q = shift_for(self.seed, self.index, self.c);
                let selection = Selection::new(self.pattern, self.c, q);
                self.out = Some(crate::fsi::fsi_with_q(par, pc, &selection)?);
                self.step = JobStep::Measure;
            }
            JobStep::Measure => {
                let out = self.out.as_ref().expect("Invert ran before Measure");
                self.quantities = Some(measure(&out.selected));
                MATRICES.inc();
                self.step = JobStep::Done;
            }
            JobStep::Done => {}
        }
        Ok(self.step)
    }

    /// Runs the remaining steps to completion.
    ///
    /// # Errors
    /// First health-probe failure; see [`MatrixTask::step`].
    pub fn run(
        &mut self,
        par: Parallelism<'_>,
        builder: &BlockBuilder,
        measure: &MeasureFn,
    ) -> FsiResult<()> {
        while self.step(par, builder, measure)? != JobStep::Done {}
        Ok(())
    }

    /// Shrinks the cluster size (the §II-C "shrink `c`" rung scoped to
    /// this one task) and rewinds the pipeline to [`JobStep::Build`].
    ///
    /// An even `c` halves (`c | L` and `2 | c` imply `c/2 | L`, so the
    /// clustering stays legal); an odd `c > 1` drops to 1 (plain block
    /// LU, no clustering). Returns `false` — without changing anything —
    /// once `c == 1`, the ladder's floor.
    pub fn degrade(&mut self) -> bool {
        if self.c == 1 {
            return false;
        }
        self.c = if self.c.is_multiple_of(2) {
            self.c / 2
        } else {
            1
        };
        self.degradations += 1;
        self.step = JobStep::Build;
        self.pc = None;
        self.out = None;
        self.quantities = None;
        true
    }
}

impl JobStep {
    /// Stable one-byte encoding for checkpoints.
    pub fn as_u8(self) -> u8 {
        match self {
            JobStep::Build => 0,
            JobStep::Invert => 1,
            JobStep::Measure => 2,
            JobStep::Done => 3,
        }
    }

    /// Decodes [`JobStep::as_u8`].
    ///
    /// # Errors
    /// [`CkptError::Malformed`] on an unknown discriminant.
    pub fn from_u8(v: u8) -> Result<Self, CkptError> {
        Ok(match v {
            0 => JobStep::Build,
            1 => JobStep::Invert,
            2 => JobStep::Measure,
            3 => JobStep::Done,
            _ => return Err(CkptError::Malformed("unknown JobStep discriminant")),
        })
    }
}

/// The checkpointable state of a [`MatrixTask`].
///
/// The built matrix and the inversion output are *not* carried: they are
/// pure deterministic functions of `(field, c, pattern, seed, index)`,
/// so a task parked at [`JobStep::Invert`] or [`JobStep::Measure`]
/// snapshots as [`JobStep::Build`] and recomputes the intermediates on
/// resume — bitwise identically, by the same argument that makes the
/// static and stealing schedules agree. Only a [`JobStep::Done`] task
/// carries its measurement vector, so a resumed scheduler never re-runs
/// finished work.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskSnapshot {
    /// The matrix index ([`MatrixTask::index`]).
    pub index: usize,
    /// The cluster size in force (after any degradations).
    pub c: usize,
    /// Recovery-ladder rungs the task has descended.
    pub degradations: u32,
    /// The (coarsened) pipeline position: `Build` or `Done`.
    pub step: JobStep,
    /// The measurement vector, present exactly when `step == Done`.
    pub quantities: Option<Vec<f64>>,
}

impl TaskSnapshot {
    /// Serializes into `w` (the task's share of a larger checkpoint).
    pub fn encode(&self, w: &mut CkptWriter) {
        w.put_u64(self.index as u64);
        w.put_u64(self.c as u64);
        w.put_u32(self.degradations);
        w.put_u32(self.step.as_u8() as u32);
        match &self.quantities {
            Some(q) => {
                w.put_u32(1);
                w.put_f64s(q);
            }
            None => w.put_u32(0),
        }
    }

    /// Deserializes what [`TaskSnapshot::encode`] wrote.
    ///
    /// # Errors
    /// [`CkptError::Malformed`] on truncation or structural nonsense
    /// (a `Done` step without quantities, and vice versa).
    pub fn decode(r: &mut CkptReader<'_>) -> Result<Self, CkptError> {
        let index = r.take_u64()? as usize;
        let c = r.take_u64()? as usize;
        if c == 0 {
            return Err(CkptError::Malformed("cluster size zero"));
        }
        let degradations = r.take_u32()?;
        let step = JobStep::from_u8(r.take_u32()? as u8)?;
        let quantities = match r.take_u32()? {
            0 => None,
            1 => Some(r.take_f64s()?),
            _ => return Err(CkptError::Malformed("bad quantities tag")),
        };
        if (step == JobStep::Done) != quantities.is_some() {
            return Err(CkptError::Malformed("step/quantities mismatch"));
        }
        Ok(TaskSnapshot {
            index,
            c,
            degradations,
            step,
            quantities,
        })
    }
}

impl MatrixTask {
    /// Captures the checkpointable state (see [`TaskSnapshot`] for what
    /// is coarsened and why).
    pub fn snapshot(&self) -> TaskSnapshot {
        TaskSnapshot {
            index: self.index,
            c: self.c,
            degradations: self.degradations,
            step: if self.step == JobStep::Done {
                JobStep::Done
            } else {
                JobStep::Build
            },
            quantities: self.quantities.clone(),
        }
    }

    /// Rebuilds a task from a snapshot plus the externally-regenerated
    /// field (fields come from the run's root RNG stream, so the
    /// checkpoint owner regenerates them rather than storing each copy).
    pub fn restore(snap: TaskSnapshot, field: HsField, pattern: Pattern, seed: u64) -> Self {
        MatrixTask {
            index: snap.index,
            field,
            c: snap.c,
            pattern,
            seed,
            step: snap.step,
            pc: None,
            out: None,
            quantities: snap.quantities,
            degradations: snap.degradations,
        }
    }
}

/// The deterministic per-matrix shift `q ∈ [0, c)` (paper: "select `q`
/// randomly").
///
/// Derived from `(seed, index, c)` only — *not* from the rank or worker
/// executing the matrix — so static and work-stealing schedules produce
/// bitwise-identical selected inversions.
pub fn shift_for(seed: u64, index: usize, c: usize) -> usize {
    let mix = seed ^ 0x9E37 ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ChaCha8Rng::seed_from_u64(mix).gen_range(0..c)
}

/// Generates the HS fields for a run: one [`ChaCha8Rng`] stream seeded by
/// `seed`, drawn in matrix order — the root-side generation of Alg. 3,
/// shared by both scheduling paths and the `fsi-service` job runner.
pub fn generate_fields(l: usize, n: usize, matrices: usize, seed: u64) -> Vec<HsField> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..matrices)
        .map(|_| HsField::random(l, n, &mut rng))
        .collect()
}

/// Sums per-matrix measurement vectors in matrix-index order, so the
/// global reduction is bitwise-reproducible across rank counts and
/// scheduling disciplines (float addition is not associative; fixing the
/// order fixes the sum).
fn ordered_sum(mut pairs: Vec<(usize, Vec<f64>)>) -> Vec<f64> {
    pairs.sort_by_key(|(i, _)| *i);
    let mut acc: Vec<f64> = Vec::new();
    for (_, q) in pairs {
        if acc.is_empty() {
            acc = q;
        } else {
            assert_eq!(acc.len(), q.len(), "measure length varies");
            for (a, v) in acc.iter_mut().zip(q) {
                *a += v;
            }
        }
    }
    acc
}

/// Runs Alg. 3: distribute fields over workers, per-worker FSI over the
/// local share of matrices, reduce measurement vectors in matrix order.
///
/// The spin is fixed to [`Spin::Up`]; DQMC proper (both spins, Metropolis
/// dynamics) lives in the `fsi-dqmc` crate — this driver is the
/// performance harness of the paper's §V-B. The scheduling discipline is
/// chosen by [`MultiConfig::scheduling`]; both disciplines give the same
/// bits for the same seed (see the module docs).
///
/// ```
/// use fsi_selinv::{run_multi, trace_measure, MultiConfig, Pattern, Scheduling};
/// use fsi_pcyclic::{BlockBuilder, HubbardParams, SquareLattice};
///
/// let builder = BlockBuilder::new(
///     SquareLattice::square(2),
///     HubbardParams::paper_validation(8),
/// );
/// let cfg = MultiConfig {
///     ranks: 2,
///     threads_per_rank: 1,
///     matrices: 3,
///     c: 4,
///     pattern: Pattern::Diagonal,
///     seed: 1,
///     scheduling: Scheduling::WorkStealing,
/// };
/// let result = run_multi(&builder, &cfg, &trace_measure).unwrap();
/// // One diagonal selection per cluster: 3 matrices × (L/c = 2) blocks.
/// assert_eq!(result.global_measurements[1], 6.0);
/// ```
///
/// # Errors
/// Any worker whose FSI invocation trips a health probe aborts the run;
/// remaining queued matrices are drained unprocessed and the failure with
/// the lowest matrix index is surfaced.
pub fn run_multi(
    builder: &BlockBuilder,
    cfg: &MultiConfig,
    measure: &MeasureFn,
) -> FsiResult<MultiResult> {
    assert!(cfg.ranks > 0 && cfg.threads_per_rank > 0 && cfg.matrices > 0);
    let sw = Stopwatch::start();
    let pairs = match cfg.scheduling {
        Scheduling::Static => run_static(builder, cfg, measure)?,
        Scheduling::WorkStealing => run_stealing(builder, cfg, measure)?,
    };
    Ok(MultiResult {
        global_measurements: ordered_sum(pairs),
        seconds: sw.seconds(),
        matrices: cfg.matrices,
    })
}

/// The paper-literal path: root generates and scatters fields, each rank
/// runs its block share, per-matrix vectors are gathered at the root.
fn run_static(
    builder: &BlockBuilder,
    cfg: &MultiConfig,
    measure: &MeasureFn,
) -> FsiResult<Vec<(usize, Vec<f64>)>> {
    let l = builder.params().l;
    let n = builder.lattice().n_sites();
    let results = comm::run(cfg.ranks, |rank| {
        // Root generates all HS fields (as flat ±1 vectors) and scatters
        // each rank its share, mirroring MPI_Scatter of `h`.
        let shares: Option<Vec<Vec<Vec<i8>>>> = rank.is_root().then(|| {
            let fields = generate_fields(l, n, cfg.matrices, cfg.seed);
            let mut shares: Vec<Vec<Vec<i8>>> = vec![Vec::new(); rank.size()];
            for (m, field) in fields.iter().enumerate() {
                shares[owner_of(m, cfg.matrices, rank.size())].push(field.to_flat());
            }
            shares
        });
        let my_fields: Vec<Vec<i8>> = rank.scatter(shares, 1);
        let my_range = comm::block_range(cfg.matrices, rank.size(), rank.id());

        // Per-rank pool = the OpenMP level of the hybrid model.
        let pool = ThreadPool::new(cfg.threads_per_rank);
        let par = if cfg.threads_per_rank == 1 {
            Parallelism::Serial
        } else {
            Parallelism::OpenMp(&pool)
        };
        let mut local: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut failure: Option<(usize, FsiError)> = None;
        for (index, flat) in my_range.zip(&my_fields) {
            let field = HsField::from_flat(l, n, flat);
            let mut task = MatrixTask::new(index, field, cfg.c, cfg.pattern, cfg.seed);
            // A failed inversion must not skip the collectives below (all
            // ranks participate or none return), so park the error.
            match task.run(par, builder, measure) {
                Ok(()) => local.push(task.into_quantities()),
                Err(e) => {
                    failure = Some((index, e));
                    break;
                }
            }
        }
        // Gather per-matrix vectors at the root (the paper's MPI_Reduce;
        // we reduce in matrix order on the root for bitwise stability).
        let gathered = rank.gather(local, 2);
        let failures = rank.gather(failure, 3);
        gathered.zip(failures)
    });
    let root = results.into_iter().next().flatten();
    let (gathered, failures) = root.expect("root holds the gathers");
    if let Some((_, e)) = failures.into_iter().flatten().min_by_key(|(i, _)| *i) {
        return Err(e);
    }
    Ok(gathered.into_iter().flatten().collect())
}

/// The work-stealing path: the same block distribution seeds per-worker
/// deques, idle workers steal half of the fullest backlog.
fn run_stealing(
    builder: &BlockBuilder,
    cfg: &MultiConfig,
    measure: &MeasureFn,
) -> FsiResult<Vec<(usize, Vec<f64>)>> {
    let l = builder.params().l;
    let n = builder.lattice().n_sites();
    let fields = generate_fields(l, n, cfg.matrices, cfg.seed);
    let queues = StealQueues::new(cfg.ranks);
    for (m, field) in fields.into_iter().enumerate() {
        let task = MatrixTask::new(m, field, cfg.c, cfg.pattern, cfg.seed);
        queues.push(owner_of(m, cfg.matrices, cfg.ranks), task);
    }
    queues.close(); // batch run: drain and exit

    let abort = AtomicBool::new(false);
    let failure: Mutex<Option<(usize, FsiError)>> = Mutex::new(None);
    let done: Mutex<Vec<(usize, Vec<f64>)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in 0..cfg.ranks {
            let queues = &queues;
            let abort = &abort;
            let failure = &failure;
            let done = &done;
            s.spawn(move || {
                let pool = ThreadPool::new(cfg.threads_per_rank);
                let par = if cfg.threads_per_rank == 1 {
                    Parallelism::Serial
                } else {
                    Parallelism::OpenMp(&pool)
                };
                while let Some(mut task) = queues.acquire(w) {
                    if abort.load(Ordering::Acquire) {
                        continue; // drain without processing
                    }
                    match task.run(par, builder, measure) {
                        Ok(()) => done.lock().unwrap().push(task.into_quantities()),
                        Err(e) => {
                            let mut slot = failure.lock().unwrap();
                            // Keep the lowest-index failure for
                            // deterministic error surfacing.
                            if slot.as_ref().is_none_or(|(i, _)| task.index() < *i) {
                                *slot = Some((task.index(), e));
                            }
                            abort.store(true, Ordering::Release);
                        }
                    }
                }
            });
        }
    });
    if let Some((_, e)) = failure.into_inner().unwrap() {
        return Err(e);
    }
    Ok(done.into_inner().unwrap())
}

/// Which rank owns matrix `m` under the block distribution.
fn owner_of(m: usize, total: usize, ranks: usize) -> usize {
    for r in 0..ranks {
        if comm::block_range(total, ranks, r).contains(&m) {
            return r;
        }
    }
    unreachable!("matrix {m} of {total} not owned by any of {ranks} ranks")
}

/// A simple default measurement: `[Σ tr G(k,k), #blocks]` over the
/// selection — enough to validate reductions end to end.
///
/// The diagonal traces are summed in ascending block order: the selected
/// inverse stores blocks in a hash map, and a measurement hook that sums
/// in map-iteration order would produce run-dependent last bits.
pub fn trace_measure(s: &SelectedInverse) -> Vec<f64> {
    let mut diags: Vec<(usize, f64)> = s
        .iter()
        .filter(|(coord, _)| coord.0 == coord.1)
        .map(|(coord, blk)| {
            let mut t = 0.0;
            for i in 0..blk.rows() {
                t += blk[(i, i)];
            }
            (coord.0, t)
        })
        .collect();
    diags.sort_by_key(|(k, _)| *k);
    let trace = diags.iter().map(|(_, t)| t).sum();
    vec![trace, s.len() as f64]
}

/// Per-rank memory requirement of one FSI invocation, in bytes
/// (paper §V-B: input blocks + reduced inverse + selected blocks +
/// workspace).
pub fn per_rank_bytes(n: usize, l: usize, c: usize, pattern: Pattern) -> u64 {
    let n = n as u64;
    let l = l as u64;
    let b = l / c as u64;
    let f = 8u64; // sizeof f64
    let input = l * n * n * f;
    let reduced_blocks = b * n * n * f;
    let g_reduced = (b * n) * (b * n) * f;
    let selected = pattern.n_blocks(l as usize, c) as u64 * n * n * f;
    // LU factor cache for the wrapping stage plus per-thread scratch.
    let workspace = l * n * n * f / 4 + 16 * n * n * f;
    input + reduced_blocks + g_reduced + selected + workspace
}

/// The Edison-node memory model of Fig. 9.
#[derive(Clone, Copy, Debug)]
pub struct MemoryModel {
    /// Physical memory per node in bytes (Edison: 64 GB).
    pub node_bytes: u64,
    /// Memory consumed by OS/kernel/filesystem/MPI buffers per node
    /// (paper: ≈2.5 GB usable per core of 2.67 GB raw → ≈4 GB overhead).
    pub reserved_bytes: u64,
    /// Cores per node (Edison: 24).
    pub cores_per_node: usize,
}

impl MemoryModel {
    /// Edison Cray XC30 node parameters from the paper's §V.
    pub fn edison() -> Self {
        MemoryModel {
            node_bytes: 64 * (1 << 30),
            reserved_bytes: 4 * (1 << 30),
            cores_per_node: 24,
        }
    }

    /// Whether a `(ranks_per_node × threads_per_rank)` configuration fits.
    ///
    /// Each rank needs `per_rank` bytes simultaneously; exceeding the
    /// usable node memory is what triggered Edison's OOM killer for the
    /// pure-MPI configurations at `N ≥ 576`.
    pub fn feasible(&self, ranks_per_node: usize, per_rank: u64) -> bool {
        ranks_per_node as u64 * per_rank <= self.node_bytes - self.reserved_bytes
    }

    /// The rank×thread configurations of Fig. 9 for this node
    /// (`ranks_per_node × threads = cores_per_node`).
    pub fn configurations(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for threads in 1..=self.cores_per_node {
            if self.cores_per_node.is_multiple_of(threads) {
                out.push((self.cores_per_node / threads, threads));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_pcyclic::{HubbardParams, SquareLattice};

    fn small_builder() -> BlockBuilder {
        BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(8))
    }

    fn base_cfg() -> MultiConfig {
        MultiConfig {
            ranks: 3,
            threads_per_rank: 1,
            matrices: 7,
            c: 4,
            pattern: Pattern::Diagonal,
            seed: 42,
            scheduling: Scheduling::WorkStealing,
        }
    }

    #[test]
    fn multi_run_reduces_across_ranks() {
        let builder = small_builder();
        let result = run_multi(&builder, &base_cfg(), &trace_measure).expect("healthy");
        assert_eq!(result.matrices, 7);
        // Block-count channel: 7 matrices × b=2 diagonal blocks.
        assert_eq!(result.global_measurements[1], 14.0);
        assert!(result.global_measurements[0].is_finite());
    }

    #[test]
    fn scheduling_disciplines_are_bitwise_identical() {
        let builder = small_builder();
        let mut cfg = base_cfg();
        cfg.scheduling = Scheduling::Static;
        let stat = run_multi(&builder, &cfg, &trace_measure).expect("healthy");
        cfg.scheduling = Scheduling::WorkStealing;
        let steal = run_multi(&builder, &cfg, &trace_measure).expect("healthy");
        assert_eq!(
            stat.global_measurements, steal.global_measurements,
            "static vs stealing must agree to the bit"
        );
    }

    #[test]
    fn rank_count_does_not_change_the_bits() {
        // The same seed and matrix count must give *bitwise* identical
        // reductions regardless of how many ranks share the work — the
        // ordered reduction guarantees it.
        let builder = small_builder();
        let base = MultiConfig {
            ranks: 1,
            matrices: 5,
            seed: 7,
            ..base_cfg()
        };
        let r1 = run_multi(&builder, &base, &trace_measure).expect("healthy");
        for ranks in [2usize, 5] {
            for scheduling in [Scheduling::Static, Scheduling::WorkStealing] {
                let cfg = MultiConfig {
                    ranks,
                    scheduling,
                    ..base.clone()
                };
                let r = run_multi(&builder, &cfg, &trace_measure).expect("healthy");
                assert_eq!(
                    r1.global_measurements, r.global_measurements,
                    "ranks={ranks} {scheduling:?}"
                );
            }
        }
    }

    #[test]
    fn hybrid_threads_match_pure_mpi_results() {
        let builder = small_builder();
        let cfg1 = MultiConfig {
            ranks: 2,
            threads_per_rank: 1,
            matrices: 4,
            c: 4,
            pattern: Pattern::Columns,
            seed: 9,
            scheduling: Scheduling::Static,
        };
        let cfg2 = MultiConfig {
            threads_per_rank: 2,
            ranks: 1,
            ..cfg1.clone()
        };
        let r1 = run_multi(&builder, &cfg1, &trace_measure).expect("healthy");
        let r2 = run_multi(&builder, &cfg2, &trace_measure).expect("healthy");
        for (a, b) in r1.global_measurements.iter().zip(&r2.global_measurements) {
            assert!((a - b).abs() < 1e-6 * a.abs().max(1.0));
        }
    }

    #[test]
    fn task_steps_advance_in_order() {
        let builder = small_builder();
        let l = builder.params().l;
        let n = builder.lattice().n_sites();
        let field = generate_fields(l, n, 1, 3).remove(0);
        let mut task = MatrixTask::new(0, field, 4, Pattern::Diagonal, 3);
        assert_eq!(task.step_now(), JobStep::Build);
        let seq: Vec<JobStep> = (0..3)
            .map(|_| {
                task.step(Parallelism::Serial, &builder, &trace_measure)
                    .expect("healthy")
            })
            .collect();
        assert_eq!(seq, [JobStep::Invert, JobStep::Measure, JobStep::Done]);
        assert!(task.is_done());
        assert_eq!(task.quantities().unwrap().len(), 2);
    }

    #[test]
    fn degrade_halves_c_down_to_the_floor() {
        let builder = small_builder();
        let l = builder.params().l;
        let n = builder.lattice().n_sites();
        let field = generate_fields(l, n, 1, 5).remove(0);
        let mut task = MatrixTask::new(0, field, 4, Pattern::Diagonal, 5);
        task.run(Parallelism::Serial, &builder, &trace_measure)
            .expect("healthy");
        assert!(task.degrade());
        assert_eq!(task.c(), 2);
        assert_eq!(task.step_now(), JobStep::Build);
        assert!(task.quantities().is_none());
        // The degraded task still completes (c=2 divides L=8).
        task.run(Parallelism::Serial, &builder, &trace_measure)
            .expect("healthy after degrade");
        assert!(task.degrade());
        assert_eq!(task.c(), 1);
        assert!(!task.degrade(), "c=1 is the floor");
        assert_eq!(task.degradations(), 2);
    }

    #[test]
    fn snapshot_restores_done_and_mid_pipeline_tasks_bitwise() {
        let builder = small_builder();
        let l = builder.params().l;
        let n = builder.lattice().n_sites();
        let fields = generate_fields(l, n, 2, 21);

        // Done task: quantities survive the snapshot verbatim.
        let mut done = MatrixTask::new(0, fields[0].clone(), 4, Pattern::Diagonal, 21);
        done.run(Parallelism::Serial, &builder, &trace_measure)
            .expect("healthy");
        let snap = done.snapshot();
        assert_eq!(snap.step, JobStep::Done);
        let mut w = CkptWriter::new();
        snap.encode(&mut w);
        let bytes = w.into_bytes();
        let decoded = TaskSnapshot::decode(&mut CkptReader::new(&bytes)).expect("decodes");
        assert_eq!(decoded, snap);
        let restored = MatrixTask::restore(decoded, fields[0].clone(), Pattern::Diagonal, 21);
        assert_eq!(restored.quantities(), done.quantities());

        // Mid-pipeline (degraded, parked at Invert): coarsens to Build,
        // and the resumed task reproduces the original result bitwise.
        let mut mid = MatrixTask::new(1, fields[1].clone(), 4, Pattern::Diagonal, 21);
        mid.degrade();
        mid.step(Parallelism::Serial, &builder, &trace_measure)
            .expect("healthy build");
        assert_eq!(mid.step_now(), JobStep::Invert);
        let snap = mid.snapshot();
        assert_eq!(
            (snap.step, snap.c, snap.degradations),
            (JobStep::Build, 2, 1)
        );
        let mut resumed = MatrixTask::restore(snap, fields[1].clone(), Pattern::Diagonal, 21);
        resumed
            .run(Parallelism::Serial, &builder, &trace_measure)
            .expect("healthy resume");
        mid.run(Parallelism::Serial, &builder, &trace_measure)
            .expect("healthy original");
        assert_eq!(resumed.quantities(), mid.quantities());
    }

    #[test]
    fn shift_is_schedule_independent_and_in_range() {
        for seed in [0u64, 42, u64::MAX] {
            for index in [0usize, 1, 999] {
                for c in [1usize, 4, 10] {
                    let q = shift_for(seed, index, c);
                    assert!(q < c);
                    assert_eq!(q, shift_for(seed, index, c), "deterministic");
                }
            }
        }
        // Different matrices get different shift streams (not all equal).
        let qs: Vec<usize> = (0..32).map(|m| shift_for(11, m, 10)).collect();
        assert!(qs.iter().any(|&q| q != qs[0]));
    }

    #[test]
    fn memory_model_reproduces_paper_thresholds() {
        let model = MemoryModel::edison();
        // N = 576, (L, c) = (100, 10), columns: paper quotes ≈2.65 GB per
        // selected inversion; our model adds the working set on top.
        let per_rank = per_rank_bytes(576, 100, 10, Pattern::Columns);
        assert!(
            per_rank > 2 * (1 << 30) as u64,
            "selected inversion alone > 2 GB"
        );
        // Pure MPI (12 ranks/socket ⇒ 24 ranks/node) does NOT fit at
        // N = 576 — the paper's OOM case.
        assert!(
            !model.feasible(24, per_rank),
            "24 ranks x {per_rank} B must OOM"
        );
        // The hybrid 4 ranks × 6 threads fits.
        assert!(model.feasible(4, per_rank));
        // N = 400 fits even for pure MPI (the paper's only feasible pure
        // MPI point).
        let per_rank_400 = per_rank_bytes(400, 100, 10, Pattern::Columns);
        assert!(model.feasible(24, per_rank_400), "N=400 pure MPI fits");
    }

    #[test]
    fn configurations_cover_fig9_grid() {
        let model = MemoryModel::edison();
        let configs = model.configurations();
        // Fig. 9's x-axis per node: 24×1, 12×2, 8×3, 4×6, 2×12, 1×24 ...
        assert!(configs.contains(&(24, 1)));
        assert!(configs.contains(&(12, 2)));
        assert!(configs.contains(&(8, 3)));
        assert!(configs.contains(&(4, 6)));
        assert!(configs.contains(&(2, 12)));
        assert!(configs.contains(&(1, 24)));
        for (r, t) in configs {
            assert_eq!(r * t, 24);
        }
    }

    #[test]
    fn owner_covers_all_matrices() {
        for total in [1usize, 7, 24] {
            for ranks in [1usize, 3, 5] {
                let mut counts = vec![0usize; ranks];
                for m in 0..total {
                    counts[owner_of(m, total, ranks)] += 1;
                }
                assert_eq!(counts.iter().sum::<usize>(), total);
            }
        }
    }
}
