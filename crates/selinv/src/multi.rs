//! Parallel application of FSI to many Green's functions (paper Alg. 3)
//! and the node-memory model behind Fig. 9.
//!
//! DQMC needs selected inversions of *tens of thousands* of independent
//! p-cyclic matrices. Alg. 3 distributes them over MPI ranks: the root
//! generates the Hubbard–Stratonovich field parameters `h` (cheap to ship,
//! unlike the matrices), scatters them, each rank builds its matrices
//! locally and runs the OpenMP FSI per matrix, and local measurement
//! quantities are combined with `MPI_Reduce`. This module reproduces that
//! loop on the in-process ranks of [`fsi_runtime::comm`].
//!
//! The memory model captures why the paper's Fig. 9 favors the hybrid
//! configuration: a rank must hold its matrix, the reduced inverse `Ḡ`,
//! and the selected blocks simultaneously; with 12 ranks per socket the
//! per-rank budget (≈2.5 GB on Edison) is exceeded already at `N = 576`,
//! so pure MPI configurations are infeasible exactly where the paper's
//! OOM-killer anecdote places them.
//!
//! Each matrix's clustering stage is the batched small-GEMM hot shape: in
//! the `Serial` and `OpenMp` rank configurations (`par_gemm` sequential)
//! the per-matrix CLS rides [`fsi_dense::gemm_batched`]'s lockstep path,
//! so a multi-matrix run issues one batched dispatch per chain position
//! per matrix instead of `b·(c−1)` individual small products. The
//! `selinv.multi.matrices` counter tracks driver progress in the metrics
//! registry.

use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, Spin};
use fsi_runtime::health::{FsiError, FsiResult};
use fsi_runtime::{comm, Stopwatch, ThreadPool};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::fsi::Parallelism;
use crate::patterns::{Pattern, SelectedInverse};

/// Configuration of a multi-matrix FSI run.
#[derive(Clone, Debug)]
pub struct MultiConfig {
    /// Number of message-passing ranks (MPI processes).
    pub ranks: usize,
    /// OpenMP-style threads per rank.
    pub threads_per_rank: usize,
    /// Number of independent Green's functions (matrices).
    pub matrices: usize,
    /// Cluster size `c`.
    pub c: usize,
    /// Selection pattern computed per matrix.
    pub pattern: Pattern,
    /// RNG seed for field generation and the per-matrix shift `q`.
    pub seed: u64,
}

/// Result of a multi-matrix run.
#[derive(Clone, Debug)]
pub struct MultiResult {
    /// Globally reduced measurement quantities (sum over matrices).
    pub global_measurements: Vec<f64>,
    /// Wall-clock seconds of the parallel region.
    pub seconds: f64,
    /// Total matrices processed.
    pub matrices: usize,
}

/// The per-matrix measurement hook: reduces a selected inversion to a
/// vector of quantities, which are summed across matrices and ranks (the
/// paper's `local_measurement_quantities` → `MPI_Reduce`).
pub type MeasureFn = dyn Fn(&SelectedInverse) -> Vec<f64> + Sync;

/// Runs Alg. 3: scatter fields from the root, per-rank FSI over the local
/// share of matrices, reduce measurement vectors to the root.
///
/// The spin is fixed to [`Spin::Up`]; DQMC proper (both spins, Metropolis
/// dynamics) lives in the `fsi-dqmc` crate — this driver is the
/// performance harness of the paper's §V-B.
///
/// # Errors
/// Any rank whose FSI invocation trips a health probe aborts its local
/// loop, still participates in the collectives (with a zero contribution,
/// so no rank deadlocks), and surfaces the first [`FsiError`] here.
pub fn run_multi(
    builder: &BlockBuilder,
    cfg: &MultiConfig,
    measure: &MeasureFn,
) -> FsiResult<MultiResult> {
    assert!(cfg.ranks > 0 && cfg.threads_per_rank > 0 && cfg.matrices > 0);
    let l = builder.params().l;
    let n = builder.lattice().n_sites();
    let sw = Stopwatch::start();
    let results = comm::run(cfg.ranks, |rank| {
        // Root generates all HS fields (as flat ±1 vectors) and scatters
        // each rank its share, mirroring MPI_Scatter of `h`.
        let shares: Option<Vec<Vec<Vec<i8>>>> = rank.is_root().then(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
            let mut shares: Vec<Vec<Vec<i8>>> = vec![Vec::new(); rank.size()];
            for m in 0..cfg.matrices {
                let field = HsField::random(l, n, &mut rng);
                let dest = owner_of(m, cfg.matrices, rank.size());
                shares[dest].push(field.to_flat());
            }
            shares
        });
        let my_fields: Vec<Vec<i8>> = rank.scatter(shares, 1);

        // Per-rank pool = the OpenMP level of the hybrid model.
        let pool = ThreadPool::new(cfg.threads_per_rank);
        let par = if cfg.threads_per_rank == 1 {
            Parallelism::Serial
        } else {
            Parallelism::OpenMp(&pool)
        };
        // The shift q is drawn per matrix (paper: "select q randomly").
        let mut qrng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x9E37 ^ rank.id() as u64);
        let mut local = Vec::new();
        let mut failure: Option<FsiError> = None;
        // Per-matrix progress counter: exporters can watch a long hybrid
        // run advance matrix by matrix.
        static MATRICES: fsi_runtime::metrics::LazyCounter =
            fsi_runtime::metrics::LazyCounter::new("selinv.multi.matrices");
        for flat in &my_fields {
            let field = HsField::from_flat(l, n, flat);
            let pc = hubbard_pcyclic(builder, &field, Spin::Up);
            MATRICES.inc();
            // A failed inversion must not skip the collectives below (all
            // ranks participate or none return), so park the error.
            let out = match crate::fsi::fsi(par, &pc, cfg.pattern, cfg.c, &mut qrng) {
                Ok(out) => out,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            let quantities = measure(&out.selected);
            if local.is_empty() {
                local = quantities;
            } else {
                assert_eq!(local.len(), quantities.len(), "measure length varies");
                for (a, q) in local.iter_mut().zip(quantities) {
                    *a += q;
                }
            }
        }
        if failure.is_some() {
            local.clear();
        }
        // Ranks owning zero matrices contribute a zero vector of the
        // right length; resolve the length via an allreduce of maxima.
        let len = rank.allreduce(local.len(), 2, usize::max);
        if local.is_empty() {
            local = vec![0.0; len];
        }
        let reduced = rank.reduce(local, 3, |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(reduced),
        }
    });
    let mut global = None;
    for (i, r) in results.into_iter().enumerate() {
        let v = r?; // surface the first failing rank
        if i == 0 {
            global = v;
        }
    }
    let global = global.expect("root holds the reduction");
    Ok(MultiResult {
        global_measurements: global,
        seconds: sw.seconds(),
        matrices: cfg.matrices,
    })
}

/// Which rank owns matrix `m` under the block distribution.
fn owner_of(m: usize, total: usize, ranks: usize) -> usize {
    for r in 0..ranks {
        if comm::block_range(total, ranks, r).contains(&m) {
            return r;
        }
    }
    unreachable!("matrix {m} of {total} not owned by any of {ranks} ranks")
}

/// A simple default measurement: `[Σ tr G(k,k), #blocks]` over the
/// selection — enough to validate reductions end to end.
pub fn trace_measure(s: &SelectedInverse) -> Vec<f64> {
    let mut trace = 0.0;
    for (coord, blk) in s.iter() {
        if coord.0 == coord.1 {
            for i in 0..blk.rows() {
                trace += blk[(i, i)];
            }
        }
    }
    vec![trace, s.len() as f64]
}

/// Per-rank memory requirement of one FSI invocation, in bytes
/// (paper §V-B: input blocks + reduced inverse + selected blocks +
/// workspace).
pub fn per_rank_bytes(n: usize, l: usize, c: usize, pattern: Pattern) -> u64 {
    let n = n as u64;
    let l = l as u64;
    let b = l / c as u64;
    let f = 8u64; // sizeof f64
    let input = l * n * n * f;
    let reduced_blocks = b * n * n * f;
    let g_reduced = (b * n) * (b * n) * f;
    let selected = pattern.n_blocks(l as usize, c) as u64 * n * n * f;
    // LU factor cache for the wrapping stage plus per-thread scratch.
    let workspace = l * n * n * f / 4 + 16 * n * n * f;
    input + reduced_blocks + g_reduced + selected + workspace
}

/// The Edison-node memory model of Fig. 9.
#[derive(Clone, Copy, Debug)]
pub struct MemoryModel {
    /// Physical memory per node in bytes (Edison: 64 GB).
    pub node_bytes: u64,
    /// Memory consumed by OS/kernel/filesystem/MPI buffers per node
    /// (paper: ≈2.5 GB usable per core of 2.67 GB raw → ≈4 GB overhead).
    pub reserved_bytes: u64,
    /// Cores per node (Edison: 24).
    pub cores_per_node: usize,
}

impl MemoryModel {
    /// Edison Cray XC30 node parameters from the paper's §V.
    pub fn edison() -> Self {
        MemoryModel {
            node_bytes: 64 * (1 << 30),
            reserved_bytes: 4 * (1 << 30),
            cores_per_node: 24,
        }
    }

    /// Whether a `(ranks_per_node × threads_per_rank)` configuration fits.
    ///
    /// Each rank needs `per_rank` bytes simultaneously; exceeding the
    /// usable node memory is what triggered Edison's OOM killer for the
    /// pure-MPI configurations at `N ≥ 576`.
    pub fn feasible(&self, ranks_per_node: usize, per_rank: u64) -> bool {
        ranks_per_node as u64 * per_rank <= self.node_bytes - self.reserved_bytes
    }

    /// The rank×thread configurations of Fig. 9 for this node
    /// (`ranks_per_node × threads = cores_per_node`).
    pub fn configurations(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for threads in 1..=self.cores_per_node {
            if self.cores_per_node.is_multiple_of(threads) {
                out.push((self.cores_per_node / threads, threads));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_pcyclic::{HubbardParams, SquareLattice};

    fn small_builder() -> BlockBuilder {
        BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(8))
    }

    #[test]
    fn multi_run_reduces_across_ranks() {
        let builder = small_builder();
        let cfg = MultiConfig {
            ranks: 3,
            threads_per_rank: 1,
            matrices: 7,
            c: 4,
            pattern: Pattern::Diagonal,
            seed: 42,
        };
        let result = run_multi(&builder, &cfg, &trace_measure).expect("healthy");
        assert_eq!(result.matrices, 7);
        // Block-count channel: 7 matrices × b=2 diagonal blocks.
        assert_eq!(result.global_measurements[1], 14.0);
        assert!(result.global_measurements[0].is_finite());
    }

    #[test]
    fn rank_count_does_not_change_the_physics() {
        // The same seed and matrix count must give identical reductions
        // regardless of how many ranks share the work.
        let builder = small_builder();
        let base = MultiConfig {
            ranks: 1,
            threads_per_rank: 1,
            matrices: 5,
            c: 4,
            pattern: Pattern::Diagonal,
            seed: 7,
        };
        let r1 = run_multi(&builder, &base, &trace_measure).expect("healthy");
        for ranks in [2usize, 5] {
            let cfg = MultiConfig {
                ranks,
                ..base.clone()
            };
            let r = run_multi(&builder, &cfg, &trace_measure).expect("healthy");
            for (a, b) in r1.global_measurements.iter().zip(&r.global_measurements) {
                assert!(
                    (a - b).abs() < 1e-6 * a.abs().max(1.0),
                    "ranks={ranks}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn hybrid_threads_match_pure_mpi_results() {
        let builder = small_builder();
        let cfg1 = MultiConfig {
            ranks: 2,
            threads_per_rank: 1,
            matrices: 4,
            c: 4,
            pattern: Pattern::Columns,
            seed: 9,
        };
        let cfg2 = MultiConfig {
            threads_per_rank: 2,
            ranks: 1,
            ..cfg1.clone()
        };
        let r1 = run_multi(&builder, &cfg1, &trace_measure).expect("healthy");
        let r2 = run_multi(&builder, &cfg2, &trace_measure).expect("healthy");
        for (a, b) in r1.global_measurements.iter().zip(&r2.global_measurements) {
            assert!((a - b).abs() < 1e-6 * a.abs().max(1.0));
        }
    }

    #[test]
    fn memory_model_reproduces_paper_thresholds() {
        let model = MemoryModel::edison();
        // N = 576, (L, c) = (100, 10), columns: paper quotes ≈2.65 GB per
        // selected inversion; our model adds the working set on top.
        let per_rank = per_rank_bytes(576, 100, 10, Pattern::Columns);
        assert!(
            per_rank > 2 * (1 << 30) as u64,
            "selected inversion alone > 2 GB"
        );
        // Pure MPI (12 ranks/socket ⇒ 24 ranks/node) does NOT fit at
        // N = 576 — the paper's OOM case.
        assert!(
            !model.feasible(24, per_rank),
            "24 ranks x {per_rank} B must OOM"
        );
        // The hybrid 4 ranks × 6 threads fits.
        assert!(model.feasible(4, per_rank));
        // N = 400 fits even for pure MPI (the paper's only feasible pure
        // MPI point).
        let per_rank_400 = per_rank_bytes(400, 100, 10, Pattern::Columns);
        assert!(model.feasible(24, per_rank_400), "N=400 pure MPI fits");
    }

    #[test]
    fn configurations_cover_fig9_grid() {
        let model = MemoryModel::edison();
        let configs = model.configurations();
        // Fig. 9's x-axis per node: 24×1, 12×2, 8×3, 4×6, 2×12, 1×24 ...
        assert!(configs.contains(&(24, 1)));
        assert!(configs.contains(&(12, 2)));
        assert!(configs.contains(&(8, 3)));
        assert!(configs.contains(&(4, 6)));
        assert!(configs.contains(&(2, 12)));
        assert!(configs.contains(&(1, 24)));
        for (r, t) in configs {
            assert_eq!(r * t, 24);
        }
    }

    #[test]
    fn owner_covers_all_matrices() {
        for total in [1usize, 7, 24] {
            for ranks in [1usize, 3, 5] {
                let mut counts = vec![0usize; ranks];
                for m in 0..total {
                    counts[owner_of(m, total, ranks)] += 1;
                }
                assert_eq!(counts.iter().sum::<usize>(), total);
            }
        }
    }
}
