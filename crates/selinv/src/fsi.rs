//! The FSI algorithm driver (paper Alg. 1):
//!
//! ```text
//! Input:  M (block p-cyclic), c, pattern
//! 1. randomize q ∈ {0, …, c−1}
//! 2. M̄ = CLS(M, c, q)            — clustering / block cyclic reduction
//! 3. Ḡ = M̄⁻¹ via BSOFI          — structured orthogonal inversion
//! 4. S = WRP(Ḡ, c, q)            — wrapping to the selected pattern
//! Output: S
//! ```
//!
//! The driver exposes the two execution styles the paper benchmarks on one
//! socket (Fig. 8 bottom, Figs. 10–11):
//!
//! * [`Parallelism::OpenMp`] — *coarse-grained*: the pool parallelizes the
//!   cluster loop, BSOFI's block columns, and the seed loop, while every
//!   dense kernel runs sequentially. This is the paper's FSI + OpenMP mode
//!   and scales with the flat task counts (`b`, `b²`).
//! * [`Parallelism::MklStyle`] — *fine-grained*: the outer loops run
//!   sequentially and the pool lives inside the dense kernels, mimicking
//!   "serial QUEST + multi-threaded MKL". Scaling is Amdahl-bound by the
//!   serial chain between kernel calls.

use fsi_dense::Matrix;
use fsi_pcyclic::BlockPCyclic;
use fsi_runtime::health::{self, FsiResult, HealthEvent, Stage};
use fsi_runtime::{Par, Profile, ThreadPool};
use rand::Rng;

use crate::bsofi::{bsofi, bsofi_selected, StructuredQr};
use crate::cls::{cls, Clustered};
use crate::patterns::{SelectedInverse, SelectedPattern, Selection};
use crate::wrap::{wrap, wrap_selected};

/// Execution style of one FSI invocation.
#[derive(Clone, Copy)]
pub enum Parallelism<'p> {
    /// Single thread everywhere.
    Serial,
    /// Coarse-grained: pool over clusters/columns/seeds, sequential
    /// kernels (the paper's "FSI + OpenMP").
    OpenMp(&'p ThreadPool),
    /// Fine-grained: sequential outer loops, pool inside dense kernels
    /// (the paper's "pure MKL" comparison mode).
    MklStyle(&'p ThreadPool),
}

impl<'p> Parallelism<'p> {
    /// `(outer, inner)` parallelism selectors for the three stages.
    pub fn split(&self) -> (Par<'p>, Par<'p>) {
        match self {
            Parallelism::Serial => (Par::Seq, Par::Seq),
            Parallelism::OpenMp(pool) => (Par::Pool(pool), Par::Seq),
            Parallelism::MklStyle(pool) => (Par::Seq, Par::Pool(pool)),
        }
    }

    /// Number of threads in play.
    pub fn threads(&self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::OpenMp(p) | Parallelism::MklStyle(p) => p.size(),
        }
    }

    /// The pool-backed selector regardless of style — for phase-level
    /// two-way forks (the DQMC spin join) that sit *above* the
    /// outer/inner split. The pool's help-while-waiting scope makes
    /// nesting this with either split side deadlock-free.
    pub fn any_pool(&self) -> Par<'p> {
        match self {
            Parallelism::Serial => Par::Seq,
            Parallelism::OpenMp(p) | Parallelism::MklStyle(p) => Par::Pool(p),
        }
    }
}

/// The reduced inverse `Ḡ = M̄⁻¹` in whichever representation the BSOFI
/// stage produced: dense (S3/S4, which seed walks from every block) or
/// sparse (S1/S2, which need only the diagonal seeds and skip the
/// `(bN)²` materialization entirely).
pub enum ReducedInverse {
    /// The full `bN × bN` inverse from [`bsofi`].
    Dense(Matrix),
    /// Only the requested blocks, from [`bsofi_selected`].
    Selected(SelectedInverse),
}

impl ReducedInverse {
    /// The dense matrix, if this run materialized one.
    pub fn dense(&self) -> Option<&Matrix> {
        match self {
            ReducedInverse::Dense(g) => Some(g),
            ReducedInverse::Selected(_) => None,
        }
    }

    /// The sparse block map, if this run used selected assembly.
    pub fn selected(&self) -> Option<&SelectedInverse> {
        match self {
            ReducedInverse::Dense(_) => None,
            ReducedInverse::Selected(s) => Some(s),
        }
    }

    /// Looks up reduced block `Ḡ(k₀, ℓ₀)` regardless of representation;
    /// `None` if a sparse run did not assemble it.
    pub fn block(&self, clustered: &Clustered, k0: usize, l0: usize) -> Option<Matrix> {
        match self {
            ReducedInverse::Dense(g) => Some(clustered.reduced.dense_block(g, k0, l0)),
            ReducedInverse::Selected(s) => s.get(k0, l0).cloned(),
        }
    }
}

/// Result of one FSI run: the selected blocks plus per-stage wall times
/// (sections `"cls"`, `"bsofi"`, `"wrap"`) for the Fig. 8 breakdown.
pub struct FsiOutput {
    /// The selected inversion `S`.
    pub selected: SelectedInverse,
    /// Per-stage timing profile.
    pub profile: Profile,
    /// The clustering actually used (exposes `q` and the reduced matrix).
    pub clustered: Clustered,
    /// The reduced inverse `Ḡ` (kept for callers that need extra seeds,
    /// e.g. the measurement driver): dense for S3/S4 runs, sparse diagonal
    /// seeds for S1/S2 runs.
    pub g_reduced: ReducedInverse,
}

/// Runs Alg. 1 with an explicitly chosen shift `q` (deterministic; the
/// random-`q` entry point is [`fsi`]).
///
/// The BSOFI stage is pattern-aware: diagonal and sub-diagonal selections
/// request only the diagonal seed blocks via [`bsofi_selected`]
/// (truncated assembly, no dense `Ḡ`), while row/column selections — whose
/// wraps walk from every block — take the dense [`bsofi`] path.
///
/// # Errors
/// Each stage boundary is guarded by the [`fsi_runtime::health`] probes:
/// non-finite or overflow-bound cluster products ([`Stage::Cls`]), a
/// singular or wildly graded `R` diagonal ([`Stage::Bsofi`]), and bad
/// wrapped output blocks ([`Stage::Wrap`]) all surface as structured
/// errors before the damaged numbers reach the caller.
pub fn fsi_with_q(
    par: Parallelism<'_>,
    pc: &BlockPCyclic,
    selection: &Selection,
) -> FsiResult<FsiOutput> {
    let (outer, inner) = par.split();
    let _fsi_span = fsi_runtime::trace::span("fsi");
    let mut profile = Profile::new();
    let clustered = profile.time("cls", || -> FsiResult<Clustered> {
        let clustered = cls(outer, inner, pc, selection.c, selection.q);
        check_reduced(&clustered)?;
        Ok(clustered)
    })?;
    let g_reduced = profile.time("bsofi", || -> FsiResult<ReducedInverse> {
        match SelectedPattern::for_wrap(selection.pattern) {
            SelectedPattern::Full => {
                let g = if clustered.reduced.l() == 1 {
                    bsofi(outer, inner, &clustered.reduced)
                } else {
                    let factor = StructuredQr::factor_lookahead(outer, inner, &clustered.reduced);
                    factor.check_health()?;
                    factor.inverse(outer, inner)
                };
                health::check_block(Stage::Bsofi, 0, g.as_slice())?;
                Ok(ReducedInverse::Dense(g))
            }
            seed_pattern => Ok(ReducedInverse::Selected(bsofi_selected(
                outer,
                inner,
                &clustered.reduced,
                &seed_pattern,
            )?)),
        }
    })?;
    let selected = profile.time("wrap", || -> FsiResult<SelectedInverse> {
        match &g_reduced {
            ReducedInverse::Dense(g) => wrap(outer, pc, &clustered, g, selection),
            ReducedInverse::Selected(seeds) => {
                wrap_selected(outer, pc, &clustered, seeds, selection)
            }
        }
    })?;

    Ok(FsiOutput {
        selected,
        profile,
        clustered,
        g_reduced,
    })
}

/// Cls-stage probe of a freshly clustered matrix: every reduced block must
/// be finite and below the overflow bound (the `κ(B)^c` chain-blowup
/// proxy, paper §II-C). The cached path ([`crate::ClusterCache`]) runs its
/// own richer probe with checksums; this covers the cold [`cls`] path.
fn check_reduced(clustered: &Clustered) -> Result<(), HealthEvent> {
    for m in 0..clustered.b() {
        health::check_block(Stage::Cls, m, clustered.reduced.block(m).as_slice())?;
    }
    Ok(())
}

/// Runs Alg. 1, drawing the shift `q` uniformly from `0..c` (the paper
/// randomizes `q` so repeated Green's functions sample all block
/// positions).
///
/// ```
/// use fsi_selinv::{fsi, Parallelism, Pattern};
/// use rand::SeedableRng;
/// let pc = fsi_pcyclic::random_pcyclic(3, 8, 42);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let out = fsi(Parallelism::Serial, &pc, Pattern::Diagonal, 4, &mut rng)
///     .expect("well-conditioned test matrix");
/// // b = L/c = 2 diagonal blocks selected, validated against the dense
/// // reference inverse.
/// assert_eq!(out.selected.len(), 2);
/// let g_ref = pc.reference_green(fsi_runtime::Par::Seq);
/// for (&(k, l), blk) in out.selected.iter() {
///     let want = pc.dense_block(&g_ref, k, l);
///     assert!(fsi_dense::rel_error(blk, &want) < 1e-8);
/// }
/// ```
pub fn fsi<R: Rng + ?Sized>(
    par: Parallelism<'_>,
    pc: &BlockPCyclic,
    pattern: crate::patterns::Pattern,
    c: usize,
    rng: &mut R,
) -> FsiResult<FsiOutput> {
    let q = rng.gen_range(0..c);
    let selection = Selection::new(pattern, c, q);
    fsi_with_q(par, pc, &selection)
}

/// The paper's §V-C measurement selection: *all* `L` diagonal blocks plus
/// `b` block rows plus `b` block columns, produced from a single
/// clustering + BSOFI (the expensive part is shared by the three wraps).
///
/// Returns `(merged, diagonals)`: the full union for time-dependent
/// measurements, and the diagonal-only subset for equal-time
/// measurements.
pub fn fsi_measurement_set(
    par: Parallelism<'_>,
    pc: &BlockPCyclic,
    c: usize,
    q: usize,
) -> FsiResult<(SelectedInverse, SelectedInverse)> {
    let (outer, _) = par.split();
    let rows_sel = Selection::new(crate::patterns::Pattern::Rows, c, q);
    let out = fsi_with_q(par, pc, &rows_sel)?;
    let g_reduced = out
        .g_reduced
        .dense()
        .expect("rows selection materializes the dense reduced inverse");
    let mut merged = out.selected;
    let cols = crate::wrap::wrap(
        outer,
        pc,
        &out.clustered,
        g_reduced,
        &Selection::new(crate::patterns::Pattern::Columns, c, q),
    )?;
    merged.merge(cols);
    let diags = crate::wrap::wrap_all_diagonals(outer, pc, &out.clustered, g_reduced)?;
    merged.merge(diags.clone());
    Ok((merged, diags))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Pattern;
    use fsi_dense::rel_error;
    use fsi_pcyclic::random_pcyclic;
    use rand::SeedableRng;

    fn reference_check(out: &FsiOutput, pc: &BlockPCyclic, selection: &Selection, tol: f64) {
        let g_ref = pc.reference_green(Par::Seq);
        for (k, l) in selection.coordinates(pc.l()) {
            let got = out.selected.get(k, l).expect("block present");
            let want = pc.dense_block(&g_ref, k, l);
            assert!(
                rel_error(got, &want) < tol,
                "block ({k},{l}) err {}",
                rel_error(got, &want)
            );
        }
    }

    #[test]
    fn full_pipeline_all_patterns() {
        let pc = random_pcyclic(3, 12, 77);
        for pattern in Pattern::ALL {
            let sel = Selection::new(pattern, 4, 2);
            let out = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
            assert_eq!(out.selected.len(), sel.coordinates(12).len());
            reference_check(&out, &pc, &sel, 1e-7);
            // Stage profile is populated.
            assert!(out.profile.count("cls") == 1);
            assert!(out.profile.count("bsofi") == 1);
            assert!(out.profile.count("wrap") == 1);
        }
    }

    #[test]
    fn openmp_and_mkl_modes_agree_with_serial() {
        let pool = ThreadPool::new(3);
        let pc = random_pcyclic(4, 8, 78);
        let sel = Selection::new(Pattern::Columns, 4, 0);
        let serial = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
        let omp = fsi_with_q(Parallelism::OpenMp(&pool), &pc, &sel).expect("healthy");
        let mkl = fsi_with_q(Parallelism::MklStyle(&pool), &pc, &sel).expect("healthy");
        for (coord, blk) in serial.selected.iter() {
            let o = omp.selected.get(coord.0, coord.1).expect("omp block");
            let m = mkl.selected.get(coord.0, coord.1).expect("mkl block");
            assert!(rel_error(blk, o) < 1e-13);
            assert!(rel_error(blk, m) < 1e-13);
        }
    }

    #[test]
    fn random_q_stays_in_range_and_validates() {
        let pc = random_pcyclic(2, 8, 79);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for _ in 0..5 {
            let out =
                fsi(Parallelism::Serial, &pc, Pattern::Diagonal, 4, &mut rng).expect("healthy");
            assert!(out.clustered.q < 4);
            let sel = Selection::new(Pattern::Diagonal, 4, out.clustered.q);
            reference_check(&out, &pc, &sel, 1e-8);
        }
    }

    #[test]
    fn hubbard_end_to_end_matches_reference() {
        use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, SquareLattice};
        let builder =
            BlockBuilder::new(SquareLattice::new(2, 2), HubbardParams::paper_validation(8));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let field = HsField::random(8, 4, &mut rng);
        for spin in fsi_pcyclic::Spin::BOTH {
            let pc = hubbard_pcyclic(&builder, &field, spin);
            let sel = Selection::new(Pattern::Columns, 4, 1);
            let out = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
            reference_check(&out, &pc, &sel, 1e-8);
        }
    }

    #[test]
    fn measurement_set_contains_everything_and_validates() {
        let pc = random_pcyclic(3, 8, 80);
        let (merged, diags) = fsi_measurement_set(Parallelism::Serial, &pc, 4, 1).expect("healthy");
        // All diagonals present.
        assert_eq!(diags.len(), 8);
        for k in 0..8 {
            assert!(merged.contains(k, k), "diag ({k},{k})");
        }
        // Rows and columns of the index set present.
        let sel = Selection::new(Pattern::Rows, 4, 1);
        for (k, l) in sel.coordinates(8) {
            assert!(merged.contains(k, l), "row block ({k},{l})");
            assert!(merged.contains(l, k), "col block ({l},{k})");
        }
        // Spot-validate against the reference.
        let g_ref = pc.reference_green(Par::Seq);
        for &(k, l) in &[(0usize, 0usize), (5, 2), (2, 6), (7, 7)] {
            if let Some(blk) = merged.get(k, l) {
                let want = pc.dense_block(&g_ref, k, l);
                assert!(rel_error(blk, &want) < 1e-8, "({k},{l})");
            }
        }
    }

    #[test]
    fn reduced_inverse_representation_matches_pattern() {
        let pc = random_pcyclic(2, 8, 81);
        for pattern in [Pattern::Diagonal, Pattern::SubDiagonal] {
            let out = fsi_with_q(Parallelism::Serial, &pc, &Selection::new(pattern, 4, 1))
                .expect("healthy");
            assert!(out.g_reduced.selected().is_some(), "{pattern:?}");
            assert!(out.g_reduced.dense().is_none(), "{pattern:?}");
            // Uniform accessor: diagonal seeds present, off-diagonals not
            // assembled by the sparse path.
            assert!(out.g_reduced.block(&out.clustered, 0, 0).is_some());
            assert!(out.g_reduced.block(&out.clustered, 0, 1).is_none());
        }
        for pattern in [Pattern::Columns, Pattern::Rows] {
            let out = fsi_with_q(Parallelism::Serial, &pc, &Selection::new(pattern, 4, 1))
                .expect("healthy");
            assert!(out.g_reduced.dense().is_some(), "{pattern:?}");
            assert!(out.g_reduced.block(&out.clustered, 0, 1).is_some());
        }
    }

    #[test]
    fn parallelism_reports_threads() {
        let pool = ThreadPool::new(5);
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert_eq!(Parallelism::OpenMp(&pool).threads(), 5);
        assert_eq!(Parallelism::MklStyle(&pool).threads(), 5);
    }
}
