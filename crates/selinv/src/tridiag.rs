//! Selected inversion of block *tridiagonal* matrices — the extension the
//! paper names as future work ("One promising future work is the
//! extension of the basic idea of the FSI algorithm to other types of
//! structured matrices such as block tridiagonal matrices", §VI).
//!
//! The FSI recipe carries over directly:
//!
//! 1. **Structure-preserving factorization** — instead of the p-cyclic
//!    QR chain, block tridiagonal matrices admit two Schur-complement
//!    sweeps: the forward sequence `S_i = D_i − A_i·S_{i−1}⁻¹·C_{i−1}`
//!    and the backward sequence `R_i = D_i − C_i·R_{i+1}⁻¹·A_{i+1}`.
//! 2. **Seed blocks** — every diagonal block of the inverse comes in one
//!    solve: `G_ii = (S_i + R_i − D_i)⁻¹`.
//! 3. **Wrapping** — off-diagonal blocks satisfy one-step recurrences
//!    exactly analogous to the p-cyclic relations (4)–(7):
//!
//!    ```text
//!    down: G_{i,j} = −R_i⁻¹·A_i·G_{i−1,j}    (i > j)
//!    up  : G_{i,j} = −S_i⁻¹·C_i·G_{i+1,j}    (i < j)
//!    ```
//!
//!    so a selected block column grows from its diagonal seed at one
//!    solve + one multiply per block, and the `b` selected columns are
//!    embarrassingly parallel — the same coarse-grain parallelism as the
//!    p-cyclic wrapping stage.
//!
//! Everything is validated against dense LU inversion of the assembled
//! matrix, exactly like the p-cyclic pipeline.

use fsi_dense::{getrf, inverse_par, LuFactor, Matrix};
use fsi_runtime::{parallel_map, Par, Schedule};

use crate::patterns::SelectedInverse;

/// A block tridiagonal matrix: diagonal blocks `D_i`, sub-diagonal `A_i`
/// at `(i, i−1)`, super-diagonal `C_i` at `(i, i+1)`.
#[derive(Clone, Debug)]
pub struct BlockTridiagonal {
    d: Vec<Matrix>,
    /// `a[i]` sits at block `(i+1, i)`.
    a: Vec<Matrix>,
    /// `c[i]` sits at block `(i, i+1)`.
    c: Vec<Matrix>,
    n: usize,
}

impl BlockTridiagonal {
    /// Wraps the three diagonals. `a` and `c` must be one block shorter
    /// than `d`.
    ///
    /// # Panics
    /// Panics on length or shape mismatches.
    pub fn new(d: Vec<Matrix>, a: Vec<Matrix>, c: Vec<Matrix>) -> Self {
        let l = d.len();
        assert!(l > 0, "need at least one diagonal block");
        assert_eq!(a.len(), l - 1, "sub-diagonal length");
        assert_eq!(c.len(), l - 1, "super-diagonal length");
        let n = d[0].rows();
        for (i, m) in d.iter().enumerate() {
            assert!(m.rows() == n && m.cols() == n, "D[{i}] shape");
        }
        for (i, m) in a.iter().chain(c.iter()).enumerate() {
            assert!(m.rows() == n && m.cols() == n, "off-diagonal {i} shape");
        }
        BlockTridiagonal { d, a, c, n }
    }

    /// Block size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of block rows `L`.
    pub fn l(&self) -> usize {
        self.d.len()
    }

    /// Diagonal block `D_i`.
    pub fn diag(&self, i: usize) -> &Matrix {
        &self.d[i]
    }

    /// Sub-diagonal block at `(i, i−1)` (valid for `i ≥ 1`).
    pub fn lower(&self, i: usize) -> &Matrix {
        &self.a[i - 1]
    }

    /// Super-diagonal block at `(i, i+1)` (valid for `i ≤ L−2`).
    pub fn upper(&self, i: usize) -> &Matrix {
        &self.c[i]
    }

    /// Assembles the dense `NL × NL` matrix (tests / reference).
    pub fn assemble_dense(&self) -> Matrix {
        let (n, l) = (self.n, self.l());
        let mut m = Matrix::zeros(n * l, n * l);
        for i in 0..l {
            m.set_block(i * n, i * n, self.d[i].as_ref());
            if i > 0 {
                m.set_block(i * n, (i - 1) * n, self.a[i - 1].as_ref());
            }
            if i + 1 < l {
                m.set_block(i * n, (i + 1) * n, self.c[i].as_ref());
            }
        }
        m
    }

    /// Dense reference inverse via LU.
    pub fn reference_inverse(&self, par: Par<'_>) -> Matrix {
        inverse_par(par, &self.assemble_dense()).expect("nonsingular input")
    }

    /// Extracts block `(i, j)` of a dense matrix in this layout.
    pub fn dense_block(&self, dense: &Matrix, i: usize, j: usize) -> Matrix {
        dense.block(i * self.n, j * self.n, self.n, self.n)
    }
}

/// The two Schur-complement sweeps — the factorization stage, reusable
/// across any number of selected blocks.
///
/// ```
/// use fsi_runtime::Par;
/// use fsi_selinv::tridiag::{random_tridiagonal, TridiagFactor};
/// let t = random_tridiagonal(2, 5, 3);
/// let f = TridiagFactor::factor(&t);
/// let col = f.selected_columns(Par::Seq, &[2]);
/// assert_eq!(col.len(), 5); // one full block column of the inverse
/// ```
pub struct TridiagFactor<'m> {
    matrix: &'m BlockTridiagonal,
    /// Forward Schur complements `S_i` (factored).
    s: Vec<LuFactor>,
    /// Backward Schur complements `R_i` (factored).
    r: Vec<LuFactor>,
}

impl<'m> TridiagFactor<'m> {
    /// Runs both sweeps. `O(L·N³)`.
    ///
    /// # Panics
    /// Panics if any Schur complement is singular (the input must be
    /// invertible with invertible leading/trailing principal block
    /// sub-matrices, as usual for direct tridiagonal solvers).
    pub fn factor(matrix: &'m BlockTridiagonal) -> Self {
        let l = matrix.l();
        // Forward: S_0 = D_0; S_i = D_i − A_i·S_{i−1}⁻¹·C_{i−1}.
        let mut s: Vec<LuFactor> = Vec::with_capacity(l);
        for i in 0..l {
            let mut si = matrix.d[i].clone();
            if i > 0 {
                // X = S_{i−1}⁻¹·C_{i−1}; S_i −= A_i·X.
                let x = s[i - 1].solve(&matrix.c[i - 1]);
                let prod = fsi_dense::mul(&matrix.a[i - 1], &x);
                si.sub_assign(&prod);
            }
            s.push(getrf(si).expect("forward Schur complement singular"));
        }
        // Backward: R_{L−1} = D_{L−1}; R_i = D_i − C_i·R_{i+1}⁻¹·A_{i+1}.
        let mut r_rev: Vec<LuFactor> = Vec::with_capacity(l);
        for back in 0..l {
            let i = l - 1 - back;
            let mut ri = matrix.d[i].clone();
            if back > 0 {
                let x = r_rev[back - 1].solve(&matrix.a[i]);
                let prod = fsi_dense::mul(&matrix.c[i], &x);
                ri.sub_assign(&prod);
            }
            r_rev.push(getrf(ri).expect("backward Schur complement singular"));
        }
        r_rev.reverse();
        TridiagFactor {
            matrix,
            s,
            r: r_rev,
        }
    }

    /// The diagonal seed `G_jj = (S_j + R_j − D_j)⁻¹`.
    pub fn diagonal_block(&self, j: usize) -> Matrix {
        let m = self.matrix;
        // Reassemble S_j + R_j − D_j from the factored pieces: we kept
        // only LU factors, so rebuild the Schur complements cheaply from
        // their definitions.
        let mut w = self.schur_forward_dense(j);
        w.add_assign(&self.schur_backward_dense(j));
        w.sub_assign(&m.d[j]);
        getrf(w).expect("G_jj system singular").inverse()
    }

    fn schur_forward_dense(&self, i: usize) -> Matrix {
        let m = self.matrix;
        let mut si = m.d[i].clone();
        if i > 0 {
            let x = self.s[i - 1].solve(&m.c[i - 1]);
            si.sub_assign(&fsi_dense::mul(&m.a[i - 1], &x));
        }
        si
    }

    fn schur_backward_dense(&self, i: usize) -> Matrix {
        let m = self.matrix;
        let mut ri = m.d[i].clone();
        if i + 1 < m.l() {
            let x = self.r[i + 1].solve(&m.a[i]);
            ri.sub_assign(&fsi_dense::mul(&m.c[i], &x));
        }
        ri
    }

    /// One step down the column: `G_{i,j} = −R_i⁻¹·A_i·G_{i−1,j}` for
    /// `i > j`.
    pub fn step_down(&self, g_above: &Matrix, i: usize) -> Matrix {
        let prod = fsi_dense::mul(self.matrix.lower(i), g_above);
        let mut out = self.r[i].solve(&prod);
        out.scale(-1.0);
        out
    }

    /// One step up the column: `G_{i,j} = −S_i⁻¹·C_i·G_{i+1,j}` for
    /// `i < j`.
    pub fn step_up(&self, g_below: &Matrix, i: usize) -> Matrix {
        let prod = fsi_dense::mul(self.matrix.upper(i), g_below);
        let mut out = self.s[i].solve(&prod);
        out.scale(-1.0);
        out
    }

    /// All `L` diagonal blocks of the inverse (the classic selected
    /// inversion; columns are independent → `parallel_map`).
    pub fn all_diagonals(&self, par: Par<'_>) -> SelectedInverse {
        let l = self.matrix.l();
        let blocks = parallel_map(par, l, Schedule::Dynamic(1), |j| self.diagonal_block(j));
        let mut out = SelectedInverse::new();
        for (j, blk) in blocks.into_iter().enumerate() {
            out.insert(j, j, blk);
        }
        out
    }

    /// The full block columns `j ∈ columns` of the inverse: each column
    /// grows from its diagonal seed with the up/down recurrences — the
    /// tridiagonal analog of FSI's wrapping stage.
    pub fn selected_columns(&self, par: Par<'_>, columns: &[usize]) -> SelectedInverse {
        let l = self.matrix.l();
        let per_column = parallel_map(par, columns.len(), Schedule::Dynamic(1), |ci| {
            let j = columns[ci];
            assert!(j < l, "column index out of range");
            let mut blocks = Vec::with_capacity(l);
            let seed = self.diagonal_block(j);
            // Walk down: i = j+1 .. L−1.
            let mut cur = seed.clone();
            for i in j + 1..l {
                cur = self.step_down(&cur, i);
                blocks.push((i, j, cur.clone()));
            }
            // Walk up: i = j−1 .. 0.
            let mut cur = seed.clone();
            for i in (0..j).rev() {
                cur = self.step_up(&cur, i);
                blocks.push((i, j, cur.clone()));
            }
            blocks.push((j, j, seed));
            blocks
        });
        let mut out = SelectedInverse::new();
        for col in per_column {
            for (i, j, blk) in col {
                out.insert(i, j, blk);
            }
        }
        out
    }
}

/// Builds a random well-conditioned block tridiagonal matrix for tests
/// and benches.
pub fn random_tridiagonal(n: usize, l: usize, seed: u64) -> BlockTridiagonal {
    let mk = |s: u64, dom: f64| {
        let mut m = fsi_dense::test_matrix(n, n, s);
        m.scale(0.4 / n as f64);
        m.add_diag(dom);
        m
    };
    let d = (0..l)
        .map(|i| mk(seed.wrapping_add(i as u64 * 101), 2.0))
        .collect();
    let a = (0..l.saturating_sub(1))
        .map(|i| mk(seed.wrapping_add(7 + i as u64 * 103), 0.0))
        .collect();
    let c = (0..l.saturating_sub(1))
        .map(|i| mk(seed.wrapping_add(13 + i as u64 * 107), 0.0))
        .collect();
    BlockTridiagonal::new(d, a, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_dense::rel_error;
    use fsi_runtime::ThreadPool;

    #[test]
    fn assembly_layout() {
        let t = random_tridiagonal(2, 4, 1);
        let m = t.assemble_dense();
        assert_eq!(m.rows(), 8);
        assert_eq!(&t.dense_block(&m, 1, 1), t.diag(1));
        assert_eq!(&t.dense_block(&m, 2, 1), t.lower(2));
        assert_eq!(&t.dense_block(&m, 1, 2), t.upper(1));
        assert_eq!(t.dense_block(&m, 0, 2).max_abs(), 0.0);
        assert_eq!(t.dense_block(&m, 3, 0).max_abs(), 0.0);
    }

    #[test]
    fn diagonal_blocks_match_dense_inverse() {
        for l in [1usize, 2, 3, 6] {
            let t = random_tridiagonal(3, l, l as u64);
            let f = TridiagFactor::factor(&t);
            let g_ref = t.reference_inverse(Par::Seq);
            for j in 0..l {
                let got = f.diagonal_block(j);
                let want = t.dense_block(&g_ref, j, j);
                assert!(
                    rel_error(&got, &want) < 1e-9,
                    "L={l} j={j}: {}",
                    rel_error(&got, &want)
                );
            }
        }
    }

    #[test]
    fn all_diagonals_helper_matches() {
        let t = random_tridiagonal(2, 7, 9);
        let f = TridiagFactor::factor(&t);
        let diags = f.all_diagonals(Par::Seq);
        assert_eq!(diags.len(), 7);
        let g_ref = t.reference_inverse(Par::Seq);
        for j in 0..7 {
            let want = t.dense_block(&g_ref, j, j);
            assert!(rel_error(diags.get(j, j).unwrap(), &want) < 1e-9, "j={j}");
        }
    }

    #[test]
    fn selected_columns_match_dense_inverse() {
        let t = random_tridiagonal(3, 6, 20);
        let f = TridiagFactor::factor(&t);
        let cols = [0usize, 2, 5];
        let sel = f.selected_columns(Par::Seq, &cols);
        assert_eq!(sel.len(), cols.len() * 6);
        let g_ref = t.reference_inverse(Par::Seq);
        for &j in &cols {
            for i in 0..6 {
                let got = sel.get(i, j).expect("block present");
                let want = t.dense_block(&g_ref, i, j);
                assert!(
                    rel_error(got, &want) < 1e-8,
                    "({i},{j}): {}",
                    rel_error(got, &want)
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = ThreadPool::new(3);
        let t = random_tridiagonal(2, 8, 30);
        let f = TridiagFactor::factor(&t);
        let seq = f.selected_columns(Par::Seq, &[1, 4, 7]);
        let par = f.selected_columns(Par::Pool(&pool), &[1, 4, 7]);
        assert_eq!(seq.len(), par.len());
        for (coord, blk) in seq.iter() {
            assert!(rel_error(blk, par.get(coord.0, coord.1).unwrap()) < 1e-14);
        }
    }

    #[test]
    fn single_block_matrix() {
        let t = random_tridiagonal(4, 1, 40);
        let f = TridiagFactor::factor(&t);
        let g = f.diagonal_block(0);
        let want = fsi_dense::inverse(t.diag(0)).unwrap();
        assert!(rel_error(&g, &want) < 1e-10);
    }

    #[test]
    fn selected_columns_use_a_fraction_of_full_memory() {
        let t = random_tridiagonal(4, 10, 50);
        let f = TridiagFactor::factor(&t);
        let sel = f.selected_columns(Par::Seq, &[3]);
        let full_bytes = (4 * 10) * (4 * 10) * 8;
        assert!(
            sel.bytes() * 5 <= full_bytes,
            "one column = 1/10 of the inverse"
        );
    }

    #[test]
    #[should_panic(expected = "sub-diagonal length")]
    fn mismatched_diagonals_panic() {
        let _ = BlockTridiagonal::new(
            vec![Matrix::identity(2); 3],
            vec![Matrix::identity(2); 3],
            vec![Matrix::identity(2); 2],
        );
    }
}
