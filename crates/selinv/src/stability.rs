//! Stability analysis of the clustering size (paper §II-C, referencing
//! the numerical analysis of Bai–Chen–Scalettar–Yamazaki).
//!
//! "A larger c leads to a greater reduction. However, the size of c is
//! limited by numerical stability. A large c results in the loss of
//! precision due to round-off errors. Usually c ≈ √L."
//!
//! The mechanism: a cluster chain multiplies `c` blocks whose singular
//! values compound, so the chain's condition number grows like
//! `κ(B)^c` (worst case). Once `κ_chain · ε_machine` approaches the
//! accuracy target, longer chains destroy the selected inversion. This
//! module quantifies that:
//!
//! * [`growth_rate`] — estimated per-block condition contribution
//!   `max_k κ₁(B_k)`, via the O(N²) Hager estimator on each block;
//! * [`max_stable_cluster`] — the largest `c` dividing `L` with
//!   `rate^c · ε ≤ tol`;
//! * [`auto_cluster_size`] — the paper's policy: the stability-capped
//!   `c` closest to `√L` (the flop sweet spot).
//!
//! The `ablation_cluster_size` harness shows the predicted loss matching
//! the measured error growth.

use fsi_dense::{cond1_estimate, getrf};
use fsi_pcyclic::BlockPCyclic;

/// Estimated per-block growth rate of a cluster chain: the largest
/// one-norm condition estimate over the matrix's blocks.
///
/// A singular block (infinite condition number) yields an infinite rate:
/// [`max_stable_cluster`] then caps at `c = 1`, so [`auto_cluster_size`]
/// degrades to no clustering instead of aborting. Hubbard blocks are
/// never singular, but a recovery path re-estimating `c` on suspect data
/// must not panic on the one matrix it is trying to defend against.
pub fn growth_rate(pc: &BlockPCyclic) -> f64 {
    let mut worst = 1.0f64;
    for k in 0..pc.l() {
        let b = pc.block(k);
        match getrf(b.clone()) {
            Ok(f) => worst = worst.max(cond1_estimate(b, &f)),
            Err(_) => return f64::INFINITY,
        }
    }
    worst
}

/// The largest cluster size `c` (dividing `L`) whose worst-case chain
/// conditioning keeps `rate^c · ε_machine` below `tol`.
///
/// Always returns at least 1 (clustering can be disabled entirely).
pub fn max_stable_cluster(l: usize, rate: f64, tol: f64) -> usize {
    let eps = f64::EPSILON;
    let mut best = 1;
    for c in 1..=l {
        if !l.is_multiple_of(c) {
            continue;
        }
        // log-space to avoid overflow for large rates/chains.
        let loss = c as f64 * rate.max(1.0).ln() + eps.ln();
        if loss <= tol.ln() {
            best = c;
        }
    }
    best
}

/// The paper's cluster-size policy: `c ≈ √L`, capped by the stability
/// limit of [`max_stable_cluster`] for the given matrix and target
/// accuracy.
pub fn auto_cluster_size(pc: &BlockPCyclic, tol: f64) -> usize {
    let l = pc.l();
    let cap = max_stable_cluster(l, growth_rate(pc), tol);
    // Divisors of L that respect the cap, pick the one closest to √L.
    let sqrt_l = (l as f64).sqrt();
    let mut best = 1usize;
    let mut best_dist = f64::INFINITY;
    for c in 1..=cap {
        if !l.is_multiple_of(c) {
            continue;
        }
        let dist = (c as f64 - sqrt_l).abs();
        if dist < best_dist {
            best_dist = dist;
            best = c;
        }
    }
    best
}

/// Predicted relative error of an FSI run at cluster size `c` (a coarse
/// upper-bound model: chain conditioning times machine epsilon).
pub fn predicted_error(rate: f64, c: usize) -> f64 {
    (c as f64 * rate.max(1.0).ln()).exp() * f64::EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
    use rand::SeedableRng;

    fn hubbard(beta: f64, l: usize) -> BlockPCyclic {
        let lattice = SquareLattice::square(2);
        let builder = BlockBuilder::new(
            lattice,
            HubbardParams {
                t: 1.0,
                u: 4.0,
                beta,
                l,
            },
        );
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let field = HsField::random(l, 4, &mut rng);
        hubbard_pcyclic(&builder, &field, Spin::Up)
    }

    #[test]
    fn singular_block_degrades_to_no_clustering() {
        use fsi_dense::Matrix;
        // One exactly singular block: infinite rate, never a panic.
        let blocks = vec![
            Matrix::identity(3),
            Matrix::zeros(3, 3),
            Matrix::identity(3),
            Matrix::identity(3),
        ];
        let pc = BlockPCyclic::new(blocks);
        let rate = growth_rate(&pc);
        assert!(rate.is_infinite());
        assert_eq!(max_stable_cluster(4, rate, 1e-8), 1);
        assert_eq!(auto_cluster_size(&pc, 1e-8), 1);
    }

    #[test]
    fn growth_rate_increases_with_coupling() {
        // Larger Δτ (fixed L, larger β) → worse-conditioned blocks.
        let mild = growth_rate(&hubbard(1.0, 16));
        let harsh = growth_rate(&hubbard(16.0, 16));
        assert!(mild >= 1.0);
        assert!(harsh > mild * 2.0, "mild {mild} vs harsh {harsh}");
    }

    #[test]
    fn stable_cluster_cap_shrinks_with_rate() {
        let l = 48;
        let c_benign = max_stable_cluster(l, 1.5, 1e-8);
        let c_harsh = max_stable_cluster(l, 40.0, 1e-8);
        assert!(c_benign > c_harsh, "benign {c_benign} vs harsh {c_harsh}");
        assert!(c_harsh >= 1);
        // rate = 1 (orthogonal blocks): everything is stable.
        assert_eq!(max_stable_cluster(l, 1.0, 1e-8), l);
    }

    #[test]
    fn auto_size_tracks_sqrt_l_when_stable() {
        // Well-conditioned high-temperature matrix: pick ≈ √L.
        let pc = hubbard(0.5, 36);
        let c = auto_cluster_size(&pc, 1e-8);
        assert!((4..=9).contains(&c), "c = {c} should be near √36 = 6");
        assert_eq!(36 % c, 0);
    }

    #[test]
    fn auto_size_backs_off_at_low_temperature() {
        let hot = auto_cluster_size(&hubbard(0.5, 48), 1e-8);
        let cold = auto_cluster_size(&hubbard(24.0, 48), 1e-8);
        assert!(cold <= hot, "cold {cold} should not exceed hot {hot}");
        assert!(cold >= 1);
    }

    #[test]
    fn predicted_error_matches_measured_scaling_shape() {
        // Qualitative check against the ablation: error grows
        // multiplicatively with c.
        let rate = 10.0;
        let e2 = predicted_error(rate, 2);
        let e4 = predicted_error(rate, 4);
        assert!(e4 / e2 > 50.0, "quadrupling the exponent: {e2} -> {e4}");
        assert!(predicted_error(1.0, 100) < 1e-15);
    }

    #[test]
    fn auto_size_keeps_fsi_accurate() {
        // End-to-end: the auto-chosen c passes the validation threshold.
        use crate::baselines::{full_inverse_selected, max_block_error};
        use crate::{fsi_with_q, Parallelism, Pattern, Selection};
        let pc = hubbard(8.0, 16);
        let c = auto_cluster_size(&pc, 1e-9);
        let sel = Selection::new(Pattern::Columns, c, c / 2);
        let out = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
        let reference = full_inverse_selected(fsi_runtime::Par::Seq, &pc, &sel);
        let err = max_block_error(&out.selected, &reference);
        assert!(err < 1e-7, "auto c = {c} gave error {err}");
    }
}
