//! WRP — the wrapping stage of FSI (paper Alg. 2 and relations (4)–(7)).
//!
//! Adjacent blocks of the Green's function satisfy one-step recurrences:
//! knowing `G(k, ℓ)`, its four neighbours cost one `N × N` product or
//! solve each. In 0-based torus indices the paper's nine boundary cases
//! collapse to a uniform rule per direction:
//!
//! ```text
//! down : G(k+1, ℓ) = s·b[k+1]·G(k, ℓ) + [k+1 = ℓ]·I      s = −1 iff k+1 wraps to 0
//! up   : G(k−1, ℓ) = s·b[k]⁻¹·(G(k, ℓ) − [k = ℓ]·I)      s = −1 iff k = 0 (wraps)
//! right: G(k, ℓ+1) = s·(G(k, ℓ) − [k = ℓ]·I)·b[ℓ+1]⁻¹    s = −1 iff ℓ+1 wraps to 0
//! left : G(k, ℓ−1) = s·G(k, ℓ)·b[ℓ] + [k = ℓ−1]·I        s = −1 iff ℓ = 0 (wraps)
//! ```
//!
//! (Each is derived from the explicit expression Eq. (3) via the
//! similarity `b[r]·W(r−1)⁻¹ = W(r)⁻¹·b[r]`; the identity corrections
//! appear exactly when the step crosses the block diagonal, the sign flips
//! exactly when the step crosses the torus seam. All four rules and all
//! their boundary cases are property-tested against the dense inverse.)
//!
//! Algorithm 2 then grows a selected inversion from the `b²` seeds that
//! BSOFI provides: each seed walks `⌈(c−1)/2⌉` rows up and `⌊(c−1)/2⌋`
//! rows down (columns pattern; left/right for the rows pattern). Splitting
//! the walk halves the length of the recurrence chains, halving the
//! accumulated floating-point error — the `ablation_wrap_split` bench
//! quantifies this against a one-directional walk. Seeds are independent;
//! the stage runs under `parallel_for`. Cost `3(bL − b²)N³`.
//!
//! Inverse applications `b[k]⁻¹·X` and `X·b[k]⁻¹` are realized as LU
//! solves against lazily cached factorizations (one per block, shared by
//! all seeds via `OnceLock`).

use std::sync::OnceLock;

use fsi_dense::{getrf, LuFactor, Matrix};
use fsi_pcyclic::BlockPCyclic;
use fsi_runtime::health::{self, FsiResult, HealthEvent, Stage};
use fsi_runtime::{Par, Schedule};

use crate::cls::Clustered;
use crate::patterns::{Pattern, SelectedInverse, Selection};

/// Lazily cached LU factorizations of the `B` blocks, shared across wrap
/// walks (thread-safe: each cell is computed at most once per block).
pub struct BlockFactors<'a> {
    pc: &'a BlockPCyclic,
    cells: Vec<OnceLock<LuFactor>>,
}

impl<'a> BlockFactors<'a> {
    /// Creates an empty cache for the matrix's blocks.
    pub fn new(pc: &'a BlockPCyclic) -> Self {
        BlockFactors {
            pc,
            cells: (0..pc.l()).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The LU factorization of `b[k]`, computing it on first use.
    pub fn factor(&self, k: usize) -> &LuFactor {
        self.cells[k].get_or_init(|| {
            getrf(self.pc.block(k).clone())
                .expect("Hubbard B blocks are products of nonsingular factors")
        })
    }

    /// Number of factorizations computed so far (test/telemetry hook).
    pub fn computed(&self) -> usize {
        self.cells.iter().filter(|c| c.get().is_some()).count()
    }
}

/// One step down: from `G(k, ℓ)` to `G(k+1, ℓ)` (relation (5) with all
/// boundary cases).
pub fn step_down(pc: &BlockPCyclic, g: &Matrix, k: usize, l: usize) -> Matrix {
    let r = pc.down(k);
    let mut out = fsi_dense::mul(pc.block(r), g);
    if r == 0 {
        out.scale(-1.0);
    }
    if r == l {
        out.add_diag(1.0);
    }
    out
}

/// One step up: from `G(k, ℓ)` to `G(k−1, ℓ)` (relation (4)).
pub fn step_up(
    _pc: &BlockPCyclic,
    factors: &BlockFactors<'_>,
    g: &Matrix,
    k: usize,
    l: usize,
) -> Matrix {
    let mut rhs = g.clone();
    if k == l {
        rhs.add_diag(-1.0);
    }
    let mut out = factors.factor(k).solve(&rhs);
    if k == 0 {
        out.scale(-1.0);
    }
    out
}

/// One step right: from `G(k, ℓ)` to `G(k, ℓ+1)` (relation (7)).
pub fn step_right(
    pc: &BlockPCyclic,
    factors: &BlockFactors<'_>,
    g: &Matrix,
    k: usize,
    l: usize,
) -> Matrix {
    let cnew = pc.down(l);
    let mut lhs = g.clone();
    if k == l {
        lhs.add_diag(-1.0);
    }
    let mut out = factors.factor(cnew).solve_right(&lhs);
    if cnew == 0 {
        out.scale(-1.0);
    }
    out
}

/// One step left: from `G(k, ℓ)` to `G(k, ℓ−1)` (relation (6)).
pub fn step_left(pc: &BlockPCyclic, g: &Matrix, k: usize, l: usize) -> Matrix {
    let mut out = fsi_dense::mul(g, pc.block(l));
    if l == 0 {
        out.scale(-1.0);
    }
    if k == pc.up(l) {
        out.add_diag(1.0);
    }
    out
}

/// The wrapping process (paper Alg. 2, extended to all four patterns):
/// expands the BSOFI seed blocks `Ḡ(k₀, ℓ₀) = G(c·k₀+o, c·ℓ₀+o)` into the
/// requested selection.
///
/// `g_reduced` is the dense `bN × bN` output of BSOFI on the clustered
/// matrix. `par` parallelizes over seeds (each seed's walk is a serial
/// chain; seeds are independent).
pub fn wrap(
    par: Par<'_>,
    pc: &BlockPCyclic,
    clustered: &Clustered,
    g_reduced: &Matrix,
    selection: &Selection,
) -> FsiResult<SelectedInverse> {
    let seed = |k0: usize, l0: usize| clustered.reduced.dense_block(g_reduced, k0, l0);
    wrap_with(par, pc, clustered, &seed, selection)
}

/// [`wrap`] fed from a sparse [`SelectedInverse`] of seed blocks (the
/// output of [`crate::bsofi_selected`]) instead of the dense `Ḡ` — the
/// S1/S2 fast path, which never materializes the `bN × bN` inverse.
///
/// # Panics
/// Panics if a seed block the pattern's walks start from is missing
/// (diagonal seeds `Ḡ(k₀,k₀)` for S1/S2; all `b²` blocks for S3/S4).
pub fn wrap_selected(
    par: Par<'_>,
    pc: &BlockPCyclic,
    clustered: &Clustered,
    seeds: &SelectedInverse,
    selection: &Selection,
) -> FsiResult<SelectedInverse> {
    let seed = |k0: usize, l0: usize| {
        seeds
            .get(k0, l0)
            .unwrap_or_else(|| panic!("seed block ({k0},{l0}) missing from selected inverse"))
            .clone()
    };
    wrap_with(par, pc, clustered, &seed, selection)
}

/// Shared wrap engine: the seed closure abstracts over where the reduced
/// inverse blocks come from (dense `Ḡ` vs sparse selected assembly).
/// Wrap-stage boundary probe (plus injection hook under `fault-inject`),
/// fused into block production so it runs while the freshly wrapped block
/// is still cache-hot instead of as a cold post-pass over the selection.
#[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
fn probe_wrapped(k: usize, mut blk: Matrix) -> Result<Matrix, HealthEvent> {
    #[cfg(feature = "fault-inject")]
    health::inject::poison(Stage::Wrap, k, blk.as_mut_slice());
    health::check_block(Stage::Wrap, k, blk.as_slice())?;
    Ok(blk)
}

fn wrap_with(
    par: Par<'_>,
    pc: &BlockPCyclic,
    clustered: &Clustered,
    seed: &(dyn Fn(usize, usize) -> Matrix + Sync),
    selection: &Selection,
) -> FsiResult<SelectedInverse> {
    assert_eq!(
        selection.c, clustered.c,
        "selection and clustering disagree on c"
    );
    assert_eq!(
        selection.q, clustered.q,
        "selection and clustering disagree on q"
    );
    let b = clustered.b();
    let c = clustered.c;
    let factors = BlockFactors::new(pc);

    match selection.pattern {
        Pattern::Diagonal => {
            // S1: the diagonal seeds ARE the selection — no wrapping.
            let mut out = SelectedInverse::new();
            for k0 in 0..b {
                let k = clustered.to_original(k0);
                out.insert(k, k, probe_wrapped(k, seed(k0, k0))?);
            }
            Ok(out)
        }
        Pattern::SubDiagonal => {
            // S2: one right-step from each diagonal seed.
            let results = fsi_runtime::parallel_map(
                par,
                b,
                Schedule::Dynamic(1),
                |k0| -> Result<(usize, usize, Matrix), HealthEvent> {
                    let k = clustered.to_original(k0);
                    let gkk = seed(k0, k0);
                    let gk_next = probe_wrapped(k, step_right(pc, &factors, &gkk, k, k))?;
                    Ok((k, pc.down(k), gk_next))
                },
            );
            let mut out = SelectedInverse::new();
            for r in results {
                let (k, l, blk) = r?;
                out.insert(k, l, blk);
            }
            Ok(out)
        }
        Pattern::Columns | Pattern::Rows => {
            let rows_pattern = selection.pattern == Pattern::Rows;
            // b² independent seeds; each walks (c−1) steps split between
            // the two directions to minimize chain length.
            let up_steps = c / 2; // ⌈(c−1)/2⌉ for the "before" direction
            let down_steps = (c - 1) - up_steps;
            let results = fsi_runtime::parallel_map(
                par,
                b * b,
                Schedule::Dynamic(1),
                |s| -> Result<Vec<(usize, usize, Matrix)>, HealthEvent> {
                    let (k0, l0) = (s / b, s % b);
                    let k = clustered.to_original(k0);
                    let l = clustered.to_original(l0);
                    let mut produced: Vec<(usize, usize, Matrix)> = Vec::with_capacity(c);
                    let g_seed = seed(k0, l0);
                    if rows_pattern {
                        // Walk left then right along block row k.
                        let mut cur = g_seed.clone();
                        let mut col = l;
                        for _ in 0..up_steps {
                            cur = step_left(pc, &cur, k, col);
                            col = pc.up(col);
                            produced.push((k, col, probe_wrapped(k, cur.clone())?));
                        }
                        let mut cur = g_seed.clone();
                        let mut col = l;
                        for _ in 0..down_steps {
                            cur = step_right(pc, &factors, &cur, k, col);
                            col = pc.down(col);
                            produced.push((k, col, probe_wrapped(k, cur.clone())?));
                        }
                    } else {
                        // Walk up then down along block column ℓ.
                        let mut cur = g_seed.clone();
                        let mut row = k;
                        for _ in 0..up_steps {
                            cur = step_up(pc, &factors, &cur, row, l);
                            row = pc.up(row);
                            produced.push((row, l, probe_wrapped(row, cur.clone())?));
                        }
                        let mut cur = g_seed.clone();
                        let mut row = k;
                        for _ in 0..down_steps {
                            cur = step_down(pc, &cur, row, l);
                            row = pc.down(row);
                            produced.push((row, l, probe_wrapped(row, cur.clone())?));
                        }
                    }
                    produced.push((k, l, probe_wrapped(k, g_seed)?));
                    Ok(produced)
                },
            );
            let mut out = SelectedInverse::new();
            for chunk in results {
                for (k, l, blk) in chunk? {
                    out.insert(k, l, blk);
                }
            }
            Ok(out)
        }
    }
}

/// Wraps the diagonal seeds into *all* `L` diagonal blocks of `G` — the
/// equal-time Green's functions DQMC measurements need (paper §V-C
/// computes "all diagonal blocks, b block rows and b block columns").
///
/// Each seed walks the diagonal with composed down+right steps
/// (`G(k,k) → G(k+1,k) → G(k+1,k+1)`, both proven relations), producing
/// `c−1` new diagonal blocks per seed at ~4N³ flops each.
pub fn wrap_all_diagonals(
    par: Par<'_>,
    pc: &BlockPCyclic,
    clustered: &Clustered,
    g_reduced: &Matrix,
) -> FsiResult<SelectedInverse> {
    let seed = |k0: usize| clustered.reduced.dense_block(g_reduced, k0, k0);
    wrap_all_diagonals_with(par, pc, clustered, &seed)
}

/// [`wrap_all_diagonals`] fed from sparse diagonal seeds (the output of
/// [`crate::bsofi_selected`] with [`crate::SelectedPattern::Diagonals`]).
///
/// # Panics
/// Panics if a diagonal seed `Ḡ(k₀,k₀)` is missing.
pub fn wrap_all_diagonals_selected(
    par: Par<'_>,
    pc: &BlockPCyclic,
    clustered: &Clustered,
    seeds: &SelectedInverse,
) -> FsiResult<SelectedInverse> {
    let seed = |k0: usize| {
        seeds
            .get(k0, k0)
            .unwrap_or_else(|| panic!("diagonal seed ({k0},{k0}) missing from selected inverse"))
            .clone()
    };
    wrap_all_diagonals_with(par, pc, clustered, &seed)
}

fn wrap_all_diagonals_with(
    par: Par<'_>,
    pc: &BlockPCyclic,
    clustered: &Clustered,
    seed: &(dyn Fn(usize) -> Matrix + Sync),
) -> FsiResult<SelectedInverse> {
    let b = clustered.b();
    let c = clustered.c;
    let factors = BlockFactors::new(pc);
    let results = fsi_runtime::parallel_map(
        par,
        b,
        Schedule::Dynamic(1),
        |k0| -> Result<Vec<(usize, Matrix)>, HealthEvent> {
            let mut produced = Vec::with_capacity(c);
            let k = clustered.to_original(k0);
            let mut cur = seed(k0);
            produced.push((k, probe_wrapped(k, cur.clone())?));
            let mut row = k;
            for _ in 0..c - 1 {
                let below = step_down(pc, &cur, row, row);
                cur = step_right(pc, &factors, &below, pc.down(row), row);
                row = pc.down(row);
                produced.push((row, probe_wrapped(row, cur.clone())?));
            }
            Ok(produced)
        },
    );
    let mut out = SelectedInverse::new();
    for chunk in results {
        for (k, blk) in chunk? {
            out.insert(k, k, blk);
        }
    }
    Ok(out)
}

/// Closed-form flop count of the wrapping stage for the columns/rows
/// patterns (paper §II-C): `3(bL − b²)N³`.
pub fn wrap_flops(n: usize, l: usize, c: usize) -> u64 {
    let b = (l / c) as u64;
    3 * (b * l as u64 - b * b) * (n as u64).pow(3)
}

/// Exercises every relation against a dense reference — used by tests and
/// the validation binary. Returns the maximum relative error over all
/// steps from all `(k, ℓ)` source blocks.
pub fn max_relation_error(pc: &BlockPCyclic, g_dense: &Matrix) -> f64 {
    let l = pc.l();
    let factors = BlockFactors::new(pc);
    let mut worst = 0.0f64;
    for k in 0..l {
        for j in 0..l {
            let g = pc.dense_block(g_dense, k, j);
            let checks = [
                (pc.down(k), j, step_down(pc, &g, k, j)),
                (pc.up(k), j, step_up(pc, &factors, &g, k, j)),
                (k, pc.down(j), step_right(pc, &factors, &g, k, j)),
                (k, pc.up(j), step_left(pc, &g, k, j)),
            ];
            for (kk, jj, got) in checks {
                let want = pc.dense_block(g_dense, kk, jj);
                worst = worst.max(fsi_dense::rel_error(&got, &want));
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cls::cls;
    use fsi_dense::rel_error;
    use fsi_pcyclic::random_pcyclic;
    use fsi_runtime::ThreadPool;

    #[test]
    fn all_four_relations_hold_everywhere() {
        // Exhaustive over every (k, ℓ) and direction, covering all nine
        // boundary cases of the paper (diagonal, sub-diagonal, first/last
        // row, first/last column, corners).
        let pc = random_pcyclic(3, 6, 21);
        let g = pc.reference_green(Par::Seq);
        let worst = max_relation_error(&pc, &g);
        assert!(worst < 1e-9, "worst relation error: {worst}");
    }

    #[test]
    fn relations_hold_for_hubbard_blocks() {
        use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, SquareLattice};
        use rand::SeedableRng;
        let builder =
            BlockBuilder::new(SquareLattice::new(2, 2), HubbardParams::paper_validation(5));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let field = HsField::random(5, 4, &mut rng);
        let pc = hubbard_pcyclic(&builder, &field, fsi_pcyclic::Spin::Down);
        let g = pc.reference_green(Par::Seq);
        assert!(max_relation_error(&pc, &g) < 1e-8);
    }

    #[test]
    fn factors_are_computed_lazily_and_once() {
        let pc = random_pcyclic(3, 8, 22);
        let f = BlockFactors::new(&pc);
        assert_eq!(f.computed(), 0);
        let _ = f.factor(3);
        let _ = f.factor(3);
        let _ = f.factor(5);
        assert_eq!(f.computed(), 2);
    }

    fn check_selection(pattern: Pattern, n: usize, l: usize, c: usize, q: usize, tol: f64) {
        let pc = random_pcyclic(n, l, (l * 100 + c * 10 + q) as u64);
        let sel = Selection::new(pattern, c, q);
        let clustered = cls(Par::Seq, Par::Seq, &pc, c, q);
        let g_red = crate::bsofi::bsofi(Par::Seq, Par::Seq, &clustered.reduced);
        let result = wrap(Par::Seq, &pc, &clustered, &g_red, &sel).expect("healthy");
        let want_coords = sel.coordinates(l);
        assert_eq!(result.len(), want_coords.len(), "{pattern:?} block count");
        let g_ref = pc.reference_green(Par::Seq);
        for (k, j) in want_coords {
            let got = result
                .get(k, j)
                .unwrap_or_else(|| panic!("missing ({k},{j})"));
            let want = pc.dense_block(&g_ref, k, j);
            let err = rel_error(got, &want);
            assert!(err < tol, "{pattern:?} block ({k},{j}) err {err}");
        }
    }

    #[test]
    fn diagonal_selection_matches_reference() {
        check_selection(Pattern::Diagonal, 3, 8, 4, 1, 1e-8);
        check_selection(Pattern::Diagonal, 2, 9, 3, 0, 1e-8);
    }

    #[test]
    fn subdiagonal_selection_matches_reference() {
        check_selection(Pattern::SubDiagonal, 3, 8, 4, 3, 1e-8);
        check_selection(Pattern::SubDiagonal, 2, 6, 2, 1, 1e-8);
    }

    #[test]
    fn column_selection_matches_reference() {
        check_selection(Pattern::Columns, 2, 8, 4, 0, 1e-7);
        check_selection(Pattern::Columns, 3, 6, 3, 2, 1e-7);
        check_selection(Pattern::Columns, 2, 12, 4, 2, 1e-7);
    }

    #[test]
    fn row_selection_matches_reference() {
        check_selection(Pattern::Rows, 2, 8, 4, 1, 1e-7);
        check_selection(Pattern::Rows, 3, 9, 3, 1, 1e-7);
    }

    #[test]
    fn all_shifts_work() {
        for q in 0..4 {
            check_selection(Pattern::Columns, 2, 8, 4, q, 1e-7);
        }
    }

    #[test]
    fn parallel_wrap_matches_sequential() {
        let pool = ThreadPool::new(4);
        let pc = random_pcyclic(3, 8, 30);
        let sel = Selection::new(Pattern::Columns, 4, 1);
        let clustered = cls(Par::Seq, Par::Seq, &pc, 4, 1);
        let g_red = crate::bsofi::bsofi(Par::Seq, Par::Seq, &clustered.reduced);
        let seq = wrap(Par::Seq, &pc, &clustered, &g_red, &sel).expect("healthy");
        let par = wrap(Par::Pool(&pool), &pc, &clustered, &g_red, &sel).expect("healthy");
        assert_eq!(seq.len(), par.len());
        for (coord, blk) in seq.iter() {
            let other = par.get(coord.0, coord.1).expect("same coords");
            assert!(rel_error(blk, other) < 1e-15);
        }
    }

    #[test]
    fn all_diagonals_match_reference() {
        for (l, c, q) in [(8usize, 4usize, 1usize), (9, 3, 0), (6, 6, 2)] {
            let pc = random_pcyclic(3, l, (l * 7 + c) as u64);
            let clustered = cls(Par::Seq, Par::Seq, &pc, c, q);
            let g_red = crate::bsofi::bsofi(Par::Seq, Par::Seq, &clustered.reduced);
            let diags = wrap_all_diagonals(Par::Seq, &pc, &clustered, &g_red).expect("healthy");
            assert_eq!(diags.len(), l);
            let g_ref = pc.reference_green(Par::Seq);
            for k in 0..l {
                let got = diags.get(k, k).expect("diag block");
                let want = pc.dense_block(&g_ref, k, k);
                let err = rel_error(got, &want);
                assert!(err < 1e-7, "L={l} c={c} q={q} k={k}: {err}");
            }
        }
    }

    #[test]
    fn selected_seeds_match_dense_seeds() {
        use crate::patterns::SelectedPattern;
        let pc = random_pcyclic(3, 8, 31);
        let clustered = cls(Par::Seq, Par::Seq, &pc, 4, 1);
        let g_red = crate::bsofi::bsofi(Par::Seq, Par::Seq, &clustered.reduced);
        let seeds = crate::bsofi::bsofi_selected(
            Par::Seq,
            Par::Seq,
            &clustered.reduced,
            &SelectedPattern::Diagonals,
        )
        .expect("healthy");
        for pattern in [Pattern::Diagonal, Pattern::SubDiagonal] {
            let sel = Selection::new(pattern, 4, 1);
            let dense = wrap(Par::Seq, &pc, &clustered, &g_red, &sel).expect("healthy");
            let sparse = wrap_selected(Par::Seq, &pc, &clustered, &seeds, &sel).expect("healthy");
            assert_eq!(dense.len(), sparse.len(), "{pattern:?}");
            for (coord, blk) in dense.iter() {
                let other = sparse.get(coord.0, coord.1).expect("same coords");
                assert!(rel_error(blk, other) < 1e-12, "{pattern:?} {coord:?}");
            }
        }
        let dense_d = wrap_all_diagonals(Par::Seq, &pc, &clustered, &g_red).expect("healthy");
        let sparse_d =
            wrap_all_diagonals_selected(Par::Seq, &pc, &clustered, &seeds).expect("healthy");
        assert_eq!(dense_d.len(), sparse_d.len());
        for (coord, blk) in dense_d.iter() {
            let other = sparse_d.get(coord.0, coord.1).expect("same coords");
            assert!(rel_error(blk, other) < 1e-12, "diag {coord:?}");
        }
    }

    #[test]
    #[should_panic(expected = "missing from selected inverse")]
    fn selected_wrap_panics_on_missing_seed() {
        let pc = random_pcyclic(2, 8, 32);
        let clustered = cls(Par::Seq, Par::Seq, &pc, 4, 0);
        let empty = SelectedInverse::new();
        let sel = Selection::new(Pattern::Diagonal, 4, 0);
        let _ = wrap_selected(Par::Seq, &pc, &clustered, &empty, &sel);
    }

    #[test]
    fn wrap_flop_formula() {
        // 3(bL − b²)N³ for (N, L, c) = (10, 100, 10): b = 10.
        assert_eq!(wrap_flops(10, 100, 10), 3 * (1000 - 100) * 1000);
    }
}
