//! Closed-form complexity formulas of paper §II-C, in units of flops.
//!
//! The paper's comparison table (explicit form of Eq. (2)/(3) vs FSI) in
//! `N³` units:
//!
//! | selection       | explicit form | FSI                 |
//! |-----------------|---------------|---------------------|
//! | b diagonals     | `2b²c`        | `[2(c−1) + 7b]·b`   |
//! | b−1 sub-diag.   | `4b²c`        | `[2c + 7b]·b`       |
//! | b cols/rows     | `b³c²`        | `3b²c`              |
//!
//! These drive the `table_complexity` harness, which prints the formulas
//! next to *measured* flop counts from [`fsi_runtime::flops`] so the two
//! can be compared directly.

use crate::patterns::{Pattern, SelectedPattern};
use fsi_runtime::flops::counts;

/// `N³` as u64.
fn n3(n: usize) -> u64 {
    (n as u64).pow(3)
}

/// Exact flop count of [`crate::StructuredQr::factor`] /
/// `factor_lookahead` (stage A of BSOFI), mirroring the kernel charge
/// sequence call for call: `b−1` Householder QRs of `2N×N` panels,
/// `2b−3` left-applies of panel transforms to `2N×N` column slabs (one
/// superdiagonal + one last-column update per interior panel, merged for
/// panel `b−2`), and the final `N×N` QR. The look-ahead schedule reorders
/// but never changes these calls, so serial and pipelined factors charge
/// identically.
///
/// # Panics
/// Panics if `b < 2` (the `b = 1` degenerate path is accounted inside
/// [`bsofi_selected_flops`]).
pub fn structured_qr_flops(n: usize, b: usize) -> u64 {
    assert!(b >= 2, "structured QR needs at least two block rows");
    (b as u64 - 1) * counts::geqrf(2 * n, n)
        + (2 * b as u64 - 3) * counts::ormqr(2 * n, n, n)
        + counts::geqrf(n, n)
}

/// Exact flop count of [`crate::bsofi_selected`] for a given request,
/// mirroring the kernel charges of the selected assembly call for call:
/// the structured QR, the `b` diagonal triangle inversions, the shared
/// couplings `W_j` and last block column, the per-row recurrences, and
/// the stage C path the pattern selects — the dense right-apply for
/// [`SelectedPattern::Full`], the live-column chain (one ORMQR per needed
/// half of `Q̃ᵢᵀ` plus plain GEMMs) for the diagonal requests. The
/// `bsofi.selected` trace span measures exactly this value (asserted in
/// the observability suite).
pub fn bsofi_selected_flops(n: usize, b: usize, pattern: &SelectedPattern) -> u64 {
    if b == 1 {
        // Degenerate path: QR of M̄, triangle inversion, one right-apply.
        return counts::geqrf(n, n) + 2 * counts::trtri(n) + counts::ormqr(n, n, n);
    }
    let rows = pattern.rows(b);
    let kmin = rows[0];
    let mut total = structured_qr_flops(n, b);
    // R_jj⁻¹ for every diagonal block (invert_upper charges 2·trtri).
    total += b as u64 * 2 * counts::trtri(n);
    // Shared couplings W_j = −E_{j−1}·R_jj⁻¹ for kmin < j < b−1.
    total += ((b - 1).saturating_sub(kmin + 1)) as u64 * counts::gemm(n, n, n);
    // Shared last column X_{i,b−1}, i = b−2..kmin: two GEMMs per step plus
    // the C-fill term where it exists (i ≤ b−3, i.e. b ≥ 3).
    for i in kmin..b - 1 {
        let gemms = if b >= 3 && i <= b - 3 { 3 } else { 2 };
        total += gemms * counts::gemm(n, n, n);
    }
    // Row recurrences: row k < b−1 chains through columns k+1..b−2.
    for &k in &rows {
        total += ((b - 1).saturating_sub(k + 1)) as u64 * counts::gemm(n, n, n);
    }
    if matches!(pattern, SelectedPattern::Full) {
        // Dense request: stage C is the full right-apply of every panel
        // to the whole stacked buffer.
        for i in 0..b {
            let panel_m = if i == b - 1 { n } else { 2 * n };
            total += counts::ormqr(panel_m, n, rows.len() * n);
        }
        return total;
    }
    // Diagonal requests: the live-column chain. The final panel's half is
    // one N×N ORMQR plus the live-block init; each earlier transform
    // materializes the half (or halves) of Q̃ᵢᵀ it needs — one ORMQR on an
    // N-wide identity block each — and advances with plain GEMMs.
    total += counts::ormqr(n, n, n);
    total += counts::gemm(rows.len() * n, n, n);
    for i in kmin.saturating_sub(1)..b - 1 {
        let ga = rows.partition_point(|&k| k <= i);
        if rows.get(ga) == Some(&(i + 1)) {
            total += counts::ormqr(2 * n, n, n) + counts::gemm(n, n, n);
        }
        if ga > 0 {
            total += counts::ormqr(2 * n, n, n) + 2 * counts::gemm(ga * n, n, n);
        }
    }
    total
}

/// Flops of the explicit-form computation (paper table, left column).
pub fn explicit_flops(pattern: Pattern, n: usize, l: usize, c: usize) -> u64 {
    let b = (l / c) as u64;
    let c = c as u64;
    match pattern {
        Pattern::Diagonal => 2 * b * b * c * n3(n),
        Pattern::SubDiagonal => 4 * b * b * c * n3(n),
        Pattern::Columns | Pattern::Rows => b * b * b * c * c * n3(n),
    }
}

/// Flops of the FSI computation (paper table, right column).
pub fn fsi_flops(pattern: Pattern, n: usize, l: usize, c: usize) -> u64 {
    let b = (l / c) as u64;
    let c = c as u64;
    match pattern {
        Pattern::Diagonal => (2 * (c - 1) + 7 * b) * b * n3(n),
        Pattern::SubDiagonal => (2 * c + 7 * b) * b * n3(n),
        Pattern::Columns | Pattern::Rows => 3 * b * b * c * n3(n),
    }
}

/// Exact stage-by-stage FSI flop budget (CLS + BSOFI + WRP), the sum the
/// paper's rounded table approximates.
pub fn fsi_flops_exact(pattern: Pattern, n: usize, l: usize, c: usize) -> u64 {
    let cls = crate::cls::cls_flops(n, l, c);
    let b = l / c;
    let bsofi = crate::bsofi::bsofi_flops(n, b);
    let wrap = match pattern {
        Pattern::Diagonal => 0,
        Pattern::SubDiagonal => 3 * (b as u64) * n3(n),
        Pattern::Columns | Pattern::Rows => crate::wrap::wrap_flops(n, l, c),
    };
    cls + bsofi + wrap
}

/// Speedup factor of FSI over the explicit form predicted by the formulas.
pub fn predicted_speedup(pattern: Pattern, n: usize, l: usize, c: usize) -> f64 {
    explicit_flops(pattern, n, l, c) as f64 / fsi_flops(pattern, n, l, c) as f64
}

/// Flops of the full LU inversion baseline: `2(NL)³`.
pub fn full_inverse_flops(n: usize, l: usize) -> u64 {
    2 * ((n * l) as u64).pow(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_values_at_paper_parameters() {
        // (N, L, c) = (1, 100, 10) so N³ = 1; b = 10.
        let (n, l, c) = (1usize, 100usize, 10usize);
        assert_eq!(explicit_flops(Pattern::Diagonal, n, l, c), 2 * 100 * 10);
        assert_eq!(explicit_flops(Pattern::SubDiagonal, n, l, c), 4 * 100 * 10);
        assert_eq!(explicit_flops(Pattern::Columns, n, l, c), 1000 * 100);
        assert_eq!(fsi_flops(Pattern::Diagonal, n, l, c), (2 * 9 + 70) * 10);
        assert_eq!(fsi_flops(Pattern::SubDiagonal, n, l, c), (20 + 70) * 10);
        assert_eq!(fsi_flops(Pattern::Columns, n, l, c), 3 * 100 * 10);
    }

    #[test]
    fn fsi_wins_for_paper_scale_problems() {
        // The paper's headline: FSI is ~bc/3 faster than explicit columns.
        let (n, l, c) = (100usize, 100usize, 10usize);
        let s = predicted_speedup(Pattern::Columns, n, l, c);
        let b = (l / c) as f64;
        let want = b * c as f64 / 3.0;
        assert!(
            (s - want).abs() / want < 1e-12,
            "speedup {s} vs bc/3 = {want}"
        );
        assert!(s > 30.0);
    }

    #[test]
    fn exact_budget_close_to_rounded_table() {
        let (n, l, c) = (64usize, 100usize, 10usize);
        for pattern in [Pattern::Columns, Pattern::Rows] {
            let exact = fsi_flops_exact(pattern, n, l, c) as f64;
            let rounded = fsi_flops(pattern, n, l, c) as f64;
            let ratio = exact / rounded;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{pattern:?}: exact {exact} vs table {rounded}"
            );
        }
    }

    #[test]
    fn structured_qr_count_is_exact_at_b2() {
        use fsi_runtime::flops::counts;
        // b = 2: one 2N×N panel QR, one merged last-column apply, one N×N QR.
        let n = 5;
        assert_eq!(
            structured_qr_flops(n, 2),
            counts::geqrf(2 * n, n) + counts::ormqr(2 * n, n, n) + counts::geqrf(n, n)
        );
    }

    #[test]
    fn selected_flops_ordering_and_savings() {
        let (n, b) = (64usize, 16usize);
        let single = bsofi_selected_flops(n, b, &SelectedPattern::DiagonalBlock(7));
        let diags = bsofi_selected_flops(n, b, &SelectedPattern::Diagonals);
        let full = bsofi_selected_flops(n, b, &SelectedPattern::Full);
        assert!(single < diags, "{single} vs {diags}");
        assert!(diags < full, "{diags} vs {full}");
        // Diagonal-only stage C truncation is the headline saving.
        let ratio = full as f64 / diags as f64;
        assert!(ratio > 1.3, "full/diagonals flop ratio {ratio}");
        // A single block skips almost all of stage B/C beyond the factor.
        let factor = structured_qr_flops(n, b);
        assert!((single - factor) * 4 < full - factor);
    }

    #[test]
    fn selected_flops_single_block_matrix() {
        use fsi_runtime::flops::counts;
        let n = 6;
        let want = counts::geqrf(n, n) + 2 * counts::trtri(n) + counts::ormqr(n, n, n);
        for pattern in [
            SelectedPattern::Diagonals,
            SelectedPattern::DiagonalBlock(0),
            SelectedPattern::Full,
        ] {
            assert_eq!(bsofi_selected_flops(n, 1, &pattern), want);
        }
    }

    #[test]
    fn full_inverse_dominates_everything() {
        let (n, l, c) = (100, 100, 10);
        let full = full_inverse_flops(n, l);
        assert!(full > explicit_flops(Pattern::Columns, n, l, c));
        assert!(full > fsi_flops_exact(Pattern::Columns, n, l, c));
        // Paper: FSI is (2/3)L·c ≈ 667× cheaper than full LU inversion for
        // b block columns at these parameters.
        let ratio = full as f64 / fsi_flops(Pattern::Columns, n, l, c) as f64;
        assert!(ratio > 500.0, "ratio {ratio}");
    }
}
