//! Closed-form complexity formulas of paper §II-C, in units of flops.
//!
//! The paper's comparison table (explicit form of Eq. (2)/(3) vs FSI) in
//! `N³` units:
//!
//! | selection       | explicit form | FSI                 |
//! |-----------------|---------------|---------------------|
//! | b diagonals     | `2b²c`        | `[2(c−1) + 7b]·b`   |
//! | b−1 sub-diag.   | `4b²c`        | `[2c + 7b]·b`       |
//! | b cols/rows     | `b³c²`        | `3b²c`              |
//!
//! These drive the `table_complexity` harness, which prints the formulas
//! next to *measured* flop counts from [`fsi_runtime::flops`] so the two
//! can be compared directly.

use crate::patterns::Pattern;

/// `N³` as u64.
fn n3(n: usize) -> u64 {
    (n as u64).pow(3)
}

/// Flops of the explicit-form computation (paper table, left column).
pub fn explicit_flops(pattern: Pattern, n: usize, l: usize, c: usize) -> u64 {
    let b = (l / c) as u64;
    let c = c as u64;
    match pattern {
        Pattern::Diagonal => 2 * b * b * c * n3(n),
        Pattern::SubDiagonal => 4 * b * b * c * n3(n),
        Pattern::Columns | Pattern::Rows => b * b * b * c * c * n3(n),
    }
}

/// Flops of the FSI computation (paper table, right column).
pub fn fsi_flops(pattern: Pattern, n: usize, l: usize, c: usize) -> u64 {
    let b = (l / c) as u64;
    let c = c as u64;
    match pattern {
        Pattern::Diagonal => (2 * (c - 1) + 7 * b) * b * n3(n),
        Pattern::SubDiagonal => (2 * c + 7 * b) * b * n3(n),
        Pattern::Columns | Pattern::Rows => 3 * b * b * c * n3(n),
    }
}

/// Exact stage-by-stage FSI flop budget (CLS + BSOFI + WRP), the sum the
/// paper's rounded table approximates.
pub fn fsi_flops_exact(pattern: Pattern, n: usize, l: usize, c: usize) -> u64 {
    let cls = crate::cls::cls_flops(n, l, c);
    let b = l / c;
    let bsofi = crate::bsofi::bsofi_flops(n, b);
    let wrap = match pattern {
        Pattern::Diagonal => 0,
        Pattern::SubDiagonal => 3 * (b as u64) * n3(n),
        Pattern::Columns | Pattern::Rows => crate::wrap::wrap_flops(n, l, c),
    };
    cls + bsofi + wrap
}

/// Speedup factor of FSI over the explicit form predicted by the formulas.
pub fn predicted_speedup(pattern: Pattern, n: usize, l: usize, c: usize) -> f64 {
    explicit_flops(pattern, n, l, c) as f64 / fsi_flops(pattern, n, l, c) as f64
}

/// Flops of the full LU inversion baseline: `2(NL)³`.
pub fn full_inverse_flops(n: usize, l: usize) -> u64 {
    2 * ((n * l) as u64).pow(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_values_at_paper_parameters() {
        // (N, L, c) = (1, 100, 10) so N³ = 1; b = 10.
        let (n, l, c) = (1usize, 100usize, 10usize);
        assert_eq!(explicit_flops(Pattern::Diagonal, n, l, c), 2 * 100 * 10);
        assert_eq!(explicit_flops(Pattern::SubDiagonal, n, l, c), 4 * 100 * 10);
        assert_eq!(explicit_flops(Pattern::Columns, n, l, c), 1000 * 100);
        assert_eq!(fsi_flops(Pattern::Diagonal, n, l, c), (2 * 9 + 70) * 10);
        assert_eq!(fsi_flops(Pattern::SubDiagonal, n, l, c), (20 + 70) * 10);
        assert_eq!(fsi_flops(Pattern::Columns, n, l, c), 3 * 100 * 10);
    }

    #[test]
    fn fsi_wins_for_paper_scale_problems() {
        // The paper's headline: FSI is ~bc/3 faster than explicit columns.
        let (n, l, c) = (100usize, 100usize, 10usize);
        let s = predicted_speedup(Pattern::Columns, n, l, c);
        let b = (l / c) as f64;
        let want = b * c as f64 / 3.0;
        assert!(
            (s - want).abs() / want < 1e-12,
            "speedup {s} vs bc/3 = {want}"
        );
        assert!(s > 30.0);
    }

    #[test]
    fn exact_budget_close_to_rounded_table() {
        let (n, l, c) = (64usize, 100usize, 10usize);
        for pattern in [Pattern::Columns, Pattern::Rows] {
            let exact = fsi_flops_exact(pattern, n, l, c) as f64;
            let rounded = fsi_flops(pattern, n, l, c) as f64;
            let ratio = exact / rounded;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{pattern:?}: exact {exact} vs table {rounded}"
            );
        }
    }

    #[test]
    fn full_inverse_dominates_everything() {
        let (n, l, c) = (100, 100, 10);
        let full = full_inverse_flops(n, l);
        assert!(full > explicit_flops(Pattern::Columns, n, l, c));
        assert!(full > fsi_flops_exact(Pattern::Columns, n, l, c));
        // Paper: FSI is (2/3)L·c ≈ 667× cheaper than full LU inversion for
        // b block columns at these parameters.
        let ratio = full as f64 / fsi_flops(Pattern::Columns, n, l, c) as f64;
        assert!(ratio > 500.0, "ratio {ratio}");
    }
}
