//! Selected-inversion patterns (paper §II-B, Fig. 2).
//!
//! A selected inversion is a set of `(k, ℓ)` block coordinates of `G`. The
//! paper studies four patterns over the index set
//! `I = {c−q, 2c−q, …, bc−q}` (1-based), i.e. every `c`-th row/column with
//! a random offset `q ∈ 0..c` chosen uniformly so that, over many Green's
//! functions, every block position is sampled:
//!
//! | pattern        | blocks                      | count    | memory vs full |
//! |----------------|-----------------------------|----------|----------------|
//! | S1 diagonal    | `G(k,k)`, k ∈ I             | `b`      | 1/(cL)         |
//! | S2 subdiagonal | `G(k,k+1)`, k ∈ I           | `b`      | 1/(cL)         |
//! | S3 columns     | `G(k,ℓ)`, ℓ ∈ I, all k      | `bL`     | 1/c            |
//! | S4 rows        | `G(k,ℓ)`, k ∈ I, all ℓ      | `bL`     | 1/c            |
//!
//! In 0-based indices `I = {o, o+c, …}` with `o = c−1−q`.

use std::collections::HashMap;

use fsi_dense::Matrix;

/// The four selected-inversion shapes of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// `b` diagonal blocks (equal-time Green's functions).
    Diagonal,
    /// `b` sub-diagonal blocks `G(k, k+1)` (torus-wrapped).
    SubDiagonal,
    /// `b` full block columns.
    Columns,
    /// `b` full block rows.
    Rows,
}

impl Pattern {
    /// All four patterns, in paper order S1..S4.
    pub const ALL: [Pattern; 4] = [
        Pattern::Diagonal,
        Pattern::SubDiagonal,
        Pattern::Columns,
        Pattern::Rows,
    ];

    /// Paper label (S1..S4).
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::Diagonal => "S1 (diagonal)",
            Pattern::SubDiagonal => "S2 (sub-diagonal)",
            Pattern::Columns => "S3 (columns)",
            Pattern::Rows => "S4 (rows)",
        }
    }

    /// Number of selected blocks for given `(L, c)` (paper §II-B table).
    pub fn n_blocks(&self, l: usize, c: usize) -> usize {
        let b = l / c;
        match self {
            Pattern::Diagonal | Pattern::SubDiagonal => b,
            Pattern::Columns | Pattern::Rows => b * l,
        }
    }

    /// Memory reduction factor versus storing the full `L×L` block inverse
    /// (paper §II-B table: `cL` for S1/S2, `c` for S3/S4).
    pub fn reduction_factor(&self, l: usize, c: usize) -> usize {
        let total = l * l;
        total / self.n_blocks(l, c)
    }
}

/// Which block rows of the *reduced* inverse `Ḡ = M̄⁻¹` a BSOFI call must
/// assemble — the request [`crate::bsofi::bsofi_selected`] specializes on.
///
/// The original-level patterns S1–S4 reduce to exactly two seed shapes
/// (paper Alg. 2): the diagonal patterns need only the `b` diagonal seed
/// blocks `Ḡ(k, k)`, while the row/column patterns need all `b²` blocks.
/// The DQMC stabilizer adds a third shape: a single diagonal block.
///
/// ```
/// use fsi_selinv::{Pattern, SelectedPattern};
/// // S1/S2 wraps grow from diagonal seeds; S3/S4 need every block.
/// assert_eq!(SelectedPattern::for_wrap(Pattern::Diagonal), SelectedPattern::Diagonals);
/// assert_eq!(SelectedPattern::for_wrap(Pattern::Rows), SelectedPattern::Full);
/// // Diagonals at b = 4 yields the 4 blocks (k, k).
/// assert_eq!(SelectedPattern::Diagonals.coordinates(4).len(), 4);
/// assert_eq!(SelectedPattern::DiagonalBlock(2).coordinates(4), vec![(2, 2)]);
/// assert_eq!(SelectedPattern::Full.coordinates(3).len(), 9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SelectedPattern {
    /// All `b` diagonal blocks `Ḡ(k, k)` — the seeds of the S1/S2 wraps
    /// and of [`crate::wrap::wrap_all_diagonals`].
    Diagonals,
    /// One diagonal block `Ḡ(k, k)` — the DQMC stabilizer's request.
    DiagonalBlock(usize),
    /// Every block of `Ḡ` — the S3/S4 (rows/columns) seed set; assembly
    /// degenerates to the dense inverse.
    Full,
}

impl SelectedPattern {
    /// The reduced-level seed shape an original-level [`Pattern`] needs.
    pub fn for_wrap(pattern: Pattern) -> SelectedPattern {
        match pattern {
            Pattern::Diagonal | Pattern::SubDiagonal => SelectedPattern::Diagonals,
            Pattern::Columns | Pattern::Rows => SelectedPattern::Full,
        }
    }

    /// The block rows of `Ḡ` that must be assembled, ascending.
    ///
    /// # Panics
    /// Panics if a [`SelectedPattern::DiagonalBlock`] index is `≥ b`.
    pub fn rows(&self, b: usize) -> Vec<usize> {
        match *self {
            SelectedPattern::Diagonals | SelectedPattern::Full => (0..b).collect(),
            SelectedPattern::DiagonalBlock(k) => {
                assert!(k < b, "diagonal block {k} out of range for b={b}");
                vec![k]
            }
        }
    }

    /// The block columns wanted within assembled row `k`.
    pub fn cols_for_row(&self, k: usize, b: usize) -> Vec<usize> {
        match *self {
            SelectedPattern::Diagonals | SelectedPattern::DiagonalBlock(_) => vec![k],
            SelectedPattern::Full => (0..b).collect(),
        }
    }

    /// All requested `(k, ℓ)` block coordinates of `Ḡ`.
    pub fn coordinates(&self, b: usize) -> Vec<(usize, usize)> {
        self.rows(b)
            .into_iter()
            .flat_map(|k| self.cols_for_row(k, b).into_iter().map(move |l| (k, l)))
            .collect()
    }

    /// How many of the assembled rows (a prefix of [`Self::rows`], stacked
    /// top-down) panel transform `i` of stage C must touch: row `k`'s
    /// wanted columns are final once transforms `b−1, …, min(ℓ)−1` have
    /// been applied, so row `k` participates in transform `i` iff
    /// `i + 1 ≥ min(cols_for_row(k))`. Zero means the transform is skipped
    /// entirely — the flop saving of selected assembly.
    pub fn active_rows(&self, i: usize, b: usize) -> usize {
        match *self {
            SelectedPattern::Full => b,
            SelectedPattern::Diagonals => (i + 2).min(b),
            SelectedPattern::DiagonalBlock(k) => usize::from(i + 1 >= k),
        }
    }

    /// Display label for benches and traces.
    pub fn label(&self) -> &'static str {
        match self {
            SelectedPattern::Diagonals => "diagonals",
            SelectedPattern::DiagonalBlock(_) => "diagonal-block",
            SelectedPattern::Full => "full",
        }
    }
}

/// A concrete selection: pattern + clustering size + random shift.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Selection {
    /// Which shape to select.
    pub pattern: Pattern,
    /// Cluster size `c` (must divide `L`; usually `c ≈ √L`).
    pub c: usize,
    /// Random shift `q ∈ 0..c` (paper: uniform, so repeated Green's
    /// functions sample all block positions).
    pub q: usize,
}

impl Selection {
    /// Creates a selection, validating `c | L` is *not* checked here (it
    /// depends on `L`, checked in [`Selection::index_set`]).
    ///
    /// # Panics
    /// Panics unless `q < c` and `c > 0`.
    pub fn new(pattern: Pattern, c: usize, q: usize) -> Self {
        assert!(c > 0, "cluster size must be positive");
        assert!(q < c, "shift q must satisfy 0 <= q < c");
        Selection { pattern, c, q }
    }

    /// The 0-based offset `o = c − 1 − q` of the index set.
    pub fn offset(&self) -> usize {
        self.c - 1 - self.q
    }

    /// The 0-based index set `I = {o, o+c, …}` for `b = L/c` entries.
    ///
    /// # Panics
    /// Panics unless `c` divides `L`.
    pub fn index_set(&self, l: usize) -> Vec<usize> {
        assert!(
            l.is_multiple_of(self.c),
            "cluster size c={} must divide L={l}",
            self.c
        );
        let b = l / self.c;
        (0..b).map(|m| m * self.c + self.offset()).collect()
    }

    /// Number of reduced block rows `b = L/c`.
    pub fn b(&self, l: usize) -> usize {
        assert!(
            l.is_multiple_of(self.c),
            "cluster size c={} must divide L={l}",
            self.c
        );
        l / self.c
    }

    /// All selected `(k, ℓ)` block coordinates for block count `L`.
    pub fn coordinates(&self, l: usize) -> Vec<(usize, usize)> {
        let idx = self.index_set(l);
        match self.pattern {
            Pattern::Diagonal => idx.iter().map(|&k| (k, k)).collect(),
            Pattern::SubDiagonal => idx.iter().map(|&k| (k, (k + 1) % l)).collect(),
            Pattern::Columns => idx
                .iter()
                .flat_map(|&col| (0..l).map(move |k| (k, col)))
                .collect(),
            Pattern::Rows => idx
                .iter()
                .flat_map(|&row| (0..l).map(move |ell| (row, ell)))
                .collect(),
        }
    }
}

/// The result of a selected inversion: a sparse map from block coordinates
/// to `N × N` blocks of `G`.
#[derive(Clone, Debug, Default)]
pub struct SelectedInverse {
    blocks: HashMap<(usize, usize), Matrix>,
}

impl SelectedInverse {
    /// An empty selection result.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts block `(k, ℓ)`; replaces any previous value.
    pub fn insert(&mut self, k: usize, l: usize, block: Matrix) {
        self.blocks.insert((k, l), block);
    }

    /// Looks up block `(k, ℓ)`.
    pub fn get(&self, k: usize, l: usize) -> Option<&Matrix> {
        self.blocks.get(&(k, l))
    }

    /// Looks up block `(k, ℓ)` mutably (the health layer's injection and
    /// scan hooks visit blocks in coordinate order).
    pub fn get_mut(&mut self, k: usize, l: usize) -> Option<&mut Matrix> {
        self.blocks.get_mut(&(k, l))
    }

    /// The stored coordinates in sorted order — a deterministic visiting
    /// order over the underlying hash map.
    pub fn sorted_coordinates(&self) -> Vec<(usize, usize)> {
        let mut coords: Vec<(usize, usize)> = self.blocks.keys().copied().collect();
        coords.sort_unstable();
        coords
    }

    /// Removes and returns block `(k, ℓ)` — callers that consume a single
    /// block (the DQMC stabilizer) avoid a copy.
    pub fn remove(&mut self, k: usize, l: usize) -> Option<Matrix> {
        self.blocks.remove(&(k, l))
    }

    /// Whether block `(k, ℓ)` is present.
    pub fn contains(&self, k: usize, l: usize) -> bool {
        self.blocks.contains_key(&(k, l))
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the selection is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterates stored blocks as `((k, ℓ), &block)`.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize), &Matrix)> {
        self.blocks.iter()
    }

    /// Merges another selection result into this one.
    pub fn merge(&mut self, other: SelectedInverse) {
        self.blocks.extend(other.blocks);
    }

    /// Total stored bytes — the paper's memory argument for selected
    /// inversion (1/c of the full inverse for column selections).
    pub fn bytes(&self) -> usize {
        self.blocks
            .values()
            .map(|m| m.rows() * m.cols() * std::mem::size_of::<f64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_set_matches_paper_convention() {
        // Paper (1-based): I = {c−q, 2c−q, …}; 0-based: subtract 1.
        let sel = Selection::new(Pattern::Diagonal, 5, 2);
        let idx = sel.index_set(20);
        // 1-based would be {3, 8, 13, 18}; 0-based {2, 7, 12, 17}.
        assert_eq!(idx, vec![2, 7, 12, 17]);
        assert_eq!(sel.b(20), 4);
        // q = 0 gives the last index of each cluster.
        let sel = Selection::new(Pattern::Diagonal, 5, 0);
        assert_eq!(sel.index_set(10), vec![4, 9]);
        // q = c−1 gives the first.
        let sel = Selection::new(Pattern::Diagonal, 5, 4);
        assert_eq!(sel.index_set(10), vec![0, 5]);
    }

    #[test]
    fn block_counts_match_paper_table() {
        let (l, c) = (100, 10);
        assert_eq!(Pattern::Diagonal.n_blocks(l, c), 10);
        assert_eq!(Pattern::SubDiagonal.n_blocks(l, c), 10);
        assert_eq!(Pattern::Columns.n_blocks(l, c), 1000);
        assert_eq!(Pattern::Rows.n_blocks(l, c), 1000);
        // Reduction factors: cL for diagonals, c for columns/rows.
        assert_eq!(Pattern::Diagonal.reduction_factor(l, c), c * l);
        assert_eq!(Pattern::SubDiagonal.reduction_factor(l, c), c * l);
        assert_eq!(Pattern::Columns.reduction_factor(l, c), c);
        assert_eq!(Pattern::Rows.reduction_factor(l, c), c);
    }

    #[test]
    fn coordinates_have_expected_shapes() {
        let l = 12;
        let sel = Selection::new(Pattern::Columns, 4, 1);
        let coords = sel.coordinates(l);
        assert_eq!(coords.len(), 3 * 12);
        // Every selected coordinate's column is in the index set.
        let idx = sel.index_set(l);
        assert!(coords.iter().all(|&(_, col)| idx.contains(&col)));
        // Rows pattern transposes that.
        let sel = Selection::new(Pattern::Rows, 4, 1);
        let coords = sel.coordinates(l);
        assert!(coords.iter().all(|&(row, _)| idx.contains(&row)));
        // Sub-diagonal wraps at the torus edge.
        let sel = Selection::new(Pattern::SubDiagonal, 4, 3); // offset 0 → rows {0,4,8}
        let coords = sel.coordinates(l);
        assert!(coords.contains(&(0, 1)));
        let sel = Selection::new(Pattern::SubDiagonal, 4, 0); // offset 3 → rows {3,7,11}
        let coords = sel.coordinates(l);
        assert!(coords.contains(&(11, 0)), "wraps: {coords:?}");
    }

    #[test]
    fn coordinates_are_unique() {
        for pattern in Pattern::ALL {
            let sel = Selection::new(pattern, 3, 1);
            let coords = sel.coordinates(9);
            let mut sorted = coords.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), coords.len(), "{pattern:?}");
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn c_must_divide_l() {
        Selection::new(Pattern::Diagonal, 7, 0).index_set(20);
    }

    #[test]
    fn selected_inverse_storage() {
        let mut s = SelectedInverse::new();
        assert!(s.is_empty());
        s.insert(1, 2, Matrix::identity(3));
        s.insert(2, 2, Matrix::zeros(3, 3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(1, 2));
        assert!(!s.contains(0, 0));
        assert_eq!(s.get(1, 2).unwrap()[(0, 0)], 1.0);
        assert_eq!(s.bytes(), 2 * 9 * 8);
        let mut other = SelectedInverse::new();
        other.insert(0, 0, Matrix::identity(3));
        s.merge(other);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn selected_pattern_rows_and_active_counts() {
        let b = 5;
        assert_eq!(SelectedPattern::Diagonals.rows(b), vec![0, 1, 2, 3, 4]);
        assert_eq!(SelectedPattern::DiagonalBlock(3).rows(b), vec![3]);
        assert_eq!(SelectedPattern::Full.coordinates(b).len(), b * b);
        // Diagonals: transform i touches rows k ≤ i+1, capped at b.
        assert_eq!(SelectedPattern::Diagonals.active_rows(0, b), 2);
        assert_eq!(SelectedPattern::Diagonals.active_rows(3, b), 5);
        assert_eq!(SelectedPattern::Diagonals.active_rows(4, b), 5);
        // Single block k: only transforms i ≥ k−1 touch it.
        assert_eq!(SelectedPattern::DiagonalBlock(3).active_rows(1, b), 0);
        assert_eq!(SelectedPattern::DiagonalBlock(3).active_rows(2, b), 1);
        assert_eq!(SelectedPattern::DiagonalBlock(0).active_rows(0, b), 1);
        // Full: every transform touches every row.
        assert_eq!(SelectedPattern::Full.active_rows(0, b), b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn selected_pattern_block_bounds_checked() {
        SelectedPattern::DiagonalBlock(4).rows(4);
    }

    #[test]
    fn memory_saving_example_from_paper() {
        // (N, L) = (1000, 100), c = √L = 10 → column selection uses 1/10
        // of the full-inverse memory, "saving 90%".
        let sel = Selection::new(Pattern::Columns, 10, 0);
        let frac = 1.0 / Pattern::Columns.reduction_factor(100, sel.c) as f64;
        assert!((frac - 0.1).abs() < 1e-12);
    }
}
