//! Baseline selected-inversion algorithms the paper compares FSI against.
//!
//! * [`full_inverse_selected`] — assemble the dense `NL × NL` matrix, run
//!   LU inversion (the "MKL DGETRF + DGETRI" path of §V-A), extract the
//!   selected blocks. Cost `2(NL)³` flops and `(NL)²` memory — the memory
//!   wall is the paper's main argument against it at scale.
//! * [`explicit_selected`] — evaluate the explicit expression Eq. (3)
//!   block by block: `G(k,ℓ) = W(k)⁻¹ Z(k,ℓ)` with fresh matrix chains.
//!   `W(k)` factorizations are memoized per block row, but each `Z`
//!   requires an `O(L)` chain, so `b` block columns cost `O(bL²N³)` —
//!   the factor-of-`L` overhead FSI's wrapping eliminates.

use std::collections::HashMap;

use fsi_dense::{getrf, inverse_par, LuFactor};
use fsi_pcyclic::green::{w_matrix, z_matrix};
use fsi_pcyclic::BlockPCyclic;
use fsi_runtime::Par;

use crate::patterns::{SelectedInverse, Selection};

/// Selected blocks via full dense inversion (GETRF/GETRI baseline).
pub fn full_inverse_selected(
    par: Par<'_>,
    pc: &BlockPCyclic,
    selection: &Selection,
) -> SelectedInverse {
    let g =
        inverse_par(par, &pc.assemble_dense()).expect("valid p-cyclic matrices are nonsingular");
    let mut out = SelectedInverse::new();
    for (k, l) in selection.coordinates(pc.l()) {
        out.insert(k, l, pc.dense_block(&g, k, l));
    }
    out
}

/// Selected blocks via the explicit expression (3), memoizing the `W(k)`
/// factorization per block row.
pub fn explicit_selected(
    par: Par<'_>,
    pc: &BlockPCyclic,
    selection: &Selection,
) -> SelectedInverse {
    let mut w_factors: HashMap<usize, LuFactor> = HashMap::new();
    let mut out = SelectedInverse::new();
    for (k, l) in selection.coordinates(pc.l()) {
        let f = w_factors
            .entry(k)
            .or_insert_with(|| getrf(w_matrix(par, pc, k)).expect("W(k) nonsingular"));
        let z = z_matrix(par, pc, k, l);
        out.insert(k, l, f.solve(&z));
    }
    out
}

/// BSOFI applied directly to the *unreduced* matrix (no clustering): the
/// paper's intermediate comparison point. Produces the full block-dense
/// inverse, from which the selection is extracted. `O(L²N³)` flops,
/// `(NL)²` memory.
pub fn bsofi_full_selected(
    par_cols: Par<'_>,
    par_gemm: Par<'_>,
    pc: &BlockPCyclic,
    selection: &Selection,
) -> SelectedInverse {
    let g = crate::bsofi::bsofi(par_cols, par_gemm, pc);
    let mut out = SelectedInverse::new();
    for (k, l) in selection.coordinates(pc.l()) {
        out.insert(k, l, pc.dense_block(&g, k, l));
    }
    out
}

/// Maximum relative Frobenius error between two selected inversions over
/// their common coordinates — the paper's §V-A validation metric
/// (`max‖S_ij − G_ij‖_F / ‖G_ij‖_F`).
pub fn max_block_error(a: &SelectedInverse, b: &SelectedInverse) -> f64 {
    let mut worst = 0.0f64;
    let mut compared = 0usize;
    for (coord, blk) in a.iter() {
        if let Some(other) = b.get(coord.0, coord.1) {
            worst = worst.max(fsi_dense::rel_error(blk, other));
            compared += 1;
        }
    }
    assert!(compared > 0, "selections share no coordinates");
    worst
}

/// Mean relative Frobenius error over common coordinates (the exact
/// quantity the paper's §V-A inequality bounds by 1e-10).
pub fn mean_block_error(a: &SelectedInverse, b: &SelectedInverse) -> f64 {
    let mut total = 0.0f64;
    let mut compared = 0usize;
    for (coord, blk) in a.iter() {
        if let Some(other) = b.get(coord.0, coord.1) {
            total += fsi_dense::rel_error(blk, other);
            compared += 1;
        }
    }
    assert!(compared > 0, "selections share no coordinates");
    total / compared as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsi::{fsi_with_q, Parallelism};
    use crate::patterns::Pattern;
    use fsi_dense::Matrix;
    use fsi_pcyclic::random_pcyclic;

    #[test]
    fn baselines_agree_with_each_other() {
        let pc = random_pcyclic(3, 8, 90);
        let sel = Selection::new(Pattern::Columns, 4, 1);
        let full = full_inverse_selected(Par::Seq, &pc, &sel);
        let expl = explicit_selected(Par::Seq, &pc, &sel);
        let bsofi_sel = bsofi_full_selected(Par::Seq, Par::Seq, &pc, &sel);
        assert_eq!(full.len(), expl.len());
        assert!(max_block_error(&full, &expl) < 1e-9);
        assert!(max_block_error(&full, &bsofi_sel) < 1e-9);
    }

    #[test]
    fn fsi_matches_full_inverse_baseline() {
        // The §V-A validation shape, scaled down.
        let pc = random_pcyclic(4, 12, 91);
        for pattern in Pattern::ALL {
            let sel = Selection::new(pattern, 4, 2);
            let fsi_out = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
            let full = full_inverse_selected(Par::Seq, &pc, &sel);
            let err = max_block_error(&fsi_out.selected, &full);
            assert!(err < 1e-8, "{pattern:?}: {err}");
            let mean = mean_block_error(&fsi_out.selected, &full);
            assert!(mean <= err);
        }
    }

    #[test]
    fn explicit_memoizes_w_per_row() {
        // Rows pattern touches b distinct k's only — smoke test that it
        // completes quickly and correctly.
        let pc = random_pcyclic(2, 10, 92);
        let sel = Selection::new(Pattern::Rows, 5, 0);
        let expl = explicit_selected(Par::Seq, &pc, &sel);
        let full = full_inverse_selected(Par::Seq, &pc, &sel);
        assert!(max_block_error(&expl, &full) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "share no coordinates")]
    fn disjoint_selections_panic() {
        let mut a = SelectedInverse::new();
        a.insert(0, 0, Matrix::identity(2));
        let mut b = SelectedInverse::new();
        b.insert(1, 1, Matrix::identity(2));
        let _ = max_block_error(&a, &b);
    }
}
