//! Job specifications, streamed events, and completion reports.

use crossbeam_channel::Receiver;
use fsi_runtime::health::FsiError;
use fsi_selinv::{per_rank_bytes, Pattern};

/// A tenant's request for one simulation job: `sweeps` independent
/// Hubbard Green's functions of shape `(N = side², L)`, each selected
/// and inverted with cluster size `c`, seeded by `(seed, sweep)`.
///
/// The spec is the unit of admission: its memory footprint
/// ([`JobSpec::per_worker_bytes`]) is checked against the service's
/// memory model *before* any matrix is built, and its analytic flop
/// cost ([`JobSpec::flop_estimate`]) is what the tenant's meters are
/// charged per completed sweep.
///
/// ```
/// use fsi_service::JobSpec;
///
/// // 4-site lattice, L = 8 imaginary-time slices, clusters of 4,
/// // 16 sweeps, seed 42.
/// let spec = JobSpec::new("tenant-a", 2, 8, 4, 16, 42);
/// assert_eq!(spec.n_sites(), 4);
/// assert!(spec.validate().is_ok());
/// // c must divide L:
/// assert!(JobSpec::new("tenant-a", 2, 10, 4, 1, 0).validate().is_err());
/// ```
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Billing/metering tag; metrics appear under
    /// `service.tenant.<tenant>.*`.
    pub tenant: String,
    /// Square-lattice side; the matrix block dimension is `N = side²`.
    pub side: usize,
    /// Number of imaginary-time slices `L` (block count of the p-cyclic
    /// matrix).
    pub l: usize,
    /// Cluster size `c` (must divide `L`); shrinks per job under the
    /// recovery ladder.
    pub c: usize,
    /// Selection pattern computed for every sweep.
    pub pattern: Pattern,
    /// Number of independent Green's functions to invert and measure.
    pub sweeps: usize,
    /// Base RNG seed; sweep `s` draws its field and shift from
    /// `(seed, s)` only, so results are scheduling-independent.
    pub seed: u64,
    /// Wall-clock budget from admission to completion, in milliseconds.
    /// The supervisor's watchdog cancels the job when it expires;
    /// `None` (the default) means no deadline.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A diagonal-pattern spec; set [`JobSpec::pattern`] afterwards for
    /// other selections.
    pub fn new(
        tenant: impl Into<String>,
        side: usize,
        l: usize,
        c: usize,
        sweeps: usize,
        seed: u64,
    ) -> Self {
        JobSpec {
            tenant: tenant.into(),
            side,
            l,
            c,
            pattern: Pattern::Diagonal,
            sweeps,
            seed,
            deadline_ms: None,
        }
    }

    /// The lattice site count `N = side²` (the block dimension).
    pub fn n_sites(&self) -> usize {
        self.side * self.side
    }

    /// Checks the structural constraints the pipeline assumes.
    ///
    /// # Errors
    /// A description of the first violated constraint: zero dimensions,
    /// an empty tenant tag, `c > L`, or `c ∤ L`.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenant.is_empty() {
            return Err("tenant tag must be non-empty".into());
        }
        if self.side == 0 || self.l == 0 || self.c == 0 || self.sweeps == 0 {
            return Err(format!(
                "dimensions must be positive: side={} l={} c={} sweeps={}",
                self.side, self.l, self.c, self.sweeps
            ));
        }
        if self.c > self.l {
            return Err(format!("cluster size c={} exceeds L={}", self.c, self.l));
        }
        if !self.l.is_multiple_of(self.c) {
            return Err(format!("c={} must divide L={}", self.c, self.l));
        }
        Ok(())
    }

    /// Analytic flop cost of **one sweep** (build + CLS + BSOFI + wrap),
    /// from the paper's §IV operation counts: CLS multiplies `c−1`
    /// block pairs per cluster, BSOFI inverts the `b×b` reduced chain,
    /// wrapping back-substitutes across all `L` slices. Used to charge
    /// tenant meters without hardware counters.
    pub fn flop_estimate(&self) -> u64 {
        let n = self.n_sites() as u64;
        let l = self.l as u64;
        let c = self.c as u64;
        let b = l / c;
        let n3 = n * n * n;
        let cls = 4 * (c.saturating_sub(1)) * b * n3;
        let bsofi = 14 * b * b * b * n3 / 3;
        let wrap = 4 * l * n3;
        cls + bsofi + wrap
    }

    /// Bytes one worker needs to hold this job's per-sweep working set
    /// (input blocks, reduced inverse, selected blocks, scratch) — the
    /// quantity admission control weighs against the memory model.
    pub fn per_worker_bytes(&self) -> u64 {
        per_rank_bytes(self.n_sites(), self.l, self.c, self.pattern)
    }
}

/// One streamed update from a running job.
#[derive(Clone, Debug)]
pub enum JobEvent {
    /// Sweep `sweep` completed; `quantities` is the measurement vector.
    Bin {
        /// The sweep index within the job, `0..sweeps`.
        sweep: usize,
        /// The measurement quantities of this sweep.
        quantities: Vec<f64>,
    },
    /// The job tripped a health probe and shrank its cluster size.
    Degraded {
        /// The sweep that tripped the probe.
        sweep: usize,
        /// The cluster size the job runs with from now on.
        c: usize,
        /// How many times this job has degraded so far.
        rung: u32,
    },
    /// A sweep exhausted the job's recovery ladder; the job is failed
    /// and its remaining sweeps are drained unprocessed.
    Failed {
        /// The sweep whose inversion could not be recovered.
        sweep: usize,
        /// The unrecovered health-probe failure.
        error: FsiError,
    },
    /// The job was cancelled — by [`crate::ServiceHandle::cancel`] or by
    /// the watchdog (deadline expiry) — and its remaining sweeps are
    /// being drained unprocessed.
    Cancelled {
        /// Why: `"cancel"` for explicit cancellation, `"deadline"` for
        /// watchdog deadline expiry.
        reason: String,
    },
    /// The job finished (all sweeps completed, or failed/cancelled and
    /// drained); always the final event on the channel.
    Finished(JobSummary),
}

/// The terminal accounting record of a job.
#[derive(Clone, Debug)]
pub struct JobSummary {
    /// Service-assigned job id (monotonic per service).
    pub job_id: u64,
    /// The tenant tag from the spec.
    pub tenant: String,
    /// Sweeps requested.
    pub sweeps: usize,
    /// Sweeps that produced a measurement bin.
    pub completed_bins: usize,
    /// Recovery-ladder rungs this job descended.
    pub degradations: u32,
    /// The cluster size the job ended with.
    pub c_final: usize,
    /// Whether the job failed (ladder exhausted on some sweep).
    pub failed: bool,
    /// Whether the job was cancelled (explicitly or by deadline).
    pub cancelled: bool,
    /// Full-task retry attempts the job consumed (after ladder
    /// exhaustion, before failing).
    pub retries: u32,
    /// Nanoseconds from submission to the first sweep starting.
    pub queue_wait_ns: u64,
    /// Nanoseconds from submission to completion.
    pub latency_ns: u64,
}

/// The assembled result [`JobHandle::wait`] returns: the terminal
/// summary plus every streamed bin, sorted by sweep index.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Terminal accounting record.
    pub summary: JobSummary,
    /// `(sweep, quantities)` pairs in ascending sweep order.
    pub bins: Vec<(usize, Vec<f64>)>,
    /// The failure that ended the job, if any.
    pub error: Option<FsiError>,
    /// The cancellation reason, if the job was cancelled.
    pub cancelled: Option<String>,
}

/// The submitter's side of an admitted job: a receiver of streamed
/// [`JobEvent`]s plus the job id.
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) rx: Receiver<JobEvent>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("id", &self.id).finish()
    }
}

impl JobHandle {
    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The raw event stream, for callers that want bins as they land
    /// (e.g. on-line error bars) rather than the final report.
    pub fn events(&self) -> &Receiver<JobEvent> {
        &self.rx
    }

    /// Blocks until the job finishes and assembles the full
    /// [`JobOutcome`] from the event stream.
    pub fn wait(self) -> JobOutcome {
        let mut bins: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut error = None;
        let mut cancelled = None;
        let mut summary = None;
        while let Ok(event) = self.rx.recv() {
            match event {
                JobEvent::Bin { sweep, quantities } => bins.push((sweep, quantities)),
                JobEvent::Degraded { .. } => {}
                JobEvent::Failed { error: e, .. } => error = Some(e),
                JobEvent::Cancelled { reason } => cancelled = Some(reason),
                JobEvent::Finished(s) => {
                    summary = Some(s);
                    break;
                }
            }
        }
        bins.sort_by_key(|(s, _)| *s);
        // A dropped service closes the channel without a Finished event;
        // synthesize a failed summary so callers always get a report.
        let summary = summary.unwrap_or(JobSummary {
            job_id: self.id,
            tenant: String::new(),
            sweeps: 0,
            completed_bins: bins.len(),
            degradations: 0,
            c_final: 0,
            failed: true,
            cancelled: false,
            retries: 0,
            queue_wait_ns: 0,
            latency_ns: 0,
        });
        JobOutcome {
            summary,
            bins,
            error,
            cancelled,
        }
    }
}
