//! The service's durable state: a write-ahead job journal plus per-job
//! checkpoints, both living under the state directory (`FSI_STATE_DIR`).
//!
//! Layout:
//!
//! ```text
//! <state_dir>/
//!   journal.wal          append-only job lifecycle log (text lines)
//!   jobs/<id>.ckpt       latest per-job checkpoint (sealed envelope)
//!   jobs/<id>.ckpt.prev  previous generation (torn-write fallback)
//! ```
//!
//! The journal is write-ahead: a job's `S` (submitted) record is
//! appended — and flushed — *before* any sweep of it is enqueued, and
//! its terminal record (`F` finished, `C` cancelled) is appended before
//! the `Finished` event is emitted. Every line carries an FNV-1a
//! checksum of its body; replay stops at the first line that fails the
//! checksum or does not parse, which is exactly the torn tail a crash
//! mid-append leaves. A job with an `S` record and no terminal record
//! survived the crash and is re-admitted on recovery.
//!
//! Checkpoints ride the [`fsi_runtime::ckpt`] envelope (versioned,
//! checksummed, atomic tmp+rename, two-generation rotation): a corrupt
//! or torn current generation falls back to the previous one, and when
//! both are bad the job reruns from scratch — always safe, because every
//! sweep's result is a pure function of `(seed, sweep)`.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use fsi_runtime::ckpt::{self, CkptError, Generation, Reader, Writer};
use fsi_runtime::metrics::{flight, LazyCounter};
use fsi_selinv::Pattern;

use crate::job::JobSpec;

static CKPT_WRITES: LazyCounter = LazyCounter::new("service.checkpoint.writes");
static CKPT_BYTES: LazyCounter = LazyCounter::new("service.checkpoint.bytes");
static CKPT_NS: LazyCounter = LazyCounter::new("service.checkpoint.ns");

/// Payload version of the per-job checkpoint.
pub(crate) const JOB_CKPT_VERSION: u32 = 1;

/// The resumable state of one job: the ladder/retry position plus every
/// completed bin. Fields not stored here (the HS fields, the builder)
/// are deterministic recomputations from the spec.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct JobCheckpoint {
    /// The cluster size the job currently runs with.
    pub c_now: usize,
    /// Recovery-ladder rungs descended so far.
    pub degradations: u32,
    /// Full-task retries consumed so far.
    pub retries: u32,
    /// Completed `(sweep, quantities)` bins.
    pub bins: Vec<(usize, Vec<f64>)>,
}

impl JobCheckpoint {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.c_now as u64);
        w.put_u32(self.degradations);
        w.put_u32(self.retries);
        w.put_u64(self.bins.len() as u64);
        for (sweep, quantities) in &self.bins {
            w.put_u64(*sweep as u64);
            w.put_f64s(quantities);
        }
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<Self, CkptError> {
        let mut r = Reader::new(payload);
        let c_now = r.take_u64()? as usize;
        if c_now == 0 {
            return Err(CkptError::Malformed("c_now must be positive"));
        }
        let degradations = r.take_u32()?;
        let retries = r.take_u32()?;
        let n = r.take_u64()? as usize;
        let mut bins = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let sweep = r.take_u64()? as usize;
            bins.push((sweep, r.take_f64s()?));
        }
        if !r.is_empty() {
            return Err(CkptError::Malformed("trailing bytes after bins"));
        }
        Ok(JobCheckpoint {
            c_now,
            degradations,
            retries,
            bins,
        })
    }
}

fn pattern_index(p: Pattern) -> usize {
    match p {
        Pattern::Diagonal => 0,
        Pattern::SubDiagonal => 1,
        Pattern::Columns => 2,
        Pattern::Rows => 3,
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// What journal replay reconstructs: the jobs that survived the crash
/// (submitted, no terminal record), in submission order, plus the next
/// job id to hand out.
pub(crate) struct Replay {
    /// `(id, spec)` of every surviving job.
    pub jobs: Vec<(u64, JobSpec)>,
    /// One past the highest id ever journaled.
    pub next_id: u64,
}

/// The open durable-state handle of a running service.
pub(crate) struct Durability {
    dir: PathBuf,
    journal: Mutex<File>,
}

impl Durability {
    /// Opens (creating as needed) the state directory and its journal.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir.join("jobs"))?;
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("journal.wal"))?;
        Ok(Durability {
            dir: dir.to_path_buf(),
            journal: Mutex::new(journal),
        })
    }

    /// Appends one checksummed line and flushes it to the OS.
    fn append(&self, body: &str) {
        debug_assert!(!body.contains('\n') && !body.contains('|'));
        let line = format!("{body}|{:016x}\n", ckpt::fnv1a(body.as_bytes()));
        let mut journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        if journal.write_all(line.as_bytes()).is_err() || journal.flush().is_err() {
            flight::note("service.journal.write_failed");
        }
    }

    /// Write-ahead record of an admitted job (before its sweeps enqueue).
    pub fn record_submitted(&self, id: u64, spec: &JobSpec) {
        let deadline = spec
            .deadline_ms
            .map_or_else(|| "-".to_string(), |ms| ms.to_string());
        self.append(&format!(
            "S {id} {} {} {} {} {} {} {} {deadline}",
            hex_encode(spec.tenant.as_bytes()),
            spec.side,
            spec.l,
            spec.c,
            pattern_index(spec.pattern),
            spec.sweeps,
            spec.seed,
        ));
    }

    /// Terminal record: `F` for finished (completed or failed), `C` for
    /// cancelled. Appended before the `Finished` event is emitted.
    pub fn record_terminal(&self, id: u64, cancelled: bool) {
        self.append(&format!("{} {id}", if cancelled { 'C' } else { 'F' }));
    }

    fn ckpt_path(&self, id: u64) -> PathBuf {
        self.dir.join("jobs").join(format!("{id}.ckpt"))
    }

    /// Writes (atomically, with rotation) the job's checkpoint.
    pub fn write_checkpoint(&self, id: u64, state: &JobCheckpoint) {
        let started = Instant::now();
        match ckpt::store(&self.ckpt_path(id), JOB_CKPT_VERSION, &state.encode()) {
            Ok(bytes) => {
                CKPT_WRITES.inc();
                CKPT_BYTES.add(bytes);
                CKPT_NS.add(started.elapsed().as_nanos() as u64);
            }
            Err(_) => flight::note("service.ckpt.write_failed"),
        }
    }

    /// The `fault-inject` drill's torn write: rotates like a normal
    /// checkpoint, then leaves a *truncated* envelope in place of the
    /// current generation — the on-disk state of a crash that beat the
    /// filesystem to the full payload. Recovery must fall back to the
    /// previous generation.
    #[cfg(feature = "fault-inject")]
    pub fn write_torn_checkpoint(&self, id: u64, state: &JobCheckpoint) {
        let path = self.ckpt_path(id);
        let sealed = ckpt::seal(JOB_CKPT_VERSION, &state.encode());
        if path.exists() {
            let _ = std::fs::rename(&path, ckpt::prev_path(&path));
        }
        let _ = std::fs::write(&path, &sealed[..sealed.len() / 2]);
    }

    /// Loads the job's checkpoint, falling back to the previous
    /// generation on corruption. `None` means rerun from scratch —
    /// either nothing was ever written (crash before the first
    /// checkpoint) or every generation is corrupt.
    pub fn load_checkpoint(&self, id: u64) -> Option<(JobCheckpoint, Generation)> {
        match ckpt::load(&self.ckpt_path(id), JOB_CKPT_VERSION) {
            Ok((payload, generation)) => match JobCheckpoint::decode(&payload) {
                Ok(state) => Some((state, generation)),
                Err(_) => {
                    flight::note("service.ckpt.malformed");
                    None
                }
            },
            Err(CkptError::Io(e)) if e.kind() == io::ErrorKind::NotFound => None,
            Err(_) => {
                flight::note("service.ckpt.unrecoverable");
                None
            }
        }
    }

    /// Removes the job's checkpoint generations once it is terminal
    /// (the journal's terminal record supersedes them). Best-effort.
    pub fn delete_checkpoint(&self, id: u64) {
        let path = self.ckpt_path(id);
        let _ = std::fs::remove_file(ckpt::prev_path(&path));
        let _ = std::fs::remove_file(&path);
    }

    /// Replays the journal: parses checksummed lines until the first
    /// torn/corrupt one, then reports every submitted-but-not-terminal
    /// job in submission order.
    pub fn replay(&self) -> Replay {
        let mut jobs: Vec<(u64, JobSpec)> = Vec::new();
        let mut next_id = 0u64;
        let Ok(file) = File::open(self.dir.join("journal.wal")) else {
            return Replay { jobs, next_id };
        };
        for line in BufReader::new(file).lines() {
            let Ok(line) = line else { break };
            let Some(record) = parse_line(&line) else {
                flight::note("service.journal.torn_tail");
                break;
            };
            match record {
                Record::Submitted(id, spec) => {
                    next_id = next_id.max(id + 1);
                    jobs.push((id, spec));
                }
                Record::Terminal(id) => jobs.retain(|(j, _)| *j != id),
            }
        }
        Replay { jobs, next_id }
    }
}

enum Record {
    Submitted(u64, JobSpec),
    Terminal(u64),
}

/// Parses one journal line, returning `None` on any checksum or shape
/// violation (replay treats that as the torn tail).
fn parse_line(line: &str) -> Option<Record> {
    let (body, sum) = line.rsplit_once('|')?;
    if u64::from_str_radix(sum, 16).ok()? != ckpt::fnv1a(body.as_bytes()) {
        return None;
    }
    let mut parts = body.split(' ');
    let kind = parts.next()?;
    let id: u64 = parts.next()?.parse().ok()?;
    match kind {
        "F" | "C" => {
            if parts.next().is_some() {
                return None;
            }
            Some(Record::Terminal(id))
        }
        "S" => {
            let tenant = String::from_utf8(hex_decode(parts.next()?)?).ok()?;
            let side: usize = parts.next()?.parse().ok()?;
            let l: usize = parts.next()?.parse().ok()?;
            let c: usize = parts.next()?.parse().ok()?;
            let pattern = *Pattern::ALL.get(parts.next()?.parse::<usize>().ok()?)?;
            let sweeps: usize = parts.next()?.parse().ok()?;
            let seed: u64 = parts.next()?.parse().ok()?;
            let deadline = parts.next()?;
            let deadline_ms = if deadline == "-" {
                None
            } else {
                Some(deadline.parse().ok()?)
            };
            if parts.next().is_some() {
                return None;
            }
            let mut spec = JobSpec::new(tenant, side, l, c, sweeps, seed);
            spec.pattern = pattern;
            spec.deadline_ms = deadline_ms;
            Some(Record::Submitted(id, spec))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fsi-durability-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journal_round_trips_and_drops_terminal_jobs() {
        let dir = tempdir("journal");
        let d = Durability::open(&dir).unwrap();
        let mut spec = JobSpec::new("tenant a", 2, 8, 4, 3, 7);
        spec.deadline_ms = Some(1500);
        d.record_submitted(0, &spec);
        d.record_submitted(1, &JobSpec::new("b", 3, 16, 4, 2, 9));
        d.record_terminal(0, false);
        let replay = d.replay();
        assert_eq!(replay.next_id, 2);
        assert_eq!(replay.jobs.len(), 1);
        let (id, spec) = &replay.jobs[0];
        assert_eq!(*id, 1);
        assert_eq!(spec.tenant, "b");
        assert_eq!(
            (spec.side, spec.l, spec.c, spec.sweeps, spec.seed),
            (3, 16, 4, 2, 9)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_stops_replay() {
        let dir = tempdir("torn");
        let d = Durability::open(&dir).unwrap();
        d.record_submitted(0, &JobSpec::new("a", 2, 8, 4, 1, 0));
        d.record_submitted(1, &JobSpec::new("b", 2, 8, 4, 1, 0));
        drop(d);
        // Tear the last line mid-checksum, as a crash mid-append would.
        let path = dir.join("journal.wal");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let d = Durability::open(&dir).unwrap();
        let replay = d.replay();
        assert_eq!(replay.jobs.len(), 1, "torn record must not replay");
        assert_eq!(replay.jobs[0].0, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_round_trips_and_rotates() {
        let dir = tempdir("ckpt");
        let d = Durability::open(&dir).unwrap();
        let gen1 = JobCheckpoint {
            c_now: 4,
            degradations: 0,
            retries: 0,
            bins: vec![(0, vec![1.5, -2.5])],
        };
        d.write_checkpoint(7, &gen1);
        let gen2 = JobCheckpoint {
            c_now: 2,
            degradations: 1,
            retries: 1,
            bins: vec![(0, vec![1.5, -2.5]), (2, vec![0.25])],
        };
        d.write_checkpoint(7, &gen2);
        let (loaded, generation) = d.load_checkpoint(7).expect("current loads");
        assert_eq!(generation, Generation::Current);
        assert_eq!(loaded, gen2);
        // Corrupt the current generation: fallback serves gen1.
        let path = dir.join("jobs").join("7.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (loaded, generation) = d.load_checkpoint(7).expect("fallback loads");
        assert_eq!(generation, Generation::Previous);
        assert_eq!(loaded, gen1);
        assert!(d.load_checkpoint(8).is_none(), "absent checkpoint is None");
        d.delete_checkpoint(7);
        assert!(d.load_checkpoint(7).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
