//! The service core: bounded admission, work-stealing execution, tenant
//! metering, and the per-job degradation ladder.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{unbounded, Sender};
use fsi_pcyclic::{BlockBuilder, HsField, HubbardParams, SquareLattice};
use fsi_runtime::metrics::{
    counter, flight, histogram, Counter, HistogramMetric, LazyCounter, LazyGauge, LazyHistogram,
};
use fsi_runtime::{StealQueues, ThreadPool};
use fsi_selinv::{
    generate_fields, trace_measure, MatrixTask, MemoryModel, Parallelism, SelectedInverse,
};

use crate::admission::AdmitError;
use crate::job::{JobEvent, JobHandle, JobSpec, JobSummary};

static SUBMITTED: LazyCounter = LazyCounter::new("service.jobs.submitted");
static REJECTED: LazyCounter = LazyCounter::new("service.jobs.rejected");
static COMPLETED: LazyCounter = LazyCounter::new("service.jobs.completed");
static FAILED: LazyCounter = LazyCounter::new("service.jobs.failed");
static DEGRADED: LazyCounter = LazyCounter::new("service.jobs.degraded");
static SWEEPS_DONE: LazyCounter = LazyCounter::new("service.sweeps.completed");
static QUEUE_DEPTH: LazyGauge = LazyGauge::new("service.queue.depth");
static LATENCY: LazyHistogram = LazyHistogram::new("service.job.latency_ns");
static QUEUE_WAIT: LazyHistogram = LazyHistogram::new("service.job.queue_wait_ns");
static JOB_FLOPS: LazyHistogram = LazyHistogram::new("service.job.flops");

/// Sizing and policy of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (the "rank" level of the hybrid model); each owns
    /// one steal deque.
    pub workers: usize,
    /// Threads inside each worker's [`ThreadPool`] (the "OpenMP" level).
    pub threads_per_worker: usize,
    /// Queue capacity in *sweeps*: the bound admission control enforces
    /// over queued-plus-running work.
    pub queue_capacity: usize,
    /// Node memory model consulted at admission (Fig. 9 analysis).
    pub memory: MemoryModel,
    /// How many recovery-ladder rungs a single job may descend before
    /// it is failed.
    pub max_degradations: u32,
}

impl ServiceConfig {
    /// A sane single-host configuration with `workers` workers, one
    /// thread each, a 4096-sweep queue, the Edison memory model, and a
    /// ladder depth of 8.
    pub fn small(workers: usize) -> Self {
        ServiceConfig {
            workers: workers.max(1),
            threads_per_worker: 1,
            queue_capacity: 4096,
            memory: MemoryModel::edison(),
            max_degradations: 8,
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::small(fsi_runtime::default_threads().clamp(1, 8))
    }
}

/// Per-tenant metric handles, resolved once per tenant tag and cached.
#[derive(Clone, Copy)]
struct TenantMeters {
    jobs: &'static Counter,
    bins: &'static Counter,
    flops: &'static Counter,
    latency: &'static HistogramMetric,
    queue_wait: &'static HistogramMetric,
}

impl TenantMeters {
    fn resolve(tenant: &str) -> Self {
        let name = |leaf: &str| format!("service.tenant.{tenant}.{leaf}");
        TenantMeters {
            jobs: counter(&name("jobs")),
            bins: counter(&name("bins")),
            flops: counter(&name("flops")),
            latency: histogram(&name("latency_ns")),
            queue_wait: histogram(&name("queue_wait_ns")),
        }
    }
}

/// The shared state of one running job.
struct JobState {
    id: u64,
    spec: JobSpec,
    builder: BlockBuilder,
    /// The cluster size the job currently runs with; only ever shrinks
    /// (per-job rung of the recovery ladder).
    c_now: AtomicUsize,
    degradations: AtomicU32,
    /// Sweeps not yet finished (completed, failed, or drained).
    remaining: AtomicUsize,
    completed_bins: AtomicUsize,
    failed: AtomicBool,
    submitted: Instant,
    first_start: Mutex<Option<Instant>>,
    tx: Sender<JobEvent>,
}

/// The boxed per-sweep measurement hook shared by all workers.
type BoxedMeasure = Box<dyn Fn(&SelectedInverse) -> Vec<f64> + Send + Sync>;

/// One schedulable unit: a single sweep of a job, carrying its field.
struct SweepTask {
    job: Arc<JobState>,
    sweep: usize,
    field: HsField,
}

struct Inner {
    cfg: ServiceConfig,
    queues: StealQueues<SweepTask>,
    /// Sweeps queued or in flight, guarded for the backpressure condvar.
    pending: Mutex<usize>,
    space: Condvar,
    next_job: AtomicU64,
    accepting: AtomicBool,
    measure: BoxedMeasure,
    tenants: Mutex<HashMap<String, TenantMeters>>,
}

/// A running simulation service: worker threads plus the shared queue.
///
/// Create with [`Service::start`], clone submit handles with
/// [`Service::handle`], and stop with [`Service::shutdown`] — which
/// drains already-admitted work before joining the workers.
pub struct Service {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

/// A cloneable submission handle to a [`Service`].
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<Inner>,
}

impl Service {
    /// Starts the service with [`fsi_selinv::trace_measure`] as the
    /// per-sweep measurement hook.
    pub fn start(cfg: ServiceConfig) -> Self {
        Service::start_with(cfg, trace_measure)
    }

    /// Starts the service with a custom measurement hook applied to
    /// every completed selected inversion.
    pub fn start_with(
        cfg: ServiceConfig,
        measure: impl Fn(&SelectedInverse) -> Vec<f64> + Send + Sync + 'static,
    ) -> Self {
        assert!(cfg.workers > 0 && cfg.threads_per_worker > 0);
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        let inner = Arc::new(Inner {
            queues: StealQueues::new(cfg.workers),
            cfg,
            pending: Mutex::new(0),
            space: Condvar::new(),
            next_job: AtomicU64::new(0),
            accepting: AtomicBool::new(true),
            measure: Box::new(measure),
            tenants: Mutex::new(HashMap::new()),
        });
        let threads = (0..inner.cfg.workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("fsi-service-{w}"))
                    .spawn(move || worker_loop(&inner, w))
                    .expect("spawn service worker")
            })
            .collect();
        Service { inner, threads }
    }

    /// A cloneable handle for submitting jobs.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Stops accepting new jobs, drains everything already admitted,
    /// and joins the workers.
    pub fn shutdown(self) {
        self.inner.accepting.store(false, Ordering::Release);
        self.inner.queues.close();
        // Wake any submit_blocking waiters so they observe the refusal.
        self.inner.space.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

impl ServiceHandle {
    /// Submits a job, rejecting immediately when admission fails.
    ///
    /// On success the job's sweeps are spread over the worker deques
    /// (whence idle workers steal) and a [`JobHandle`] streams events
    /// back; [`JobHandle::wait`] assembles the final report.
    ///
    /// ```
    /// use fsi_service::{AdmitError, JobSpec, Service, ServiceConfig};
    ///
    /// let service = Service::start(ServiceConfig::small(2));
    /// let handle = service.handle();
    ///
    /// let job = handle.submit(JobSpec::new("qmc", 2, 8, 4, 3, 11)).unwrap();
    /// let outcome = job.wait();
    /// assert_eq!(outcome.bins.len(), 3);
    ///
    /// // Rejections carry their reason:
    /// let huge = JobSpec::new("qmc", 2, 8, 4, 1_000_000, 0);
    /// assert!(matches!(
    ///     handle.submit(huge),
    ///     Err(AdmitError::QueueFull { .. })
    /// ));
    /// service.shutdown();
    /// ```
    ///
    /// # Errors
    /// [`AdmitError`] names the reason: malformed spec, memory budget,
    /// full queue, or shutdown.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, AdmitError> {
        self.admit(spec, false)
    }

    /// Like [`ServiceHandle::submit`], but blocks while the queue is
    /// full instead of rejecting (backpressure). Structural and
    /// memory-budget rejections still return immediately.
    ///
    /// # Errors
    /// [`AdmitError`] for non-queue reasons, or
    /// [`AdmitError::ShuttingDown`] if the service stops while waiting.
    pub fn submit_blocking(&self, spec: JobSpec) -> Result<JobHandle, AdmitError> {
        self.admit(spec, true)
    }

    /// Sweeps currently queued or in flight (racy snapshot).
    pub fn pending_sweeps(&self) -> usize {
        *self.inner.pending.lock().unwrap()
    }

    fn admit(&self, spec: JobSpec, block: bool) -> Result<JobHandle, AdmitError> {
        let inner = &*self.inner;
        if !inner.accepting.load(Ordering::Acquire) {
            return Err(AdmitError::ShuttingDown);
        }
        if let Err(why) = spec.validate() {
            REJECTED.inc();
            return Err(AdmitError::InvalidSpec(why));
        }
        // Fig. 9 admission: would `workers` concurrent inversions of
        // this shape fit the node? A job too big for the pool never
        // clears on its own, so this rejects even in blocking mode.
        let per_worker = spec.per_worker_bytes();
        let usable = inner.cfg.memory.node_bytes - inner.cfg.memory.reserved_bytes;
        if !inner.cfg.memory.feasible(inner.cfg.workers, per_worker) {
            REJECTED.inc();
            return Err(AdmitError::MemoryBudget {
                per_worker_bytes: per_worker,
                budget_bytes: usable / inner.cfg.workers as u64,
            });
        }
        // Bounded-queue admission over the pending-sweep count.
        {
            let mut pending = inner.pending.lock().unwrap();
            loop {
                if !inner.accepting.load(Ordering::Acquire) {
                    return Err(AdmitError::ShuttingDown);
                }
                if *pending + spec.sweeps <= inner.cfg.queue_capacity {
                    *pending += spec.sweeps;
                    QUEUE_DEPTH.set(*pending as f64);
                    break;
                }
                if !block {
                    REJECTED.inc();
                    return Err(AdmitError::QueueFull {
                        capacity: inner.cfg.queue_capacity,
                        pending: *pending,
                        requested: spec.sweeps,
                    });
                }
                pending = inner.space.wait(pending).unwrap();
            }
        }
        Ok(self.enqueue(spec))
    }

    /// Builds the job state and spreads its sweeps over the deques.
    fn enqueue(&self, spec: JobSpec) -> JobHandle {
        let inner = &*self.inner;
        let id = inner.next_job.fetch_add(1, Ordering::AcqRel);
        let (tx, rx) = unbounded();
        let builder = BlockBuilder::new(
            SquareLattice::square(spec.side),
            HubbardParams::paper_validation(spec.l),
        );
        let fields = generate_fields(spec.l, spec.n_sites(), spec.sweeps, spec.seed);
        let job = Arc::new(JobState {
            id,
            c_now: AtomicUsize::new(spec.c),
            degradations: AtomicU32::new(0),
            remaining: AtomicUsize::new(spec.sweeps),
            completed_bins: AtomicUsize::new(0),
            failed: AtomicBool::new(false),
            submitted: Instant::now(),
            first_start: Mutex::new(None),
            tx,
            builder,
            spec,
        });
        SUBMITTED.inc();
        tenant_meters(inner, &job.spec.tenant).jobs.inc();
        // Round-robin starting at the job id: tenants land on different
        // home deques, and the stealer evens out the rest.
        let workers = inner.cfg.workers;
        for (sweep, field) in fields.into_iter().enumerate() {
            let task = SweepTask {
                job: Arc::clone(&job),
                sweep,
                field,
            };
            inner.queues.push((id as usize + sweep) % workers, task);
        }
        JobHandle { id, rx }
    }
}

/// Resolves (and caches) the metric handles for a tenant tag.
fn tenant_meters(inner: &Inner, tenant: &str) -> TenantMeters {
    let mut map = inner.tenants.lock().unwrap();
    *map.entry(tenant.to_string())
        .or_insert_with(|| TenantMeters::resolve(tenant))
}

/// The body of one worker thread: acquire (own deque, then steal), run
/// the sweep through the resumable task pipeline, account, repeat.
fn worker_loop(inner: &Inner, w: usize) {
    let pool = ThreadPool::new(inner.cfg.threads_per_worker);
    let par = if inner.cfg.threads_per_worker == 1 {
        Parallelism::Serial
    } else {
        Parallelism::OpenMp(&pool)
    };
    while let Some(task) = inner.queues.acquire(w) {
        run_sweep(inner, par, task);
    }
}

/// Runs one sweep to completion (with per-job degradation retries) and
/// handles all completion accounting.
fn run_sweep(inner: &Inner, par: Parallelism<'_>, task: SweepTask) {
    let SweepTask { job, sweep, field } = task;
    // Queue wait is measured at the first sweep of the job to start.
    {
        let mut first = job.first_start.lock().unwrap();
        if first.is_none() {
            *first = Some(Instant::now());
        }
    }
    if !job.failed.load(Ordering::Acquire) {
        let measure: &fsi_selinv::multi::MeasureFn = &*inner.measure;
        let mut mt = MatrixTask::new(sweep, field, job.spec.c, job.spec.pattern, job.spec.seed);
        // Join the job's current ladder rung: degradation is per *job*,
        // so later sweeps start at the already-shrunk cluster size.
        while mt.c() > job.c_now.load(Ordering::Acquire) {
            mt.degrade();
        }
        loop {
            match mt.run(par, &job.builder, measure) {
                Ok(()) => {
                    let (_, quantities) = mt.into_quantities();
                    job.completed_bins.fetch_add(1, Ordering::AcqRel);
                    SWEEPS_DONE.inc();
                    let meters = tenant_meters(inner, &job.spec.tenant);
                    meters.bins.inc();
                    meters.flops.add(job.spec.flop_estimate());
                    let _ = job.tx.send(JobEvent::Bin { sweep, quantities });
                    break;
                }
                Err(error) => {
                    let rungs = job.degradations.load(Ordering::Acquire);
                    if rungs < inner.cfg.max_degradations && mt.degrade() {
                        // Scope the §II-C "shrink c" rung to this job.
                        let rung = job.degradations.fetch_add(1, Ordering::AcqRel) + 1;
                        job.c_now.fetch_min(mt.c(), Ordering::AcqRel);
                        DEGRADED.inc();
                        flight::note_recovery("service.shrink_c", "service");
                        let _ = job.tx.send(JobEvent::Degraded {
                            sweep,
                            c: mt.c(),
                            rung,
                        });
                        continue;
                    }
                    job.failed.store(true, Ordering::Release);
                    flight::note("service.job.failed");
                    let _ = job.tx.send(JobEvent::Failed { sweep, error });
                    break;
                }
            }
        }
    }
    // Completion accounting runs for processed *and* drained sweeps.
    {
        let mut pending = inner.pending.lock().unwrap();
        *pending -= 1;
        QUEUE_DEPTH.set(*pending as f64);
        inner.space.notify_all();
    }
    if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        finish_job(inner, &job);
    }
}

/// Emits the terminal summary and job-level metrics.
fn finish_job(inner: &Inner, job: &JobState) {
    let failed = job.failed.load(Ordering::Acquire);
    let latency_ns = job.submitted.elapsed().as_nanos() as u64;
    let queue_wait_ns = job
        .first_start
        .lock()
        .unwrap()
        .map(|t| (t - job.submitted).as_nanos() as u64)
        .unwrap_or(latency_ns);
    if failed {
        FAILED.inc();
    } else {
        COMPLETED.inc();
    }
    LATENCY.record(latency_ns);
    QUEUE_WAIT.record(queue_wait_ns);
    let completed_bins = job.completed_bins.load(Ordering::Acquire);
    JOB_FLOPS.record(job.spec.flop_estimate() * completed_bins as u64);
    let meters = tenant_meters(inner, &job.spec.tenant);
    meters.latency.record(latency_ns);
    meters.queue_wait.record(queue_wait_ns);
    let _ = job.tx.send(JobEvent::Finished(JobSummary {
        job_id: job.id,
        tenant: job.spec.tenant.clone(),
        sweeps: job.spec.sweeps,
        completed_bins,
        degradations: job.degradations.load(Ordering::Acquire),
        c_final: job.c_now.load(Ordering::Acquire),
        failed,
        queue_wait_ns,
        latency_ns,
    }));
}
