//! The service core: bounded admission, work-stealing execution, tenant
//! metering, the per-job degradation ladder, and the supervised job
//! lifecycle — durable checkpoints, deadlines, cancellation, a stall
//! watchdog, and bounded retry.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Sender};
use fsi_pcyclic::{BlockBuilder, HsField, HubbardParams, SquareLattice};
use fsi_runtime::metrics::{
    counter, flight, histogram, Counter, HistogramMetric, LazyCounter, LazyGauge, LazyHistogram,
};
use fsi_runtime::{StealQueues, ThreadPool};
use fsi_selinv::{
    generate_fields, trace_measure, MatrixTask, MemoryModel, Parallelism, SelectedInverse,
};

use crate::admission::AdmitError;
use crate::durability::{Durability, JobCheckpoint};
use crate::job::{JobEvent, JobHandle, JobSpec, JobSummary};

static SUBMITTED: LazyCounter = LazyCounter::new("service.jobs.submitted");
static REJECTED: LazyCounter = LazyCounter::new("service.jobs.rejected");
static COMPLETED: LazyCounter = LazyCounter::new("service.jobs.completed");
static FAILED: LazyCounter = LazyCounter::new("service.jobs.failed");
static CANCELLED: LazyCounter = LazyCounter::new("service.jobs.cancelled");
static RECOVERED: LazyCounter = LazyCounter::new("service.jobs.recovered");
static DEGRADED: LazyCounter = LazyCounter::new("service.jobs.degraded");
static RETRIES: LazyCounter = LazyCounter::new("service.job.retries");
static STALLS: LazyCounter = LazyCounter::new("service.watchdog.stalls");
static SWEEPS_DONE: LazyCounter = LazyCounter::new("service.sweeps.completed");
static QUEUE_DEPTH: LazyGauge = LazyGauge::new("service.queue.depth");
static LATENCY: LazyHistogram = LazyHistogram::new("service.job.latency_ns");
static QUEUE_WAIT: LazyHistogram = LazyHistogram::new("service.job.queue_wait_ns");
static JOB_FLOPS: LazyHistogram = LazyHistogram::new("service.job.flops");

/// Sizing and policy of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (the "rank" level of the hybrid model); each owns
    /// one steal deque.
    pub workers: usize,
    /// Threads inside each worker's [`ThreadPool`] (the "OpenMP" level).
    pub threads_per_worker: usize,
    /// Queue capacity in *sweeps*: the bound admission control enforces
    /// over queued-plus-running work.
    pub queue_capacity: usize,
    /// Node memory model consulted at admission (Fig. 9 analysis).
    pub memory: MemoryModel,
    /// How many recovery-ladder rungs a single job may descend before
    /// its retry budget is consulted.
    pub max_degradations: u32,
    /// Durable-state directory (write-ahead journal + per-job
    /// checkpoints). Defaults to `$FSI_STATE_DIR` when that is set;
    /// `None` disables durability.
    pub state_dir: Option<PathBuf>,
    /// Write a job's checkpoint every this-many completed bins (and once
    /// more at [`Service::drain`]). Ignored without a state dir.
    pub checkpoint_every: usize,
    /// Fresh full-task attempts granted after the recovery ladder is
    /// exhausted, before the job is failed.
    pub max_retries: u32,
    /// Base backoff between those attempts; attempt `k` sleeps
    /// `k × retry_backoff_ms`.
    pub retry_backoff_ms: u64,
    /// A sweep in flight longer than this is presumed stalled: the
    /// watchdog requeues it for another worker (completion claims are
    /// idempotent, so a slow-but-alive worker's late result is simply
    /// discarded).
    pub stall_timeout_ms: u64,
    /// Watchdog scan interval (deadlines + stall detection).
    pub watchdog_poll_ms: u64,
}

impl ServiceConfig {
    /// A sane single-host configuration with `workers` workers, one
    /// thread each, a 4096-sweep queue, the Edison memory model, a
    /// ladder depth of 8, and durability under `$FSI_STATE_DIR` when
    /// that is set.
    pub fn small(workers: usize) -> Self {
        ServiceConfig {
            workers: workers.max(1),
            threads_per_worker: 1,
            queue_capacity: 4096,
            memory: MemoryModel::edison(),
            max_degradations: 8,
            state_dir: std::env::var_os("FSI_STATE_DIR").map(PathBuf::from),
            checkpoint_every: 8,
            max_retries: 2,
            retry_backoff_ms: 10,
            stall_timeout_ms: 5_000,
            watchdog_poll_ms: 50,
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::small(fsi_runtime::default_threads().clamp(1, 8))
    }
}

/// Per-tenant metric handles, resolved once per tenant tag and cached.
#[derive(Clone, Copy)]
struct TenantMeters {
    jobs: &'static Counter,
    bins: &'static Counter,
    flops: &'static Counter,
    latency: &'static HistogramMetric,
    queue_wait: &'static HistogramMetric,
}

impl TenantMeters {
    fn resolve(tenant: &str) -> Self {
        let name = |leaf: &str| format!("service.tenant.{tenant}.{leaf}");
        TenantMeters {
            jobs: counter(&name("jobs")),
            bins: counter(&name("bins")),
            flops: counter(&name("flops")),
            latency: histogram(&name("latency_ns")),
            queue_wait: histogram(&name("queue_wait_ns")),
        }
    }
}

/// The lifecycle of one sweep within its job. Claims transition
/// `Open → {Done, Closed}` exactly once, which is what makes watchdog
/// requeues safe: the second execution of a duplicated sweep finds the
/// slot taken and does no accounting.
enum Slot {
    /// Not yet finished by anyone.
    Open,
    /// Completed with a measurement bin (kept for checkpointing).
    Done(Vec<f64>),
    /// Claimed without a bin: failed, cancelled, or drained.
    Closed,
}

/// The shared state of one running job.
struct JobState {
    id: u64,
    spec: JobSpec,
    builder: BlockBuilder,
    /// Per-sweep HS fields, deterministic from `(seed, sweep)`; kept for
    /// the whole job so watchdog requeues can re-run any sweep.
    fields: Vec<HsField>,
    /// One claim slot per sweep (see [`Slot`]).
    slots: Mutex<Vec<Slot>>,
    /// Sweeps currently being executed: `sweep → start time`, the
    /// heartbeat the stall watchdog reads.
    inflight: Mutex<HashMap<usize, Instant>>,
    /// The cluster size the job currently runs with; only ever shrinks
    /// (per-job rung of the recovery ladder).
    c_now: AtomicUsize,
    degradations: AtomicU32,
    /// Full-task retry attempts consumed (after ladder exhaustion).
    retries: AtomicU32,
    /// Sweeps not yet claimed (completed, failed, or cancelled).
    remaining: AtomicUsize,
    completed_bins: AtomicUsize,
    failed: AtomicBool,
    cancelled: AtomicBool,
    /// Wall-clock instant the watchdog cancels the job at, from
    /// [`JobSpec::deadline_ms`] (re-anchored at recovery).
    deadline: Option<Instant>,
    submitted: Instant,
    first_start: Mutex<Option<Instant>>,
    tx: Sender<JobEvent>,
}

/// The boxed per-sweep measurement hook shared by all workers.
type BoxedMeasure = Box<dyn Fn(&SelectedInverse) -> Vec<f64> + Send + Sync>;

/// One schedulable unit: a single sweep of a job (the field lives in the
/// job so the watchdog can reissue the task).
struct SweepTask {
    job: Arc<JobState>,
    sweep: usize,
}

struct Inner {
    cfg: ServiceConfig,
    queues: StealQueues<SweepTask>,
    /// Sweeps queued or in flight, guarded for the backpressure condvar.
    pending: Mutex<usize>,
    space: Condvar,
    next_job: AtomicU64,
    accepting: AtomicBool,
    /// Graceful-drain mode: workers discard acquired sweeps *without
    /// claiming them*, so they resume after restart.
    draining: AtomicBool,
    /// Simulated-crash mode (kill points, [`Service::kill`]): durable
    /// writes become no-ops, freezing the on-disk state at the kill
    /// instant.
    crashed: AtomicBool,
    watchdog_stop: AtomicBool,
    /// Live (non-terminal) jobs, for the watchdog and `cancel`.
    jobs: Mutex<HashMap<u64, Arc<JobState>>>,
    durability: Option<Durability>,
    measure: BoxedMeasure,
    tenants: Mutex<HashMap<String, TenantMeters>>,
}

impl Inner {
    /// The durable-state handle, unless durability is off or a (real or
    /// simulated) crash froze it.
    fn durable(&self) -> Option<&Durability> {
        if self.crashed.load(Ordering::Acquire) {
            None
        } else {
            self.durability.as_ref()
        }
    }
}

/// A running simulation service: worker threads, a supervision watchdog,
/// and the shared queue.
///
/// Create with [`Service::start`] (or [`Service::recover`] to resume a
/// crashed instance from its state directory), clone submit handles with
/// [`Service::handle`], and stop with [`Service::shutdown`] — which
/// finishes already-admitted work — or [`Service::drain`] — which
/// checkpoints it for a later [`Service::recover`] instead.
pub struct Service {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

/// A cloneable submission handle to a [`Service`].
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<Inner>,
}

impl Service {
    /// Starts the service with [`fsi_selinv::trace_measure`] as the
    /// per-sweep measurement hook.
    pub fn start(cfg: ServiceConfig) -> Self {
        Service::start_with(cfg, trace_measure)
    }

    /// Starts the service with a custom measurement hook applied to
    /// every completed selected inversion.
    ///
    /// # Panics
    /// When the configured state directory cannot be created or its
    /// journal cannot be opened — a durable service that cannot persist
    /// is a misconfiguration, not a degraded mode.
    pub fn start_with(
        cfg: ServiceConfig,
        measure: impl Fn(&SelectedInverse) -> Vec<f64> + Send + Sync + 'static,
    ) -> Self {
        assert!(cfg.workers > 0 && cfg.threads_per_worker > 0);
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        flight::install_panic_hook();
        let durability = cfg.state_dir.as_deref().map(|dir| {
            Durability::open(dir).unwrap_or_else(|e| panic!("state dir {dir:?} unusable: {e}"))
        });
        let inner = Arc::new(Inner {
            queues: StealQueues::new(cfg.workers),
            cfg,
            pending: Mutex::new(0),
            space: Condvar::new(),
            next_job: AtomicU64::new(0),
            accepting: AtomicBool::new(true),
            draining: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            watchdog_stop: AtomicBool::new(false),
            jobs: Mutex::new(HashMap::new()),
            durability,
            measure: Box::new(measure),
            tenants: Mutex::new(HashMap::new()),
        });
        let threads = (0..inner.cfg.workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("fsi-service-{w}"))
                    .spawn(move || worker_loop(&inner, w))
                    .expect("spawn service worker")
            })
            .collect();
        let watchdog = {
            let inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("fsi-service-watchdog".into())
                    .spawn(move || watchdog_loop(&inner))
                    .expect("spawn service watchdog"),
            )
        };
        Service {
            inner,
            threads,
            watchdog,
        }
    }

    /// Restarts a durable service from its state directory: replays the
    /// write-ahead journal, re-admits every job that was submitted but
    /// not terminal, resumes each from its latest good checkpoint
    /// (previous generation on a torn current one; from scratch when
    /// none survives), and returns a fresh [`JobHandle`] per surviving
    /// job, in original submission order. Checkpointed bins are
    /// re-emitted on the new handles, so a `wait()` on a recovered
    /// handle assembles the same full bin set — bitwise — as an
    /// uninterrupted run would have.
    ///
    /// # Errors
    /// `InvalidInput` when `cfg.state_dir` is `None`.
    pub fn recover(cfg: ServiceConfig) -> std::io::Result<(Self, Vec<JobHandle>)> {
        Service::recover_with(cfg, trace_measure)
    }

    /// [`Service::recover`] with a custom measurement hook. The hook
    /// must be the same pure function the crashed instance ran, or the
    /// bitwise-resume guarantee is void.
    ///
    /// # Errors
    /// `InvalidInput` when `cfg.state_dir` is `None`.
    pub fn recover_with(
        cfg: ServiceConfig,
        measure: impl Fn(&SelectedInverse) -> Vec<f64> + Send + Sync + 'static,
    ) -> std::io::Result<(Self, Vec<JobHandle>)> {
        if cfg.state_dir.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "Service::recover needs cfg.state_dir",
            ));
        }
        let service = Service::start_with(cfg, measure);
        let replay = service
            .inner
            .durability
            .as_ref()
            .expect("state_dir implies durability")
            .replay();
        service
            .inner
            .next_job
            .store(replay.next_id, Ordering::Release);
        let handles = replay
            .jobs
            .into_iter()
            .map(|(id, spec)| enqueue_recovered(&service.inner, id, spec))
            .collect();
        Ok((service, handles))
    }

    /// A cloneable handle for submitting and supervising jobs.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Stops accepting new jobs, finishes everything already admitted,
    /// and joins the workers.
    pub fn shutdown(self) {
        self.stop(false, false);
    }

    /// Graceful drain: stops accepting, **discards** queued sweeps
    /// without claiming them, lets in-flight sweeps finish, then writes
    /// a final checkpoint for every live job. A later
    /// [`Service::recover`] on the same state directory resumes those
    /// jobs where they left off.
    pub fn drain(self) {
        self.stop(true, false);
    }

    /// Crash simulation: like [`Service::drain`] but freezes durable
    /// state first — nothing written after the call, no final
    /// checkpoints. The on-disk state is whatever the last completed
    /// journal append / checkpoint write left, exactly as a `SIGKILL`
    /// would leave it. Pair with [`Service::recover`] in crash drills.
    pub fn kill(self) {
        self.stop(true, true);
    }

    fn stop(mut self, drain: bool, crash: bool) {
        if crash {
            self.inner.crashed.store(true, Ordering::Release);
        }
        self.inner.accepting.store(false, Ordering::Release);
        if drain {
            self.inner.draining.store(true, Ordering::Release);
        }
        self.inner.queues.close();
        // Wake any submit_blocking waiters so they observe the refusal.
        self.inner.space.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.inner.watchdog_stop.store(true, Ordering::Release);
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        if drain && !crash {
            // Final checkpoint of every live job, now that no worker
            // races the slot table.
            let jobs: Vec<Arc<JobState>> =
                self.inner.jobs.lock().unwrap().values().cloned().collect();
            for job in jobs {
                checkpoint_job(&self.inner, &job);
            }
        }
    }
}

impl ServiceHandle {
    /// Submits a job, rejecting immediately when admission fails.
    ///
    /// On success the job's sweeps are spread over the worker deques
    /// (whence idle workers steal) and a [`JobHandle`] streams events
    /// back; [`JobHandle::wait`] assembles the final report.
    ///
    /// ```
    /// use fsi_service::{AdmitError, JobSpec, Service, ServiceConfig};
    ///
    /// let service = Service::start(ServiceConfig::small(2));
    /// let handle = service.handle();
    ///
    /// let job = handle.submit(JobSpec::new("qmc", 2, 8, 4, 3, 11)).unwrap();
    /// let outcome = job.wait();
    /// assert_eq!(outcome.bins.len(), 3);
    ///
    /// // Rejections carry their reason:
    /// let huge = JobSpec::new("qmc", 2, 8, 4, 1_000_000, 0);
    /// assert!(matches!(
    ///     handle.submit(huge),
    ///     Err(AdmitError::QueueFull { .. })
    /// ));
    /// service.shutdown();
    /// ```
    ///
    /// # Errors
    /// [`AdmitError`] names the reason: malformed spec, memory budget,
    /// full queue, or shutdown.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, AdmitError> {
        self.admit(spec, false)
    }

    /// Like [`ServiceHandle::submit`], but blocks while the queue is
    /// full instead of rejecting (backpressure). Structural and
    /// memory-budget rejections still return immediately.
    ///
    /// # Errors
    /// [`AdmitError`] for non-queue reasons, or
    /// [`AdmitError::ShuttingDown`] if the service stops while waiting.
    pub fn submit_blocking(&self, spec: JobSpec) -> Result<JobHandle, AdmitError> {
        self.admit(spec, true)
    }

    /// Sweeps currently queued or in flight (racy snapshot).
    pub fn pending_sweeps(&self) -> usize {
        *self.inner.pending.lock().unwrap()
    }

    /// Cancels a live job: its unprocessed sweeps are drained without
    /// running, a [`JobEvent::Cancelled`] precedes the final summary,
    /// and the journal records the job as terminal. Returns `false`
    /// when the job is unknown or already terminal. Sweeps already in
    /// flight run to completion but produce no further bins.
    pub fn cancel(&self, job_id: u64) -> bool {
        let job = self.inner.jobs.lock().unwrap().get(&job_id).cloned();
        job.is_some_and(|job| cancel_job(&job, "cancel"))
    }

    fn admit(&self, spec: JobSpec, block: bool) -> Result<JobHandle, AdmitError> {
        let inner = &*self.inner;
        if !inner.accepting.load(Ordering::Acquire) {
            return Err(AdmitError::ShuttingDown);
        }
        if let Err(why) = spec.validate() {
            REJECTED.inc();
            return Err(AdmitError::InvalidSpec(why));
        }
        // Fig. 9 admission: would `workers` concurrent inversions of
        // this shape fit the node? A job too big for the pool never
        // clears on its own, so this rejects even in blocking mode.
        let per_worker = spec.per_worker_bytes();
        let usable = inner.cfg.memory.node_bytes - inner.cfg.memory.reserved_bytes;
        if !inner.cfg.memory.feasible(inner.cfg.workers, per_worker) {
            REJECTED.inc();
            return Err(AdmitError::MemoryBudget {
                per_worker_bytes: per_worker,
                budget_bytes: usable / inner.cfg.workers as u64,
            });
        }
        // Bounded-queue admission over the pending-sweep count.
        {
            let mut pending = inner.pending.lock().unwrap();
            loop {
                if !inner.accepting.load(Ordering::Acquire) {
                    return Err(AdmitError::ShuttingDown);
                }
                if *pending + spec.sweeps <= inner.cfg.queue_capacity {
                    *pending += spec.sweeps;
                    QUEUE_DEPTH.set(*pending as f64);
                    break;
                }
                if !block {
                    REJECTED.inc();
                    return Err(AdmitError::QueueFull {
                        capacity: inner.cfg.queue_capacity,
                        pending: *pending,
                        requested: spec.sweeps,
                    });
                }
                pending = inner.space.wait(pending).unwrap();
            }
        }
        Ok(self.enqueue(spec))
    }

    /// Builds the job state, journals the admission (write-ahead), and
    /// spreads the sweeps over the deques.
    fn enqueue(&self, spec: JobSpec) -> JobHandle {
        let inner = &*self.inner;
        let id = inner.next_job.fetch_add(1, Ordering::AcqRel);
        let (job, rx) = build_job(id, spec, None);
        inner.jobs.lock().unwrap().insert(id, Arc::clone(&job));
        SUBMITTED.inc();
        tenant_meters(inner, &job.spec.tenant).jobs.inc();
        // Write-ahead: the journal knows the job before any sweep can
        // run (or crash) — recovery re-admits exactly what was accepted.
        if let Some(d) = inner.durable() {
            d.record_submitted(id, &job.spec);
        }
        #[cfg(feature = "fault-inject")]
        if crate::killpoint::fire(crate::killpoint::KillSite::AfterJournalAppend) {
            inner.crashed.store(true, Ordering::Release);
        }
        push_sweeps(inner, &job, (0..job.spec.sweeps).collect());
        JobHandle { id, rx }
    }
}

/// Builds the shared job state and the submitter's event receiver.
/// `resume` carries the checkpointed ladder position and completed bins
/// when recovering.
fn build_job(
    id: u64,
    spec: JobSpec,
    resume: Option<JobCheckpoint>,
) -> (Arc<JobState>, crossbeam_channel::Receiver<JobEvent>) {
    let (tx, rx) = unbounded();
    let builder = BlockBuilder::new(
        SquareLattice::square(spec.side),
        HubbardParams::paper_validation(spec.l),
    );
    let fields = generate_fields(spec.l, spec.n_sites(), spec.sweeps, spec.seed);
    let mut slots: Vec<Slot> = (0..spec.sweeps).map(|_| Slot::Open).collect();
    let (c_now, degradations, retries, mut done) = match resume {
        Some(ck) => (
            ck.c_now.min(spec.c).max(1),
            ck.degradations,
            ck.retries,
            ck.bins,
        ),
        None => (spec.c, 0, 0, Vec::new()),
    };
    done.retain(|(sweep, _)| *sweep < spec.sweeps);
    done.sort_by_key(|(sweep, _)| *sweep);
    done.dedup_by_key(|(sweep, _)| *sweep);
    let completed = done.len();
    let remaining = spec.sweeps - completed;
    for (sweep, quantities) in &done {
        slots[*sweep] = Slot::Done(quantities.clone());
    }
    let deadline = spec
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let job = Arc::new(JobState {
        id,
        fields,
        slots: Mutex::new(slots),
        inflight: Mutex::new(HashMap::new()),
        c_now: AtomicUsize::new(c_now),
        degradations: AtomicU32::new(degradations),
        retries: AtomicU32::new(retries),
        remaining: AtomicUsize::new(remaining),
        completed_bins: AtomicUsize::new(completed),
        failed: AtomicBool::new(false),
        cancelled: AtomicBool::new(false),
        deadline,
        submitted: Instant::now(),
        first_start: Mutex::new(None),
        tx,
        builder,
        spec,
    });
    // Re-emit checkpointed bins so a recovered handle's `wait()` sees
    // the same full set as an uninterrupted run.
    for (sweep, quantities) in done {
        let _ = job.tx.send(JobEvent::Bin { sweep, quantities });
    }
    (job, rx)
}

/// Enqueues the not-yet-done sweeps of `job` (round-robin starting at
/// the job id so tenants land on different home deques) after charging
/// them to the pending count.
fn push_sweeps(inner: &Inner, job: &Arc<JobState>, sweeps: Vec<usize>) {
    let workers = inner.cfg.workers;
    for sweep in sweeps {
        let task = SweepTask {
            job: Arc::clone(job),
            sweep,
        };
        inner.queues.push((job.id as usize + sweep) % workers, task);
    }
}

/// Re-admits one journal-replayed job: loads its checkpoint (previous
/// generation on a torn current; from scratch when none survives),
/// pre-fills the done slots, and enqueues only the open sweeps.
fn enqueue_recovered(inner: &Arc<Inner>, id: u64, spec: JobSpec) -> JobHandle {
    let resume = inner
        .durability
        .as_ref()
        .and_then(|d| d.load_checkpoint(id))
        .map(|(ck, _generation)| ck);
    let (job, rx) = build_job(id, spec, resume);
    inner.jobs.lock().unwrap().insert(id, Arc::clone(&job));
    RECOVERED.inc();
    flight::note("service.job.recovered");
    tenant_meters(inner, &job.spec.tenant).jobs.inc();
    let open: Vec<usize> = {
        let slots = job.slots.lock().unwrap();
        (0..job.spec.sweeps)
            .filter(|&s| matches!(slots[s], Slot::Open))
            .collect()
    };
    if open.is_empty() {
        // Crashed between the last bin and the terminal record: nothing
        // to run, finish immediately.
        finish_job(inner, &job);
    } else {
        {
            let mut pending = inner.pending.lock().unwrap();
            *pending += open.len();
            QUEUE_DEPTH.set(*pending as f64);
        }
        push_sweeps(inner, &job, open);
    }
    JobHandle { id, rx }
}

/// Resolves (and caches) the metric handles for a tenant tag.
fn tenant_meters(inner: &Inner, tenant: &str) -> TenantMeters {
    let mut map = inner.tenants.lock().unwrap();
    *map.entry(tenant.to_string())
        .or_insert_with(|| TenantMeters::resolve(tenant))
}

/// Marks a live job cancelled (idempotent) and tells the submitter.
/// Workers drain its remaining sweeps without running them.
fn cancel_job(job: &JobState, reason: &str) -> bool {
    if job.cancelled.swap(true, Ordering::AcqRel) {
        return false;
    }
    flight::note("service.job.cancelled");
    let _ = job.tx.send(JobEvent::Cancelled {
        reason: reason.to_string(),
    });
    true
}

/// Writes (or, under an armed `MidCheckpoint` kill, tears) the job's
/// durable checkpoint from its current slot table.
fn checkpoint_job(inner: &Inner, job: &JobState) {
    let Some(d) = inner.durable() else { return };
    let bins: Vec<(usize, Vec<f64>)> = {
        let slots = job.slots.lock().unwrap();
        slots
            .iter()
            .enumerate()
            .filter_map(|(sweep, slot)| match slot {
                Slot::Done(q) => Some((sweep, q.clone())),
                _ => None,
            })
            .collect()
    };
    let state = JobCheckpoint {
        c_now: job.c_now.load(Ordering::Acquire),
        degradations: job.degradations.load(Ordering::Acquire),
        retries: job.retries.load(Ordering::Acquire),
        bins,
    };
    #[cfg(feature = "fault-inject")]
    if crate::killpoint::fire(crate::killpoint::KillSite::MidCheckpoint) {
        d.write_torn_checkpoint(job.id, &state);
        inner.crashed.store(true, Ordering::Release);
        return;
    }
    d.write_checkpoint(job.id, &state);
}

/// The body of one worker thread: acquire (own deque, then steal), run
/// the sweep through the resumable task pipeline, account, repeat.
fn worker_loop(inner: &Inner, w: usize) {
    let pool = ThreadPool::new(inner.cfg.threads_per_worker);
    let par = if inner.cfg.threads_per_worker == 1 {
        Parallelism::Serial
    } else {
        Parallelism::OpenMp(&pool)
    };
    while let Some(task) = inner.queues.acquire(w) {
        run_sweep(inner, par, task);
    }
}

/// The supervision loop: cancels jobs past their deadline and requeues
/// sweeps whose in-flight heartbeat has gone stale.
fn watchdog_loop(inner: &Inner) {
    let poll = Duration::from_millis(inner.cfg.watchdog_poll_ms.max(1));
    let stall = Duration::from_millis(inner.cfg.stall_timeout_ms.max(1));
    while !inner.watchdog_stop.load(Ordering::Acquire) {
        std::thread::sleep(poll);
        let jobs: Vec<Arc<JobState>> = inner.jobs.lock().unwrap().values().cloned().collect();
        let now = Instant::now();
        for job in jobs {
            if let Some(deadline) = job.deadline {
                if now >= deadline && !job.cancelled.load(Ordering::Acquire) {
                    cancel_job(&job, "deadline");
                }
            }
            // Stall detection: a sweep in flight past the timeout is
            // presumed wedged. Drop its heartbeat entry (so it is not
            // re-detected) and reissue the sweep; the idempotent claim
            // makes the duplicate harmless if the original ever wakes.
            let stalled: Vec<usize> = {
                let mut inflight = job.inflight.lock().unwrap();
                let expired: Vec<usize> = inflight
                    .iter()
                    .filter(|(_, started)| now.duration_since(**started) > stall)
                    .map(|(sweep, _)| *sweep)
                    .collect();
                for sweep in &expired {
                    inflight.remove(sweep);
                }
                expired
            };
            for sweep in stalled {
                let open = matches!(job.slots.lock().unwrap()[sweep], Slot::Open);
                if !open || inner.queues.is_closed() {
                    continue;
                }
                STALLS.inc();
                flight::note("service.watchdog.stall");
                push_sweeps(inner, &job, vec![sweep]);
            }
        }
    }
}

/// Runs one sweep to completion — with per-job degradation rungs and
/// bounded full-task retries — then claims its slot and does all
/// completion accounting. Duplicate executions (watchdog requeues) find
/// the slot claimed and account nothing.
fn run_sweep(inner: &Inner, par: Parallelism<'_>, task: SweepTask) {
    let SweepTask { job, sweep } = task;
    if inner.draining.load(Ordering::Acquire) {
        // Graceful drain discards without claiming: the sweep stays
        // open in the final checkpoint and reruns after recovery.
        return;
    }
    // Queue wait is measured at the first sweep of the job to start.
    {
        let mut first = job.first_start.lock().unwrap();
        if first.is_none() {
            *first = Some(Instant::now());
        }
    }
    job.inflight.lock().unwrap().insert(sweep, Instant::now());
    #[cfg(feature = "fault-inject")]
    crate::killpoint::maybe_stall();

    let mut outcome: Option<Vec<f64>> = None;
    if !job.failed.load(Ordering::Acquire) && !job.cancelled.load(Ordering::Acquire) {
        let measure: &fsi_selinv::multi::MeasureFn = &*inner.measure;
        'attempt: loop {
            let mut mt = MatrixTask::new(
                sweep,
                job.fields[sweep].clone(),
                job.spec.c,
                job.spec.pattern,
                job.spec.seed,
            );
            // Join the job's current ladder rung: degradation is per
            // *job*, so every attempt starts at the already-shrunk c.
            while mt.c() > job.c_now.load(Ordering::Acquire) {
                mt.degrade();
            }
            loop {
                match mt.run(par, &job.builder, measure) {
                    Ok(()) => {
                        let (_, quantities) = mt.into_quantities();
                        outcome = Some(quantities);
                        break 'attempt;
                    }
                    Err(error) => {
                        let rungs = job.degradations.load(Ordering::Acquire);
                        if rungs < inner.cfg.max_degradations && mt.degrade() {
                            // Scope the §II-C "shrink c" rung to this job.
                            let rung = job.degradations.fetch_add(1, Ordering::AcqRel) + 1;
                            job.c_now.fetch_min(mt.c(), Ordering::AcqRel);
                            DEGRADED.inc();
                            flight::note_recovery("service.shrink_c", "service");
                            let _ = job.tx.send(JobEvent::Degraded {
                                sweep,
                                c: mt.c(),
                                rung,
                            });
                            continue;
                        }
                        // Ladder exhausted: bounded retry with backoff —
                        // a fresh task at the job's current c — before
                        // the job is declared failed.
                        let attempts = job.retries.load(Ordering::Acquire);
                        if attempts < inner.cfg.max_retries {
                            job.retries.fetch_add(1, Ordering::AcqRel);
                            RETRIES.inc();
                            flight::note("service.job.retry");
                            std::thread::sleep(Duration::from_millis(
                                inner
                                    .cfg
                                    .retry_backoff_ms
                                    .saturating_mul(attempts as u64 + 1),
                            ));
                            continue 'attempt;
                        }
                        job.failed.store(true, Ordering::Release);
                        flight::note("service.job.failed");
                        let _ = job.tx.send(JobEvent::Failed { sweep, error });
                        break 'attempt;
                    }
                }
            }
        }
    }
    job.inflight.lock().unwrap().remove(&sweep);

    // Claim the slot: exactly one execution of this sweep accounts.
    let give_bin = outcome.is_some() && !job.cancelled.load(Ordering::Acquire);
    let claimed = {
        let mut slots = job.slots.lock().unwrap();
        if matches!(slots[sweep], Slot::Open) {
            slots[sweep] = match (&outcome, give_bin) {
                (Some(q), true) => Slot::Done(q.clone()),
                _ => Slot::Closed,
            };
            true
        } else {
            false
        }
    };
    if !claimed {
        return; // duplicate from a watchdog requeue — already accounted
    }
    if give_bin {
        let bins_done = job.completed_bins.fetch_add(1, Ordering::AcqRel) + 1;
        SWEEPS_DONE.inc();
        let meters = tenant_meters(inner, &job.spec.tenant);
        meters.bins.inc();
        meters.flops.add(job.spec.flop_estimate());
        let _ = job.tx.send(JobEvent::Bin {
            sweep,
            quantities: outcome.expect("give_bin implies outcome"),
        });
        if bins_done.is_multiple_of(inner.cfg.checkpoint_every.max(1)) {
            checkpoint_job(inner, &job);
        }
    }
    // Completion accounting runs for processed *and* fast-drained
    // (failed/cancelled) sweeps.
    {
        let mut pending = inner.pending.lock().unwrap();
        *pending -= 1;
        QUEUE_DEPTH.set(*pending as f64);
        inner.space.notify_all();
    }
    if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        finish_job(inner, &job);
    }
}

/// Journals the terminal record (write-ahead of the `Finished` event),
/// emits the summary, and retires the job's metrics and checkpoints.
fn finish_job(inner: &Inner, job: &JobState) {
    inner.jobs.lock().unwrap().remove(&job.id);
    let failed = job.failed.load(Ordering::Acquire);
    let cancelled = job.cancelled.load(Ordering::Acquire);
    let latency_ns = job.submitted.elapsed().as_nanos() as u64;
    let queue_wait_ns = job
        .first_start
        .lock()
        .unwrap()
        .map(|t| (t - job.submitted).as_nanos() as u64)
        .unwrap_or(latency_ns);
    if failed {
        FAILED.inc();
    } else if cancelled {
        CANCELLED.inc();
    } else {
        COMPLETED.inc();
    }
    LATENCY.record(latency_ns);
    QUEUE_WAIT.record(queue_wait_ns);
    let completed_bins = job.completed_bins.load(Ordering::Acquire);
    JOB_FLOPS.record(job.spec.flop_estimate() * completed_bins as u64);
    let meters = tenant_meters(inner, &job.spec.tenant);
    meters.latency.record(latency_ns);
    meters.queue_wait.record(queue_wait_ns);
    if let Some(d) = inner.durable() {
        d.record_terminal(job.id, cancelled);
        d.delete_checkpoint(job.id);
    }
    let _ = job.tx.send(JobEvent::Finished(JobSummary {
        job_id: job.id,
        tenant: job.spec.tenant.clone(),
        sweeps: job.spec.sweeps,
        completed_bins,
        degradations: job.degradations.load(Ordering::Acquire),
        c_final: job.c_now.load(Ordering::Acquire),
        failed,
        cancelled,
        retries: job.retries.load(Ordering::Acquire),
        queue_wait_ns,
        latency_ns,
    }));
}
