//! Admission-control errors: every rejected submission names its reason.

use std::fmt;

/// Why a [`crate::JobSpec`] was refused at the service door.
///
/// Admission failures are *control-flow*, not numerical faults: the
/// service has not touched the job's matrices yet. Callers can react
/// per variant — retry later on [`AdmitError::QueueFull`], resubmit
/// smaller on [`AdmitError::MemoryBudget`], fix the spec on
/// [`AdmitError::InvalidSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The bounded sweep queue cannot take the job without exceeding
    /// its capacity. Use [`crate::ServiceHandle::submit_blocking`] to
    /// wait for space instead.
    QueueFull {
        /// Total queue capacity, in sweeps.
        capacity: usize,
        /// Sweeps currently queued or in flight.
        pending: usize,
        /// Sweeps the rejected job would have added.
        requested: usize,
    },
    /// The job's per-worker memory footprint exceeds the node budget of
    /// the service's [`fsi_selinv::MemoryModel`] — the admission-time
    /// version of the paper's Fig. 9 OOM analysis.
    MemoryBudget {
        /// Bytes one worker would need for this job's inversions.
        per_worker_bytes: u64,
        /// Usable node bytes divided over the worker count.
        budget_bytes: u64,
    },
    /// The spec is structurally invalid (zero dimensions, `c ∤ L`, …).
    InvalidSpec(
        /// Human-readable description of the violated constraint.
        String,
    ),
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::QueueFull {
                capacity,
                pending,
                requested,
            } => write!(
                f,
                "queue full: {pending} sweeps pending + {requested} requested > capacity {capacity}"
            ),
            AdmitError::MemoryBudget {
                per_worker_bytes,
                budget_bytes,
            } => write!(
                f,
                "memory budget: job needs {per_worker_bytes} B per worker, budget is {budget_bytes} B"
            ),
            AdmitError::InvalidSpec(why) => write!(f, "invalid job spec: {why}"),
            AdmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for AdmitError {}
