//! Deterministic crash injection at the service's durability boundaries.
//!
//! Compiled only under the `fault-inject` feature — production builds
//! carry zero injection code. The model mirrors
//! `fsi_runtime::health::inject`: one global *plan* names a
//! [`KillSite`] with a fire budget, and the durability layer calls
//! [`fire`] at each boundary; when the site matches, the "crash" takes
//! effect.
//!
//! A crash here is simulated, not literal: the process stays alive (so
//! the drill can assert on it), but the service's **durable state is
//! frozen at the kill instant** — every journal append and checkpoint
//! write after a kill point fires becomes a no-op, exactly the on-disk
//! state a real `SIGKILL` at that instant would leave. The drill then
//! discards the doomed service and recovers a fresh one from the state
//! directory.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Where in the durability protocol the simulated crash lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillSite {
    /// Immediately after the job's write-ahead journal record is
    /// appended, before any checkpoint exists: recovery must replay the
    /// journal and rerun the job from scratch.
    AfterJournalAppend,
    /// In the middle of a per-job checkpoint write: the current
    /// generation is left **torn** (a truncated envelope written in
    /// place, past the tmp+rename protection), so recovery must detect
    /// the corruption and fall back to the previous generation.
    MidCheckpoint,
    /// Not a crash: parks the worker that picks up the next sweep until
    /// [`release_stall`], simulating a wedged thread for the watchdog to
    /// detect and requeue around.
    WorkerStall,
}

struct Plan {
    site: KillSite,
    skip_left: u32,
    fires_left: u32,
    fired: u64,
}

static PLAN: Mutex<Option<Plan>> = Mutex::new(None);

fn plan() -> MutexGuard<'static, Option<Plan>> {
    PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms a single-fire kill at `site` (replacing any previous plan).
pub fn arm(site: KillSite) {
    arm_times(site, 1);
}

/// Arms a kill that fires on the first `fires` matching boundaries.
pub fn arm_times(site: KillSite, fires: u32) {
    arm_skip(site, 0, fires);
}

/// Arms a kill that lets the first `skip` matching boundaries pass
/// untouched, then fires on the next `fires` — how a drill crashes at
/// the *k*-th checkpoint rather than the first.
pub fn arm_skip(site: KillSite, skip: u32, fires: u32) {
    *plan() = Some(Plan {
        site,
        skip_left: skip,
        fires_left: fires,
        fired: 0,
    });
}

/// Disarms the current plan and returns how many times it fired.
pub fn disarm() -> u64 {
    plan().take().map(|p| p.fired).unwrap_or(0)
}

/// How many times the current plan has fired so far.
pub fn fired() -> u64 {
    plan().as_ref().map(|p| p.fired).unwrap_or(0)
}

/// Boundary hook: returns `true` when the armed plan matches `site` and
/// has budget left (consuming one fire). The caller applies the crash
/// effect — freezing durable state, tearing the in-flight write.
pub(crate) fn fire(site: KillSite) -> bool {
    let mut guard = plan();
    let Some(p) = guard.as_mut() else {
        return false;
    };
    if p.fires_left == 0 || p.site != site {
        return false;
    }
    if p.skip_left > 0 {
        p.skip_left -= 1;
        return false;
    }
    p.fires_left -= 1;
    p.fired += 1;
    true
}

/// The stall gate: `true` while a stalled worker must stay parked.
static STALL: Mutex<bool> = Mutex::new(false);
static STALL_CV: Condvar = Condvar::new();

/// Worker-side hook: when a [`KillSite::WorkerStall`] plan fires, parks
/// the calling thread until [`release_stall`].
pub(crate) fn maybe_stall() {
    if !fire(KillSite::WorkerStall) {
        return;
    }
    let mut parked = STALL.lock().unwrap_or_else(|e| e.into_inner());
    *parked = true;
    while *parked {
        parked = STALL_CV.wait(parked).unwrap_or_else(|e| e.into_inner());
    }
}

/// Releases every worker parked by a [`KillSite::WorkerStall`] fire.
pub fn release_stall() {
    let mut parked = STALL.lock().unwrap_or_else(|e| e.into_inner());
    *parked = false;
    STALL_CV.notify_all();
}

/// Serializes tests/drills that arm the global plan.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_matches_site_and_budget() {
        let _l = test_lock();
        arm_times(KillSite::MidCheckpoint, 2);
        assert!(!fire(KillSite::AfterJournalAppend), "site must match");
        assert!(fire(KillSite::MidCheckpoint));
        assert!(fire(KillSite::MidCheckpoint));
        assert!(!fire(KillSite::MidCheckpoint), "budget caps the fires");
        assert_eq!(disarm(), 2);
        assert!(!fire(KillSite::MidCheckpoint), "disarmed plans never fire");
    }

    #[test]
    fn skip_lets_early_boundaries_pass() {
        let _l = test_lock();
        arm_skip(KillSite::AfterJournalAppend, 2, 1);
        assert!(!fire(KillSite::AfterJournalAppend));
        assert!(!fire(KillSite::AfterJournalAppend));
        assert!(fire(KillSite::AfterJournalAppend), "fires after the skips");
        assert!(!fire(KillSite::AfterJournalAppend));
        assert_eq!(disarm(), 1);
    }
}
