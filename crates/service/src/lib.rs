//! # fsi-service — Green's-function-as-a-service
//!
//! The paper's Alg. 3 runs one *batch* of independent selected inversions
//! and exits. This crate promotes that driver to a long-running,
//! multi-tenant **simulation service**: callers submit [`JobSpec`]s —
//! `(N, L, c, pattern, sweeps, seed)` — to a bounded queue, a
//! work-stealing scheduler ([`fsi_runtime::StealQueues`]) spreads the
//! per-sweep selected inversions over a pool of workers, and measurement
//! bins stream back to the submitter over a channel as they complete.
//!
//! Three service-tier concerns sit on top of the numerical pipeline:
//!
//! * **Admission control** ([`AdmitError`]): a submission is rejected
//!   with a reason — never silently dropped — when the queue is full,
//!   when the job's per-worker footprint would blow the
//!   [`fsi_selinv::MemoryModel`] budget (the paper's Fig. 9 OOM
//!   analysis, applied at admission time), or when the spec is
//!   malformed. [`ServiceHandle::submit_blocking`] converts queue-full
//!   into backpressure instead.
//! * **Per-tenant metering**: every job carries a tenant tag; completed
//!   bins, estimated flops, and job latency/queue-wait histograms are
//!   recorded both under the global `service.job.*` names and under
//!   `service.tenant.<tenant>.*`, riding the always-on metrics registry.
//! * **Per-job degradation**: a job that trips the health layer shrinks
//!   its *own* cluster size `c` via the §II-C recovery ladder
//!   ([`fsi_selinv::MatrixTask::degrade`]) and retries — the pool is
//!   never poisoned, and neighbor jobs' outputs are bitwise unaffected.
//! * **Durability** (when a state directory is configured, typically
//!   from `$FSI_STATE_DIR`): every admission is journaled write-ahead
//!   and every job checkpoints its completed bins periodically, so
//!   [`Service::recover`] can replay a crashed instance's journal,
//!   re-admit the surviving jobs, and resume each from its last good
//!   checkpoint — with bins bitwise-identical to an uninterrupted run.
//! * **Supervision**: per-job deadlines and [`ServiceHandle::cancel`], a
//!   watchdog that requeues sweeps whose in-flight heartbeat goes stale,
//!   bounded retry-with-backoff after the recovery ladder is exhausted,
//!   and a graceful [`Service::drain`] that checkpoints in-flight work
//!   for a later restart.
//!
//! Results are deterministic: each sweep's field and shift depend only
//! on `(seed, sweep)`, so a job returns bitwise-identical bins no matter
//! how many workers run it, how the stealer migrates its sweeps, or what
//! other tenants share the pool.
//!
//! ```
//! use fsi_service::{JobSpec, Service, ServiceConfig};
//!
//! let service = Service::start(ServiceConfig::small(2));
//! let handle = service.handle();
//! let job = handle
//!     .submit(JobSpec::new("demo", 2, 8, 4, 2, 7))
//!     .expect("admitted");
//! let outcome = job.wait();
//! assert_eq!(outcome.bins.len(), 2);
//! assert!(!outcome.summary.failed);
//! service.shutdown();
//! ```

#![deny(missing_docs)]

mod admission;
mod durability;
mod job;
#[cfg(feature = "fault-inject")]
pub mod killpoint;
mod server;

pub use admission::AdmitError;
pub use job::{JobEvent, JobHandle, JobOutcome, JobSpec, JobSummary};
pub use server::{Service, ServiceConfig, ServiceHandle};
