//! Criterion benchmarks of the FSI pipeline stages and the baselines —
//! one bench per row of the paper's algorithmic comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use fsi_bench::hubbard_matrix;
use fsi_pcyclic::Spin;
use fsi_runtime::Par;
use fsi_selinv::baselines::{explicit_selected, full_inverse_selected};
use fsi_selinv::{bsofi, cls, fsi_with_q, wrap, Parallelism, Pattern, Selection};

const NX: usize = 5; // N = 25
const L: usize = 24;
const C: usize = 6;
const Q: usize = 2;

fn bench_stages(c: &mut Criterion) {
    let pc = hubbard_matrix(NX, L, 1, Spin::Up);
    let sel = Selection::new(Pattern::Columns, C, Q);
    let clustered = cls(Par::Seq, Par::Seq, &pc, C, Q);
    let g_red = bsofi(Par::Seq, Par::Seq, &clustered.reduced);

    let mut g = c.benchmark_group("fsi_stages");
    g.bench_function("cls", |b| {
        b.iter(|| std::hint::black_box(cls(Par::Seq, Par::Seq, &pc, C, Q)));
    });
    g.bench_function("bsofi", |b| {
        b.iter(|| std::hint::black_box(bsofi(Par::Seq, Par::Seq, &clustered.reduced)));
    });
    g.bench_function("wrap_columns", |b| {
        b.iter(|| std::hint::black_box(wrap(Par::Seq, &pc, &clustered, &g_red, &sel)));
    });
    g.bench_function("fsi_total", |b| {
        b.iter(|| std::hint::black_box(fsi_with_q(Parallelism::Serial, &pc, &sel)));
    });
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let pc = hubbard_matrix(NX, L, 1, Spin::Up);
    let sel = Selection::new(Pattern::Columns, C, Q);
    let mut g = c.benchmark_group("baselines");
    g.sample_size(10);
    g.bench_function("explicit_columns", |b| {
        b.iter(|| std::hint::black_box(explicit_selected(Par::Seq, &pc, &sel)));
    });
    g.bench_function("full_lu_inverse", |b| {
        b.iter(|| std::hint::black_box(full_inverse_selected(Par::Seq, &pc, &sel)));
    });
    g.finish();
}

fn bench_patterns(c: &mut Criterion) {
    let pc = hubbard_matrix(NX, L, 1, Spin::Up);
    let mut g = c.benchmark_group("fsi_patterns");
    for pattern in Pattern::ALL {
        let sel = Selection::new(pattern, C, Q);
        g.bench_function(format!("{pattern:?}"), |b| {
            b.iter(|| std::hint::black_box(fsi_with_q(Parallelism::Serial, &pc, &sel)));
        });
    }
    g.finish();
}

criterion_group!(stages, bench_stages, bench_baselines, bench_patterns);
criterion_main!(stages);
