//! Criterion micro-benchmarks of the dense substrate kernels — the
//! building blocks whose throughput determines every figure in the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fsi_dense::{expm, gemm_op, geqrf, getrf, mul, test_matrix, Matrix, Op};
use fsi_runtime::flops::counts;

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for n in [64usize, 128, 256] {
        let a = test_matrix(n, n, 1);
        let b = test_matrix(n, n, 2);
        g.throughput(Throughput::Elements(counts::gemm(n, n, n)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(mul(&a, &b)));
        });
    }
    g.finish();
}

fn bench_gemm_trans(c: &mut Criterion) {
    // The packed engine canonicalizes all four Op combos into the same
    // panel layout at pack time, so TN/NT/TT should track the NN rate
    // (within 1.5× is the acceptance bar; the old rank-1 kernel was up to
    // 6× slower on TT).
    let n = 128usize;
    let a = test_matrix(n, n, 1);
    let b = test_matrix(n, n, 2);
    let mut out = Matrix::zeros(n, n);
    let mut g = c.benchmark_group("gemm_trans");
    g.throughput(Throughput::Elements(counts::gemm(n, n, n)));
    for (label, opa, opb) in [
        ("nn", Op::NoTrans, Op::NoTrans),
        ("tn", Op::Trans, Op::NoTrans),
        ("nt", Op::NoTrans, Op::Trans),
        ("tt", Op::Trans, Op::Trans),
    ] {
        g.bench_function(label, |bench| {
            bench.iter(|| {
                gemm_op(
                    fsi_runtime::Par::Seq,
                    1.0,
                    opa,
                    a.as_ref(),
                    opb,
                    b.as_ref(),
                    0.0,
                    out.as_mut(),
                );
                std::hint::black_box(&mut out);
            });
        });
    }
    g.finish();
}

fn bench_gemm_trace_overhead(c: &mut Criterion) {
    // The observability acceptance bar: with tracing *disabled* (the
    // default), the span/charge hooks on the gemm hot path must stay
    // under 2% overhead at N = 64. Compare `gemm_trace/off` against
    // `gemm_trace/stages` and `gemm_trace/kernels` to see the cost of
    // enabling collection.
    use fsi_runtime::trace;
    let n = 64usize;
    let a = test_matrix(n, n, 1);
    let b = test_matrix(n, n, 2);
    let mut g = c.benchmark_group("gemm_trace");
    g.throughput(Throughput::Elements(counts::gemm(n, n, n)));
    for (label, level) in [
        ("off", fsi_runtime::TraceLevel::Off),
        ("stages", fsi_runtime::TraceLevel::Stages),
        ("kernels", fsi_runtime::TraceLevel::Kernels),
    ] {
        trace::set_level(level);
        g.bench_function(label, |bench| {
            bench.iter(|| std::hint::black_box(mul(&a, &b)));
        });
        trace::set_level(fsi_runtime::TraceLevel::Off);
        trace::clear();
    }
    g.finish();
}

fn bench_getrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("getrf");
    for n in [64usize, 128, 256] {
        let mut a = test_matrix(n, n, 3);
        a.add_diag(n as f64);
        g.throughput(Throughput::Elements(counts::getrf(n, n)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(getrf(a.clone()).expect("nonsingular")));
        });
    }
    g.finish();
}

fn bench_geqrf_panel(c: &mut Criterion) {
    // The exact 2N×N panel shape BSOFI factors.
    let mut g = c.benchmark_group("geqrf_2NxN");
    for n in [64usize, 128, 256] {
        let a = test_matrix(2 * n, n, 4);
        g.throughput(Throughput::Elements(counts::geqrf(2 * n, n)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(geqrf(a.clone())));
        });
    }
    g.finish();
}

fn bench_ormqr(c: &mut Criterion) {
    // Applying Qᵀ from the right to a wide slab — BSOFI's stage C shape.
    let mut g = c.benchmark_group("apply_qt_right");
    for n in [64usize, 128] {
        let f = geqrf(test_matrix(2 * n, n, 5));
        let slab = test_matrix(6 * n, 2 * n, 6);
        g.throughput(Throughput::Elements(counts::ormqr(2 * n, n, 6 * n)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut s = slab.clone();
                f.apply_qt_right(fsi_runtime::Par::Seq, s.as_mut());
                std::hint::black_box(s);
            });
        });
    }
    g.finish();
}

fn bench_solve_right(c: &mut Criterion) {
    // The wrap step-right primitive: X = G·B⁻¹.
    let mut g = c.benchmark_group("lu_solve_right");
    for n in [64usize, 128, 256] {
        let mut b = test_matrix(n, n, 7);
        b.add_diag(n as f64);
        let f = getrf(b).expect("nonsingular");
        let rhs = test_matrix(n, n, 8);
        g.throughput(Throughput::Elements(2 * counts::trsm(n, n)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(f.solve_right(&rhs)));
        });
    }
    g.finish();
}

fn bench_expm(c: &mut Criterion) {
    let mut g = c.benchmark_group("expm");
    for n in [16usize, 36, 64] {
        let lat = fsi_pcyclic::SquareLattice::square((n as f64).sqrt() as usize);
        let mut k = lat.adjacency();
        k.scale(0.125);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(expm(&k).expect("finite")));
        });
    }
    g.finish();
}

fn bench_invert_upper(c: &mut Criterion) {
    let mut g = c.benchmark_group("invert_upper");
    for n in [64usize, 128] {
        let r = test_matrix(n, n, 9);
        let u = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + r[(i, j)].abs()
            } else if i < j {
                0.3 * r[(i, j)]
            } else {
                0.0
            }
        });
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut x = u.clone();
                fsi_dense::tri::invert_upper(x.as_mut());
                std::hint::black_box(x);
            });
        });
    }
    g.finish();
}

criterion_group!(
    kernels,
    bench_gemm,
    bench_gemm_trans,
    bench_gemm_trace_overhead,
    bench_getrf,
    bench_geqrf_panel,
    bench_ormqr,
    bench_solve_right,
    bench_expm,
    bench_invert_upper
);
criterion_main!(kernels);
