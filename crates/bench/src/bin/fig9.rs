//! Fig. 9: hybrid MPI×OpenMP sweep for many Green's functions.
//!
//! The paper computes selected inversions of 2400 Hubbard matrices on
//! 100 Edison nodes (2400 cores), sweeping the split
//! `(#MPI processes) × (#OpenMP threads/process)` ∈
//! {200×12, 400×6, 800×3, 1200×2, 2400×1} for
//! `N ∈ {400, 576, 784, 1024}`. Findings to reproduce in shape:
//!
//! 1. pure MPI (t = 1) is fastest **when it fits** (N = 400 only);
//! 2. for N ≥ 576 the per-rank memory exceeds the node budget → OOM, and
//!    the best feasible configuration is a hybrid split;
//! 3. throughput varies mildly across feasible hybrid splits.
//!
//! Locally we run a scaled-down sweep on in-process ranks and print the
//! paper-scale feasibility matrix from the Edison memory model.

use fsi_bench::{banner, init_trace, lattice_side_for, Args};
use fsi_pcyclic::{BlockBuilder, HubbardParams, SquareLattice};
use fsi_selinv::multi::{per_rank_bytes, trace_measure, MultiConfig};
use fsi_selinv::{run_multi, MemoryModel, Pattern};

fn main() {
    let args = Args::parse();
    let export = init_trace("fig9", &args);
    let paper = args.paper_scale();
    let cores = args.get_usize("cores", if paper { 24 } else { 8 });
    let matrices = args.get_usize("matrices", if paper { 96 } else { 16 });
    let n_req = args.get_usize("N", if paper { 400 } else { 16 });
    let l = args.get_usize("L", if paper { 100 } else { 20 });
    let c = args.get_usize("c", if paper { 10 } else { 5 });
    banner("Hybrid ranks x threads sweep (paper Fig. 9)", paper);
    let nx = lattice_side_for(n_req);
    let n = nx * nx;
    println!("{matrices} matrices, (N, L, c) = ({n}, {l}, {c}), budget = {cores} 'cores'\n");

    let builder = BlockBuilder::new(
        SquareLattice::square(nx),
        HubbardParams::paper_validation(l),
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>16}",
        "ranks", "threads", "seconds", "Gflop/s", "sum tr G(k,k)"
    );
    let mut reference: Option<f64> = None;
    let mut splits: Vec<(usize, usize)> = Vec::new();
    for threads in 1..=cores {
        if cores.is_multiple_of(threads) {
            splits.push((cores / threads, threads));
        }
    }
    for (ranks, threads) in splits {
        let cfg = MultiConfig {
            ranks,
            threads_per_rank: threads,
            matrices,
            c,
            pattern: Pattern::Columns,
            seed: 2400,
            scheduling: fsi_selinv::Scheduling::WorkStealing,
        };
        // The span context propagates into the rank threads, so the
        // span's flop total covers all ranks of this split.
        let span = fsi_runtime::trace::span("multi");
        let r = run_multi(&builder, &cfg, &trace_measure).expect("healthy");
        let stats = span.finish();
        let rate = stats.flops as f64 / r.seconds / 1e9;
        println!(
            "{:>8} {:>10} {:>12.3} {:>12.2} {:>16.6}",
            ranks, threads, r.seconds, rate, r.global_measurements[0]
        );
        match reference {
            None => reference = Some(r.global_measurements[0]),
            Some(want) => assert!(
                (r.global_measurements[0] - want).abs() < 1e-6 * want.abs().max(1.0),
                "rank/thread split changed the physics"
            ),
        }
    }

    // Paper-scale feasibility from the Edison node-memory model: which
    // point of Fig. 9's x-axis exists at all, per N.
    println!("\nEdison memory model, (L, c) = (100, 10), columns pattern");
    println!("(per-node configs; Fig. 9 runs 100 such nodes):");
    let model = MemoryModel::edison();
    print!("{:>6} {:>10}", "N", "GB/rank");
    for (r, t) in model.configurations() {
        print!(" {:>7}", format!("{r}x{t}"));
    }
    println!();
    for npaper in [400usize, 576, 784, 1024] {
        let bytes = per_rank_bytes(npaper, 100, 10, Pattern::Columns);
        print!("{:>6} {:>10.2}", npaper, bytes as f64 / (1u64 << 30) as f64);
        for (r, _t) in model.configurations() {
            print!(
                " {:>7}",
                if model.feasible(r, bytes) {
                    "ok"
                } else {
                    "OOM"
                }
            );
        }
        println!();
    }
    println!("\nshape check (paper): pure MPI (rightmost) viable only at N = 400;");
    println!(
        "hybrid splits carry the larger block sizes — matching Fig. 9's feasibility frontier."
    );
    export.finish(None);
}
