//! BSOFI-stage performance run: times the dense reduced inverse
//! (`bsofi`) against the pattern-aware selected assembly
//! (`bsofi_selected`) and the serial structured-QR factor against its
//! look-ahead pipelined schedule. Writes `results/BENCH_bsofi.json` so
//! the BSOFI hot-path trajectory is recorded PR over PR, next to the
//! kernel and sweep artifacts.
//!
//! Three properties are *asserted*, not just reported, because they are
//! the acceptance criteria of the selected-assembly work:
//!
//! * at the paper-scale shape (N = 64, L = 128, c = 8 → b = 16) the
//!   diagonal selected assembly beats the dense `bsofi` wall time by
//!   ≥ 1.5×;
//! * the look-ahead factor is bitwise identical to the serial factor;
//! * the traced flops of the selected path equal the kernel-exact model
//!   `bsofi_selected_flops` (and the factor equals
//!   `structured_qr_flops`) to the flop.
//!
//! Usage: `bench_bsofi [--label=NAME] [--out=PATH] [N=64] [L=128] [c=8]
//! [threads=3]`

use std::time::SystemTime;

use fsi_bench::{apply_kernel_flag, Args};
use fsi_runtime::trace::{self, Json};
use fsi_runtime::{Par, Stopwatch, ThreadPool};
use fsi_selinv::{
    bsofi, bsofi_selected, bsofi_selected_flops, cls, structured_qr_flops, SelectedPattern,
    StructuredQr,
};

/// One measured BSOFI-stage operation.
struct Record {
    name: String,
    seconds: f64,
    gflops: f64,
    /// Flops measured by the span collector for one traced call.
    measured_flops: u64,
}

/// Best-of repeated timing (same estimator as `bench_smoke`).
fn time_best(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let budget = Stopwatch::start();
    let mut best = f64::INFINITY;
    let mut reps = 0u32;
    while budget.seconds() < 0.25 || reps < 3 {
        let sw = Stopwatch::start();
        f();
        best = best.min(sw.seconds());
        reps += 1;
    }
    best
}

/// Interleaved best-of timing of two competing operations. Alternating
/// single shots under one shared budget exposes both sides to the same
/// machine noise and frequency drift, so their *ratio* is far more stable
/// than two independently-timed bests.
fn time_best_pair(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    a(); // warm-up both
    b();
    let budget = Stopwatch::start();
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    let mut reps = 0u32;
    while budget.seconds() < 2.0 || reps < 5 {
        let sw = Stopwatch::start();
        a();
        best_a = best_a.min(sw.seconds());
        let sw = Stopwatch::start();
        b();
        best_b = best_b.min(sw.seconds());
        reps += 1;
    }
    (best_a, best_b)
}

/// Measures one call's span-collected flops (Kernels level so
/// GEQRF/ORMQR/GEMM charges are captured inclusively).
fn measure_flops(mut f: impl FnMut()) -> u64 {
    trace::set_level(fsi_runtime::TraceLevel::Kernels);
    trace::clear();
    let span = trace::span("bench-bsofi-op");
    f();
    let stats = span.finish();
    trace::set_level(fsi_runtime::TraceLevel::Off);
    trace::clear();
    stats.flops
}

/// Packages a timed + flop-measured operation.
fn record(name: &str, seconds: f64, mut f: impl FnMut()) -> Record {
    let measured_flops = measure_flops(&mut f);
    Record {
        name: name.to_string(),
        seconds,
        gflops: if seconds > 0.0 {
            measured_flops as f64 / seconds / 1e9
        } else {
            0.0
        },
        measured_flops,
    }
}

fn print_record(r: &Record) {
    println!(
        "{:<26} {:>12.6} {:>10.3} {:>14}",
        r.name, r.seconds, r.gflops, r.measured_flops
    );
}

fn main() {
    let args = Args::parse();
    let kernel = apply_kernel_flag(&args);
    println!("kernel tier: {}", kernel.name());
    let label = args.flag_value("label").unwrap_or("current").to_string();
    let out = args
        .flag_value("out")
        .unwrap_or("results/BENCH_bsofi.json")
        .to_string();
    let n = args.get_usize("N", 64);
    let l = args.get_usize("L", 128);
    let c = args.get_usize("c", 8);
    let threads = args.get_usize("threads", 3);
    assert!(l.is_multiple_of(c), "cluster size must divide L");
    let b = l / c;

    // The honest pipeline: cluster a random L-slice chain down to the
    // b-block reduced matrix, then time only the BSOFI stage on it.
    let pc = fsi_pcyclic::random_pcyclic(n, l, 2016);
    let clustered = cls(Par::Seq, Par::Seq, &pc, c, c / 2);
    let reduced = &clustered.reduced;
    let pool = ThreadPool::new(threads.max(2));

    println!(
        "{:<26} {:>12} {:>10} {:>14}",
        "bench", "best (s)", "Gflop/s", "flops"
    );

    // --- Dense inverse vs. pattern-aware selected assembly, timed
    // interleaved so the speedup ratio is noise-robust.
    let diags = SelectedPattern::Diagonals;
    let (t_full, t_diags) = time_best_pair(
        || {
            let _ = bsofi(Par::Seq, Par::Seq, reduced);
        },
        || {
            let _ = bsofi_selected(Par::Seq, Par::Seq, reduced, &diags).expect("healthy");
        },
    );
    let r_full = record("bsofi_full", t_full, || {
        let _ = bsofi(Par::Seq, Par::Seq, reduced);
    });
    let r_diags = record("bsofi_selected_diagonals", t_diags, || {
        let _ = bsofi_selected(Par::Seq, Par::Seq, reduced, &diags).expect("healthy");
    });
    let block = SelectedPattern::DiagonalBlock(b / 2);
    let t_block = time_best(|| {
        let _ = bsofi_selected(Par::Seq, Par::Seq, reduced, &block).expect("healthy");
    });
    let r_block = record("bsofi_selected_block", t_block, || {
        let _ = bsofi_selected(Par::Seq, Par::Seq, reduced, &block).expect("healthy");
    });
    for r in [&r_full, &r_diags, &r_block] {
        print_record(r);
    }
    let selected_speedup = r_full.seconds / r_diags.seconds;
    let block_speedup = r_full.seconds / r_block.seconds;
    assert!(
        selected_speedup >= 1.5,
        "diagonal selected assembly must beat dense bsofi by >= 1.5x \
         (got {selected_speedup:.2}x: dense {:.2e} s, selected {:.2e} s)",
        r_full.seconds,
        r_diags.seconds
    );

    // --- Flop attribution is exact: the traced charge of one selected
    // call equals the kernel-exact closed form to the flop.
    assert_eq!(
        r_diags.measured_flops,
        bsofi_selected_flops(n, b, &diags),
        "selected-diagonals flops drifted from the model"
    );
    assert_eq!(
        r_block.measured_flops,
        bsofi_selected_flops(n, b, &block),
        "selected-block flops drifted from the model"
    );

    // --- Serial vs. look-ahead pipelined factor. Same kernel calls on
    // the same inputs, so the results must be bitwise identical and the
    // ratio is a pure pipelining measurement.
    let (t_serial, t_look) = time_best_pair(
        || {
            let _ = StructuredQr::factor(Par::Seq, reduced);
        },
        || {
            let _ = StructuredQr::factor_lookahead(Par::Pool(&pool), Par::Seq, reduced);
        },
    );
    let r_serial = record("factor_serial", t_serial, || {
        let _ = StructuredQr::factor(Par::Seq, reduced);
    });
    let r_look = record("factor_lookahead", t_look, || {
        let _ = StructuredQr::factor_lookahead(Par::Pool(&pool), Par::Seq, reduced);
    });
    print_record(&r_serial);
    print_record(&r_look);
    let lookahead_speedup = r_serial.seconds / r_look.seconds;
    let fs = StructuredQr::factor(Par::Seq, reduced);
    let fl = StructuredQr::factor_lookahead(Par::Pool(&pool), Par::Seq, reduced);
    assert_eq!(
        fs.assemble_r().as_slice(),
        fl.assemble_r().as_slice(),
        "look-ahead factor must be bitwise identical to serial"
    );
    assert_eq!(
        r_serial.measured_flops,
        structured_qr_flops(n, b),
        "factor flops drifted from the model"
    );

    println!(
        "\nselected vs dense: diagonals {selected_speedup:.2}x, single block {block_speedup:.2}x"
    );
    println!("look-ahead factor speedup: {lookahead_speedup:.2}x");

    let records = [r_full, r_diags, r_block, r_serial, r_look];
    let json = Json::Obj(vec![
        ("label".into(), Json::Str(label)),
        (
            "unix_ms".into(),
            Json::Int(
                SystemTime::now()
                    .duration_since(SystemTime::UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0),
            ),
        ),
        (
            "shape".into(),
            Json::Obj(vec![
                ("N".into(), Json::Int(n as u64)),
                ("L".into(), Json::Int(l as u64)),
                ("c".into(), Json::Int(c as u64)),
                ("b".into(), Json::Int(b as u64)),
                ("threads".into(), Json::Int(threads as u64)),
            ]),
        ),
        (
            "summary".into(),
            Json::Obj(vec![
                ("selected_speedup".into(), Json::Num(selected_speedup)),
                ("block_speedup".into(), Json::Num(block_speedup)),
                ("lookahead_speedup".into(), Json::Num(lookahead_speedup)),
                (
                    "model_flops_full".into(),
                    Json::Int(fsi_selinv::bsofi::bsofi_flops(n, b)),
                ),
                (
                    "model_flops_diagonals".into(),
                    Json::Int(bsofi_selected_flops(n, b, &diags)),
                ),
                (
                    "model_flops_block".into(),
                    Json::Int(bsofi_selected_flops(n, b, &block)),
                ),
                (
                    "model_flops_factor".into(),
                    Json::Int(structured_qr_flops(n, b)),
                ),
            ]),
        ),
        (
            "records".into(),
            Json::Arr(
                records
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(r.name.clone())),
                            ("seconds".into(), Json::Num(r.seconds)),
                            ("gflops".into(), Json::Num(r.gflops)),
                            ("flops".into(), Json::Int(r.measured_flops)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    fsi_bench::write_artifact(&out, &json.to_string()).expect("write bench json");
    println!("wrote {out}");
}
