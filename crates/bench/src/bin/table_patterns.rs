//! §II-B table: number of selected blocks and memory-reduction factor of
//! the four selection patterns S1–S4, plus the measured memory of a real
//! selection to confirm the bookkeeping.

use fsi_bench::{banner, hubbard_matrix, Args};
use fsi_pcyclic::Spin;
use fsi_selinv::{fsi_with_q, Parallelism, Pattern, Selection};

fn main() {
    let args = Args::parse();
    let l = args.get_usize("L", 100);
    let c = args.get_usize("c", 10);
    banner(
        "Selected-inversion patterns (paper Sec. II-B table)",
        args.paper_scale(),
    );
    let b = l / c;
    println!("L = {l}, c = {c}, b = L/c = {b}\n");
    println!(
        "{:<20} {:>12} {:>18} {:>18}",
        "pattern", "# blocks", "paper formula", "reduction factor"
    );
    for p in Pattern::ALL {
        let formula = match p {
            Pattern::Diagonal => "b".to_string(),
            Pattern::SubDiagonal => "b or b-1".to_string(),
            Pattern::Columns | Pattern::Rows => "bL".to_string(),
        };
        println!(
            "{:<20} {:>12} {:>18} {:>15}x",
            p.label(),
            p.n_blocks(l, c),
            formula,
            p.reduction_factor(l, c)
        );
    }

    // Confirm with actual storage on a small matrix.
    let (nx, small_l, small_c) = (4usize, 24usize, 6usize);
    let pc = hubbard_matrix(nx, small_l, 3, Spin::Up);
    let n = nx * nx;
    let full_bytes = (n * small_l) * (n * small_l) * 8;
    println!(
        "\nmeasured storage, (N, L, c) = ({n}, {small_l}, {small_c}); full inverse = {:.2} KiB:",
        full_bytes as f64 / 1024.0
    );
    for p in Pattern::ALL {
        let sel = Selection::new(p, small_c, 1);
        let out = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
        let measured_reduction = full_bytes as f64 / out.selected.bytes() as f64;
        println!(
            "  {:<20} {:>10.2} KiB   measured reduction {:>8.1}x  (formula {}x)",
            p.label(),
            out.selected.bytes() as f64 / 1024.0,
            measured_reduction,
            p.reduction_factor(small_l, small_c)
        );
    }
}
