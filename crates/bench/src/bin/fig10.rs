//! Fig. 10: runtime profile on a single Hubbard matrix — time to compute
//! the Green's functions vs time to compute the physical measurements,
//! for Serial, MKL-style, and FSI+OpenMP execution.
//!
//! Paper setup: `(L, N) = (100, 400)`, `c = 10`; for both spins compute
//! all diagonal blocks, `b` block rows and `b` block columns, then the
//! equal-time and time-dependent (SPXX) measurements. Shape to
//! reproduce: MKL-style accelerates only the Green's-function part
//! (measurements are element-wise Level-1 loops a multithreaded BLAS
//! cannot touch), while FSI+OpenMP cuts both phases — the paper reports
//! 87% less total CPU time.

use fsi_bench::{banner, init_trace, lattice_side_for, Args};
use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
use fsi_runtime::sim::makespan;
use fsi_runtime::{Stopwatch, ThreadPool};
use fsi_selinv::fsi::fsi_measurement_set;
use fsi_selinv::{Parallelism, SelectedInverse};
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let export = init_trace("fig10", &args);
    let paper = args.paper_scale();
    let n_req = args.get_usize("N", if paper { 400 } else { 36 });
    let l = args.get_usize("L", if paper { 100 } else { 40 });
    let c = args.get_usize("c", if paper { 10 } else { 8 });
    let threads = args.get_usize("threads", 12);
    banner(
        "Green's function vs measurement runtime (paper Fig. 10)",
        paper,
    );
    let nx = lattice_side_for(n_req);
    let n = nx * nx;
    println!("(N, L, c) = ({n}, {l}, {c}); both spins; all diagonals + b rows + b cols\n");

    let lattice = SquareLattice::square(nx);
    let builder = BlockBuilder::new(lattice.clone(), HubbardParams::paper_validation(l));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(10);
    let field = HsField::random(l, n, &mut rng);

    let pool = ThreadPool::new(threads);
    let modes: [(&str, Parallelism); 3] = [
        ("Serial", Parallelism::Serial),
        ("MKL-style", Parallelism::MklStyle(&pool)),
        ("FSI+OpenMP", Parallelism::OpenMp(&pool)),
    ];

    println!(
        "{:<12} {:>12} {:>14} {:>12} | {:>12} {:>14}",
        "mode", "green [s]", "measure [s]", "total [s]", "green sim", "measure sim"
    );
    for (name, par) in modes {
        let (outer, _) = par.split();
        // --- Green's functions for both spins. ---
        let sw = Stopwatch::start();
        let q = c / 2;
        let mut selections: Vec<SelectedInverse> = Vec::new();
        for spin in Spin::BOTH {
            let pc = hubbard_pcyclic(&builder, &field, spin);
            let (merged, _diags) = fsi_measurement_set(par, &pc, c, q).expect("healthy");
            selections.push(merged);
        }
        let green_secs = sw.seconds();

        // --- Physical measurements. ---
        let sw = Stopwatch::start();
        let mut et_acc = 0.0;
        for k in 0..l {
            let gu = selections[0].get(k, k).expect("diag");
            let gd = selections[1].get(k, k).expect("diag");
            let et = fsi_dqmc::equal_time(&lattice, 1.0, gu, gd);
            et_acc += et.moment;
        }
        // SPXX pair task times for the simulator.
        let pair_sw = Stopwatch::start();
        let table = fsi_dqmc::spxx(outer, &lattice, l, &selections[0], &selections[1]);
        let spxx_secs = pair_sw.seconds();
        let meas_secs = sw.seconds();
        std::hint::black_box((et_acc, table));

        // Simulated columns: the green phase parallelizes over ~b² seed
        // tasks (OpenMP) or column chunks inside kernels (MKL ≈ 2×);
        // measurements parallelize over SPXX pairs under OpenMP only.
        let b = l / c;
        let (green_sim, meas_sim) = match name {
            "Serial" => (green_secs, meas_secs),
            "MKL-style" => {
                let chunks = (n / 32).max(1).min(threads);
                (
                    green_secs * (0.4 + 0.6 / chunks as f64),
                    meas_secs, // element-wise loops do not parallelize
                )
            }
            _ => {
                let tasks = vec![green_secs / (b * b) as f64; b * b];
                let pair_tasks = vec![spxx_secs / (2 * b * l) as f64; 2 * b * l];
                (
                    makespan(&tasks, threads),
                    meas_secs - spxx_secs + makespan(&pair_tasks, threads),
                )
            }
        };
        println!(
            "{:<12} {:>12.3} {:>14.3} {:>12.3} | {:>12.3} {:>14.3}",
            name,
            green_secs,
            meas_secs,
            green_secs + meas_secs,
            green_sim,
            meas_sim
        );
    }
    println!("\nshape check (paper): MKL-style helps only the Green's phase; FSI+OpenMP cuts both");
    println!("(~87% total reduction at 12 threads on the paper's socket).");
    if fsi_runtime::hardware_threads() < threads {
        println!(
            "NOTE: host has {} core(s); measured columns are flat, simulated columns carry the shape.",
            fsi_runtime::hardware_threads()
        );
    }
    export.finish(Some(&pool));
}
