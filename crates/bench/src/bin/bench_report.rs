//! CI perf-regression sentinel: compares fresh benchmark artifacts
//! against checked-in baselines and appends a trajectory row to
//! `results/BENCH_history.jsonl`.
//!
//! The comparison logic (metric extraction, per-family policies,
//! median-of-k, verdicts) lives in [`fsi_bench::sentinel`]; this binary
//! is file plumbing and reporting.
//!
//! Usage:
//! ```text
//! bench_report [--baseline-dir=results/baselines] [--fresh-dir=results]
//!              [--fresh=FAMILY:PATH]...   # repeatable: k samples => median-of-k
//!              [--history=results/BENCH_history.jsonl] [--no-history]
//!              [--label=NAME] [--smoke] [--warn-only] [--seed]
//! ```
//!
//! * `--smoke`: silently skip families whose fresh artifact is missing
//!   (CI smoke lane, where only a subset of benches has run).
//! * `--seed`: families with a fresh artifact but no baseline have the
//!   fresh artifact copied into the baseline dir instead of comparing.
//! * `--warn-only`: report regressions but exit 0 (default CI posture;
//!   the gating lane passes `--gate` via `ci/bench_smoke.sh`, which
//!   simply omits `--warn-only`).
//!
//! Exit status: 0 clean or warn-only, 1 on any regression, 2 on a
//! usage/IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::SystemTime;

use fsi_bench::sentinel::{
    self, extract, family_file, history_row, median_of_k, Comparison, FamilyReport, Verdict,
};
use fsi_bench::Args;
use fsi_runtime::trace::Json;

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: parse error: {e}", path.display()))
}

fn verdict_tag(v: Verdict) -> &'static str {
    match v {
        Verdict::Ok => "ok",
        Verdict::Improved => "IMPROVED",
        Verdict::Regressed => "REGRESSED",
        Verdict::New => "new",
    }
}

fn print_family(family: &str, comparisons: &[Comparison]) {
    println!("\n[{family}]");
    println!(
        "  {:<44} {:>14} {:>14}  verdict",
        "metric", "baseline", "fresh"
    );
    for c in comparisons {
        let base = c
            .baseline
            .map(|b| format!("{b:.6}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "  {:<44} {:>14} {:>14.6}  {}",
            c.name,
            base,
            c.fresh,
            verdict_tag(c.verdict)
        );
    }
}

fn run() -> Result<bool, String> {
    let args = Args::parse();
    let baseline_dir = PathBuf::from(
        args.flag_value("baseline-dir")
            .unwrap_or("results/baselines"),
    );
    let fresh_dir = PathBuf::from(args.flag_value("fresh-dir").unwrap_or("results"));
    let history_path = PathBuf::from(
        args.flag_value("history")
            .unwrap_or("results/BENCH_history.jsonl"),
    );
    let label = args.flag_value("label").unwrap_or("current").to_string();
    let smoke = args.flag("smoke");
    let warn_only = args.flag("warn-only");
    let seed = args.flag("seed");
    // Explicit fresh samples: --fresh=family:path, repeatable.
    let explicit: Vec<(&str, &str)> = args
        .flag_values("fresh")
        .into_iter()
        .filter_map(|v| v.split_once(':'))
        .collect();

    let mut reports: Vec<FamilyReport> = Vec::new();
    for family in sentinel::FAMILIES {
        let file = family_file(family);
        let fresh_paths: Vec<PathBuf> = {
            let named: Vec<PathBuf> = explicit
                .iter()
                .filter(|(f, _)| *f == family)
                .map(|(_, p)| PathBuf::from(p))
                .collect();
            if named.is_empty() {
                vec![fresh_dir.join(file)]
            } else {
                named
            }
        };
        if fresh_paths.iter().any(|p| !p.exists()) {
            if smoke {
                println!("[{family}] fresh artifact missing, skipped (--smoke)");
                reports.push(FamilyReport {
                    family: family.to_string(),
                    status: "skipped".into(),
                    comparisons: Vec::new(),
                });
                continue;
            }
            return Err(format!(
                "{family}: fresh artifact {} missing (pass --smoke to skip)",
                fresh_paths
                    .iter()
                    .find(|p| !p.exists())
                    .expect("one missing")
                    .display()
            ));
        }
        let samples = fresh_paths
            .iter()
            .map(|p| load(p).and_then(|doc| extract(family, &doc)))
            .collect::<Result<Vec<_>, _>>()?;
        let k = samples.len();
        let fresh = median_of_k(samples);
        if k > 1 {
            println!("[{family}] median of {k} fresh samples");
        }

        let baseline_path = baseline_dir.join(file);
        if !baseline_path.exists() {
            if seed {
                std::fs::create_dir_all(&baseline_dir)
                    .map_err(|e| format!("{}: {e}", baseline_dir.display()))?;
                std::fs::copy(&fresh_paths[0], &baseline_path)
                    .map_err(|e| format!("seed {}: {e}", baseline_path.display()))?;
                println!("[{family}] no baseline: seeded {}", baseline_path.display());
                reports.push(FamilyReport {
                    family: family.to_string(),
                    status: "seeded".into(),
                    comparisons: Vec::new(),
                });
                continue;
            }
            println!(
                "[{family}] no baseline at {} (all metrics 'new'; pass --seed to create one)",
                baseline_path.display()
            );
        }
        let baseline = if baseline_path.exists() {
            let doc = load(&baseline_path)?;
            extract(family, &doc)?
        } else {
            Vec::new()
        };
        let comparisons = sentinel::compare(&baseline, &fresh);
        print_family(family, &comparisons);
        reports.push(FamilyReport {
            family: family.to_string(),
            status: "compared".into(),
            comparisons,
        });
    }

    let unix_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let row = history_row(&label, unix_ms, &reports);
    if !args.flag("no-history") {
        if let Some(dir) = history_path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            }
        }
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&history_path)
            .map_err(|e| format!("{}: {e}", history_path.display()))?;
        writeln!(f, "{row}").map_err(|e| format!("{}: {e}", history_path.display()))?;
        println!("\nappended history row to {}", history_path.display());
    }

    let regressions: Vec<String> = reports
        .iter()
        .flat_map(|r| {
            let fam = r.family.clone();
            r.regressions()
                .into_iter()
                .map(move |m| format!("{fam}:{m}"))
                .collect::<Vec<_>>()
        })
        .collect();
    if regressions.is_empty() {
        println!("\nsentinel: no regressions");
        Ok(true)
    } else {
        println!("\nsentinel: {} regression(s):", regressions.len());
        for r in &regressions {
            println!("  {r}");
        }
        if warn_only {
            println!("(--warn-only: not gating)");
        }
        Ok(warn_only)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("bench_report: {msg}");
            ExitCode::from(2)
        }
    }
}
