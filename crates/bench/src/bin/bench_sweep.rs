//! Sweep-phase performance smoke run: times the three similarity-wrap
//! implementations (dense GEMM baseline, factored diag+kinetic, factored
//! with checkerboard bond sweeps), the full vs. warm incremental
//! stabilization refresh, and the spin-joined sweep against its serial
//! baseline. Writes `results/BENCH_sweep.json` so the sweep hot-path
//! trajectory is recorded PR over PR, next to the kernel artifact.
//!
//! Two properties are *asserted*, not just reported, because they are the
//! acceptance criteria of the structure-exploiting sweep work:
//!
//! * the checkerboard factored wrap sustains ≥ 2× the wraps/s of the
//!   dense-GEMM wrap at N = 64;
//! * a warm refresh recomputes strictly fewer cluster products than a
//!   cold one (`cls.cache_hit` fires; misses per refresh drop below the
//!   full rebuild count).
//!
//! Usage: `bench_sweep [--label=NAME] [--out=PATH] [N=64] [L=64] [c=8]
//! [threads=2]`

use std::time::SystemTime;

use fsi_bench::{apply_kernel_flag, lattice_side_for, Args};
use fsi_dqmc::{wrap_dense, wrap_factored, SweepConfig, Sweeper};
use fsi_pcyclic::{BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
use fsi_runtime::trace::{self, Json};
use fsi_runtime::{Stopwatch, ThreadPool};
use fsi_selinv::Parallelism;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One measured sweep-phase operation.
struct Record {
    name: String,
    size: usize,
    seconds: f64,
    gflops: f64,
    /// Flops measured by the span collector for one traced call.
    measured_flops: u64,
}

/// Best-of repeated timing (same estimator as `bench_smoke`).
fn time_best(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let budget = Stopwatch::start();
    let mut best = f64::INFINITY;
    let mut reps = 0u32;
    while budget.seconds() < 0.25 || reps < 3 {
        let sw = Stopwatch::start();
        f();
        best = best.min(sw.seconds());
        reps += 1;
    }
    best
}

/// Times one call and measures its span-collected flops (Kernels level so
/// GEMM/bond-sweep charges are captured inclusively).
fn record(name: &str, size: usize, mut f: impl FnMut()) -> Record {
    let seconds = time_best(&mut f);
    trace::set_level(fsi_runtime::TraceLevel::Kernels);
    trace::clear();
    let span = trace::span("bench-sweep-op");
    f();
    let stats = span.finish();
    trace::set_level(fsi_runtime::TraceLevel::Off);
    trace::clear();
    Record {
        name: name.to_string(),
        size,
        seconds,
        gflops: if seconds > 0.0 {
            stats.flops as f64 / seconds / 1e9
        } else {
            0.0
        },
        measured_flops: stats.flops,
    }
}

fn print_record(r: &Record) {
    println!(
        "{:<20} {:>6} {:>12.6} {:>10.3}",
        r.name, r.size, r.seconds, r.gflops
    );
}

fn main() {
    let args = Args::parse();
    let kernel = apply_kernel_flag(&args);
    println!("kernel tier: {}", kernel.name());
    let label = args.flag_value("label").unwrap_or("current").to_string();
    let out = args
        .flag_value("out")
        .unwrap_or("results/BENCH_sweep.json")
        .to_string();
    let nx = lattice_side_for(args.get_usize("N", 64));
    let n = nx * nx;
    let l = args.get_usize("L", 64);
    let c = args.get_usize("c", 8);
    let threads = args.get_usize("threads", 2);
    let params = HubbardParams {
        t: 1.0,
        u: 4.0,
        beta: 8.0,
        l,
    };
    let dense_builder = BlockBuilder::new(SquareLattice::square(nx), params.clone());
    let cb_builder = BlockBuilder::with_checkerboard(SquareLattice::square(nx), params);
    let mut rng = ChaCha8Rng::seed_from_u64(2016);
    let field = HsField::random(l, n, &mut rng);
    let cfg = SweepConfig {
        c,
        stabilize_every: c,
        ..SweepConfig::default()
    };

    let mut records = Vec::new();
    println!(
        "{:<20} {:>6} {:>12} {:>10}",
        "bench", "size", "best (s)", "Gflop/s"
    );

    // --- Wrap strategies: one spin-channel similarity wrap at slice 0.
    // The wrapped matrix keeps getting re-wrapped between reps; the cost
    // per wrap does not depend on its values.
    let sweeper = Sweeper::new(&dense_builder, field.clone(), cfg).expect("healthy");
    let mut g = sweeper.green(Spin::Up).clone();
    let r_dense = record("wrap_dense", n, || {
        wrap_dense(
            fsi_runtime::Par::Seq,
            &dense_builder,
            &field,
            0,
            Spin::Up,
            &mut g,
        );
    });
    let mut g = sweeper.green(Spin::Up).clone();
    let r_fact = record("wrap_factored", n, || {
        wrap_factored(
            fsi_runtime::Par::Seq,
            &dense_builder,
            &field,
            0,
            Spin::Up,
            &mut g,
        );
    });
    let cb_sweeper = Sweeper::new(&cb_builder, field.clone(), cfg).expect("healthy");
    let mut g = cb_sweeper.green(Spin::Up).clone();
    let r_cb = record("wrap_factored_cb", n, || {
        wrap_factored(
            fsi_runtime::Par::Seq,
            &cb_builder,
            &field,
            0,
            Spin::Up,
            &mut g,
        );
    });
    drop(sweeper);
    drop(cb_sweeper);
    for r in [&r_dense, &r_fact, &r_cb] {
        print_record(r);
    }
    let factored_speedup = r_dense.seconds / r_fact.seconds;
    let cb_speedup = r_dense.seconds / r_cb.seconds;
    assert!(
        cb_speedup >= 2.0,
        "checkerboard factored wrap must sustain >= 2x the dense wraps/s \
         (got {cb_speedup:.2}x: dense {:.2e} s, cb {:.2e} s)",
        r_dense.seconds,
        r_cb.seconds
    );

    // --- Stabilization refresh: full rebuild vs. warm incremental. The
    // warm path re-anchors on the same residue with no dirty slices — the
    // steady-state cost of a refresh inside a low-acceptance sweep.
    let mut full = Sweeper::new(
        &dense_builder,
        field.clone(),
        SweepConfig {
            incremental: false,
            ..cfg
        },
    )
    .expect("healthy");
    let r_full = record("refresh_full", n, || {
        full.refresh(0, Parallelism::Serial).expect("healthy");
    });
    let mut warm = Sweeper::new(&dense_builder, field.clone(), cfg).expect("healthy");
    let r_warm = record("refresh_warm", n, || {
        warm.refresh(0, Parallelism::Serial).expect("healthy");
    });
    let (warm_hits, warm_misses) = warm.cluster_cache_stats();
    drop(full);
    drop(warm);
    print_record(&r_full);
    print_record(&r_warm);

    // --- Cache effectiveness across a real sweep: hits must fire and warm
    // refreshes must rebuild strictly fewer than the b = L/c products per
    // spin a cold build pays.
    let mut s = Sweeper::new(&dense_builder, field.clone(), cfg).expect("healthy");
    let (h0, m0) = s.cluster_cache_stats();
    let cold_products = 2 * (l / c) as u64; // both spins
    assert_eq!(m0, cold_products, "cold build rebuilds every product");
    let mut sweep_rng = ChaCha8Rng::seed_from_u64(7);
    s.sweep(&mut sweep_rng, Parallelism::Serial)
        .expect("healthy");
    let (h1, m1) = s.cluster_cache_stats();
    let refreshes = (m1 + h1 - m0 - h0) / cold_products;
    assert!(
        h1 > h0,
        "warm refreshes must score cls.cache_hit (hits {h0} -> {h1})"
    );
    assert!(
        m1 - m0 < refreshes * cold_products,
        "warm refreshes must rebuild strictly fewer products than cold \
         ({} misses over {refreshes} refreshes of {cold_products})",
        m1 - m0
    );
    println!(
        "cache: {} hits / {} misses over {refreshes} warm refreshes (cold = {cold_products})",
        h1 - h0,
        m1 - m0
    );

    // --- Full sweep: serial vs. spin-joined over a pool. Identical
    // trajectories (order-preserving join + deterministic kernels), so the
    // ratio is a pure parallelization measurement.
    let sweep_once = |par: Parallelism<'_>| {
        let mut s = Sweeper::new(&dense_builder, field.clone(), cfg).expect("healthy");
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        s.sweep(&mut rng, par).expect("healthy");
    };
    let r_serial = record("sweep_serial", n, || sweep_once(Parallelism::Serial));
    let pool = ThreadPool::new(threads.max(2));
    let r_par = record("sweep_spin_par", n, || {
        sweep_once(Parallelism::OpenMp(&pool))
    });
    print_record(&r_serial);
    print_record(&r_par);
    let spin_par_speedup = r_serial.seconds / r_par.seconds;

    // --- Always-on metrics cost: the same serial sweep with the metrics
    // registry enabled vs. globally disabled. Paired-ratio estimator (the
    // method the fault drill uses for health probes): each sample is an
    // on-run and an off-run back to back in alternating order, so clock
    // and thermal drift hit both sides of a pair almost equally and
    // cancel in the ratio; the median discards pairs a scheduling spike
    // split. The <2% bound is the PR-6 acceptance criterion for leaving
    // the registry on in release builds.
    let metrics_overhead_pct = {
        let batch = |on: bool| {
            fsi_runtime::metrics::set_enabled(on);
            let sw = Stopwatch::start();
            sweep_once(Parallelism::Serial);
            let s = sw.seconds();
            fsi_runtime::metrics::set_enabled(true);
            s
        };
        batch(true);
        batch(false); // warm-up: one of each configuration
        let mut ratios = Vec::new();
        let mut flip = false;
        while ratios.len() < 9 {
            let (on, off) = if flip {
                let off = batch(false);
                (batch(true), off)
            } else {
                (batch(true), batch(false))
            };
            ratios.push((on - off) / off * 100.0);
            flip = !flip;
        }
        ratios.sort_by(f64::total_cmp);
        ratios[ratios.len() / 2]
    };
    println!("metrics overhead (paired-ratio, serial sweep): {metrics_overhead_pct:+.2}%");
    assert!(
        metrics_overhead_pct < 2.0,
        "always-on metrics must cost < 2% on the sweep hot path \
         (measured {metrics_overhead_pct:+.2}%)"
    );

    println!(
        "\nwrap speedups vs dense: factored {factored_speedup:.2}x, checkerboard {cb_speedup:.2}x"
    );
    println!(
        "refresh warm/full: {:.2}x; spin-par sweep speedup: {spin_par_speedup:.2}x",
        r_full.seconds / r_warm.seconds
    );

    records.extend([r_dense, r_fact, r_cb, r_full, r_warm, r_serial, r_par]);
    let wraps_per_s = |r: &Record| 1.0 / r.seconds;
    let json = Json::Obj(vec![
        ("label".into(), Json::Str(label)),
        (
            "unix_ms".into(),
            Json::Int(
                SystemTime::now()
                    .duration_since(SystemTime::UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0),
            ),
        ),
        (
            "shape".into(),
            Json::Obj(vec![
                ("N".into(), Json::Int(n as u64)),
                ("L".into(), Json::Int(l as u64)),
                ("c".into(), Json::Int(c as u64)),
                ("threads".into(), Json::Int(threads as u64)),
            ]),
        ),
        (
            "summary".into(),
            Json::Obj(vec![
                (
                    "wraps_per_s_dense".into(),
                    Json::Num(wraps_per_s(&records[0])),
                ),
                (
                    "wraps_per_s_factored".into(),
                    Json::Num(wraps_per_s(&records[1])),
                ),
                (
                    "wraps_per_s_factored_cb".into(),
                    Json::Num(wraps_per_s(&records[2])),
                ),
                ("factored_wrap_speedup".into(), Json::Num(factored_speedup)),
                ("checkerboard_wrap_speedup".into(), Json::Num(cb_speedup)),
                (
                    "refresh_warm_speedup".into(),
                    Json::Num(records[3].seconds / records[4].seconds),
                ),
                ("spin_par_sweep_speedup".into(), Json::Num(spin_par_speedup)),
                (
                    "metrics_overhead_pct".into(),
                    Json::Num(metrics_overhead_pct),
                ),
                ("cache_warm_hits".into(), Json::Int(h1 - h0)),
                ("cache_warm_misses".into(), Json::Int(m1 - m0)),
                ("cache_cold_misses".into(), Json::Int(cold_products)),
                ("steady_warm_hits".into(), Json::Int(warm_hits)),
                ("steady_warm_misses".into(), Json::Int(warm_misses)),
            ]),
        ),
        (
            "records".into(),
            Json::Arr(
                records
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(r.name.clone())),
                            ("size".into(), Json::Int(r.size as u64)),
                            ("seconds".into(), Json::Num(r.seconds)),
                            ("gflops".into(), Json::Num(r.gflops)),
                            ("flops".into(), Json::Int(r.measured_flops)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    fsi_bench::write_artifact(&out, &json.to_string()).expect("write bench json");
    println!("wrote {out}");
}
