//! Fig. 8 (top): FSI performance rate by stage vs block dimension `N`.
//!
//! The paper plots Gflop/s of BSOFI, CLS+WRP, total FSI, and DGEMM (the
//! practical peak) for `N ∈ {256, 400, 576, 784, 1024}` at
//! `(L, c) = (100, 10)`, computing `b = 10` block columns. The shape to
//! reproduce: BSOFI runs below the others (triangular/QR-bound), CLS and
//! WRP run at near-DGEMM rate, and the FSI total lands close to DGEMM —
//! "the lower rate of the dense inversions is compensated by DGEMM-rich
//! clustering and wrapping".

use fsi_bench::{banner, hubbard_matrix, init_trace, lattice_side_for, Args};
use fsi_pcyclic::Spin;
use fsi_runtime::trace;
use fsi_selinv::{fsi_with_q, Parallelism, Pattern, Selection};

/// Runs `f` under a span named `name` and returns its stage Gflop/s.
fn stage_rate<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, f64) {
    let span = trace::span(name);
    let out = f();
    let stats = span.finish();
    (out, stats.gflops())
}

fn main() {
    let args = Args::parse();
    let export = init_trace("fig8_top", &args);
    let paper = args.paper_scale();
    let sizes = args.get_list(
        "N",
        if paper {
            &[256, 400, 576, 784, 1024]
        } else {
            &[36, 64, 100, 144]
        },
    );
    let l = args.get_usize("L", if paper { 100 } else { 60 });
    let c = args.get_usize("c", if paper { 10 } else { 6 });
    banner("FSI performance rate by stage (paper Fig. 8 top)", paper);
    println!(
        "(L, c) = ({l}, {c}), b = {} block columns selected\n",
        l / c
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "N", "CLS", "BSOFI", "WRP", "FSI", "DGEMM"
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "", "Gflop/s", "Gflop/s", "Gflop/s", "Gflop/s", "Gflop/s"
    );

    for &n_req in &sizes {
        let nx = lattice_side_for(n_req);
        let n = nx * nx;
        let pc = hubbard_matrix(nx, l, n as u64, Spin::Up);
        let sel = Selection::new(Pattern::Columns, c, c / 2);

        // Stage rates come from span-scoped flop attribution: each stage
        // runs under its own span, whose `SpanStats` carries exactly the
        // flops charged inside it (not by unrelated work).
        let (clustered, cls_rate) = stage_rate("cls", || {
            fsi_selinv::cls(fsi_runtime::Par::Seq, fsi_runtime::Par::Seq, &pc, c, sel.q)
        });

        let (g_red, bsofi_rate) = stage_rate("bsofi", || {
            fsi_selinv::bsofi(
                fsi_runtime::Par::Seq,
                fsi_runtime::Par::Seq,
                &clustered.reduced,
            )
        });

        let (_sel_out, wrap_rate) = stage_rate("wrap", || {
            fsi_selinv::wrap(fsi_runtime::Par::Seq, &pc, &clustered, &g_red, &sel)
        });

        // Whole-pipeline rate (the driver opens its own "fsi" span; this
        // outer one just scopes the rate measurement).
        let (_, fsi_rate) = stage_rate("fsi-total", || {
            fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy")
        });

        // DGEMM reference: N×N product repeated to ≥ the FSI volume.
        let a = fsi_dense::test_matrix(n, n, 1);
        let bmat = fsi_dense::test_matrix(n, n, 2);
        let (_, dgemm_rate) = stage_rate("dgemm", || {
            let reps = 8usize;
            for _ in 0..reps {
                std::hint::black_box(fsi_dense::mul(&a, &bmat));
            }
        });

        println!(
            "{:>6} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            n, cls_rate, bsofi_rate, wrap_rate, fsi_rate, dgemm_rate
        );
    }
    println!("\nshape check (paper): BSOFI < CLS ≈ WRP ≈ FSI ≲ DGEMM");
    export.finish(None);
}
