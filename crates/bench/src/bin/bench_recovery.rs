//! Crash-recovery drill: kills the durable sweep engine and the
//! simulation service at every protocol boundary and asserts 100%
//! detect-and-resume with **bitwise-identical** fields, signs, Green's
//! functions, and measurement bins, recording the verdicts to
//! `results/BENCH_recovery.json` for the sentinel (`bench_report`).
//!
//! Two tiers of kill sites:
//!
//! 1. **DQMC checkpoints** (always compiled) — a [`fsi_dqmc::DurableSweeper`]
//!    trajectory is checkpointed at a sweep boundary, resumed, and
//!    compared bit-for-bit against the uninterrupted reference
//!    (`dqmc.resume_boundary`, at *every* boundary); a torn current
//!    generation must fall back to the previous one and still resume
//!    bitwise (`dqmc.torn_fallback`).
//! 2. **Service durability** (`--features fault-inject`) — the
//!    `fsi_service::killpoint` plan simulates a `SIGKILL` at each
//!    durability boundary: right after the write-ahead journal append
//!    (`service.kill_after_journal`), mid-checkpoint leaving a torn
//!    envelope (`service.kill_mid_checkpoint`), parked between
//!    checkpoints (`service.kill_between_checkpoints`), plus a wedged
//!    worker the watchdog must requeue around without any restart
//!    (`service.watchdog_stall`). Every recovered job's bins must match
//!    a clean serial reference bitwise.
//!
//! Usage: `bench_recovery [--smoke] [--label=NAME] [--out=PATH]`
//!
//! `ci/bench_smoke.sh` runs `--smoke` as a **gating** step: any site
//! that fails to detect its crash or resume bitwise aborts the run, and
//! the sentinel holds `detect_rate` at exactly 1.0 thereafter.

use std::path::{Path, PathBuf};
use std::time::SystemTime;

use fsi_bench::Args;
use fsi_dqmc::{DurableSweeper, SweepCheckpoint, SweepConfig};
use fsi_pcyclic::{BlockBuilder, HubbardParams, Spin, SquareLattice};
use fsi_runtime::ckpt::Generation;
use fsi_runtime::trace::Json;
use fsi_selinv::Parallelism;
#[cfg(feature = "fault-inject")]
use fsi_selinv::{generate_fields, trace_measure, MatrixTask};
#[cfg(feature = "fault-inject")]
use fsi_service::{JobSpec, Service, ServiceConfig};

/// One kill site's verdict.
struct SiteResult {
    name: &'static str,
    /// The crash (or stall) was observed where it was armed.
    detected: bool,
    /// Post-recovery state matched the uninterrupted reference bitwise.
    bitwise: bool,
    detail: String,
}

impl SiteResult {
    fn passed(&self) -> bool {
        self.detected && self.bitwise
    }
}

fn drill_builder() -> BlockBuilder {
    BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(8))
}

fn drill_cfg() -> SweepConfig {
    SweepConfig {
        c: 4,
        stabilize_every: 4,
        ..SweepConfig::default()
    }
}

/// A scratch checkpoint path under the OS temp dir, unique per process
/// so parallel CI lanes cannot collide.
fn scratch_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fsi-recovery-{tag}-{}.ckpt", std::process::id()))
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(fsi_runtime::ckpt::prev_path(path));
}

/// Bitwise comparison of two bin sets (exact `f64` bit patterns, not
/// tolerance): the whole point of the drill.
fn bins_equal(a: &[(u64, Vec<f64>)], b: &[(u64, Vec<f64>)]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((sa, qa), (sb, qb))| {
            sa == sb
                && qa.len() == qb.len()
                && qa.iter().zip(qb).all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

/// Full bitwise state comparison of two sweepers at the same boundary:
/// field, sign, and both spins' Green's functions.
fn sweepers_equal(a: &DurableSweeper<'_>, b: &DurableSweeper<'_>) -> bool {
    if a.sweeper().field() != b.sweeper().field() {
        return false;
    }
    if a.sweeper().sign().to_bits() != b.sweeper().sign().to_bits() {
        return false;
    }
    Spin::BOTH.into_iter().all(|spin| {
        let (ga, gb) = (a.sweeper().green(spin), b.sweeper().green(spin));
        ga.as_slice()
            .iter()
            .zip(gb.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
    })
}

/// Site 1: checkpoint/resume at **every** sweep boundary of a
/// trajectory must reproduce the uninterrupted run bit-for-bit.
fn dqmc_resume_site(total: u64) -> SiteResult {
    let builder = drill_builder();
    let cfg = drill_cfg();
    let seed = 41;
    let mut reference = DurableSweeper::new(&builder, cfg, seed).expect("reference init");
    reference
        .run_to(total, Parallelism::Serial, None, 1)
        .expect("reference run");

    let path = scratch_path("resume");
    let mut boundaries = 0u64;
    let mut mismatches = Vec::new();
    for stop in 1..total {
        cleanup(&path);
        let mut first = DurableSweeper::new(&builder, cfg, seed).expect("first leg init");
        first
            .run_to(stop, Parallelism::Serial, Some(&path), 1)
            .expect("first leg");
        drop(first); // the "crash": only the checkpoint file survives
        let (ckpt, generation) =
            SweepCheckpoint::load(&path).expect("checkpoint written every sweep");
        if generation != Generation::Current || ckpt.sweep != stop {
            mismatches.push(format!("stop {stop}: wrong generation/sweep"));
            continue;
        }
        let mut resumed = DurableSweeper::resume(&builder, ckpt, seed).expect("resume");
        resumed
            .run_to(total, Parallelism::Serial, None, 1)
            .expect("second leg");
        boundaries += 1;
        if !bins_equal(resumed.bins(), reference.bins()) || !sweepers_equal(&resumed, &reference) {
            mismatches.push(format!("stop {stop}: bitwise mismatch"));
        }
    }
    cleanup(&path);
    SiteResult {
        name: "dqmc.resume_boundary",
        detected: boundaries == total - 1,
        bitwise: mismatches.is_empty(),
        detail: if mismatches.is_empty() {
            format!("{boundaries} boundaries bitwise-equal over {total} sweeps")
        } else {
            mismatches.join("; ")
        },
    }
}

/// Site 2: a torn current checkpoint generation must be detected, fall
/// back to the previous generation, and still resume bitwise.
fn dqmc_torn_site(total: u64) -> SiteResult {
    let builder = drill_builder();
    let cfg = drill_cfg();
    let seed = 43;
    let mut reference = DurableSweeper::new(&builder, cfg, seed).expect("reference init");
    reference
        .run_to(total, Parallelism::Serial, None, 1)
        .expect("reference run");

    let path = scratch_path("torn");
    cleanup(&path);
    let mut first = DurableSweeper::new(&builder, cfg, seed).expect("first leg init");
    // Two checkpoints: sweep 1 rotates to `.prev` when sweep 2 lands.
    first
        .run_to(2, Parallelism::Serial, Some(&path), 1)
        .expect("first leg");
    drop(first);
    // Tear the current generation mid-write (half the envelope).
    let sealed = std::fs::read(&path).expect("read current generation");
    std::fs::write(&path, &sealed[..sealed.len() / 2]).expect("tear current generation");

    let loaded = SweepCheckpoint::load(&path);
    let (detected, bitwise, detail) = match loaded {
        Ok((ckpt, Generation::Previous)) if ckpt.sweep == 1 => {
            let mut resumed = DurableSweeper::resume(&builder, ckpt, seed).expect("resume");
            resumed
                .run_to(total, Parallelism::Serial, None, 1)
                .expect("second leg");
            let ok = bins_equal(resumed.bins(), reference.bins())
                && sweepers_equal(&resumed, &reference);
            (
                true,
                ok,
                if ok {
                    "fell back to previous generation, resumed bitwise".to_string()
                } else {
                    "fallback resumed but diverged".to_string()
                },
            )
        }
        Ok((ckpt, generation)) => (
            false,
            false,
            format!(
                "torn current not detected: got {generation:?} at sweep {}",
                ckpt.sweep
            ),
        ),
        Err(e) => (false, false, format!("no fallback generation: {e}")),
    };
    cleanup(&path);
    SiteResult {
        name: "dqmc.torn_fallback",
        detected,
        bitwise,
        detail,
    }
}

#[cfg(feature = "fault-inject")]
mod service_drills {
    use super::*;
    use fsi_runtime::metrics;
    use fsi_service::killpoint::{self, KillSite};

    const SWEEPS: usize = 4;

    pub fn drill_spec(seed: u64) -> JobSpec {
        JobSpec::new("drill", 2, 8, 4, SWEEPS, seed)
    }

    /// A fresh, empty state directory for one drill site.
    fn state_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fsi-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn service_cfg(workers: usize, dir: &Path) -> ServiceConfig {
        let mut cfg = ServiceConfig::small(workers);
        cfg.state_dir = Some(dir.to_path_buf());
        cfg.checkpoint_every = 1;
        // Keep the watchdog out of the crash drills (the stall site
        // overrides this to invite it in).
        cfg.stall_timeout_ms = 60_000;
        cfg
    }

    /// Clean per-sweep reference bins: the same deterministic serial
    /// pipeline the service workers run.
    pub fn reference_bins(spec: &JobSpec) -> Vec<Vec<f64>> {
        let builder = BlockBuilder::new(
            SquareLattice::square(spec.side),
            HubbardParams::paper_validation(spec.l),
        );
        generate_fields(spec.l, spec.n_sites(), spec.sweeps, spec.seed)
            .into_iter()
            .enumerate()
            .map(|(sweep, field)| {
                let mut task = MatrixTask::new(sweep, field, spec.c, spec.pattern, spec.seed);
                task.run(Parallelism::Serial, &builder, &trace_measure)
                    .expect("clean reference run");
                task.into_quantities().1
            })
            .collect()
    }

    fn outcome_matches(outcome: &fsi_service::JobOutcome, reference: &[Vec<f64>]) -> bool {
        !outcome.summary.failed
            && outcome.bins.len() == reference.len()
            && outcome.bins.iter().all(|(sweep, q)| {
                q.len() == reference[*sweep].len()
                    && q.iter()
                        .zip(&reference[*sweep])
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            })
    }

    /// Crash immediately after the journal append: no checkpoint exists,
    /// recovery must replay the journal and rerun the job from scratch.
    pub fn kill_after_journal() -> SiteResult {
        let _guard = killpoint::test_lock();
        let dir = state_dir("journal");
        let spec = drill_spec(5001);
        let reference = reference_bins(&spec);
        killpoint::arm(KillSite::AfterJournalAppend);
        let service = Service::start(service_cfg(2, &dir));
        let handle = service
            .handle()
            .submit(spec)
            .expect("admitted before the crash");
        // The in-memory job still completes; only durable state froze.
        let _ = handle.wait();
        let fired = killpoint::disarm();
        service.kill();

        let (recovered, handles) =
            Service::recover(service_cfg(2, &dir)).expect("recover from state dir");
        let survivors = handles.len();
        let outcome = handles.into_iter().map(|h| h.wait()).next();
        recovered.shutdown();
        let bitwise = outcome
            .as_ref()
            .is_some_and(|o| outcome_matches(o, &reference));
        let _ = std::fs::remove_dir_all(&dir);
        SiteResult {
            name: "service.kill_after_journal",
            detected: fired == 1 && survivors == 1,
            bitwise,
            detail: format!("fired={fired}, {survivors} job(s) replayed from the journal"),
        }
    }

    /// Crash mid-checkpoint: the second checkpoint write is torn in
    /// place, so recovery must fall back to the previous generation
    /// (one completed bin) and rerun only the rest.
    pub fn kill_mid_checkpoint() -> SiteResult {
        let _guard = killpoint::test_lock();
        let dir = state_dir("midckpt");
        let spec = drill_spec(5002);
        let reference = reference_bins(&spec);
        // Let the first per-bin checkpoint land intact; tear the second.
        killpoint::arm_skip(KillSite::MidCheckpoint, 1, 1);
        let service = Service::start(service_cfg(1, &dir));
        let handle = service
            .handle()
            .submit(spec)
            .expect("admitted before the crash");
        let _ = handle.wait();
        let fired = killpoint::disarm();
        service.kill();

        let before = metrics::snapshot();
        let (recovered, handles) =
            Service::recover(service_cfg(1, &dir)).expect("recover from state dir");
        let survivors = handles.len();
        let outcome = handles.into_iter().map(|h| h.wait()).next();
        let fallbacks = metrics::snapshot()
            .delta_since(&before)
            .counters
            .get("runtime.ckpt.fallbacks")
            .copied()
            .unwrap_or(0);
        recovered.shutdown();
        let bitwise = outcome
            .as_ref()
            .is_some_and(|o| outcome_matches(o, &reference));
        let _ = std::fs::remove_dir_all(&dir);
        SiteResult {
            name: "service.kill_mid_checkpoint",
            detected: fired == 1 && survivors == 1 && fallbacks >= 1,
            bitwise,
            detail: format!("fired={fired}, {fallbacks} torn-generation fallback(s) on recovery"),
        }
    }

    /// Crash between checkpoints: the worker is parked two bins in, the
    /// service is killed, and recovery resumes from the last intact
    /// checkpoint instead of rerunning from scratch.
    pub fn kill_between_checkpoints() -> SiteResult {
        let _guard = killpoint::test_lock();
        let dir = state_dir("between");
        let spec = drill_spec(5003);
        let reference = reference_bins(&spec);
        // Sweeps 0 and 1 pass the stall gate; the worker parks entering
        // sweep 2, after the sweep-1 checkpoint landed.
        killpoint::arm_skip(KillSite::WorkerStall, 2, 1);
        let service = Service::start(service_cfg(1, &dir));
        let handle = service
            .handle()
            .submit(spec)
            .expect("admitted before the crash");
        let mut bins_seen = 0usize;
        while bins_seen < 2 {
            match handle.events().recv() {
                Ok(fsi_service::JobEvent::Bin { .. }) => bins_seen += 1,
                Ok(_) => {}
                Err(_) => break,
            }
        }
        // Give the worker time to park on the stall gate so the durable
        // state is frozen at exactly two checkpointed bins.
        std::thread::sleep(std::time::Duration::from_millis(100));
        // kill() freezes durable state first, then joins the workers —
        // the parked one must be released for the join to complete.
        let killer = std::thread::spawn(move || service.kill());
        while !killer.is_finished() {
            killpoint::release_stall();
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        killer.join().expect("kill thread");
        let fired = killpoint::disarm();

        let (recovered, handles) =
            Service::recover(service_cfg(1, &dir)).expect("recover from state dir");
        let survivors = handles.len();
        let outcome = handles.into_iter().map(|h| h.wait()).next();
        recovered.shutdown();
        let resumed_bins = outcome.as_ref().map(|o| o.bins.len()).unwrap_or(0);
        let bitwise = outcome
            .as_ref()
            .is_some_and(|o| outcome_matches(o, &reference));
        let _ = std::fs::remove_dir_all(&dir);
        SiteResult {
            name: "service.kill_between_checkpoints",
            detected: fired == 1 && survivors == 1,
            bitwise,
            detail: format!(
                "fired={fired}, parked at sweep 2, resumed to {resumed_bins}/{SWEEPS} bins"
            ),
        }
    }

    /// No restart at all: one worker wedges mid-sweep and the watchdog
    /// must requeue its sweep to the healthy worker, with the job's bins
    /// still bitwise-identical.
    pub fn watchdog_stall() -> SiteResult {
        let _guard = killpoint::test_lock();
        let spec = drill_spec(5004);
        let reference = reference_bins(&spec);
        let mut cfg = ServiceConfig::small(2);
        cfg.state_dir = None; // supervision drill, no durability needed
        cfg.stall_timeout_ms = 150;
        cfg.watchdog_poll_ms = 25;
        killpoint::arm(KillSite::WorkerStall);
        let before = metrics::snapshot();
        let service = Service::start(cfg);
        let handle = service.handle().submit(spec).expect("admitted");
        let outcome = handle.wait();
        let stalls = metrics::snapshot()
            .delta_since(&before)
            .counters
            .get("service.watchdog.stalls")
            .copied()
            .unwrap_or(0);
        killpoint::release_stall();
        service.shutdown();
        let fired = killpoint::disarm();
        let bitwise = outcome_matches(&outcome, &reference);
        SiteResult {
            name: "service.watchdog_stall",
            detected: fired == 1 && stalls >= 1,
            bitwise,
            detail: format!("fired={fired}, watchdog requeued {stalls} stalled sweep(s)"),
        }
    }
}

fn main() {
    let args = Args::parse();
    fsi_bench::init_trace("bench_recovery", &args);
    let smoke = args.flag("smoke");
    let label = args
        .flag_value("label")
        .unwrap_or(if smoke { "smoke" } else { "full" })
        .to_string();
    let out = args
        .flag_value("out")
        .unwrap_or("results/BENCH_recovery.json")
        .to_string();
    let total_sweeps: u64 = if smoke { 4 } else { 8 };

    println!("bench_recovery: crash drill over DQMC + service kill sites (label={label})");
    #[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
    let mut sites = vec![dqmc_resume_site(total_sweeps), dqmc_torn_site(total_sweeps)];
    #[cfg(feature = "fault-inject")]
    {
        sites.push(service_drills::kill_after_journal());
        sites.push(service_drills::kill_mid_checkpoint());
        sites.push(service_drills::kill_between_checkpoints());
        sites.push(service_drills::watchdog_stall());
    }
    #[cfg(not(feature = "fault-inject"))]
    println!("  (service kill sites need --features fault-inject; running DQMC tier only)");

    for site in &sites {
        println!(
            "  [{}] {} — detected={} bitwise={} ({})",
            if site.passed() { "PASS" } else { "FAIL" },
            site.name,
            site.detected,
            site.bitwise,
            site.detail
        );
    }
    let passed = sites.iter().filter(|s| s.passed()).count();

    let unix_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let site_json = sites
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("name".into(), Json::Str(s.name.into())),
                ("detected".into(), Json::Bool(s.detected)),
                ("bitwise".into(), Json::Bool(s.bitwise)),
                ("passed".into(), Json::Bool(s.passed())),
                ("detail".into(), Json::Str(s.detail.clone())),
            ])
        })
        .collect();
    let json = Json::Obj(vec![
        ("kind".into(), Json::Str("bench_recovery".into())),
        ("schema".into(), Json::Int(1)),
        ("label".into(), Json::Str(label)),
        ("unix_ms".into(), Json::Int(unix_ms)),
        ("smoke".into(), Json::Bool(smoke)),
        ("sites".into(), Json::Int(sites.len() as u64)),
        ("passed".into(), Json::Int(passed as u64)),
        ("site_results".into(), Json::Arr(site_json)),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    fsi_bench::write_artifact(&out, &json.to_string()).expect("write bench json");
    println!("wrote {out} ({passed}/{} sites passed)", sites.len());
    assert_eq!(
        passed,
        sites.len(),
        "crash drill must detect and bitwise-resume at every kill site"
    );
}
