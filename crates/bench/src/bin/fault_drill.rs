//! Fault-injection drill: arms every (stage × fault kind) injection site
//! against a fixed DQMC workload and verifies the health guardrails
//! detect the corruption, the recovery ladder heals it, and the healed
//! run reproduces the clean Monte Carlo trajectory.
//!
//! Per site the drill asserts three things:
//!
//! 1. **Fired** — the armed fault actually corrupted a buffer (a site
//!    that never fires proves nothing).
//! 2. **Detected + recovered** — the workload still returns `Ok`, and the
//!    sweep driver's [`fsi_dqmc::RecoveryStats`] logged at least one
//!    health event (silent success would mean the corruption slipped
//!    through unprobed).
//! 3. **Trajectory preserved** — the final HS field matches the clean run
//!    bitwise and the field-derived observable agrees to `1e-10`
//!    (injection consumes no RNG, so recovery must not perturb the
//!    Metropolis decision sequence).
//!
//! A final timing pass measures the clean-path probe overhead by running
//! the same FSI workload with probes enabled vs. globally disabled.
//! Everything lands in `results/BENCH_fault_drill.json` (see
//! `results/schema.md`).
//!
//! Usage: `fault_drill [--smoke] [--label=NAME] [--out=PATH]`
//!
//! `--smoke` drills a 3-site subset (one per probe family) for the CI
//! smoke lane; the full grid is 21 sites.

use std::time::SystemTime;

use fsi_bench::Args;
use fsi_dqmc::{equal_time_green_stable, SweepConfig, Sweeper};
use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
use fsi_runtime::health::inject::{self, FaultKind, Site, ANY_BLOCK};
use fsi_runtime::health::{self, Stage};
use fsi_runtime::trace::Json;
use fsi_runtime::{Par, Stopwatch};
use fsi_selinv::{fsi_with_q, Parallelism, Pattern, Selection};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Slices in the drill workload. Small enough to keep the full grid fast,
/// large enough that a sweep spans several stabilization windows (so the
/// cluster cache scores reuse and `Stage::Cache` sites can fire).
const L: usize = 16;
/// Cluster size; `stabilize_every = c` keeps the cache anchor residue
/// fixed across refreshes — the cacheable regime.
const C: usize = 4;
const SEED: u64 = 4242;
const SWEEPS: usize = 2;

/// Everything the drill compares between a clean and a faulted run.
struct Outcome {
    /// Final HS field (the Monte Carlo trajectory fingerprint).
    field: Vec<i8>,
    /// Field-derived observable: `Σ_σ tr G_σ(0) / N`, recomputed fresh
    /// from the final field so equal fields give bitwise-equal values.
    obs: f64,
    /// Health events the recovery ladder saw.
    events: usize,
    /// Rung executions (invalidate, shrink, dense-wrap, from-scratch).
    rungs: [u64; 4],
}

fn drill_builder() -> BlockBuilder {
    BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(L))
}

fn field_observable(builder: &BlockBuilder, field: &HsField) -> f64 {
    let mut obs = 0.0;
    for spin in Spin::BOTH {
        let pc = hubbard_pcyclic(builder, field, spin);
        let g = equal_time_green_stable(Par::Seq, Par::Seq, &pc, 0, C)
            .expect("post-run observable on a healthy field");
        let n = g.rows();
        obs += (0..n).map(|i| g[(i, i)]).sum::<f64>() / n as f64;
    }
    obs
}

/// Runs the fixed workload (build sweeper + `SWEEPS` sweeps). The armed
/// injection plan, if any, fires somewhere inside; the recovery ladder is
/// expected to absorb it.
fn run_workload() -> Result<Outcome, health::FsiError> {
    let builder = drill_builder();
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let field = HsField::random(L, 4, &mut rng);
    let cfg = SweepConfig {
        c: C,
        stabilize_every: C,
        ..SweepConfig::default()
    };
    let mut s = Sweeper::new(&builder, field, cfg)?;
    for _ in 0..SWEEPS {
        s.sweep(&mut rng, Parallelism::Serial)?;
    }
    let stats = s.recovery_stats();
    let rungs = [
        stats.cache_invalidations,
        stats.cluster_shrinks,
        stats.dense_fallbacks,
        stats.from_scratch,
    ];
    let events = stats.events.len();
    let obs = field_observable(&builder, s.field());
    Ok(Outcome {
        field: s.field().to_flat(),
        obs,
        events,
        rungs,
    })
}

/// The full injection grid: every stage-boundary probe × every fault it
/// can see. `BitFlip` is a quiet finite corruption only the cache
/// checksum detects, so it is drilled at `Stage::Cache` alone.
fn full_grid() -> Vec<Site> {
    let mut sites = Vec::new();
    for stage in [Stage::Cls, Stage::Bsofi, Stage::Green, Stage::Wrap] {
        for kind in [
            FaultKind::Nan,
            FaultKind::Inf,
            FaultKind::Huge,
            FaultKind::Scale,
        ] {
            sites.push(Site {
                stage,
                block: ANY_BLOCK,
                kind,
            });
        }
    }
    for kind in [
        FaultKind::Nan,
        FaultKind::Inf,
        FaultKind::Huge,
        FaultKind::Scale,
        FaultKind::BitFlip,
    ] {
        sites.push(Site {
            stage: Stage::Cache,
            block: ANY_BLOCK,
            kind,
        });
    }
    sites
}

/// One site per probe family for the CI smoke lane.
fn smoke_grid() -> Vec<Site> {
    vec![
        Site {
            stage: Stage::Cls,
            block: ANY_BLOCK,
            kind: FaultKind::Nan,
        },
        Site {
            stage: Stage::Wrap,
            block: ANY_BLOCK,
            kind: FaultKind::Inf,
        },
        Site {
            stage: Stage::Cache,
            block: ANY_BLOCK,
            kind: FaultKind::BitFlip,
        },
    ]
}

/// Clean-path probe cost: the same FSI workload with probes on vs.
/// globally off, at a shape where the dense kernels dominate (so the
/// percentage is representative, not a small-matrix artifact).
fn probe_overhead_pct(budget_s: f64) -> f64 {
    let builder = BlockBuilder::new(
        SquareLattice::square(8),
        HubbardParams::paper_validation(32),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let field = HsField::random(32, 64, &mut rng);
    let pc = hubbard_pcyclic(&builder, &field, Spin::Up);
    let sel = Selection::new(Pattern::Columns, 8, 3);
    let run = || {
        let _ = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
    };
    // Interleaved best-of: batches of calls per timed sample (amortizes
    // timer and allocator noise), alternating configurations so clock and
    // cache drift hit both equally.
    let batch = |on: bool| {
        health::set_probes_enabled(on);
        let sw = Stopwatch::start();
        for _ in 0..4 {
            run();
        }
        let s = sw.seconds();
        health::set_probes_enabled(true);
        s
    };
    // Warm-up until caches and clocks settle — the drill workload that runs
    // just before this leaves the machine in a hot, throttled state that
    // would otherwise pollute the first pairs.
    let warm = Stopwatch::start();
    while warm.seconds() < 0.15 * budget_s {
        batch(true);
    }
    // Median of paired ratios: each sample is one on-batch and one off-batch
    // taken back-to-back (order alternating), so clock and thermal drift —
    // the dominant noise on a shared VM — hits both sides of every pair
    // almost equally and cancels in the ratio. The median then discards the
    // pairs a scheduling spike did split.
    let mut ratios = Vec::new();
    let budget = Stopwatch::start();
    let mut flip = false;
    while budget.seconds() < budget_s || ratios.len() < 8 {
        let (on, off) = if flip {
            let off = batch(false);
            (batch(true), off)
        } else {
            (batch(true), batch(false))
        };
        ratios.push((on - off) / off * 100.0);
        flip = !flip;
    }
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let label = args
        .flag_value("label")
        .unwrap_or(if smoke { "smoke" } else { "full" })
        .to_string();
    let out = args
        .flag_value("out")
        .unwrap_or("results/BENCH_fault_drill.json")
        .to_string();
    let sites = if smoke { smoke_grid() } else { full_grid() };

    println!(
        "fault drill: {} sites, workload 2×2 Hubbard L={L} c={C}",
        sites.len()
    );
    let clean = run_workload().expect("clean run is healthy");
    assert_eq!(clean.events, 0, "clean run must not trip any probe");

    println!(
        "{:<8} {:<8} {:>6} {:>7} {:>11} {:>12}  rungs",
        "stage", "fault", "fired", "events", "field", "obs delta"
    );
    let mut per_site = Vec::new();
    let mut failures = 0usize;
    for site in &sites {
        inject::arm(*site);
        let result = run_workload();
        let fired = inject::disarm();
        let (detected, recovered, field_ok, obs_delta, rungs) = match &result {
            Ok(o) => (
                o.events > 0,
                true,
                o.field == clean.field,
                (o.obs - clean.obs).abs(),
                o.rungs,
            ),
            Err(_) => (true, false, false, f64::INFINITY, [0; 4]),
        };
        let ok = fired > 0 && detected && recovered && field_ok && obs_delta <= 1e-10;
        if !ok {
            failures += 1;
        }
        println!(
            "{:<8} {:<8} {:>6} {:>7} {:>11} {:>12.3e}  {:?}{}",
            site.stage.name(),
            site.kind.name(),
            fired,
            result.as_ref().map(|o| o.events).unwrap_or(0),
            if field_ok { "bitwise" } else { "DIVERGED" },
            obs_delta,
            rungs,
            if ok { "" } else { "  <-- FAIL" },
        );
        per_site.push(Json::Obj(vec![
            ("stage".into(), Json::Str(site.stage.name().into())),
            ("fault".into(), Json::Str(site.kind.name().into())),
            ("fired".into(), Json::Int(fired)),
            ("detected".into(), Json::Bool(detected)),
            ("recovered".into(), Json::Bool(recovered)),
            ("field_bitwise".into(), Json::Bool(field_ok)),
            ("obs_delta".into(), Json::Num(obs_delta)),
            (
                "rungs".into(),
                Json::Arr(rungs.iter().map(|&r| Json::Int(r)).collect()),
            ),
        ]));
    }

    // Sticky-fault ladder exercise: a budget-6 NaN keeps re-poisoning the
    // retries (each attempt consumes one fire per spin), forcing the
    // ladder past cache invalidation and cluster shrinking before the
    // dense-wrap rung finally runs on a clean rebuild.
    inject::arm_times(
        Site {
            stage: Stage::Cls,
            block: ANY_BLOCK,
            kind: FaultKind::Nan,
        },
        6,
    );
    let sticky = run_workload();
    let sticky_fired = inject::disarm();
    let sticky_ok = matches!(&sticky, Ok(o) if o.rungs.iter().sum::<u64>() >= 3);
    if !sticky_ok {
        failures += 1;
    }
    let sticky_rungs = sticky.as_ref().map(|o| o.rungs).unwrap_or([0; 4]);
    println!(
        "sticky cls/nan ×3: fired {sticky_fired}, rungs {sticky_rungs:?}{}",
        if sticky_ok { "" } else { "  <-- FAIL" }
    );

    // --- Flight recorder drill: with stage tracing on, a detected fault
    // must leave an in-memory incident dump holding the most recent spans
    // (the ring is process-wide, so a preceding clean traced run
    // legitimately populates it) and naming the faulted stage in the
    // health event line. This is the PR-6 acceptance criterion for the
    // flight recorder.
    let prior = fsi_runtime::trace::level();
    fsi_runtime::trace::set_level(fsi_runtime::TraceLevel::Stages);
    fsi_runtime::trace::clear();
    fsi_runtime::metrics::flight::clear();
    run_workload().expect("clean traced run is healthy");
    inject::arm(Site {
        stage: Stage::Cls,
        block: ANY_BLOCK,
        kind: FaultKind::Nan,
    });
    let flight_run = run_workload();
    inject::disarm();
    fsi_runtime::trace::set_level(prior);
    fsi_runtime::trace::clear();
    assert!(flight_run.is_ok(), "flight drill run must still recover");
    let dump = fsi_runtime::metrics::flight::last_dump()
        .expect("a health event must trigger an incident dump");
    let span_lines = dump
        .lines()
        .filter(|l| l.contains("\"type\":\"span\""))
        .count();
    assert!(
        span_lines >= 32,
        "incident dump must hold >= 32 recent spans (got {span_lines})"
    );
    assert!(
        dump.contains("\"name\":\"health.non_finite\"") && dump.contains("\"stage\":\"cls\""),
        "incident dump must name the faulted stage's health event"
    );
    assert!(
        dump.lines()
            .any(|l| l.contains("\"type\":\"span\"") && l.contains("\"name\":\"cls")),
        "incident dump must include spans of the faulted stage"
    );
    println!("flight recorder: incident dump holds {span_lines} spans incl. faulted stage (cls)");

    let overhead = probe_overhead_pct(if smoke { 0.3 } else { 2.0 });
    println!("clean-path probe overhead: {overhead:.3}%");

    let passed = sites.len() - failures.min(sites.len());
    let json = Json::Obj(vec![
        ("label".into(), Json::Str(label)),
        (
            "unix_ms".into(),
            Json::Int(
                SystemTime::now()
                    .duration_since(SystemTime::UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0),
            ),
        ),
        (
            "shape".into(),
            Json::Obj(vec![
                ("N".into(), Json::Int(4)),
                ("L".into(), Json::Int(L as u64)),
                ("c".into(), Json::Int(C as u64)),
                ("sweeps".into(), Json::Int(SWEEPS as u64)),
            ]),
        ),
        ("sites".into(), Json::Int(sites.len() as u64)),
        ("passed".into(), Json::Int(passed as u64)),
        (
            "sticky_ladder_rungs".into(),
            Json::Arr(sticky_rungs.iter().map(|&r| Json::Int(r)).collect()),
        ),
        ("probe_overhead_pct".into(), Json::Num(overhead)),
        ("flight_dump_spans".into(), Json::Int(span_lines as u64)),
        ("per_site".into(), Json::Arr(per_site)),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    fsi_bench::write_artifact(&out, &json.to_string()).expect("write drill json");
    println!("wrote {out}");

    assert_eq!(failures, 0, "{failures} drill site(s) failed");
    println!("all {} sites detected + recovered", sites.len());
}
