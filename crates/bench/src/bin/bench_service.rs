//! Service-tier benchmark: drives the `fsi-service` job queue with
//! thousands of concurrent tenant jobs and records job-latency
//! percentiles, queue-wait, throughput, steal counts, and
//! admission/degradation accounting to `results/BENCH_service.json`.
//!
//! Three phases:
//!
//! 1. **Throughput** — `jobs` small jobs from four tenants submitted
//!    back-to-back (all resident in the bounded queue at once), drained
//!    by a work-stealing worker pool; p50/p99 job latency and queue
//!    wait, jobs/s, and `runtime.steal.*` deltas are recorded.
//! 2. **Admission** — a deliberately tiny queue is saturated with
//!    non-blocking submits; the rejected count proves the bound holds
//!    (rejected-with-reason, never deadlock). A Fig. 9-sized spec
//!    checks the memory-budget gate.
//! 3. **Fault isolation** (`--features fault-inject`) — one injected
//!    NaN among several jobs; the run asserts exactly one job degrades
//!    via its per-job ladder and its neighbors' bins stay
//!    bitwise-identical to a clean reference, recording the verdict as
//!    `fault_isolated`.
//!
//! Usage: `bench_service [--smoke] [--label=NAME] [--out=PATH]
//! [jobs=N] [workers=W] [sweeps=S]`
//!
//! `ci/bench_smoke.sh` runs `--smoke` as a non-gating step; the sentinel
//! (`bench_report`) judges the summary warn-only against the checked-in
//! baseline.

use std::time::SystemTime;

use fsi_bench::Args;
#[cfg(feature = "fault-inject")]
use fsi_pcyclic::{BlockBuilder, HubbardParams, SquareLattice};
use fsi_runtime::metrics;
use fsi_runtime::trace::Json;
use fsi_runtime::Stopwatch;
#[cfg(feature = "fault-inject")]
use fsi_selinv::{generate_fields, trace_measure, MatrixTask, Parallelism};
use fsi_service::{AdmitError, JobSpec, Service, ServiceConfig};

const SIDE: usize = 2;
const L: usize = 8;
const C: usize = 4;
const TENANTS: [&str; 4] = ["alice", "bob", "carol", "dan"];

fn spec(tenant: &str, sweeps: usize, seed: u64) -> JobSpec {
    JobSpec::new(tenant, SIDE, L, C, sweeps, seed)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

struct ThroughputStats {
    jobs: usize,
    bins: usize,
    completed: usize,
    failed: usize,
    seconds: f64,
    p50_latency_ns: u64,
    p99_latency_ns: u64,
    p50_queue_wait_ns: u64,
    p99_queue_wait_ns: u64,
    steals: u64,
    steal_tasks_moved: u64,
}

/// Phase 1: all jobs resident in the queue at once, drained by stealing
/// workers.
fn throughput_phase(jobs: usize, sweeps: usize, workers: usize) -> ThroughputStats {
    let mut cfg = ServiceConfig::small(workers);
    // Every job queued concurrently: the bound is sized to the offered
    // load so admission never rejects in this phase.
    cfg.queue_capacity = jobs * sweeps;
    let service = Service::start(cfg);
    let handle = service.handle();
    let before = metrics::snapshot();
    let sw = Stopwatch::start();
    let submitted: Vec<_> = (0..jobs)
        .map(|j| {
            let tenant = TENANTS[j % TENANTS.len()];
            handle
                .submit(spec(tenant, sweeps, j as u64))
                .expect("queue sized to the offered load")
        })
        .collect();
    let outcomes: Vec<_> = submitted.into_iter().map(|h| h.wait()).collect();
    let seconds = sw.seconds();
    let delta = metrics::snapshot().delta_since(&before);
    service.shutdown();

    let mut latencies: Vec<u64> = outcomes.iter().map(|o| o.summary.latency_ns).collect();
    let mut waits: Vec<u64> = outcomes.iter().map(|o| o.summary.queue_wait_ns).collect();
    latencies.sort_unstable();
    waits.sort_unstable();
    let counter = |name: &str| delta.counters.get(name).copied().unwrap_or(0);
    ThroughputStats {
        jobs,
        bins: outcomes.iter().map(|o| o.bins.len()).sum(),
        completed: outcomes.iter().filter(|o| !o.summary.failed).count(),
        failed: outcomes.iter().filter(|o| o.summary.failed).count(),
        seconds,
        p50_latency_ns: percentile(&latencies, 0.50),
        p99_latency_ns: percentile(&latencies, 0.99),
        p50_queue_wait_ns: percentile(&waits, 0.50),
        p99_queue_wait_ns: percentile(&waits, 0.99),
        steals: counter("runtime.steal.hits"),
        steal_tasks_moved: counter("runtime.steal.tasks_moved"),
    }
}

/// Phase 2: saturate a tiny queue with non-blocking submits and count
/// the rejections; check the memory gate with a Fig. 9 OOM shape.
fn admission_phase(workers: usize) -> (usize, usize, bool) {
    let mut cfg = ServiceConfig::small(workers);
    cfg.queue_capacity = 64;
    let service = Service::start(cfg);
    let handle = service.handle();
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for j in 0..200 {
        match handle.submit(spec("burst", 2, j)) {
            Ok(h) => accepted.push(h),
            Err(AdmitError::QueueFull { .. }) => rejected += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    // The paper's pure-MPI OOM point (N = 576, L = 100, c = 10) must be
    // refused by the Edison memory model with a full worker complement.
    let mut cfg = ServiceConfig::small(24);
    cfg.memory = fsi_selinv::MemoryModel::edison();
    let mem_service = Service::start(cfg);
    let mut big = JobSpec::new("oom", 24, 100, 10, 1, 0);
    big.pattern = fsi_selinv::Pattern::Columns;
    let memory_gate_holds = matches!(
        mem_service.handle().submit(big),
        Err(AdmitError::MemoryBudget { .. })
    );
    mem_service.shutdown();
    for h in accepted.drain(..) {
        let o = h.wait();
        assert!(!o.summary.failed, "burst jobs must complete");
    }
    service.shutdown();
    (200 - rejected, rejected, memory_gate_holds)
}

/// Phase 3 (fault-inject builds): one injected NaN among `jobs` jobs;
/// returns `(degraded_jobs, fault_isolated)` where `fault_isolated` is 1
/// iff exactly one job degraded and every other job's bins match the
/// clean per-sweep reference bitwise.
#[cfg(feature = "fault-inject")]
fn fault_phase(workers: usize) -> (usize, u64) {
    use fsi_runtime::health::inject::{self, FaultKind, Site, ANY_BLOCK};
    use fsi_runtime::health::Stage;

    let _guard = inject::test_lock();
    let specs: Vec<JobSpec> = (0..8)
        .map(|i| spec(TENANTS[i % TENANTS.len()], 4, 7000 + i as u64))
        .collect();
    let references: Vec<Vec<Vec<f64>>> = specs.iter().map(reference_bins).collect();
    inject::arm_times(
        Site {
            stage: Stage::Wrap,
            block: ANY_BLOCK,
            kind: FaultKind::Nan,
        },
        1,
    );
    let service = Service::start(ServiceConfig::small(workers));
    let handle = service.handle();
    let handles: Vec<_> = specs
        .iter()
        .map(|s| handle.submit(s.clone()).expect("admitted"))
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    service.shutdown();
    inject::disarm();

    let degraded: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.summary.degradations > 0)
        .map(|(i, _)| i)
        .collect();
    let neighbors_clean = outcomes.iter().enumerate().all(|(i, o)| {
        degraded.contains(&i) || o.bins.iter().all(|(sweep, q)| q == &references[i][*sweep])
    });
    let all_recovered = outcomes.iter().all(|o| !o.summary.failed);
    let isolated = (degraded.len() == 1 && neighbors_clean && all_recovered) as u64;
    (degraded.len(), isolated)
}

/// Clean per-sweep reference bins for a spec (same deterministic task
/// pipeline the service runs).
#[cfg(feature = "fault-inject")]
fn reference_bins(spec: &JobSpec) -> Vec<Vec<f64>> {
    let builder = BlockBuilder::new(
        SquareLattice::square(spec.side),
        HubbardParams::paper_validation(spec.l),
    );
    generate_fields(spec.l, spec.n_sites(), spec.sweeps, spec.seed)
        .into_iter()
        .enumerate()
        .map(|(sweep, field)| {
            let mut task = MatrixTask::new(sweep, field, spec.c, spec.pattern, spec.seed);
            task.run(Parallelism::Serial, &builder, &trace_measure)
                .expect("clean reference run");
            task.into_quantities().1
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let label = args
        .flag_value("label")
        .unwrap_or(if smoke { "smoke" } else { "full" })
        .to_string();
    let out = args
        .flag_value("out")
        .unwrap_or("results/BENCH_service.json")
        .to_string();
    let default_jobs = if smoke { 1200 } else { 2400 };
    let jobs = args.get_usize("jobs", default_jobs);
    let sweeps = args.get_usize("sweeps", 2);
    let workers = args.get_usize("workers", fsi_runtime::default_threads().clamp(2, 8));

    println!("bench_service: {jobs} jobs x {sweeps} sweeps on {workers} workers (label={label})");
    let t = throughput_phase(jobs, sweeps, workers);
    println!(
        "  throughput: {:.1} jobs/s, p50 {:.2} ms, p99 {:.2} ms, {} steals",
        t.jobs as f64 / t.seconds,
        ms(t.p50_latency_ns),
        ms(t.p99_latency_ns),
        t.steals
    );
    let (accepted, rejected, memory_gate_holds) = admission_phase(workers);
    println!("  admission: {accepted} accepted, {rejected} rejected, memory gate holds: {memory_gate_holds}");
    assert!(rejected > 0, "the admission phase must saturate the queue");
    assert!(memory_gate_holds, "the Fig. 9 OOM shape must be refused");

    #[cfg(feature = "fault-inject")]
    let (degraded_jobs, fault_isolated) = fault_phase(workers);
    #[cfg(feature = "fault-inject")]
    println!("  fault: {degraded_jobs} degraded job(s), isolated={fault_isolated}");

    #[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
    let mut summary = vec![
        ("jobs".into(), Json::Int(t.jobs as u64)),
        ("bins".into(), Json::Int(t.bins as u64)),
        ("completed".into(), Json::Int(t.completed as u64)),
        ("failed_jobs".into(), Json::Int(t.failed as u64)),
        (
            "jobs_per_s".into(),
            Json::Num(t.jobs as f64 / t.seconds.max(1e-9)),
        ),
        ("p50_latency_ms".into(), Json::Num(ms(t.p50_latency_ns))),
        ("p99_latency_ms".into(), Json::Num(ms(t.p99_latency_ns))),
        (
            "p50_queue_wait_ms".into(),
            Json::Num(ms(t.p50_queue_wait_ns)),
        ),
        (
            "p99_queue_wait_ms".into(),
            Json::Num(ms(t.p99_queue_wait_ns)),
        ),
        ("steals".into(), Json::Int(t.steals)),
        ("steal_tasks_moved".into(), Json::Int(t.steal_tasks_moved)),
        ("rejected".into(), Json::Int(rejected as u64)),
    ];
    #[cfg(feature = "fault-inject")]
    {
        summary.push(("degraded_jobs".into(), Json::Int(degraded_jobs as u64)));
        summary.push(("fault_isolated".into(), Json::Int(fault_isolated)));
    }

    let unix_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let json = Json::Obj(vec![
        ("kind".into(), Json::Str("bench_service".into())),
        ("schema".into(), Json::Int(1)),
        ("label".into(), Json::Str(label)),
        ("unix_ms".into(), Json::Int(unix_ms)),
        ("smoke".into(), Json::Bool(smoke)),
        (
            "shape".into(),
            Json::Obj(vec![
                ("N".into(), Json::Int((SIDE * SIDE) as u64)),
                ("L".into(), Json::Int(L as u64)),
                ("c".into(), Json::Int(C as u64)),
                ("sweeps".into(), Json::Int(sweeps as u64)),
                ("workers".into(), Json::Int(workers as u64)),
            ]),
        ),
        ("summary".into(), Json::Obj(summary)),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    fsi_bench::write_artifact(&out, &json.to_string()).expect("write bench json");
    println!("wrote {out}");
}
