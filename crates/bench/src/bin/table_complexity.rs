//! §II-C table: flop complexity of the explicit form vs FSI for the four
//! selection patterns — closed-form predictions next to flop counts
//! *measured* by the kernels' analytic counters during real runs.

use fsi_bench::{banner, hubbard_matrix, init_trace, Args};
use fsi_pcyclic::Spin;
use fsi_runtime::trace;
use fsi_selinv::baselines::explicit_selected;
use fsi_selinv::flops::{explicit_flops, fsi_flops, fsi_flops_exact, predicted_speedup};
use fsi_selinv::{fsi_with_q, Parallelism, Pattern, Selection};

fn main() {
    let args = Args::parse();
    let export = init_trace("table_complexity", &args);
    let paper = args.paper_scale();
    let nx = args.get_usize("nx", if paper { 10 } else { 5 });
    let l = args.get_usize("L", if paper { 100 } else { 24 });
    let c = args.get_usize("c", if paper { 10 } else { 6 });
    let q = args.get_usize("q", 1);
    banner("Flop-complexity table (paper Sec. II-C)", paper);
    let n = nx * nx;
    let b = l / c;
    println!("(N, L, c) = ({n}, {l}, {c}), b = {b}\n");

    println!("closed forms (units of N^3 flops):");
    println!(
        "{:<20} {:>14} {:>14} {:>10}",
        "pattern", "explicit", "FSI", "speedup"
    );
    for p in Pattern::ALL {
        println!(
            "{:<20} {:>14} {:>14} {:>9.1}x",
            p.label(),
            explicit_flops(p, 1, l, c),
            fsi_flops(p, 1, l, c),
            predicted_speedup(p, n, l, c)
        );
    }

    println!("\nmeasured flops (analytic kernel counters during real runs):");
    println!(
        "{:<20} {:>14} {:>14} {:>14} {:>14}",
        "pattern", "expl measured", "expl formula", "FSI measured", "FSI exact-form"
    );
    let pc = hubbard_matrix(nx, l, 7, Spin::Down);
    for p in Pattern::ALL {
        let sel = Selection::new(p, c, q);
        let span = trace::span("explicit");
        let _ = explicit_selected(fsi_runtime::Par::Seq, &pc, &sel);
        let expl_measured = span.finish().flops;
        let span = trace::span("fsi-run");
        let _ = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
        let fsi_measured = span.finish().flops;
        println!(
            "{:<20} {:>14} {:>14} {:>14} {:>14}",
            p.label(),
            expl_measured,
            explicit_flops(p, n, l, c),
            fsi_measured,
            fsi_flops_exact(p, n, l, c)
        );
    }
    println!("\n(explicit-form measured counts sit below the closed form for diagonal/subdiagonal");
    println!(" patterns because the baseline memoizes W(k) factorizations across blocks, while");
    println!(" the closed form charges each block its full chain — same convention as the paper.)");
    export.finish(None);
}
