//! Ablation: Alg. 2's split walk (paper: "the inner for loop is separated
//! into two loops … to minimize the accumulated floating point arithmetic
//! error").
//!
//! Compares the production wrapping (each seed walks ⌈(c−1)/2⌉ up and
//! ⌊(c−1)/2⌋ down) against a naive one-directional walk (c−1 steps down
//! from each seed) on an ill-conditioned low-temperature matrix, and
//! reports the worst relative block error of each against the dense LU
//! reference. The split walk halves the recurrence chain length and
//! should carry a visibly smaller error.

#![allow(clippy::needless_range_loop)] // distance-class loops index parallel arrays

use fsi_bench::{banner, Args};
use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
use fsi_runtime::Par;
use fsi_selinv::wrap::{step_down, step_up, BlockFactors};
use fsi_selinv::{bsofi, cls};
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let l = args.get_usize("L", 48);
    let c = args.get_usize("c", 12);
    let beta = args.get_f64("beta", 16.0);
    banner(
        "Ablation: split vs one-directional wrapping walk (paper Alg. 2)",
        args.paper_scale(),
    );
    let lattice = SquareLattice::new(2, 2);
    let n = lattice.n_sites();
    println!("(N, L, c) = ({n}, {l}, {c}), beta = {beta}\n");
    let builder = BlockBuilder::new(
        lattice,
        HubbardParams {
            t: 1.0,
            u: 4.0,
            beta,
            l,
        },
    );
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(55);
    let field = HsField::random(l, n, &mut rng);
    let pc = hubbard_pcyclic(&builder, &field, Spin::Down);

    let q = c / 2;
    let clustered = cls(Par::Seq, Par::Seq, &pc, c, q);
    let g_red = bsofi(Par::Seq, Par::Seq, &clustered.reduced);
    let g_ref = pc.reference_green(Par::Seq);
    let factors = BlockFactors::new(&pc);
    let b = clustered.b();

    // For every seed column, walk both ways and record the worst error at
    // each distance from the seed.
    let max_dist = c - 1;
    let mut split_err = vec![0.0f64; max_dist + 1];
    let mut oneway_err = vec![0.0f64; max_dist + 1];
    for k0 in 0..b {
        for l0 in 0..b {
            let k = clustered.to_original(k0);
            let col = clustered.to_original(l0);
            let seed = clustered.reduced.dense_block(&g_red, k0, l0);

            // Split walk: up for ceil((c−1)/2), down for the rest.
            let up_steps = c / 2;
            let down_steps = (c - 1) - up_steps;
            let mut cur = seed.clone();
            let mut row = k;
            for d in 1..=up_steps {
                cur = step_up(&pc, &factors, &cur, row, col);
                row = pc.up(row);
                let want = pc.dense_block(&g_ref, row, col);
                split_err[d] = split_err[d].max(fsi_dense::rel_error(&cur, &want));
            }
            let mut cur = seed.clone();
            let mut row = k;
            for d in 1..=down_steps {
                cur = step_down(&pc, &cur, row, col);
                row = pc.down(row);
                let want = pc.dense_block(&g_ref, row, col);
                split_err[d] = split_err[d].max(fsi_dense::rel_error(&cur, &want));
            }

            // One-directional walk: c−1 steps straight down.
            let mut cur = seed.clone();
            let mut row = k;
            for d in 1..=max_dist {
                cur = step_down(&pc, &cur, row, col);
                row = pc.down(row);
                let want = pc.dense_block(&g_ref, row, col);
                oneway_err[d] = oneway_err[d].max(fsi_dense::rel_error(&cur, &want));
            }
        }
    }

    println!(
        "{:>6} {:>16} {:>16}",
        "steps", "split walk err", "one-way walk err"
    );
    for d in 1..=max_dist {
        let s = if split_err[d] > 0.0 {
            format!("{:.3e}", split_err[d])
        } else {
            "-".to_string() // split walk never goes this far
        };
        println!("{d:>6} {s:>16} {:>16.3e}", oneway_err[d]);
    }
    let split_max = split_err.iter().cloned().fold(0.0, f64::max);
    let oneway_max = oneway_err.iter().cloned().fold(0.0, f64::max);
    println!("\nworst error: split {split_max:.3e} vs one-way (down-only) {oneway_max:.3e}");
    println!("\nfinding: the paper motivates the split by halving the chain length, and the");
    println!("split indeed halves the walk distance. In this reproduction, however, the two");
    println!("directions are not symmetric: the DOWN relation (multiply by B) is forward-");
    println!("stable — its relative error stays flat with distance — while the UP relation");
    println!("(solve with B) amplifies by cond(B) per step at low temperature. A down-only");
    println!("walk is then both cheaper (GEMM vs LU solve) and more accurate. The library");
    println!("keeps the paper-faithful split as the default; EXPERIMENTS.md records this");
    println!("deviation.");
}
