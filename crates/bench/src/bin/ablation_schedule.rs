//! Ablation: static vs dynamic scheduling of the FSI parallel loops.
//!
//! The CLS clusters are uniform (c−1 equal GEMMs each) so a static
//! schedule is optimal; the wrapping seeds alternate between GEMM steps
//! and LU-solve steps whose costs differ, favoring dynamic scheduling.
//! This harness measures both schedules for both loops (real pools, so
//! only meaningful wall-clock differences appear on multi-core hosts) and
//! additionally replays the measured task durations through the
//! scheduling simulator, which exposes the imbalance on any host.

use fsi_bench::{banner, hubbard_matrix, trace_fsi, Args};
use fsi_pcyclic::Spin;
use fsi_runtime::sim::makespan;
use fsi_runtime::{parallel_for, Par, Schedule, Stopwatch, ThreadPool};
use fsi_selinv::{Pattern, Selection};

fn main() {
    let args = Args::parse();
    let nx = args.get_usize("nx", 6);
    let l = args.get_usize("L", 60);
    let c = args.get_usize("c", 6);
    let threads = args.get_usize("threads", 4);
    banner(
        "Ablation: static vs dynamic parallel-for scheduling",
        args.paper_scale(),
    );
    let pc = hubbard_matrix(nx, l, 9, Spin::Up);
    let sel = Selection::new(Pattern::Columns, c, c / 2);
    println!(
        "(N, L, c) = ({}, {l}, {c}), pool = {threads} threads\n",
        nx * nx
    );

    // Measured per-task durations.
    let traces = trace_fsi(&pc, &sel);
    let cls_tasks = &traces.openmp.regions[0].tasks;
    let wrap_tasks = &traces.openmp.regions[2].tasks;

    println!("simulated makespans from measured task durations ({threads} workers):");
    for (name, tasks) in [("cls", cls_tasks), ("wrap", wrap_tasks)] {
        let in_order = makespan(tasks, threads);
        // Static: contiguous chunks per worker → makespan of chunk sums.
        let chunk = tasks.len().div_ceil(threads);
        let static_span = tasks
            .chunks(chunk)
            .map(|c| c.iter().sum::<f64>())
            .fold(0.0f64, f64::max);
        let cv = coefficient_of_variation(tasks);
        println!(
            "  {name:<5} tasks = {:>4}, cv = {cv:>5.3}: static {static_span:.5}s vs dynamic {in_order:.5}s ({:+.1}%)",
            tasks.len(),
            (static_span / in_order - 1.0) * 100.0
        );
    }

    // Real pools (wall-clock; informative on multi-core hosts).
    let pool = ThreadPool::new(threads);
    println!("\nmeasured wall time of the wrap loop under each schedule:");
    for (name, schedule) in [
        ("static", Schedule::Static),
        ("dynamic", Schedule::dynamic()),
    ] {
        let sw = Stopwatch::start();
        // A representative parallel loop shape: b² tasks of wrap-like
        // work (N×N multiply per task).
        let a = fsi_dense::test_matrix(pc.n(), pc.n(), 1);
        let tasks = wrap_tasks.len();
        parallel_for(Par::Pool(&pool), tasks, schedule, |_| {
            std::hint::black_box(fsi_dense::mul(&a, &a));
        });
        println!("  {name:<8} {:.4}s", sw.seconds());
    }
    println!("\nshape check: dynamic never loses much and wins when task costs vary");
    println!("(wrap seeds mix GEMM and solve steps); CLS is uniform, so static suffices.");
}

fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}
