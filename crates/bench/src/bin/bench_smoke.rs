//! Kernel-performance smoke run: times the GEMM engine (all four `Op`
//! paths) and the three FSI stages at small sizes, cross-checks the
//! trace-measured flops against the analytic models, and writes the
//! results to a JSON file (`results/BENCH_kernels.json` by default) so the
//! perf trajectory of the dense substrate is recorded PR over PR.
//!
//! Unlike the criterion benches this finishes in a few seconds and emits a
//! machine-readable artifact; `ci/bench_smoke.sh` runs it as a non-gating
//! CI step.
//!
//! Usage: `bench_smoke [--label=NAME] [--out=PATH] [sizes=64,128,256]
//! [N=36] [L=32] [c=8]`

use std::time::SystemTime;

use fsi_bench::{hubbard_matrix, lattice_side_for, Args};
use fsi_dense::{gemm_op, test_matrix, Matrix, Op};
use fsi_pcyclic::Spin;
use fsi_runtime::flops::counts;
use fsi_runtime::trace::{self, Json};
use fsi_runtime::Stopwatch;
use fsi_selinv::{fsi_with_q, Parallelism, Pattern, Selection};

/// One measured kernel or stage.
struct Record {
    name: String,
    size: usize,
    seconds: f64,
    gflops: f64,
    /// Flops measured by the span collector (0 when not traced).
    measured_flops: u64,
}

/// Best-of repeated timing: runs `f` until ~0.25 s is spent (at least 3
/// times) and returns the minimum per-call seconds — the standard
/// low-noise estimator for micro-benchmarks.
fn time_best(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let budget = Stopwatch::start();
    let mut best = f64::INFINITY;
    let mut reps = 0u32;
    while budget.seconds() < 0.25 || reps < 3 {
        let sw = Stopwatch::start();
        f();
        best = best.min(sw.seconds());
        reps += 1;
    }
    best
}

/// Times `C := op(A)·op(B)` at `n × n × n` and returns the record plus the
/// span-measured flops of a single traced call.
fn bench_gemm(name: &str, n: usize, opa: Op, opb: Op) -> Record {
    let a = test_matrix(n, n, 1);
    let b = test_matrix(n, n, 2);
    let mut c = Matrix::zeros(n, n);
    let run = |c: &mut Matrix| {
        gemm_op(
            fsi_runtime::Par::Seq,
            1.0,
            opa,
            a.as_ref(),
            opb,
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
    };
    let secs = time_best(|| run(&mut c));
    // One traced call: the span-scoped count must equal the analytic model
    // exactly (the observability layer's attribution contract).
    trace::set_level(fsi_runtime::TraceLevel::Kernels);
    let span = trace::span("bench-gemm");
    run(&mut c);
    let stats = span.finish();
    trace::set_level(fsi_runtime::TraceLevel::Off);
    trace::clear();
    let analytic = counts::gemm(n, n, n);
    assert_eq!(
        stats.flops, analytic,
        "{name}/{n}: traced flops {} != analytic {analytic}",
        stats.flops
    );
    Record {
        name: name.to_string(),
        size: n,
        seconds: secs,
        gflops: analytic as f64 / secs / 1e9,
        measured_flops: stats.flops,
    }
}

fn main() {
    let args = Args::parse();
    let label = args.flag_value("label").unwrap_or("current").to_string();
    let out = args
        .flag_value("out")
        .unwrap_or("results/BENCH_kernels.json")
        .to_string();
    let sizes = args.get_list("sizes", &[64, 128, 256]);

    let mut records = Vec::new();
    println!(
        "{:<12} {:>6} {:>12} {:>10}",
        "bench", "size", "best (s)", "Gflop/s"
    );
    for &n in &sizes {
        let r = bench_gemm("gemm_nn", n, Op::NoTrans, Op::NoTrans);
        println!(
            "{:<12} {:>6} {:>12.6} {:>10.3}",
            r.name, r.size, r.seconds, r.gflops
        );
        records.push(r);
    }
    // Transposed paths at the middle size: the packed engine routes all
    // four through the same micro-kernel, so these should sit within 1.5×
    // of the NN rate.
    let nt = sizes.get(1).copied().unwrap_or(128);
    for (name, opa, opb) in [
        ("gemm_tn", Op::Trans, Op::NoTrans),
        ("gemm_nt", Op::NoTrans, Op::Trans),
        ("gemm_tt", Op::Trans, Op::Trans),
    ] {
        let r = bench_gemm(name, nt, opa, opb);
        println!(
            "{:<12} {:>6} {:>12.6} {:>10.3}",
            r.name, r.size, r.seconds, r.gflops
        );
        records.push(r);
    }

    // One traced FSI run at a small shape: per-stage seconds, flops, and
    // rates from the span collector.
    let n = args.get_usize("N", 36);
    let l = args.get_usize("L", 32);
    let c = args.get_usize("c", 8);
    let nx = lattice_side_for(n);
    let n = nx * nx;
    let pc = hubbard_matrix(nx, l, 2016, Spin::Up);
    let sel = Selection::new(Pattern::Columns, c, 5.min(c - 1));
    trace::set_level(fsi_runtime::TraceLevel::Stages);
    trace::clear();
    let _ = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
    let report = trace::RunReport::capture("bench_smoke");
    trace::set_level(fsi_runtime::TraceLevel::Off);
    trace::clear();
    for stage in ["cls", "bsofi", "wrap"] {
        let secs = report.seconds_of(stage);
        let flops = report.flops_of(stage);
        let r = Record {
            name: format!("stage_{stage}"),
            size: n,
            seconds: secs,
            gflops: if secs > 0.0 {
                flops as f64 / secs / 1e9
            } else {
                0.0
            },
            measured_flops: flops,
        };
        println!(
            "{:<12} {:>6} {:>12.6} {:>10.3}",
            r.name, r.size, r.seconds, r.gflops
        );
        records.push(r);
    }

    let json = Json::Obj(vec![
        ("label".into(), Json::Str(label)),
        (
            "unix_ms".into(),
            Json::Int(
                SystemTime::now()
                    .duration_since(SystemTime::UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0),
            ),
        ),
        (
            "shape".into(),
            Json::Obj(vec![
                ("N".into(), Json::Int(n as u64)),
                ("L".into(), Json::Int(l as u64)),
                ("c".into(), Json::Int(c as u64)),
            ]),
        ),
        (
            "records".into(),
            Json::Arr(
                records
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(r.name.clone())),
                            ("size".into(), Json::Int(r.size as u64)),
                            ("seconds".into(), Json::Num(r.seconds)),
                            ("gflops".into(), Json::Num(r.gflops)),
                            ("flops".into(), Json::Int(r.measured_flops)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out, json.to_string()).expect("write bench json");
    println!("\nwrote {out}");
}
