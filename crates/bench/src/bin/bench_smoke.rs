//! Kernel-performance smoke run: times the GEMM engine (all four `Op`
//! paths) and the three FSI stages at small sizes, cross-checks the
//! trace-measured flops against the analytic models, and writes the
//! results to a JSON file (`results/BENCH_kernels.json` by default) so the
//! perf trajectory of the dense substrate is recorded PR over PR.
//!
//! Unlike the criterion benches this finishes in a few seconds and emits a
//! machine-readable artifact; `ci/bench_smoke.sh` runs it as a non-gating
//! CI step.
//!
//! Usage: `bench_smoke [--label=NAME] [--out=PATH] [--kernel=TIER]
//! [sizes=64,128,256] [N=36] [L=32] [c=8]`
//!
//! Alongside the blocked-GEMM `records`, a `batched` section times the
//! [`fsi_dense::gemm_batched`] engine against a loop of plain `gemm_op`
//! calls at the CLS hot shapes (small uniform `n × n × n` batches) and
//! records the speedup; `--kernel=avx512|avx2|scalar` pins the
//! micro-kernel tier so runs on different hosts stay comparable.

use std::time::SystemTime;

use fsi_bench::{apply_kernel_flag, hubbard_matrix, lattice_side_for, Args};
use fsi_dense::{gemm_batched, gemm_op, test_matrix, BatchOperand, Matrix, Op};
use fsi_pcyclic::Spin;
use fsi_runtime::flops::counts;
use fsi_runtime::trace::{self, Json};
use fsi_runtime::Stopwatch;
use fsi_selinv::{fsi_with_q, Parallelism, Pattern, Selection};

/// One measured kernel or stage.
struct Record {
    name: String,
    size: usize,
    seconds: f64,
    gflops: f64,
    /// Flops measured by the span collector (0 when not traced).
    measured_flops: u64,
}

/// Best-of repeated timing: runs `f` until ~0.25 s is spent (at least 3
/// times) and returns the minimum per-call seconds — the standard
/// low-noise estimator for micro-benchmarks.
fn time_best(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let budget = Stopwatch::start();
    let mut best = f64::INFINITY;
    let mut reps = 0u32;
    while budget.seconds() < 0.25 || reps < 3 {
        let sw = Stopwatch::start();
        f();
        best = best.min(sw.seconds());
        reps += 1;
    }
    best
}

/// Interleaved best-of timing for an A/B comparison: alternates single
/// calls of `a` and `b` inside one rep loop (~0.4 s budget, at least 5
/// reps each) and returns both minima. Interleaving exposes the pair to
/// the same drift in clocks and cache state, so the *ratio* is far less
/// noisy than two independent `time_best` runs — essential at the small-N
/// shapes where one call is microseconds (same estimator as
/// `bench_bsofi`).
fn time_best_pair(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    a(); // warm-up both
    b();
    let budget = Stopwatch::start();
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    let mut reps = 0u32;
    while budget.seconds() < 0.4 || reps < 5 {
        let sw = Stopwatch::start();
        a();
        best_a = best_a.min(sw.seconds());
        let sw = Stopwatch::start();
        b();
        best_b = best_b.min(sw.seconds());
        reps += 1;
    }
    (best_a, best_b)
}

/// One measured (n, batch) pair of the batched-vs-looped comparison.
struct BatchedRecord {
    n: usize,
    batch: usize,
    seconds: f64,
    gflops: f64,
    looped_seconds: f64,
    looped_gflops: f64,
    looped_tier: fsi_dense::Tier,
    speedup: f64,
}

/// Times `batch` independent `n × n × n` NN products (the CLS lockstep
/// shape) through `gemm_batched` and through a loop of plain blocked
/// `gemm_op` calls, interleaved.
///
/// The looped loop is pinned (via [`fsi_dense::with_tier`]) to the AVX2
/// tier — bit-for-bit the engine as it existed before the batched path
/// and the AVX-512 tier landed — so the `speedup` column answers "what
/// does routing this shape through the batched engine buy over the
/// previous release", not "batched vs blocked on the same new kernel".
/// Both raw rates and the baseline's tier are recorded, so either
/// comparison can be reconstructed from the artifact.
fn bench_batched(n: usize, batch: usize) -> BatchedRecord {
    let looped_tier = if fsi_dense::Tier::Avx2.is_available() {
        fsi_dense::Tier::Avx2
    } else {
        fsi_dense::Tier::Scalar
    };
    let a: Vec<Matrix> = (0..batch)
        .map(|i| test_matrix(n, n, 10 + i as u64))
        .collect();
    let b: Vec<Matrix> = (0..batch)
        .map(|i| test_matrix(n, n, 100 + i as u64))
        .collect();
    let a_refs: Vec<_> = a.iter().map(|m| m.as_ref()).collect();
    let b_refs: Vec<_> = b.iter().map(|m| m.as_ref()).collect();
    let mut c_batched: Vec<Matrix> = (0..batch).map(|_| Matrix::zeros(n, n)).collect();
    let mut c_looped: Vec<Matrix> = (0..batch).map(|_| Matrix::zeros(n, n)).collect();
    let (seconds, looped_seconds) = time_best_pair(
        || {
            let mut outs: Vec<_> = c_batched.iter_mut().map(|m| m.as_mut()).collect();
            gemm_batched(
                fsi_runtime::Par::Seq,
                1.0,
                Op::NoTrans,
                BatchOperand::Each(&a_refs),
                Op::NoTrans,
                BatchOperand::Each(&b_refs),
                0.0,
                &mut outs,
            );
        },
        || {
            fsi_dense::with_tier(looped_tier, || {
                for i in 0..batch {
                    gemm_op(
                        fsi_runtime::Par::Seq,
                        1.0,
                        Op::NoTrans,
                        a_refs[i],
                        Op::NoTrans,
                        b_refs[i],
                        0.0,
                        c_looped[i].as_mut(),
                    );
                }
            });
        },
    );
    // The vector tiers share one bitwise contract (and scalar agrees to
    // rounding); spot-check here so a future regression can't silently
    // publish a speedup over wrong answers.
    let exact = fsi_dense::active_tier() != fsi_dense::Tier::Scalar
        && looped_tier != fsi_dense::Tier::Scalar;
    for (cb, cl) in c_batched.iter().zip(&c_looped) {
        if exact {
            assert_eq!(cb.as_slice(), cl.as_slice(), "batched != looped at n={n}");
        } else {
            assert!(
                fsi_dense::rel_error(cb, cl) < 1e-12,
                "batched != looped at n={n}"
            );
        }
    }
    let flops = batch as u64 * counts::gemm(n, n, n);
    BatchedRecord {
        n,
        batch,
        seconds,
        gflops: flops as f64 / seconds / 1e9,
        looped_seconds,
        looped_gflops: flops as f64 / looped_seconds / 1e9,
        looped_tier,
        speedup: looped_seconds / seconds,
    }
}

/// Times `C := op(A)·op(B)` at `n × n × n` and returns the record plus the
/// span-measured flops of a single traced call.
fn bench_gemm(name: &str, n: usize, opa: Op, opb: Op) -> Record {
    let a = test_matrix(n, n, 1);
    let b = test_matrix(n, n, 2);
    let mut c = Matrix::zeros(n, n);
    let run = |c: &mut Matrix| {
        gemm_op(
            fsi_runtime::Par::Seq,
            1.0,
            opa,
            a.as_ref(),
            opb,
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
    };
    let secs = time_best(|| run(&mut c));
    // One traced call: the span-scoped count must equal the analytic model
    // exactly (the observability layer's attribution contract).
    trace::set_level(fsi_runtime::TraceLevel::Kernels);
    let span = trace::span("bench-gemm");
    run(&mut c);
    let stats = span.finish();
    trace::set_level(fsi_runtime::TraceLevel::Off);
    trace::clear();
    let analytic = counts::gemm(n, n, n);
    assert_eq!(
        stats.flops, analytic,
        "{name}/{n}: traced flops {} != analytic {analytic}",
        stats.flops
    );
    Record {
        name: name.to_string(),
        size: n,
        seconds: secs,
        gflops: analytic as f64 / secs / 1e9,
        measured_flops: stats.flops,
    }
}

fn main() {
    let args = Args::parse();
    let kernel = apply_kernel_flag(&args);
    println!("kernel tier: {}", kernel.name());
    let label = args.flag_value("label").unwrap_or("current").to_string();
    let out = args
        .flag_value("out")
        .unwrap_or("results/BENCH_kernels.json")
        .to_string();
    let sizes = args.get_list("sizes", &[64, 128, 256]);

    let mut records = Vec::new();
    println!(
        "{:<12} {:>6} {:>12} {:>10}",
        "bench", "size", "best (s)", "Gflop/s"
    );
    for &n in &sizes {
        let r = bench_gemm("gemm_nn", n, Op::NoTrans, Op::NoTrans);
        println!(
            "{:<12} {:>6} {:>12.6} {:>10.3}",
            r.name, r.size, r.seconds, r.gflops
        );
        records.push(r);
    }
    // Transposed paths at the middle size: the packed engine routes all
    // four through the same micro-kernel, so these should sit within 1.5×
    // of the NN rate.
    let nt = sizes.get(1).copied().unwrap_or(128);
    for (name, opa, opb) in [
        ("gemm_tn", Op::Trans, Op::NoTrans),
        ("gemm_nt", Op::NoTrans, Op::Trans),
        ("gemm_tt", Op::Trans, Op::Trans),
    ] {
        let r = bench_gemm(name, nt, opa, opb);
        println!(
            "{:<12} {:>6} {:>12.6} {:>10.3}",
            r.name, r.size, r.seconds, r.gflops
        );
        records.push(r);
    }

    // Batched engine vs looped gemm at the CLS hot shapes. The (N, batch)
    // grid covers the acceptance sizes (32, 64) plus a mid-size with the
    // default traced shape's cluster count.
    let mut batched = Vec::new();
    println!(
        "\n{:<12} {:>6} {:>6} {:>10} {:>10} {:>8}",
        "batched", "n", "batch", "Gflop/s", "looped", "speedup"
    );
    for (n, bsz) in [(32, 8), (48, 4), (64, 8)] {
        let r = bench_batched(n, bsz);
        println!(
            "{:<12} {:>6} {:>6} {:>10.3} {:>10.3} {:>8.2}",
            "gemm_batched", r.n, r.batch, r.gflops, r.looped_gflops, r.speedup
        );
        assert!(
            r.speedup > 1.0,
            "batched engine slower than the pre-PR looped baseline at n={}",
            r.n
        );
        batched.push(r);
    }

    // One traced FSI run at a small shape: per-stage seconds, flops, and
    // rates from the span collector.
    let n = args.get_usize("N", 36);
    let l = args.get_usize("L", 32);
    let c = args.get_usize("c", 8);
    let nx = lattice_side_for(n);
    let n = nx * nx;
    let pc = hubbard_matrix(nx, l, 2016, Spin::Up);
    let sel = Selection::new(Pattern::Columns, c, 5.min(c - 1));
    trace::set_level(fsi_runtime::TraceLevel::Stages);
    trace::clear();
    let _ = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
    let report = trace::RunReport::capture("bench_smoke");
    trace::set_level(fsi_runtime::TraceLevel::Off);
    trace::clear();
    for stage in ["cls", "bsofi", "wrap"] {
        let secs = report.seconds_of(stage);
        let flops = report.flops_of(stage);
        let r = Record {
            name: format!("stage_{stage}"),
            size: n,
            seconds: secs,
            gflops: if secs > 0.0 {
                flops as f64 / secs / 1e9
            } else {
                0.0
            },
            measured_flops: flops,
        };
        println!(
            "{:<12} {:>6} {:>12.6} {:>10.3}",
            r.name, r.size, r.seconds, r.gflops
        );
        records.push(r);
    }

    let json = Json::Obj(vec![
        ("label".into(), Json::Str(label)),
        ("kernel".into(), Json::Str(kernel.name().to_string())),
        (
            "unix_ms".into(),
            Json::Int(
                SystemTime::now()
                    .duration_since(SystemTime::UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0),
            ),
        ),
        (
            "shape".into(),
            Json::Obj(vec![
                ("N".into(), Json::Int(n as u64)),
                ("L".into(), Json::Int(l as u64)),
                ("c".into(), Json::Int(c as u64)),
            ]),
        ),
        (
            "records".into(),
            Json::Arr(
                records
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(r.name.clone())),
                            ("size".into(), Json::Int(r.size as u64)),
                            ("seconds".into(), Json::Num(r.seconds)),
                            ("gflops".into(), Json::Num(r.gflops)),
                            ("flops".into(), Json::Int(r.measured_flops)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "batched".into(),
            Json::Arr(
                batched
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str("gemm_batched".into())),
                            ("n".into(), Json::Int(r.n as u64)),
                            ("batch".into(), Json::Int(r.batch as u64)),
                            ("seconds".into(), Json::Num(r.seconds)),
                            ("gflops".into(), Json::Num(r.gflops)),
                            ("looped_seconds".into(), Json::Num(r.looped_seconds)),
                            ("looped_gflops".into(), Json::Num(r.looped_gflops)),
                            (
                                "looped_tier".into(),
                                Json::Str(r.looped_tier.name().to_string()),
                            ),
                            ("speedup".into(), Json::Num(r.speedup)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    fsi_bench::write_artifact(&out, &json.to_string()).expect("write bench json");
    println!("\nwrote {out}");
}
