//! Fig. 8 (bottom): FSI thread scalability on one socket — OpenMP mode
//! vs MKL-style mode vs ideal scaling, threads 1..12 at
//! `(N, L, c) = (576, 100, 10)`, b = 10 block columns.
//!
//! Two result sets are reported:
//!
//! * **measured** — real pools of T threads; meaningful only when the
//!   host has ≥ T cores (this is what the paper measured on a 12-core
//!   Ivy Bridge socket);
//! * **simulated** — the greedy-scheduler replay of the sequentially
//!   measured per-task durations (`fsi_runtime::sim`), which reproduces
//!   the *shape* on any host (see DESIGN.md substitutions). The expected
//!   shape: OpenMP tracks the ideal line closely; MKL-style saturates
//!   early (Amdahl on the serial glue between kernels).

use fsi_bench::{banner, hubbard_matrix, init_trace, lattice_side_for, trace_fsi, Args};
use fsi_pcyclic::Spin;
use fsi_runtime::{Stopwatch, ThreadPool};
use fsi_selinv::{fsi_with_q, Parallelism, Pattern, Selection};

fn main() {
    let args = Args::parse();
    let export = init_trace("fig8_bottom", &args);
    let paper = args.paper_scale();
    let n_req = args.get_usize("N", if paper { 576 } else { 64 });
    let l = args.get_usize("L", if paper { 100 } else { 60 });
    let c = args.get_usize("c", if paper { 10 } else { 6 });
    let max_threads = args.get_usize("threads", 12);
    banner("FSI thread scalability (paper Fig. 8 bottom)", paper);
    let nx = lattice_side_for(n_req);
    let n = nx * nx;
    println!(
        "(N, L, c) = ({n}, {l}, {c}); host cores = {}\n",
        fsi_runtime::hardware_threads()
    );

    let pc = hubbard_matrix(nx, l, 11, Spin::Up);
    let sel = Selection::new(Pattern::Columns, c, c / 2);

    // Sequential per-task trace for the simulator.
    let traces = trace_fsi(&pc, &sel);
    let t1 = traces.openmp.sequential();

    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14} {:>8}",
        "threads", "OpenMP [s]", "MKL [s]", "OpenMP sim x", "MKL sim x", "ideal x"
    );
    for t in 1..=max_threads {
        let pool = ThreadPool::new(t);
        let sw = Stopwatch::start();
        let _ = fsi_with_q(Parallelism::OpenMp(&pool), &pc, &sel).expect("healthy");
        let omp_measured = sw.seconds();
        let sw = Stopwatch::start();
        let _ = fsi_with_q(Parallelism::MklStyle(&pool), &pc, &sel).expect("healthy");
        let mkl_measured = sw.seconds();

        let omp_sim = traces.openmp.speedup(t);
        let mkl_sim = traces.mkl.speedup(t);
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>14.2} {:>14.2} {:>8}",
            t, omp_measured, mkl_measured, omp_sim, mkl_sim, t
        );
    }
    println!("\nsequential FSI time: {t1:.3}s");
    println!("shape check (paper): OpenMP-simulated tracks ideal; MKL-style saturates early.");
    if fsi_runtime::hardware_threads() < max_threads {
        println!(
            "NOTE: host has {} core(s) < {} threads — measured columns cannot show wall-clock\n      speedup here; the simulated columns carry the figure's shape (see DESIGN.md).",
            fsi_runtime::hardware_threads(),
            max_threads
        );
    }
    export.finish(None);
}
