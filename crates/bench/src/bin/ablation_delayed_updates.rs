//! Ablation: delayed (rank-k) vs immediate (rank-1) Green's-function
//! updates in the DQMC sweep.
//!
//! The paper's reference \[4\] (Chang et al., "Recent advances in
//! determinant quantum Monte Carlo") turns the sweep's Level-2 rank-1
//! updates into Level-3 rank-k GEMM flushes. This harness runs identical
//! Monte Carlo trajectories at several batch sizes and reports sweep
//! time — the trajectory equality is asserted, so any time difference is
//! pure kernel-shape effect.

use fsi_bench::{banner, lattice_side_for, Args};
use fsi_dqmc::{SweepConfig, Sweeper};
use fsi_pcyclic::{BlockBuilder, HsField, HubbardParams, SquareLattice};
use fsi_runtime::Stopwatch;
use fsi_selinv::Parallelism;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = Args::parse();
    let paper = args.paper_scale();
    let n_req = args.get_usize("N", if paper { 400 } else { 64 });
    let l = args.get_usize("L", if paper { 100 } else { 24 });
    let c = args.get_usize("c", if paper { 10 } else { 6 });
    let sweeps = args.get_usize("sweeps", 3);
    banner("Ablation: delayed vs immediate Metropolis updates", paper);
    let nx = lattice_side_for(n_req);
    let n = nx * nx;
    println!("(N, L, c) = ({n}, {l}, {c}), {sweeps} sweeps per configuration\n");

    let builder = BlockBuilder::new(
        SquareLattice::square(nx),
        HubbardParams {
            t: 1.0,
            u: 4.0,
            beta: 2.0,
            l,
        },
    );
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let field = HsField::random(l, n, &mut rng);

    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "delay", "time [s]", "accepted", "trajectory"
    );
    let mut reference: Option<Vec<i8>> = None;
    for delay in [1usize, 4, 8, 16, 32] {
        let cfg = SweepConfig {
            c,
            stabilize_every: c,
            delay,
            ..SweepConfig::default()
        };
        let mut sweeper = Sweeper::new(&builder, field.clone(), cfg).expect("healthy");
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let sw = Stopwatch::start();
        let mut accepted = 0;
        for _ in 0..sweeps {
            accepted += sweeper
                .sweep(&mut rng, Parallelism::Serial)
                .expect("healthy")
                .accepted;
        }
        let secs = sw.seconds();
        let traj = sweeper.field().to_flat();
        let same = match &reference {
            None => {
                reference = Some(traj);
                "reference"
            }
            Some(want) => {
                assert_eq!(want, &traj, "delay={delay} changed the physics!");
                "identical"
            }
        };
        println!("{delay:>8} {secs:>12.3} {accepted:>12} {same:>14}");
    }
    println!("\nshape check: larger batches trade Level-2 ger traffic for Level-3 GEMM");
    println!("flushes; the Monte Carlo trajectory is bitwise-identical across batch sizes");
    println!("up to round-off (asserted above).");
}
