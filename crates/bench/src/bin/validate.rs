//! §V-A correctness validation.
//!
//! The paper forms a 6400×6400 Hubbard matrix `(N, L) = (100, 64)` with
//! `(t, β, σ, U) = (1, 1, 1, 2)`, computes `b` selected block columns
//! with FSI, and checks the mean relative block error against MKL
//! DGETRF/DGETRI stays below 1e-10.
//!
//! Default: `(N, L, c) = (36, 32, 8)` — finishes in seconds; the full
//! paper shape runs with `--paper-scale` (`N = 100` → 10×10 lattice,
//! `L = 64`, `c = 8`; the dense reference inversion of the 6400² matrix
//! is the slow part).

use fsi_bench::{banner, hubbard_matrix, lattice_side_for, Args};
use fsi_pcyclic::Spin;
use fsi_runtime::{Par, Stopwatch};
use fsi_selinv::baselines::{full_inverse_selected, max_block_error, mean_block_error};
use fsi_selinv::{fsi_with_q, Parallelism, Pattern, Selection};

fn main() {
    let args = Args::parse();
    let paper = args.paper_scale();
    let n = args.get_usize("N", if paper { 100 } else { 36 });
    let l = args.get_usize("L", if paper { 64 } else { 32 });
    let c = args.get_usize("c", 8);
    let q = args.get_usize("q", 5);
    banner("Correctness validation (paper Sec. V-A)", paper);
    let nx = lattice_side_for(n);
    let n = nx * nx;
    println!("Hubbard matrix: (N, L) = ({n}, {l}), dim {}, (t, beta, U) = (1, 1, 2), c = {c}, q = {q}", n * l);

    let pc = hubbard_matrix(nx, l, 2016, Spin::Up);
    let sel = Selection::new(Pattern::Columns, c, q);

    let sw = Stopwatch::start();
    let out = fsi_with_q(Parallelism::Serial, &pc, &sel);
    println!("FSI: {} blocks in {:.3}s", out.selected.len(), sw.seconds());

    let sw = Stopwatch::start();
    let reference = full_inverse_selected(Par::Seq, &pc, &sel);
    println!("dense LU reference (DGETRF+DGETRI equivalent): {:.3}s", sw.seconds());

    let mean = mean_block_error(&out.selected, &reference);
    let max = max_block_error(&out.selected, &reference);
    println!("\nmean relative block error : {mean:.3e}   (paper threshold: < 1e-10)");
    println!("max  relative block error : {max:.3e}");
    let pass = mean < 1e-10;
    println!("\nvalidation: {}", if pass { "PASSED" } else { "FAILED" });
    if !pass {
        std::process::exit(1);
    }
}
