//! §V-A correctness validation.
//!
//! The paper forms a 6400×6400 Hubbard matrix `(N, L) = (100, 64)` with
//! `(t, β, σ, U) = (1, 1, 1, 2)`, computes `b` selected block columns
//! with FSI, and checks the mean relative block error against MKL
//! DGETRF/DGETRI stays below 1e-10.
//!
//! Besides the error check, the harness cross-validates the *flop
//! accounting*: the span collector's measured per-stage flops are
//! compared against the analytic models in `fsi_selinv::flops` —
//! CLS must match `cls_flops` exactly (the stage is literally `b` chains
//! of `c−1` N×N GEMMs), while BSOFI and WRP are asserted within a
//! bookkeeping tolerance of their (approximate) closed forms. A silently
//! unaccounted kernel would push a measured count below the analytic
//! lower bound and fail the run.
//!
//! Default: `(N, L, c) = (36, 32, 8)` — finishes in seconds; the full
//! paper shape runs with `--paper-scale` (`N = 100` → 10×10 lattice,
//! `L = 64`, `c = 8`; the dense reference inversion of the 6400² matrix
//! is the slow part).

use fsi_bench::{banner, hubbard_matrix, init_trace, lattice_side_for, Args};
use fsi_pcyclic::Spin;
use fsi_runtime::{trace, Par, Stopwatch};
use fsi_selinv::baselines::{full_inverse_selected, max_block_error, mean_block_error};
use fsi_selinv::{fsi_with_q, Parallelism, Pattern, Selection};

/// Asserts `measured` is within `lo..=hi` of `analytic` (as a ratio).
fn check_ratio(stage: &str, measured: u64, analytic: u64, lo: f64, hi: f64) -> bool {
    let ratio = measured as f64 / analytic as f64;
    let ok = (lo..=hi).contains(&ratio);
    println!(
        "  {stage:<6} measured {measured:>14}  analytic {analytic:>14}  ratio {ratio:.4}  {}",
        if ok { "ok" } else { "OUT OF TOLERANCE" }
    );
    ok
}

/// Startup self-check of the packed GEMM engine's flop attribution: the
/// span-measured count of a single `gemm_op` call must equal the analytic
/// `flops::counts::gemm` model *exactly* (not within tolerance) — the
/// packing/micro-kernel restructure charges once per logical product, and
/// every stage ratio below rests on that contract. Odd, remainder-heavy
/// dimensions so partial MR/NR tiles are exercised.
fn assert_gemm_attribution_exact() {
    use fsi_dense::{gemm_op, test_matrix, Matrix, Op};
    let (m, k, n) = (37, 29, 41);
    let a = test_matrix(m, k, 7);
    let b = test_matrix(k, n, 8);
    let mut c = Matrix::zeros(m, n);
    // Remember the FSI_TRACE-derived level so the temporary Kernels
    // override here doesn't mask the user's setting for the real run.
    let prior = trace::level();
    trace::set_level(fsi_runtime::TraceLevel::Kernels);
    trace::clear();
    let span = trace::span("gemm-selfcheck");
    gemm_op(
        Par::Seq,
        1.0,
        Op::NoTrans,
        a.as_ref(),
        Op::NoTrans,
        b.as_ref(),
        0.0,
        c.as_mut(),
    );
    let stats = span.finish();
    trace::set_level(prior);
    trace::clear();
    let analytic = fsi_runtime::flops::counts::gemm(m, n, k);
    assert_eq!(
        stats.flops, analytic,
        "packed GEMM span flops {} != analytic counts::gemm({m},{n},{k}) = {analytic}",
        stats.flops
    );
    println!("gemm flop attribution self-check: measured == analytic ({analytic}) ok");
}

fn main() {
    let args = Args::parse();
    assert_gemm_attribution_exact();
    let export = init_trace("validate", &args);
    let paper = args.paper_scale();
    let n = args.get_usize("N", if paper { 100 } else { 36 });
    let l = args.get_usize("L", if paper { 64 } else { 32 });
    let c = args.get_usize("c", 8);
    let q = args.get_usize("q", 5);
    banner("Correctness validation (paper Sec. V-A)", paper);
    let nx = lattice_side_for(n);
    let n = nx * nx;
    println!(
        "Hubbard matrix: (N, L) = ({n}, {l}), dim {}, (t, beta, U) = (1, 1, 2), c = {c}, q = {q}",
        n * l
    );

    let pc = hubbard_matrix(nx, l, 2016, Spin::Up);
    let sel = Selection::new(Pattern::Columns, c, q);

    let sw = Stopwatch::start();
    let out = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
    println!("FSI: {} blocks in {:.3}s", out.selected.len(), sw.seconds());

    let sw = Stopwatch::start();
    let reference = full_inverse_selected(Par::Seq, &pc, &sel);
    println!(
        "dense LU reference (DGETRF+DGETRI equivalent): {:.3}s",
        sw.seconds()
    );

    let mean = mean_block_error(&out.selected, &reference);
    let max = max_block_error(&out.selected, &reference);
    println!("\nmean relative block error : {mean:.3e}   (paper threshold: < 1e-10)");
    println!("max  relative block error : {max:.3e}");

    // Per-stage rates from the span collector, and the flop-model
    // cross-check (satellite of the observability layer).
    let report = export.finish(None);
    println!("\nper-stage rates (span collector):");
    print!("{}", report.stage_table());

    println!("\nflop accounting vs analytic model (fsi_selinv::flops):");
    let cls_measured = report.flops_of("cls");
    let cls_analytic = fsi_selinv::cls::cls_flops(n, l, c);
    // CLS is exact by construction: b chains of (c−1) N×N GEMMs.
    let cls_ok = cls_measured == cls_analytic;
    println!(
        "  cls    measured {cls_measured:>14}  analytic {cls_analytic:>14}  {}",
        if cls_ok { "exact" } else { "MISMATCH" }
    );
    // BSOFI's closed form 7b²N³ is the paper's leading-order estimate:
    // at the default b = L/c = 4 the QR and TRTRI lower-order terms are
    // not negligible and the measured kernel sum runs ~1.5–1.6× the
    // formula. Allow that slack but keep a lower bound so a silently
    // unaccounted kernel (ratio collapsing toward 0) is still caught.
    let b = l / c;
    let bsofi_ok = check_ratio(
        "bsofi",
        report.flops_of("bsofi"),
        fsi_selinv::bsofi::bsofi_flops(n, b),
        0.3,
        2.0,
    );
    let wrap_ok = check_ratio(
        "wrap",
        report.flops_of("wrap"),
        fsi_selinv::wrap::wrap_flops(n, l, c),
        0.5,
        1.5,
    );

    let pass = mean < 1e-10 && cls_ok && bsofi_ok && wrap_ok;
    println!("\nvalidation: {}", if pass { "PASSED" } else { "FAILED" });

    // Machine-readable artifact for the regression sentinel (schema in
    // results/schema.md, "validate.json").
    let out_path = args.flag_value("out").unwrap_or("results/validate.json");
    let stages = ["cls", "bsofi", "wrap"]
        .iter()
        .map(|stage| {
            let secs = report.seconds_of(stage);
            let flops = report.flops_of(stage);
            trace::Json::Obj(vec![
                ("name".into(), trace::Json::Str(stage.to_string())),
                ("seconds".into(), trace::Json::Num(secs)),
                (
                    "gflops".into(),
                    trace::Json::Num(if secs > 0.0 {
                        flops as f64 / secs / 1e9
                    } else {
                        0.0
                    }),
                ),
                ("flops".into(), trace::Json::Int(flops)),
            ])
        })
        .collect();
    let json = trace::Json::Obj(vec![
        ("kind".into(), trace::Json::Str("validate".into())),
        ("schema".into(), trace::Json::Int(1)),
        (
            "label".into(),
            trace::Json::Str(args.flag_value("label").unwrap_or("current").into()),
        ),
        (
            "unix_ms".into(),
            trace::Json::Int(
                std::time::SystemTime::now()
                    .duration_since(std::time::SystemTime::UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0),
            ),
        ),
        (
            "shape".into(),
            trace::Json::Obj(vec![
                ("N".into(), trace::Json::Int(n as u64)),
                ("L".into(), trace::Json::Int(l as u64)),
                ("c".into(), trace::Json::Int(c as u64)),
                ("q".into(), trace::Json::Int(q as u64)),
            ]),
        ),
        (
            "summary".into(),
            trace::Json::Obj(vec![
                ("mean_error".into(), trace::Json::Num(mean)),
                ("max_error".into(), trace::Json::Num(max)),
                ("passed".into(), trace::Json::Bool(pass)),
                ("cls_flops_exact".into(), trace::Json::Bool(cls_ok)),
            ]),
        ),
        ("stages".into(), trace::Json::Arr(stages)),
    ]);
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    fsi_bench::write_artifact(out_path, &json.to_string()).expect("write validate json");
    println!("wrote {out_path}");
    if !pass {
        std::process::exit(1);
    }
}
