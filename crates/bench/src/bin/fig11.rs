//! Fig. 11: runtime of a *full* DQMC simulation vs thread count, for
//! FSI+OpenMP vs MKL-style execution.
//!
//! Paper setup: `(N, L) = (400, 100)`, `(w, m) = (100, 200)`, `c = 10`,
//! threads ∈ {1, 6, 12}. Headline numbers: FSI+OpenMP speeds up 6.9×
//! from 1 → 12 threads, MKL-style only 1.3×; the full simulation drops
//! from 3.5 hours to 40 minutes.
//!
//! Locally we run a scaled-down simulation, measure the per-phase times
//! (`sweep`, `green`, `measurement`), and also report the simulated
//! speedups from the measured task structure — the green and measurement
//! phases fork over `b²` seeds / SPXX pairs (near-ideal), the sweep's
//! rank-1 updates are serial while its stabilizations fork.

use fsi_bench::{banner, init_trace, lattice_side_for, Args};
use fsi_dqmc::{run, DqmcConfig};
use fsi_runtime::ThreadPool;
use fsi_selinv::Parallelism;

fn main() {
    let args = Args::parse();
    let export = init_trace("fig11", &args);
    let paper = args.paper_scale();
    let n_req = args.get_usize("N", if paper { 400 } else { 16 });
    let l = args.get_usize("L", if paper { 100 } else { 16 });
    let c = args.get_usize("c", if paper { 10 } else { 4 });
    let warmup = args.get_usize("w", if paper { 100 } else { 3 });
    let measurements = args.get_usize("m", if paper { 200 } else { 6 });
    let thread_list = args.get_list("threads", &[1, 6, 12]);
    banner("Full DQMC runtime vs threads (paper Fig. 11)", paper);
    let nx = lattice_side_for(n_req);
    let cfg = DqmcConfig {
        nx,
        ny: nx,
        t: 1.0,
        u: 4.0,
        beta: 2.0,
        l,
        c,
        warmup,
        measurements,
        stabilize_every: c,
        delay: 1,
        seed: 11,
    };
    println!(
        "(N, L, c) = ({}, {l}, {c}), (w, m) = ({warmup}, {measurements})\n",
        nx * nx
    );

    // Reference serial run with phase decomposition.
    let serial = run(&cfg, Parallelism::Serial).expect("healthy");
    let sweep_s = serial.profile.seconds("sweep");
    let green_s = serial.profile.seconds("green");
    let meas_s = serial.profile.seconds("measurement");
    let total_s = sweep_s + green_s + meas_s;
    println!("serial phase profile: sweep {sweep_s:.3}s, green {green_s:.3}s, measurement {meas_s:.3}s\n");

    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "threads", "OpenMP [s]", "MKL [s]", "OpenMP sim x", "MKL sim x"
    );
    let b = (l / c) as f64;
    for &t in &thread_list {
        let pool = ThreadPool::new(t);
        let omp = run(&cfg, Parallelism::OpenMp(&pool)).expect("healthy");
        let mkl = run(&cfg, Parallelism::MklStyle(&pool)).expect("healthy");
        let omp_total = omp.profile.total_seconds();
        let mkl_total = mkl.profile.total_seconds();

        // Simulated speedups from the serial phase structure:
        //  - green + measurement fork over ≥ b² tasks → near-ideal;
        //  - sweeps: the stabilized Green's recomputations (≈60% of sweep
        //    time at these parameters) fork over b clusters/columns, the
        //    rank-1/wrap chain is serial.
        let tf = t as f64;
        let green_sim = green_s / tf.min(b * b) + green_s * 0.02;
        let meas_sim = meas_s / tf + meas_s * 0.02;
        let sweep_parallel = 0.6 * sweep_s;
        let sweep_serial = 0.4 * sweep_s;
        let sweep_sim = sweep_serial + sweep_parallel / tf.min(b);
        let omp_sim_total = green_sim + meas_sim + sweep_sim;
        // MKL-style: only the dense kernels inside the Green's phase and
        // the stabilizations fork; measurements and scalar loops do not.
        let mkl_sim_total =
            green_s * (0.4 + 0.6 / tf) + meas_s + sweep_serial + sweep_parallel * (0.4 + 0.6 / tf);
        println!(
            "{:>8} {:>14.3} {:>14.3} {:>14.2} {:>14.2}",
            t,
            omp_total,
            mkl_total,
            total_s / omp_sim_total,
            total_s / mkl_sim_total
        );
    }
    println!("\nshape check (paper): OpenMP gains ≈6.9x at 12 threads, MKL-style only ≈1.3x;");
    println!("at paper scale that is 3.5 h → 40 min for the full simulation.");
    if fsi_runtime::hardware_threads() < *thread_list.iter().max().unwrap_or(&1) {
        println!(
            "NOTE: host has {} core(s); measured columns are flat, simulated columns carry the shape.",
            fsi_runtime::hardware_threads()
        );
    }
    // Keep physics honest across modes.
    println!(
        "\nphysics cross-check: serial density = {:.6}",
        serial.density.mean()
    );
    export.finish(None);
}
