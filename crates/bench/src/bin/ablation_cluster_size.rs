//! Ablation: the cluster size `c` (paper §II-C discussion).
//!
//! "A larger c leads to a greater reduction. However, the size of c is
//! limited by numerical stability … usually c ≈ √L." This harness sweeps
//! every divisor `c` of `L` and reports, per c:
//!
//! * total FSI time and flops (reduction benefit),
//! * maximum relative block error vs the dense LU reference (stability
//!   cost — the cluster chains multiply `c` matrices, so conditioning
//!   grows with `c`).
//!
//! To make the instability visible at laptop scale the Hubbard matrix is
//! generated at low temperature (large β → wildly scaled `B` products).

use fsi_bench::{banner, init_trace, Args};
use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
use fsi_runtime::{trace, Par, Stopwatch};
use fsi_selinv::baselines::{full_inverse_selected, max_block_error};
use fsi_selinv::{fsi_with_q, Parallelism, Pattern, Selection};
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let export = init_trace("ablation_cluster_size", &args);
    let l = args.get_usize("L", 48);
    let nx = args.get_usize("nx", 2);
    let beta = args.get_f64("beta", 12.0);
    banner(
        "Ablation: cluster size c vs speed and accuracy (paper Sec. II-C)",
        args.paper_scale(),
    );
    let lattice = SquareLattice::new(nx, nx.max(2) / nx.max(1)); // nx × 1 chain when nx small
    let lattice = if nx >= 2 {
        SquareLattice::square(nx)
    } else {
        lattice
    };
    let n = lattice.n_sites();
    let params = HubbardParams {
        t: 1.0,
        u: 4.0,
        beta,
        l,
    };
    println!("(N, L) = ({n}, {l}), beta = {beta} (low temperature -> ill-conditioned chains)\n");
    let builder = BlockBuilder::new(lattice, params);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(123);
    let field = HsField::random(l, n, &mut rng);
    let pc = hubbard_pcyclic(&builder, &field, Spin::Up);

    // Reference from the dense LU inverse of the full NL matrix.
    let sqrt_l = (l as f64).sqrt();
    println!(
        "{:>4} {:>6} {:>12} {:>12} {:>14}   note",
        "c", "b", "time [s]", "Gflop", "max rel err"
    );
    for c in 1..=l {
        if !l.is_multiple_of(c) {
            continue;
        }
        let sel = Selection::new(Pattern::Columns, c, c / 2);
        let span = trace::span("fsi-run");
        let sw = Stopwatch::start();
        let out = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
        let secs = sw.seconds();
        let gflop = span.finish().flops as f64 / 1e9;
        let reference = full_inverse_selected(Par::Seq, &pc, &sel);
        let err = max_block_error(&out.selected, &reference);
        let note = if (c as f64 - sqrt_l).abs() <= 2.0 {
            "<- c ~ sqrt(L), the paper's choice"
        } else {
            ""
        };
        println!(
            "{c:>4} {:>6} {secs:>12.4} {gflop:>12.3} {err:>14.3e}   {note}",
            l / c
        );
    }
    println!("\nshape check (paper): flops fall as c grows (greater reduction) while the");
    println!("round-off error climbs with the chain length; c ~ sqrt(L) balances the two.");
    export.finish(None);
}
