//! The perf-regression sentinel: noise-aware comparison of fresh
//! `BENCH_*` runs against checked-in baselines.
//!
//! The workspace accumulates benchmark artifacts (`results/BENCH_*.json`,
//! `results/validate.json`) but until PR 6 nothing *noticed* when a
//! number got worse. This module is the comparison engine behind
//! `bench_report`: it flattens each benchmark family into named metric
//! samples, attaches a per-family [`Policy`] (relative tolerance for
//! timing-derived rates, exact equality for deterministic counters and
//! model flop counts, absolute ceilings for error/overhead bounds),
//! optionally medians several fresh samples (median-of-k beats the noise
//! floor without tightening tolerances), and produces [`Comparison`]
//! verdicts plus a `BENCH_history.jsonl` trajectory row.
//!
//! Policy calibration: single best-of timings on a shared CI box jitter
//! 10–20%, so timing-derived metrics use 30–35% relative tolerance —
//! wide enough that back-to-back runs agree, tight enough that a real
//! 2× regression (a lost parallelization, an accidental O(N⁴)) always
//! trips. Deterministic metrics (cache hit counts, analytic flops,
//! drill pass rates) use exact equality: any drift there is a logic
//! change, not noise.

use fsi_runtime::trace::Json;

/// How a metric is judged against its baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Policy {
    /// Timing-derived rate/speedup: regression when
    /// `fresh < baseline · (1 − rel_tol)`.
    HigherBetter {
        /// Allowed relative shortfall before flagging.
        rel_tol: f64,
    },
    /// Cost-like value: regression when
    /// `fresh > baseline · (1 + rel_tol)`.
    LowerBetter {
        /// Allowed relative excess before flagging.
        rel_tol: f64,
    },
    /// Deterministic value: regression on any difference (to 1e-12).
    Exact,
    /// Bounded value: regression when `fresh > max`, regardless of the
    /// baseline (used for error norms and overhead percentages).
    CeilingAbs {
        /// The inclusive ceiling.
        max: f64,
    },
}

/// One named measurement extracted from a benchmark artifact.
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// Dotted metric name, unique within its family.
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// How to judge it.
    pub policy: Policy,
}

fn sample(name: impl Into<String>, value: f64, policy: Policy) -> MetricSample {
    MetricSample {
        name: name.into(),
        value,
        policy,
    }
}

/// The benchmark families the sentinel knows how to read.
pub const FAMILIES: [&str; 7] = [
    "kernels",
    "sweep",
    "bsofi",
    "fault_drill",
    "validate",
    "service",
    "recovery",
];

/// The artifact filename of a family (under `results/` or a baseline
/// dir).
pub fn family_file(family: &str) -> &'static str {
    match family {
        "kernels" => "BENCH_kernels.json",
        "sweep" => "BENCH_sweep.json",
        "bsofi" => "BENCH_bsofi.json",
        "fault_drill" => "BENCH_fault_drill.json",
        "validate" => "validate.json",
        "service" => "BENCH_service.json",
        "recovery" => "BENCH_recovery.json",
        other => panic!("unknown benchmark family {other:?}"),
    }
}

/// Returns the newest run in a document: trajectory files
/// (`{"runs": [...]}`) yield their last element, flat single-run files
/// yield themselves.
pub fn latest_run(doc: &Json) -> &Json {
    match doc.get("runs").and_then(Json::as_array) {
        Some(runs) if !runs.is_empty() => &runs[runs.len() - 1],
        _ => doc,
    }
}

fn num(j: &Json, key: &str) -> Option<f64> {
    j.get(key).and_then(Json::as_f64)
}

/// Relative tolerance for single-shot timing-derived metrics (see the
/// module docs for the calibration argument).
pub const TIMING_REL_TOL: f64 = 0.35;

/// Flattens one family document into judged metric samples.
///
/// # Errors
/// Returns a description when the document lacks the family's expected
/// structure (wrong file, schema drift).
pub fn extract(family: &str, doc: &Json) -> Result<Vec<MetricSample>, String> {
    let run = latest_run(doc);
    let mut out = Vec::new();
    match family {
        "kernels" => {
            let records = run
                .get("records")
                .and_then(Json::as_array)
                .ok_or("kernels: no records[]")?;
            for r in records {
                let name = r.get("name").and_then(Json::as_str).ok_or("record.name")?;
                let size = r.get("size").and_then(Json::as_u64).unwrap_or(0);
                let gf = num(r, "gflops").ok_or("record.gflops")?;
                out.push(sample(
                    format!("{name}_{size}.gflops"),
                    gf,
                    Policy::HigherBetter {
                        rel_tol: TIMING_REL_TOL,
                    },
                ));
            }
            // The batched[] section is optional (absent from pre-PR-7
            // artifacts) so an old baseline still parses; once both sides
            // carry it, the batched rates and speedups are gated like any
            // other timing metric.
            if let Some(batched) = run.get("batched").and_then(Json::as_array) {
                for r in batched {
                    let name = r.get("name").and_then(Json::as_str).ok_or("batched.name")?;
                    let n = r.get("n").and_then(Json::as_u64).unwrap_or(0);
                    let bsz = r.get("batch").and_then(Json::as_u64).unwrap_or(0);
                    let gf = num(r, "gflops").ok_or("batched.gflops")?;
                    out.push(sample(
                        format!("batched.{name}_{n}x{bsz}.gflops"),
                        gf,
                        Policy::HigherBetter {
                            rel_tol: TIMING_REL_TOL,
                        },
                    ));
                    if let Some(sp) = num(r, "speedup") {
                        out.push(sample(
                            format!("batched.{name}_{n}x{bsz}.speedup"),
                            sp,
                            Policy::HigherBetter {
                                rel_tol: TIMING_REL_TOL,
                            },
                        ));
                    }
                }
            }
        }
        "sweep" => {
            let summary = run.get("summary").ok_or("sweep: no summary")?;
            let Json::Obj(fields) = summary else {
                return Err("sweep: summary is not an object".into());
            };
            for (key, value) in fields {
                let Some(v) = value.as_f64() else { continue };
                // steady_* counters accumulate over however many timing
                // reps the best-of budget allowed — machine-speed
                // dependent, so they are informational, not judged.
                if key.starts_with("steady_") {
                    continue;
                }
                let policy = if key.starts_with("cache_") {
                    Policy::Exact
                } else if key.ends_with("_overhead_pct") {
                    Policy::CeilingAbs { max: 2.0 }
                } else {
                    // wraps_per_s_* and *_speedup are timing-derived.
                    Policy::HigherBetter {
                        rel_tol: TIMING_REL_TOL,
                    }
                };
                out.push(sample(format!("summary.{key}"), v, policy));
            }
        }
        "bsofi" => {
            let summary = run.get("summary").ok_or("bsofi: no summary")?;
            let Json::Obj(fields) = summary else {
                return Err("bsofi: summary is not an object".into());
            };
            for (key, value) in fields {
                let Some(v) = value.as_f64() else { continue };
                let policy = if key.starts_with("model_flops") {
                    Policy::Exact
                } else {
                    Policy::HigherBetter {
                        rel_tol: TIMING_REL_TOL,
                    }
                };
                out.push(sample(format!("summary.{key}"), v, policy));
            }
        }
        "fault_drill" => {
            let sites = num(run, "sites").ok_or("fault_drill: sites")?;
            let passed = num(run, "passed").ok_or("fault_drill: passed")?;
            out.push(sample(
                "detect_rate",
                if sites > 0.0 { passed / sites } else { 0.0 },
                Policy::Exact,
            ));
            // probe_overhead_pct is NOT judged: the drill's smoke lane
            // spends only ~0.3 s on that estimate and its noise floor is
            // several percent (schema.md marks it informational only).
            // The gated overhead bound is the sweep's metrics probe.
            if let Some(pct) = num(run, "metrics_overhead_pct") {
                out.push(sample(
                    "metrics_overhead_pct",
                    pct,
                    Policy::CeilingAbs { max: 2.0 },
                ));
            }
            if let Some(rungs) = run.get("sticky_ladder_rungs").and_then(Json::as_array) {
                let total: f64 = rungs.iter().filter_map(Json::as_f64).sum();
                out.push(sample("sticky_ladder_rungs", total, Policy::Exact));
            }
        }
        "validate" => {
            let summary = run.get("summary").ok_or("validate: no summary")?;
            out.push(sample(
                "mean_error",
                num(summary, "mean_error").ok_or("validate: mean_error")?,
                Policy::CeilingAbs { max: 1e-8 },
            ));
            out.push(sample(
                "max_error",
                num(summary, "max_error").ok_or("validate: max_error")?,
                Policy::CeilingAbs { max: 1e-6 },
            ));
            if let Some(p) = summary.get("passed").and_then(Json::as_bool) {
                out.push(sample("passed", p as u64 as f64, Policy::Exact));
            }
            if let Some(stages) = run.get("stages").and_then(Json::as_array) {
                for s in stages {
                    let name = s.get("name").and_then(Json::as_str).ok_or("stage.name")?;
                    if let Some(gf) = num(s, "gflops") {
                        out.push(sample(
                            format!("stage.{name}.gflops"),
                            gf,
                            Policy::HigherBetter {
                                rel_tol: TIMING_REL_TOL,
                            },
                        ));
                    }
                }
            }
        }
        "service" => {
            let summary = run.get("summary").ok_or("service: no summary")?;
            let Json::Obj(fields) = summary else {
                return Err("service: summary is not an object".into());
            };
            for (key, value) in fields {
                let Some(v) = value.as_f64() else { continue };
                let policy = match key.as_str() {
                    // Deterministic accounting: job/bin/degradation
                    // counts and the fault-isolation verdict must not
                    // drift.
                    "jobs" | "bins" | "completed" | "failed_jobs" | "degraded_jobs"
                    | "fault_isolated" => Policy::Exact,
                    // Throughput is timing-derived.
                    "jobs_per_s" => Policy::HigherBetter {
                        rel_tol: TIMING_REL_TOL,
                    },
                    // Latency percentiles are queue-dominated (sweeps
                    // ride a contended deque), so they get a wider
                    // lower-is-better band than kernel timings.
                    k if k.ends_with("_latency_ms") || k.ends_with("_queue_wait_ms") => {
                        Policy::LowerBetter { rel_tol: 0.5 }
                    }
                    // steals / rejected vary with scheduling luck:
                    // informational only.
                    _ => continue,
                };
                out.push(sample(format!("summary.{key}"), v, policy));
            }
        }
        "recovery" => {
            // The crash drill is fully deterministic: every kill site
            // must detect its crash and resume bitwise, every run. Any
            // drop in the detect rate is a durability logic change.
            let sites = num(run, "sites").ok_or("recovery: sites")?;
            let passed = num(run, "passed").ok_or("recovery: passed")?;
            out.push(sample(
                "detect_rate",
                if sites > 0.0 { passed / sites } else { 0.0 },
                Policy::Exact,
            ));
            out.push(sample("sites", sites, Policy::Exact));
        }
        other => return Err(format!("unknown family {other:?}")),
    }
    if out.is_empty() {
        return Err(format!("{family}: no metrics extracted"));
    }
    Ok(out)
}

/// Element-wise median across `k` fresh sample sets of the same family
/// (metrics are matched by name; a metric must appear in every set to
/// survive). With `k = 1` this is the identity.
pub fn median_of_k(mut sets: Vec<Vec<MetricSample>>) -> Vec<MetricSample> {
    if sets.len() <= 1 {
        return sets.pop().unwrap_or_default();
    }
    let first = sets[0].clone();
    first
        .into_iter()
        .filter_map(|m| {
            let mut values: Vec<f64> = sets
                .iter()
                .filter_map(|s| s.iter().find(|x| x.name == m.name).map(|x| x.value))
                .collect();
            if values.len() != sets.len() {
                return None;
            }
            values.sort_by(|a, b| a.total_cmp(b));
            let mid = values.len() / 2;
            let value = if values.len() % 2 == 1 {
                values[mid]
            } else {
                0.5 * (values[mid - 1] + values[mid])
            };
            Some(MetricSample { value, ..m })
        })
        .collect()
}

/// Verdict on one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the baseline (or under its ceiling).
    Ok,
    /// Better than the baseline by more than the tolerance.
    Improved,
    /// Worse than permitted — the gating condition.
    Regressed,
    /// Present in the fresh run but absent from the baseline.
    New,
}

/// One judged metric.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Metric name.
    pub name: String,
    /// Baseline value, when one existed.
    pub baseline: Option<f64>,
    /// Fresh (possibly medianed) value.
    pub fresh: f64,
    /// The policy that judged it.
    pub policy: Policy,
    /// The verdict.
    pub verdict: Verdict,
}

fn judge(policy: Policy, baseline: Option<f64>, fresh: f64) -> Verdict {
    const EPS: f64 = 1e-12;
    match policy {
        Policy::CeilingAbs { max } => {
            if fresh > max {
                Verdict::Regressed
            } else {
                Verdict::Ok
            }
        }
        _ => {
            let Some(base) = baseline else {
                return Verdict::New;
            };
            match policy {
                Policy::HigherBetter { rel_tol } => {
                    if fresh < base * (1.0 - rel_tol) {
                        Verdict::Regressed
                    } else if fresh > base * (1.0 + rel_tol) {
                        Verdict::Improved
                    } else {
                        Verdict::Ok
                    }
                }
                Policy::LowerBetter { rel_tol } => {
                    if fresh > base * (1.0 + rel_tol) {
                        Verdict::Regressed
                    } else if fresh < base * (1.0 - rel_tol) {
                        Verdict::Improved
                    } else {
                        Verdict::Ok
                    }
                }
                Policy::Exact => {
                    let scale = base.abs().max(fresh.abs()).max(1.0);
                    if (fresh - base).abs() <= EPS * scale {
                        Verdict::Ok
                    } else {
                        Verdict::Regressed
                    }
                }
                Policy::CeilingAbs { .. } => unreachable!(),
            }
        }
    }
}

/// Judges a fresh sample set against a baseline set (metrics matched by
/// name; the fresh set drives — baseline-only metrics are reported as
/// regressions of kind "missing" by the caller checking names).
pub fn compare(baseline: &[MetricSample], fresh: &[MetricSample]) -> Vec<Comparison> {
    fresh
        .iter()
        .map(|f| {
            let base = baseline.iter().find(|b| b.name == f.name).map(|b| b.value);
            Comparison {
                name: f.name.clone(),
                baseline: base,
                fresh: f.value,
                policy: f.policy,
                verdict: judge(f.policy, base, f.value),
            }
        })
        .collect()
}

/// Summary of one family's comparison, as carried into the history row.
#[derive(Clone, Debug)]
pub struct FamilyReport {
    /// Family key (`kernels`, `sweep`, …).
    pub family: String,
    /// `"compared"`, `"seeded"`, or `"skipped"`.
    pub status: String,
    /// All metric verdicts (empty unless compared).
    pub comparisons: Vec<Comparison>,
}

impl FamilyReport {
    /// Names of regressed metrics.
    pub fn regressions(&self) -> Vec<&str> {
        self.comparisons
            .iter()
            .filter(|c| c.verdict == Verdict::Regressed)
            .map(|c| c.name.as_str())
            .collect()
    }
}

/// Builds one `BENCH_history.jsonl` row (see `results/schema.md`).
pub fn history_row(label: &str, unix_ms: u64, families: &[FamilyReport]) -> Json {
    let any_regression = families.iter().any(|f| !f.regressions().is_empty());
    let fam_json = families
        .iter()
        .map(|f| {
            let regressed = f
                .regressions()
                .into_iter()
                .map(|n| Json::Str(n.to_string()))
                .collect();
            let improved = f
                .comparisons
                .iter()
                .filter(|c| c.verdict == Verdict::Improved)
                .map(|c| Json::Str(c.name.clone()))
                .collect();
            let metrics = f
                .comparisons
                .iter()
                .map(|c| (c.name.clone(), Json::Num(c.fresh)))
                .collect();
            Json::Obj(vec![
                ("family".into(), Json::Str(f.family.clone())),
                ("status".into(), Json::Str(f.status.clone())),
                ("metrics".into(), Json::Obj(metrics)),
                ("regressed".into(), Json::Arr(regressed)),
                ("improved".into(), Json::Arr(improved)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("kind".into(), Json::Str("bench_history".into())),
        ("schema".into(), Json::Int(1)),
        ("unix_ms".into(), Json::Int(unix_ms)),
        ("label".into(), Json::Str(label.to_string())),
        (
            "status".into(),
            Json::Str(if any_regression { "regressed" } else { "ok" }.into()),
        ),
        ("families".into(), Json::Arr(fam_json)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).expect("test JSON parses")
    }

    #[test]
    fn latest_run_handles_both_shapes() {
        let flat = parse(r#"{"label":"x","summary":{}}"#);
        assert!(latest_run(&flat).get("label").is_some());
        let traj = parse(r#"{"runs":[{"label":"a"},{"label":"b"}]}"#);
        assert_eq!(
            latest_run(&traj).get("label").and_then(Json::as_str),
            Some("b")
        );
    }

    #[test]
    fn kernels_extraction_names_and_policies() {
        let doc = parse(
            r#"{"runs":[{"records":[
                {"name":"gemm_nn","size":64,"gflops":11.5},
                {"name":"fsi","size":36,"gflops":3.2}]}]}"#,
        );
        let m = extract("kernels", &doc).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].name, "gemm_nn_64.gflops");
        assert!(matches!(m[0].policy, Policy::HigherBetter { .. }));
    }

    #[test]
    fn kernels_batched_section_is_extracted_when_present() {
        let doc = parse(
            r#"{"records":[{"name":"gemm_nn","size":64,"gflops":11.5}],
                "batched":[{"name":"gemm_batched","n":32,"batch":8,
                            "gflops":40.0,"looped_gflops":15.0,"speedup":2.6}]}"#,
        );
        let m = extract("kernels", &doc).unwrap();
        let gf = m
            .iter()
            .find(|s| s.name == "batched.gemm_batched_32x8.gflops")
            .expect("batched gflops metric");
        assert_eq!(gf.value, 40.0);
        assert!(matches!(gf.policy, Policy::HigherBetter { .. }));
        let sp = m
            .iter()
            .find(|s| s.name == "batched.gemm_batched_32x8.speedup")
            .expect("batched speedup metric");
        assert_eq!(sp.value, 2.6);
        // Pre-PR-7 artifacts without the section still extract.
        let old = parse(r#"{"records":[{"name":"gemm_nn","size":64,"gflops":11.5}]}"#);
        assert_eq!(extract("kernels", &old).unwrap().len(), 1);
    }

    #[test]
    fn sweep_counters_are_exact_and_rates_are_relative() {
        let doc = parse(
            r#"{"summary":{"wraps_per_s_dense":100.0,"cache_warm_hits":114,
                "factored_wrap_speedup":1.1,"metrics_overhead_pct":0.5}}"#,
        );
        let m = extract("sweep", &doc).unwrap();
        let by = |n: &str| m.iter().find(|s| s.name == format!("summary.{n}")).unwrap();
        assert!(matches!(
            by("wraps_per_s_dense").policy,
            Policy::HigherBetter { .. }
        ));
        assert_eq!(by("cache_warm_hits").policy, Policy::Exact);
        assert_eq!(
            by("metrics_overhead_pct").policy,
            Policy::CeilingAbs { max: 2.0 }
        );
    }

    #[test]
    fn fault_drill_detect_rate_and_ceilings() {
        let doc = parse(
            r#"{"sites":21,"passed":21,"probe_overhead_pct":-0.1,
                "sticky_ladder_rungs":[1,1,1,0]}"#,
        );
        let m = extract("fault_drill", &doc).unwrap();
        let rate = m.iter().find(|s| s.name == "detect_rate").unwrap();
        assert_eq!(rate.value, 1.0);
        assert_eq!(rate.policy, Policy::Exact);
        let rungs = m.iter().find(|s| s.name == "sticky_ladder_rungs").unwrap();
        assert_eq!(rungs.value, 3.0);
        // The noisy probe estimate must stay informational (not judged).
        assert!(!m.iter().any(|s| s.name == "probe_overhead_pct"));
    }

    #[test]
    fn service_counts_are_exact_latencies_are_banded() {
        let doc = parse(
            r#"{"summary":{"jobs":1200,"completed":1200,"failed_jobs":0,
                "degraded_jobs":1,"fault_isolated":1,"jobs_per_s":800.0,
                "p50_latency_ms":4.0,"p99_latency_ms":22.0,
                "p99_queue_wait_ms":18.0,"steals":37,"rejected":12}}"#,
        );
        let m = extract("service", &doc).unwrap();
        let by = |n: &str| m.iter().find(|s| s.name == format!("summary.{n}"));
        assert_eq!(by("jobs").unwrap().policy, Policy::Exact);
        assert_eq!(by("fault_isolated").unwrap().policy, Policy::Exact);
        assert!(matches!(
            by("jobs_per_s").unwrap().policy,
            Policy::HigherBetter { .. }
        ));
        assert!(matches!(
            by("p99_latency_ms").unwrap().policy,
            Policy::LowerBetter { .. }
        ));
        assert!(matches!(
            by("p99_queue_wait_ms").unwrap().policy,
            Policy::LowerBetter { .. }
        ));
        // Scheduling-luck counters stay informational.
        assert!(by("steals").is_none());
        assert!(by("rejected").is_none());
    }

    #[test]
    fn recovery_drill_is_judged_exactly() {
        let doc = parse(r#"{"sites":6,"passed":6,"site_results":[]}"#);
        let m = extract("recovery", &doc).unwrap();
        let rate = m.iter().find(|s| s.name == "detect_rate").unwrap();
        assert_eq!(rate.value, 1.0);
        assert_eq!(rate.policy, Policy::Exact);
        let sites = m.iter().find(|s| s.name == "sites").unwrap();
        assert_eq!(sites.value, 6.0);
        assert_eq!(sites.policy, Policy::Exact);
        // One failed site must trip the gate against a clean baseline.
        let bad = parse(r#"{"sites":6,"passed":5}"#);
        let cmp = compare(&m, &extract("recovery", &bad).unwrap());
        assert!(cmp
            .iter()
            .any(|c| c.name == "detect_rate" && c.verdict == Verdict::Regressed));
    }

    #[test]
    fn judge_covers_the_verdict_space() {
        let hb = Policy::HigherBetter { rel_tol: 0.25 };
        assert_eq!(judge(hb, Some(100.0), 80.0), Verdict::Ok);
        assert_eq!(judge(hb, Some(100.0), 74.0), Verdict::Regressed);
        assert_eq!(judge(hb, Some(100.0), 130.0), Verdict::Improved);
        assert_eq!(judge(hb, None, 10.0), Verdict::New);
        assert_eq!(judge(Policy::Exact, Some(114.0), 114.0), Verdict::Ok);
        assert_eq!(judge(Policy::Exact, Some(114.0), 113.0), Verdict::Regressed);
        let ceil = Policy::CeilingAbs { max: 2.0 };
        assert_eq!(judge(ceil, None, 1.9), Verdict::Ok);
        assert_eq!(judge(ceil, Some(0.1), 2.1), Verdict::Regressed);
    }

    #[test]
    fn identical_runs_report_zero_regressions() {
        let doc = parse(
            r#"{"summary":{"wraps_per_s_dense":27351.5,"cache_warm_hits":114,
                "factored_wrap_speedup":1.09}}"#,
        );
        let base = extract("sweep", &doc).unwrap();
        let fresh = extract("sweep", &doc).unwrap();
        let cmp = compare(&base, &fresh);
        assert!(cmp.iter().all(|c| c.verdict == Verdict::Ok));
    }

    #[test]
    fn perturbed_baseline_trips_the_gate() {
        let base_doc = parse(r#"{"summary":{"wraps_per_s_dense":100000.0,"cache_warm_hits":114}}"#);
        let fresh_doc = parse(r#"{"summary":{"wraps_per_s_dense":27351.5,"cache_warm_hits":114}}"#);
        let cmp = compare(
            &extract("sweep", &base_doc).unwrap(),
            &extract("sweep", &fresh_doc).unwrap(),
        );
        assert!(cmp
            .iter()
            .any(|c| c.name == "summary.wraps_per_s_dense" && c.verdict == Verdict::Regressed));
    }

    #[test]
    fn median_of_k_suppresses_one_outlier() {
        let mk = |v: f64| {
            vec![MetricSample {
                name: "m".into(),
                value: v,
                policy: Policy::HigherBetter { rel_tol: 0.25 },
            }]
        };
        let merged = median_of_k(vec![mk(100.0), mk(3.0), mk(98.0)]);
        assert_eq!(merged[0].value, 98.0);
        let merged = median_of_k(vec![mk(10.0), mk(20.0)]);
        assert_eq!(merged[0].value, 15.0);
        assert_eq!(median_of_k(vec![mk(7.0)])[0].value, 7.0);
    }

    #[test]
    fn history_row_shape() {
        let fam = FamilyReport {
            family: "sweep".into(),
            status: "compared".into(),
            comparisons: vec![Comparison {
                name: "summary.x".into(),
                baseline: Some(1.0),
                fresh: 0.2,
                policy: Policy::HigherBetter { rel_tol: 0.25 },
                verdict: Verdict::Regressed,
            }],
        };
        let row = history_row("test", 123, &[fam]);
        assert_eq!(row.get("status").and_then(Json::as_str), Some("regressed"));
        let text = row.to_string();
        assert!(!text.contains('\n'), "one JSONL row must be one line");
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some("bench_history")
        );
    }
}
