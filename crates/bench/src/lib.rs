//! # fsi-bench — harnesses regenerating every table and figure of the paper
//!
//! One binary per experiment (see DESIGN.md §4 for the full index):
//!
//! | binary             | reproduces                                     |
//! |--------------------|------------------------------------------------|
//! | `validate`         | §V-A correctness validation                    |
//! | `table_patterns`   | §II-B selected-block counts & memory reduction |
//! | `table_complexity` | §II-C flop-complexity table (formula vs measured) |
//! | `fig8_top`         | FSI per-stage Gflop/s vs block size N          |
//! | `fig8_bottom`      | thread scalability, FSI-OpenMP vs MKL-style    |
//! | `fig9`             | hybrid ranks×threads sweep + memory model      |
//! | `fig10`            | Green's-function vs measurement runtime profile |
//! | `fig11`            | full DQMC runtime vs threads                   |
//!
//! Every binary runs a scaled-down default in seconds and accepts
//! `--paper-scale` plus `key=value` overrides (`N=`, `L=`, `c=`,
//! `threads=`, …) to approach the paper's exact parameters.
//!
//! Criterion micro-benchmarks live in `benches/` (dense kernels, FSI
//! stages, and the three ablations called out in DESIGN.md).

pub mod sentinel;

use std::collections::HashMap;

use fsi_pcyclic::BlockPCyclic;
use fsi_pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
use fsi_runtime::sim::AlgorithmTrace;
use fsi_runtime::{Par, Stopwatch};
use fsi_selinv::{Selection, StructuredQr};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Minimal `key=value` / `--flag` argument parser shared by the harness
/// binaries.
pub struct Args {
    kv: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (tests).
    #[allow(clippy::should_implement_trait)] // not a collection; `FromIterator` would mislead
    pub fn from_iter<I: IntoIterator<Item = String>>(items: I) -> Self {
        let mut kv = HashMap::new();
        let mut flags = Vec::new();
        for a in items {
            if let Some(flag) = a.strip_prefix("--") {
                flags.push(flag.to_string());
            } else if let Some((k, v)) = a.split_once('=') {
                kv.insert(k.to_string(), v.to_string());
            }
        }
        Args { kv, flags }
    }

    /// Whether `--name` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of a `--name=value` flag, if passed.
    pub fn flag_value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find_map(|f| f.strip_prefix(name).and_then(|r| r.strip_prefix('=')))
    }

    /// Every value of a repeatable `--name=value` flag, in order.
    pub fn flag_values(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter_map(|f| f.strip_prefix(name).and_then(|r| r.strip_prefix('=')))
            .collect()
    }

    /// `key=value` as usize, with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.kv
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {key}={v}")))
            .unwrap_or(default)
    }

    /// `key=value` as f64, with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.kv
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {key}={v}")))
            .unwrap_or(default)
    }

    /// `key=a,b,c` as a usize list, with a default.
    pub fn get_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        self.kv
            .get(key)
            .map(|v| {
                v.split(',')
                    .map(|x| x.parse().unwrap_or_else(|_| panic!("bad {key}={v}")))
                    .collect()
            })
            .unwrap_or_else(|| default.to_vec())
    }

    /// Shorthand for the ubiquitous `--paper-scale` switch.
    pub fn paper_scale(&self) -> bool {
        self.flag("paper-scale")
    }
}

/// Applies the `--kernel=avx512|avx2|scalar` override shared by the
/// harness binaries: forces the dense micro-kernel tier for the whole
/// process via [`fsi_dense::set_default_tier`] and returns the tier now
/// active. Exits with an error when the name is unknown or the host lacks
/// the requested ISA — a benchmark silently measuring a different kernel
/// than the one named on the command line would poison recorded baselines.
///
/// Without the flag the runtime dispatch order stands (the `FSI_KERNEL`
/// environment variable, then the best ISA the host offers).
pub fn apply_kernel_flag(args: &Args) -> fsi_dense::Tier {
    if let Some(name) = args.flag_value("kernel") {
        let tier = fsi_dense::Tier::parse(name).unwrap_or_else(|| {
            eprintln!("error: unknown --kernel={name} (expected avx512, avx2, or scalar)");
            std::process::exit(2);
        });
        if let Err(e) = fsi_dense::set_default_tier(tier) {
            eprintln!("error: --kernel={name}: {e}");
            std::process::exit(2);
        }
    }
    fsi_dense::active_tier()
}

/// Builds a Hubbard p-cyclic matrix for an `nx × nx` lattice (the paper's
/// benchmark family, `(t, β, U) = (1, 1, 2)`).
pub fn hubbard_matrix(nx: usize, l: usize, seed: u64, spin: Spin) -> BlockPCyclic {
    let lattice = SquareLattice::square(nx);
    let n = lattice.n_sites();
    let builder = BlockBuilder::new(lattice, HubbardParams::paper_validation(l));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let field = HsField::random(l, n, &mut rng);
    hubbard_pcyclic(&builder, &field, spin)
}

/// Returns the side of the smallest square lattice with at least `n`
/// sites (the harness maps the paper's `N` values — all perfect squares —
/// exactly).
pub fn lattice_side_for(n: usize) -> usize {
    let mut s = 1usize;
    while s * s < n {
        s += 1;
    }
    s
}

/// Measured per-task traces of one FSI run, for the scheduling simulator
/// (used by `fig8_bottom`/`fig11` when the host has fewer cores than the
/// paper's socket; see DESIGN.md substitutions).
pub struct FsiTraces {
    /// Coarse-grained trace: CLS clusters, BSOFI columns, wrap seeds as
    /// independent tasks (the OpenMP mode's schedule).
    pub openmp: AlgorithmTrace,
    /// Fine-grained trace: each dense kernel split into its column-chunk
    /// tasks with the serial glue between kernels kept serial (the
    /// MKL-style mode's schedule).
    pub mkl: AlgorithmTrace,
    /// Total sequential seconds.
    pub seq_seconds: f64,
}

/// Runs FSI sequentially on `pc`, timing every independent task of every
/// stage, and builds the two scheduling traces.
pub fn trace_fsi(pc: &BlockPCyclic, selection: &Selection) -> FsiTraces {
    let c = selection.c;
    let q = selection.q;
    let n = pc.n();
    let b = pc.l() / c;
    // --- CLS: time each cluster chain. ---
    let mut cls_tasks = Vec::with_capacity(b);
    let o = c - 1 - q;
    let sw_total = Stopwatch::start();
    let mut reduced_blocks = Vec::with_capacity(b);
    for m in 0..b {
        let sw = Stopwatch::start();
        let mut idx = (c * m + o) % pc.l();
        let mut acc = pc.block(idx).clone();
        for _ in 1..c {
            idx = pc.up(idx);
            acc = fsi_dense::mul(&acc, pc.block(idx));
        }
        cls_tasks.push(sw.seconds());
        reduced_blocks.push(acc);
    }
    let clustered = fsi_selinv::cls::cls(Par::Seq, Par::Seq, pc, c, q);

    // --- BSOFI: stage A serial, stage B per-column tasks, stage C
    //     row-band parallel. ---
    let sw = Stopwatch::start();
    let factor = StructuredQr::factor(Par::Seq, &clustered.reduced);
    let bsofi_serial = sw.seconds();
    let sw = Stopwatch::start();
    let g_reduced = factor.inverse(Par::Seq, Par::Seq);
    let bsofi_bc = sw.seconds();
    // Stage B+C together measured as bsofi_bc; both parallelize over b (or
    // more) independent chunks, so model them as b uniform tasks.
    let bsofi_tasks = vec![bsofi_bc / b as f64; b];

    // --- WRP: time each seed walk. ---
    let mut wrap_tasks = Vec::with_capacity(b * b);
    {
        let factors = fsi_selinv::BlockFactors::new(pc);
        let up_steps = c / 2;
        let down_steps = (c - 1) - up_steps;
        for s in 0..b * b {
            let (k0, l0) = (s / b, s % b);
            let k = clustered.to_original(k0);
            let l = clustered.to_original(l0);
            let sw = Stopwatch::start();
            let g_seed = clustered.reduced.dense_block(&g_reduced, k0, l0);
            let mut cur = g_seed.clone();
            let mut row = k;
            for _ in 0..up_steps {
                cur = fsi_selinv::wrap::step_up(pc, &factors, &cur, row, l);
                row = pc.up(row);
            }
            let mut cur = g_seed;
            let mut row = k;
            for _ in 0..down_steps {
                cur = fsi_selinv::wrap::step_down(pc, &cur, row, l);
                row = pc.down(row);
            }
            wrap_tasks.push(sw.seconds());
        }
    }
    let seq_seconds = sw_total.seconds();

    // OpenMP trace: three flat fork/join regions.
    let mut openmp = AlgorithmTrace::default();
    openmp.push_region(cls_tasks.clone(), 0.0);
    openmp.push_region(bsofi_tasks, bsofi_serial);
    openmp.push_region(wrap_tasks.clone(), 0.0);

    // MKL-style trace: every dense kernel is its own fork/join region
    // whose tasks are column chunks (GEMM parallelism granularity:
    // 32-column panels), with factorization panels kept serial.
    let chunks = (n / 32).max(1);
    let mut mkl = AlgorithmTrace::default();
    for t in &cls_tasks {
        // A cluster chain is c−1 sequential gemms; each gemm forks.
        let per_gemm = t / (c - 1).max(1) as f64;
        for _ in 0..c - 1 {
            mkl.push_region(vec![per_gemm / chunks as f64; chunks], 0.0);
        }
    }
    // BSOFI under MKL: panel QRs are mostly level-2 (serial-ish); the
    // inverse phase gemms fork.
    mkl.push_region(Vec::new(), bsofi_serial * 0.7);
    let qr_parallel = bsofi_serial * 0.3;
    mkl.push_region(vec![qr_parallel / chunks as f64; chunks], 0.0);
    let bc_chunked = bsofi_bc;
    mkl.push_region(vec![bc_chunked / chunks as f64; chunks], 0.0);
    for t in &wrap_tasks {
        // Each wrap step is one gemm or one solve; solves have a serial
        // triangular part.
        mkl.push_region(vec![0.7 * t / chunks as f64; chunks], 0.3 * t);
    }

    FsiTraces {
        openmp,
        mkl,
        seq_seconds,
    }
}

/// Run-report wiring shared by the harness binaries.
///
/// [`init_trace`] turns on stage-level span collection so every harness
/// can report per-stage flop rates from the structured collector (the
/// `FSI_TRACE=2` environment setting upgrades to kernel-level spans), and
/// remembers whether the user asked for trace files. [`TraceExport::finish`]
/// captures the [`fsi_runtime::RunReport`] and, when export was requested
/// with `FSI_TRACE=…` or `--trace-out=PATH`, writes the NDJSON run report
/// (see `results/schema.md`) plus a Chrome `trace_event` view next to it.
pub struct TraceExport {
    command: String,
    out: Option<std::path::PathBuf>,
}

/// Initializes tracing for a harness binary named `command`.
///
/// Export defaults to `results/<command>.trace.ndjson` when `FSI_TRACE`
/// is set (and nonzero); `--trace-out=PATH` overrides the path and forces
/// export even without the environment variable.
pub fn init_trace(command: &str, args: &Args) -> TraceExport {
    use fsi_runtime::trace;
    // A harness that panics mid-run dumps the flight-recorder ring
    // (NDJSON under FSI_FLIGHT_DIR) so the crash is diagnosable.
    fsi_runtime::metrics::flight::install_panic_hook();
    if trace::level() == fsi_runtime::TraceLevel::Off {
        trace::set_level(fsi_runtime::TraceLevel::Stages);
    }
    trace::clear();
    let out = args
        .flag_value("trace-out")
        .map(std::path::PathBuf::from)
        .or_else(|| {
            std::env::var("FSI_TRACE")
                .ok()
                .filter(|v| !v.is_empty() && v != "0")
                .map(|_| std::path::PathBuf::from(format!("results/{command}.trace.ndjson")))
        });
    TraceExport {
        command: command.to_string(),
        out,
    }
}

impl TraceExport {
    /// Captures the run report accumulated since [`init_trace`] (or the
    /// last `finish`), attaches pool utilization when a pool is given,
    /// and writes the requested trace files.
    pub fn finish(&self, pool: Option<&fsi_runtime::ThreadPool>) -> fsi_runtime::RunReport {
        let mut report = fsi_runtime::trace::RunReport::capture(&self.command);
        if let Some(p) = pool {
            report = report.with_pool(p);
        }
        if let Some(path) = &self.out {
            let chrome = path.with_extension("json");
            match report
                .write_ndjson(path)
                .and_then(|()| report.write_chrome_trace(&chrome))
            {
                Ok(()) => println!(
                    "
trace: wrote {} and {}",
                    path.display(),
                    chrome.display()
                ),
                Err(e) => eprintln!("trace: export failed: {e}"),
            }
        }
        report
    }
}

/// Writes a bench artifact (e.g. `results/BENCH_*.json`) atomically:
/// the bytes land in a same-directory temp file that is renamed over
/// `path`, so a crash mid-write can never leave a torn artifact for the
/// sentinel (or a human) to misread. Creates parent directories.
///
/// # Errors
/// Filesystem errors from the temp write or the rename.
pub fn write_artifact(path: impl AsRef<std::path::Path>, contents: &str) -> std::io::Result<()> {
    fsi_runtime::ckpt::write_atomic(path.as_ref(), contents.as_bytes())
}

/// Formats a Gflop/s value from flops and seconds.
pub fn gflops(flops: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        flops as f64 / seconds / 1e9
    }
}

/// Prints the standard harness banner.
pub fn banner(title: &str, paper_scale: bool) {
    println!("== {title} ==");
    if paper_scale {
        println!("   (paper-scale parameters)");
    } else {
        println!("   (scaled-down defaults; pass --paper-scale and key=value overrides for paper parameters)");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_selinv::Pattern;

    #[test]
    fn args_parse_kv_flags_and_lists() {
        let a = Args::from_iter(
            ["N=64", "--paper-scale", "c=10", "list=1,2,3", "x=1.5"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(a.get_usize("N", 0), 64);
        assert_eq!(a.get_usize("missing", 7), 7);
        assert!(a.paper_scale());
        assert!(!a.flag("other"));
        assert_eq!(a.get_list("list", &[9]), vec![1, 2, 3]);
        assert_eq!(a.get_list("none", &[9]), vec![9]);
        assert!((a.get_f64("x", 0.0) - 1.5).abs() < 1e-15);
    }

    #[test]
    fn lattice_side_covers_paper_sizes() {
        assert_eq!(lattice_side_for(256), 16);
        assert_eq!(lattice_side_for(400), 20);
        assert_eq!(lattice_side_for(576), 24);
        assert_eq!(lattice_side_for(1024), 32);
        assert_eq!(lattice_side_for(1), 1);
        assert_eq!(lattice_side_for(10), 4);
    }

    #[test]
    fn trace_fsi_produces_consistent_traces() {
        let pc = hubbard_matrix(3, 12, 5, Spin::Up);
        let sel = Selection::new(Pattern::Columns, 4, 1);
        let t = trace_fsi(&pc, &sel);
        assert_eq!(t.openmp.regions.len(), 3);
        assert!(t.seq_seconds > 0.0);
        // OpenMP trace scales better than the MKL trace at high thread
        // counts (the Fig. 8-bottom contrast).
        let omp12 = t.openmp.speedup(12);
        let mkl12 = t.mkl.speedup(12);
        assert!(
            omp12 > mkl12 * 0.8,
            "openmp {omp12} should rival/beat mkl {mkl12}"
        );
        // Both are genuine speedups at 2 threads.
        assert!(t.openmp.speedup(2) > 1.2);
    }

    #[test]
    fn gflops_helper() {
        assert_eq!(gflops(2_000_000_000, 1.0), 2.0);
        assert_eq!(gflops(1, 0.0), 0.0);
    }
}
