//! Property-based tests of the p-cyclic/Hubbard layer: Green's-function
//! identities and Hubbard block structure on arbitrary inputs.

use fsi_pcyclic::green::{
    cyclic_product_full, equal_time_green_explicit, green_block_explicit, w_matrix,
};
use fsi_pcyclic::{
    hubbard_pcyclic, random_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice,
};
use fsi_runtime::Par;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// G(k,ℓ) from the explicit expression equals the dense inverse block.
    #[test]
    fn explicit_blocks_equal_dense_inverse(
        n in 2usize..4,
        l in 1usize..6,
        seed in any::<u64>(),
    ) {
        let pc = random_pcyclic(n, l, seed);
        let g_ref = pc.reference_green(Par::Seq);
        let k = (seed as usize) % l;
        let j = (seed as usize / 7) % l;
        let blk = green_block_explicit(Par::Seq, &pc, k, j);
        let want = pc.dense_block(&g_ref, k, j);
        prop_assert!(fsi_dense::rel_error(&blk, &want) < 1e-8);
    }

    /// The cyclic products P(k) are similar for all k: equal traces.
    #[test]
    fn cyclic_products_share_invariants(n in 2usize..4, l in 2usize..6, seed in any::<u64>()) {
        let pc = random_pcyclic(n, l, seed);
        let trace = |m: &fsi_dense::Matrix| (0..n).map(|i| m[(i, i)]).sum::<f64>();
        let t0 = trace(&cyclic_product_full(Par::Seq, &pc, 0));
        for k in 1..l {
            let tk = trace(&cyclic_product_full(Par::Seq, &pc, k));
            prop_assert!((t0 - tk).abs() < 1e-8 * t0.abs().max(1.0));
        }
    }

    /// det W(k) is k-independent (Sylvester): the Metropolis ratio is
    /// frame-independent.
    #[test]
    fn det_w_is_frame_independent(n in 2usize..4, l in 2usize..5, seed in any::<u64>()) {
        let pc = random_pcyclic(n, l, seed);
        let d0 = fsi_dense::getrf(w_matrix(Par::Seq, &pc, 0)).unwrap().det();
        for k in 1..l {
            let dk = fsi_dense::getrf(w_matrix(Par::Seq, &pc, k)).unwrap().det();
            prop_assert!((d0 - dk).abs() < 1e-8 * d0.abs().max(1.0), "k={k}: {d0} vs {dk}");
        }
    }

    /// Hubbard B blocks always invert exactly via the analytic form.
    #[test]
    fn hubbard_blocks_have_analytic_inverses(
        l in 2usize..6,
        u in 0.0f64..8.0,
        beta in 0.25f64..4.0,
        seed in any::<u64>(),
    ) {
        let lattice = SquareLattice::square(2);
        let params = HubbardParams { t: 1.0, u, beta, l };
        let builder = BlockBuilder::new(lattice, params);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let field = HsField::random(l, 4, &mut rng);
        for spin in Spin::BOTH {
            let b = builder.block(&field, 0, spin);
            let binv = builder.block_inverse(&field, 0, spin);
            let mut p = fsi_dense::mul(&b, &binv);
            p.add_diag(-1.0);
            prop_assert!(p.max_abs() < 1e-10, "{spin:?}: {}", p.max_abs());
        }
    }

    /// Equal-time Green's functions have eigen-range consistent with
    /// fermion occupation: diagonal entries of G lie in a physical band.
    #[test]
    fn equal_time_green_is_physically_bounded(l in 2usize..6, seed in any::<u64>()) {
        let lattice = SquareLattice::square(2);
        let builder = BlockBuilder::new(lattice, HubbardParams::paper_validation(l));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let field = HsField::random(l, 4, &mut rng);
        let pc = hubbard_pcyclic(&builder, &field, Spin::Up);
        let g = equal_time_green_explicit(Par::Seq, &pc, 0);
        // G = (I + P)⁻¹ with P positive-ish for these parameters: the
        // diagonal stays within a loose physical window.
        for i in 0..4 {
            prop_assert!(g[(i, i)] > -0.5 && g[(i, i)] < 1.5, "G[{i},{i}] = {}", g[(i, i)]);
        }
    }

    /// Torus index helpers are mutually inverse.
    #[test]
    fn torus_navigation_roundtrips(l in 1usize..9, k in 0usize..9) {
        let pc = random_pcyclic(2, l, 3);
        let k = k % l;
        prop_assert_eq!(pc.up(pc.down(k)), k);
        prop_assert_eq!(pc.down(pc.up(k)), k);
    }
}
