//! The block p-cyclic matrix `M` in normal form (paper Eq. (1)/(2)).
//!
//! ```text
//!       | I            B_1 |
//!       |-B_2  I           |
//!  M =  |     -B_3 ...     |        (L block rows/cols of size N)
//!       |          ...  I  |
//!       |          -B_L  I |
//! ```
//!
//! Internally blocks are 0-indexed: `b[k]` is the paper's `B_{k+1}`. The
//! Green's function is `G = M⁻¹`; only `O(L)` blocks of `M` are stored
//! (the `B`s), while `G` is block-dense — which is exactly why *selected*
//! inversion matters.

use fsi_dense::{inverse_par, Matrix};
use fsi_runtime::Par;

/// A block p-cyclic matrix in normal form, stored as its `L` blocks
/// `b[0..L]`, each `N × N`.
#[derive(Clone, Debug)]
pub struct BlockPCyclic {
    blocks: Vec<Matrix>,
    n: usize,
}

impl BlockPCyclic {
    /// Wraps a list of equally sized square blocks.
    ///
    /// # Panics
    /// Panics if the list is empty or blocks disagree in shape.
    pub fn new(blocks: Vec<Matrix>) -> Self {
        let n = blocks
            .first()
            .expect("a p-cyclic matrix needs at least one block")
            .rows();
        for (k, b) in blocks.iter().enumerate() {
            assert!(
                b.rows() == n && b.cols() == n,
                "block {k} has shape {}x{}, expected {n}x{n}",
                b.rows(),
                b.cols()
            );
        }
        BlockPCyclic { blocks, n }
    }

    /// Block size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of block rows `L`.
    pub fn l(&self) -> usize {
        self.blocks.len()
    }

    /// Total dimension `N·L`.
    pub fn dim(&self) -> usize {
        self.n * self.l()
    }

    /// Block `b[k]` (the paper's `B_{k+1}`).
    pub fn block(&self, k: usize) -> &Matrix {
        &self.blocks[k]
    }

    /// All blocks.
    pub fn blocks(&self) -> &[Matrix] {
        &self.blocks
    }

    /// Torus-wrapped block index (`wrap(L) = 0`, `wrap(-1 as computed via
    /// +L-1) = L-1`); inputs may exceed `L` by at most `L`.
    pub fn wrap(&self, k: usize) -> usize {
        k % self.l()
    }

    /// Index below `k` on the torus (`k+1`, wrapping to 0).
    pub fn down(&self, k: usize) -> usize {
        (k + 1) % self.l()
    }

    /// Index above `k` on the torus (`k−1`, wrapping to `L−1`).
    pub fn up(&self, k: usize) -> usize {
        (k + self.l() - 1) % self.l()
    }

    /// Assembles the dense `NL × NL` matrix `M` (for reference inversions
    /// and validation; O((NL)²) memory).
    pub fn assemble_dense(&self) -> Matrix {
        let (n, l) = (self.n, self.l());
        let mut m = Matrix::zeros(n * l, n * l);
        for k in 0..l {
            // Diagonal identity.
            for i in 0..n {
                m[(k * n + i, k * n + i)] = 1.0;
            }
        }
        if l == 1 {
            // Degenerate single-slice matrix: corner and diagonal coincide,
            // M = I + B_1.
            for j in 0..n {
                for i in 0..n {
                    m[(i, j)] += self.blocks[0][(i, j)];
                }
            }
            return m;
        }
        // Corner +B_1 at block (0, L−1).
        for j in 0..n {
            for i in 0..n {
                m[(i, (l - 1) * n + j)] = self.blocks[0][(i, j)];
            }
        }
        // Subdiagonal −B_{k+1} at block (k, k−1) for k = 1..L−1.
        for k in 1..l {
            for j in 0..n {
                for i in 0..n {
                    m[(k * n + i, (k - 1) * n + j)] = -self.blocks[k][(i, j)];
                }
            }
        }
        m
    }

    /// Reference Green's function: dense `G = M⁻¹` via LU (the paper's
    /// "MKL DGETRF + DGETRI" validation baseline). O((NL)³) flops.
    pub fn reference_green(&self, par: Par<'_>) -> Matrix {
        inverse_par(par, &self.assemble_dense())
            .expect("p-cyclic matrices with nonsingular blocks are nonsingular")
    }

    /// Extracts block `(k, ℓ)` of a dense `NL × NL` matrix in this
    /// matrix's block layout.
    pub fn dense_block(&self, dense: &Matrix, k: usize, l: usize) -> Matrix {
        assert_eq!(dense.rows(), self.dim());
        assert_eq!(dense.cols(), self.dim());
        dense.block(k * self.n, l * self.n, self.n, self.n)
    }

    /// Memory footprint of the stored blocks in bytes (used by the Fig. 9
    /// per-rank memory model).
    pub fn bytes(&self) -> usize {
        self.l() * self.n * self.n * std::mem::size_of::<f64>()
    }
}

/// Builds a random block p-cyclic matrix with well-conditioned blocks —
/// the generic (non-Hubbard) test input for the structured kernels.
pub fn random_pcyclic(n: usize, l: usize, seed: u64) -> BlockPCyclic {
    let blocks = (0..l)
        .map(|k| {
            let mut b = fsi_dense::test_matrix(n, n, seed.wrapping_add(k as u64 * 7919));
            b.scale(0.5 / n as f64);
            b.add_diag(1.0);
            b
        })
        .collect();
    BlockPCyclic::new(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_dense::mul;

    #[test]
    fn assembly_layout() {
        let pc = random_pcyclic(3, 4, 1);
        let m = pc.assemble_dense();
        assert_eq!(m.rows(), 12);
        // Diagonal blocks are I.
        for k in 0..4 {
            let d = pc.dense_block(&m, k, k);
            let mut d = d;
            d.add_diag(-1.0);
            assert_eq!(d.max_abs(), 0.0);
        }
        // Corner is +B_1.
        let corner = pc.dense_block(&m, 0, 3);
        assert_eq!(&corner, pc.block(0));
        // Subdiagonals are −B_{k+1}.
        for k in 1..4 {
            let mut s = pc.dense_block(&m, k, k - 1);
            s.add_assign(pc.block(k));
            assert_eq!(s.max_abs(), 0.0);
        }
        // Everything else is zero.
        let z = pc.dense_block(&m, 0, 1);
        assert_eq!(z.max_abs(), 0.0);
    }

    #[test]
    fn reference_green_is_inverse() {
        let pc = random_pcyclic(4, 5, 2);
        let g = pc.reference_green(Par::Seq);
        let m = pc.assemble_dense();
        let mut prod = mul(&m, &g);
        prod.add_diag(-1.0);
        assert!(prod.max_abs() < 1e-10, "MG ≉ I: {}", prod.max_abs());
    }

    #[test]
    fn torus_index_helpers() {
        let pc = random_pcyclic(2, 5, 3);
        assert_eq!(pc.down(4), 0);
        assert_eq!(pc.down(2), 3);
        assert_eq!(pc.up(0), 4);
        assert_eq!(pc.up(3), 2);
        assert_eq!(pc.wrap(5), 0);
        assert_eq!(pc.wrap(7), 2);
    }

    #[test]
    fn single_block_degenerate_case() {
        let pc = random_pcyclic(3, 1, 4);
        let m = pc.assemble_dense();
        // M = I + B_1.
        let mut want = pc.block(0).clone();
        want.add_diag(1.0);
        assert_eq!(&m, &want);
        let g = pc.reference_green(Par::Seq);
        let mut prod = mul(&m, &g);
        prod.add_diag(-1.0);
        assert!(prod.max_abs() < 1e-12);
    }

    #[test]
    fn bytes_accounting() {
        let pc = random_pcyclic(10, 7, 5);
        assert_eq!(pc.bytes(), 7 * 10 * 10 * 8);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn mismatched_blocks_panic() {
        let _ = BlockPCyclic::new(vec![Matrix::zeros(2, 2), Matrix::zeros(3, 3)]);
    }
}
