//! Dirty-slice-tracking cache of dense `B_ℓ^σ` blocks.
//!
//! A DQMC stabilization rebuilds the Green's function from the full set of
//! `L` propagator blocks, but between two stabilizations only the slices
//! the sweep actually visited (at most `stabilize_every` of them) can have
//! changed HS fields. The [`BlockCache`] keeps one spin's blocks alive
//! across refreshes and rebuilds only the dirty slices, turning the per-
//! refresh block assembly from `O(L·N²)` `exp`-and-scale work into
//! `O(window·N²)`.
//!
//! The cache is deliberately dumb about *what* changed: the sweep marks
//! whole slices dirty (flip granularity is a single site, but a slice
//! rebuild is two cheap diagonal scalings, so finer tracking buys nothing).
//! Correctness is bitwise: a rebuilt block goes through the exact same
//! [`BlockBuilder::block`] call a cold build would use.

use fsi_dense::Matrix;

use crate::hubbard::{BlockBuilder, HsField, Spin};

/// Per-spin cache of the `L` dense blocks `B_0^σ … B_{L−1}^σ`.
#[derive(Clone, Debug, Default)]
pub struct BlockCache {
    blocks: Vec<Matrix>,
}

impl BlockCache {
    /// An empty cache; the first [`Self::sync`] performs a cold build.
    pub fn new() -> Self {
        BlockCache { blocks: Vec::new() }
    }

    /// Whether the cache holds a block set (any sync has happened).
    pub fn is_warm(&self) -> bool {
        !self.blocks.is_empty()
    }

    /// Brings the cache up to date with `field`, rebuilding every slice
    /// marked in `dirty` (plus everything, on a cold or shape-mismatched
    /// cache). Returns the number of blocks rebuilt.
    ///
    /// # Panics
    /// Panics unless `dirty.len() == field.slices()`.
    pub fn sync(
        &mut self,
        builder: &BlockBuilder,
        field: &HsField,
        spin: Spin,
        dirty: &[bool],
    ) -> usize {
        static REBUILT: fsi_runtime::metrics::LazyCounter =
            fsi_runtime::metrics::LazyCounter::new("pcyclic.block_cache.rebuilt");
        static REUSED: fsi_runtime::metrics::LazyCounter =
            fsi_runtime::metrics::LazyCounter::new("pcyclic.block_cache.reused");
        let l = field.slices();
        assert_eq!(dirty.len(), l, "dirty mask length mismatch");
        if self.blocks.len() != l {
            self.blocks = builder.all_blocks(field, spin);
            REBUILT.add(l as u64);
            return l;
        }
        let mut rebuilt = 0;
        for (k, is_dirty) in dirty.iter().enumerate() {
            if *is_dirty {
                self.blocks[k] = builder.block(field, k, spin);
                rebuilt += 1;
            }
        }
        REBUILT.add(rebuilt as u64);
        REUSED.add((l - rebuilt) as u64);
        rebuilt
    }

    /// The cached blocks, slice-major (`B_0 … B_{L−1}`).
    pub fn blocks(&self) -> &[Matrix] {
        &self.blocks
    }

    /// Drops the cached blocks; the next [`Self::sync`] is cold.
    pub fn invalidate(&mut self) {
        self.blocks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::SquareLattice;
    use crate::HubbardParams;
    use rand::SeedableRng;

    fn setup() -> (BlockBuilder, HsField) {
        let builder =
            BlockBuilder::new(SquareLattice::square(3), HubbardParams::paper_validation(6));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let field = HsField::random(6, 9, &mut rng);
        (builder, field)
    }

    #[test]
    fn cold_sync_builds_everything() {
        let (builder, field) = setup();
        let mut cache = BlockCache::new();
        assert!(!cache.is_warm());
        let rebuilt = cache.sync(&builder, &field, Spin::Up, &[false; 6]);
        assert_eq!(rebuilt, 6);
        assert!(cache.is_warm());
        let fresh = builder.all_blocks(&field, Spin::Up);
        for (a, b) in cache.blocks().iter().zip(&fresh) {
            assert_eq!(a.as_slice(), b.as_slice(), "cold build must be bitwise");
        }
    }

    #[test]
    fn warm_sync_rebuilds_only_dirty_slices() {
        let (builder, mut field) = setup();
        let mut cache = BlockCache::new();
        cache.sync(&builder, &field, Spin::Down, &[false; 6]);
        // Flip sites on slices 1 and 4 and mark them dirty.
        field.flip(1, 0);
        field.flip(4, 3);
        let mut dirty = [false; 6];
        dirty[1] = true;
        dirty[4] = true;
        let rebuilt = cache.sync(&builder, &field, Spin::Down, &dirty);
        assert_eq!(rebuilt, 2);
        let fresh = builder.all_blocks(&field, Spin::Down);
        for (k, (a, b)) in cache.blocks().iter().zip(&fresh).enumerate() {
            assert_eq!(a.as_slice(), b.as_slice(), "slice {k} differs from cold");
        }
    }

    #[test]
    fn invalidate_forces_full_rebuild() {
        let (builder, field) = setup();
        let mut cache = BlockCache::new();
        cache.sync(&builder, &field, Spin::Up, &[false; 6]);
        cache.invalidate();
        assert!(!cache.is_warm());
        let rebuilt = cache.sync(&builder, &field, Spin::Up, &[false; 6]);
        assert_eq!(rebuilt, 6);
    }
}
