//! Hubbard-model physics: parameters, Hubbard–Stratonovich fields, and the
//! `B_ℓ` block builder.
//!
//! After Trotter discretization of the inverse temperature `β` into `L`
//! slices (`Δτ = β/L`) and the discrete Hubbard–Stratonovich transformation
//! of the on-site interaction `U`, the fermion determinant factorizes into
//! per-slice propagators (paper §V-A):
//!
//! ```text
//! B_ℓ^σ = e^{tΔτK} · e^{σν V_ℓ(h)},     cosh ν = e^{ΔτU/2},
//! ```
//!
//! where `K` is the lattice adjacency, `σ = ±1` the spin, and
//! `V_ℓ(h) = diag(h(ℓ,1), …, h(ℓ,N))` the slice-`ℓ` row of the HS field
//! `h ∈ {±1}^{L×N}`. The dense hopping factor `e^{tΔτK}` (and its exact
//! inverse `e^{−tΔτK}`) is computed once per parameter set with the Padé
//! matrix exponential and shared by all slices, spins and Monte Carlo
//! sweeps.

use fsi_dense::{expm, Matrix};
use rand::Rng;

use crate::checkerboard::Checkerboard;
use crate::lattice::SquareLattice;

/// Spin direction `σ ∈ {↑, ↓}` entering the HS exponent as `±1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Spin {
    /// σ = +1
    Up,
    /// σ = −1
    Down,
}

impl Spin {
    /// The `±1` value used in exponents.
    pub fn sign(self) -> f64 {
        match self {
            Spin::Up => 1.0,
            Spin::Down => -1.0,
        }
    }

    /// Both spin species, in `[Up, Down]` order.
    pub const BOTH: [Spin; 2] = [Spin::Up, Spin::Down];
}

/// Physical and discretization parameters of a Hubbard-model run.
#[derive(Clone, Debug, PartialEq)]
pub struct HubbardParams {
    /// Hopping amplitude `t`.
    pub t: f64,
    /// On-site interaction strength `U`.
    pub u: f64,
    /// Inverse temperature `β`.
    pub beta: f64,
    /// Number of imaginary-time slices `L` (so `Δτ = β/L`).
    pub l: usize,
}

impl HubbardParams {
    /// The paper's validation parameter set `(t, β, σ, U) = (1, 1, ·, 2)`.
    pub fn paper_validation(l: usize) -> Self {
        HubbardParams {
            t: 1.0,
            u: 2.0,
            beta: 1.0,
            l,
        }
    }

    /// Imaginary-time step `Δτ = β/L`.
    pub fn delta_tau(&self) -> f64 {
        self.beta / self.l as f64
    }

    /// HS coupling `ν = cosh⁻¹(e^{ΔτU/2})`.
    ///
    /// # Panics
    /// Panics for attractive `U < 0` (the discrete HS transform used here
    /// requires repulsive coupling; the attractive model needs the charge
    /// channel, which is out of scope).
    pub fn nu(&self) -> f64 {
        assert!(self.u >= 0.0, "repulsive-U HS transform requires U >= 0");
        let x = (self.delta_tau() * self.u / 2.0).exp();
        // acosh(x) for x >= 1.
        (x + (x * x - 1.0).sqrt()).ln()
    }
}

/// A Hubbard–Stratonovich configuration `h(ℓ, i) ∈ {±1}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HsField {
    /// `h[ℓ][i]`, `ℓ ∈ 0..L`, `i ∈ 0..N`.
    h: Vec<Vec<i8>>,
}

impl HsField {
    /// All-up configuration (`h ≡ +1`), the paper's `h₀` initialization.
    pub fn ones(l: usize, n: usize) -> Self {
        HsField {
            h: vec![vec![1; n]; l],
        }
    }

    /// Uniformly random `±1` configuration.
    pub fn random<R: Rng + ?Sized>(l: usize, n: usize, rng: &mut R) -> Self {
        HsField {
            h: (0..l)
                .map(|_| {
                    (0..n)
                        .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
                        .collect()
                })
                .collect(),
        }
    }

    /// Number of time slices.
    pub fn slices(&self) -> usize {
        self.h.len()
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.h.first().map(|r| r.len()).unwrap_or(0)
    }

    /// Field value at `(ℓ, i)` as `±1.0`.
    pub fn get(&self, l: usize, i: usize) -> f64 {
        self.h[l][i] as f64
    }

    /// Flips `h(ℓ, i) → −h(ℓ, i)`.
    pub fn flip(&mut self, l: usize, i: usize) {
        self.h[l][i] = -self.h[l][i];
    }

    /// The slice-`ℓ` row as `f64`s (the diagonal of `V_ℓ`).
    pub fn row(&self, l: usize) -> Vec<f64> {
        self.h[l].iter().map(|&x| x as f64).collect()
    }

    /// Flattens to a `±1` vector in slice-major order — the array the
    /// paper's Alg. 3 scatters to MPI ranks (fields are cheap to ship;
    /// matrices are rebuilt rank-locally).
    pub fn to_flat(&self) -> Vec<i8> {
        self.h.iter().flat_map(|r| r.iter().copied()).collect()
    }

    /// Rebuilds from a flat slice-major vector.
    ///
    /// # Panics
    /// Panics unless `flat.len() == l·n` and all entries are `±1`.
    pub fn from_flat(l: usize, n: usize, flat: &[i8]) -> Self {
        assert_eq!(flat.len(), l * n, "flat HS field length mismatch");
        assert!(
            flat.iter().all(|&x| x == 1 || x == -1),
            "HS field entries must be ±1"
        );
        HsField {
            h: (0..l)
                .map(|li| flat[li * n..(li + 1) * n].to_vec())
                .collect(),
        }
    }
}

/// Prebuilt slice-independent factors for assembling `B_ℓ^σ` blocks.
///
/// Holds `e^{tΔτK}` and its exact inverse `e^{−tΔτK}`, so that
/// `B = expK·diag(e^{σνh})` and `B⁻¹ = diag(e^{−σνh})·expK⁻¹` are both a
/// single diagonal scaling away — the analytic inverse keeps the wrapping
/// relations and the DQMC wrap `G → B G B⁻¹` cheap and stable.
#[derive(Clone, Debug)]
pub struct BlockBuilder {
    lattice: SquareLattice,
    params: HubbardParams,
    nu: f64,
    exp_k: Matrix,
    exp_k_inv: Matrix,
    cb: Option<Checkerboard>,
}

impl BlockBuilder {
    /// Computes the hopping exponentials for the given lattice/parameters.
    pub fn new(lattice: SquareLattice, params: HubbardParams) -> Self {
        let mut k = lattice.adjacency();
        let scale = params.t * params.delta_tau();
        k.scale(scale);
        let exp_k = expm(&k).expect("e^{tΔτK} exists for any finite K");
        k.scale(-1.0);
        let exp_k_inv = expm(&k).expect("e^{-tΔτK} exists for any finite K");
        let nu = params.nu();
        BlockBuilder {
            lattice,
            params,
            nu,
            exp_k,
            exp_k_inv,
            cb: None,
        }
    }

    /// Like [`Self::new`] but with the checkerboard breakup as the kinetic
    /// propagator: `exp_k`/`exp_k_inv` are the *materialized* checkerboard
    /// products (not the Padé exponential), so every consumer — dense block
    /// assembly, CLS, measurements, and the O(N·bonds) factored wrap — sees
    /// the same propagator and stays mutually consistent to round-off. The
    /// substitution carries the usual `O((tΔτ)²)` Trotter error relative to
    /// the exact exponential, the same order as the discretization itself.
    pub fn with_checkerboard(lattice: SquareLattice, params: HubbardParams) -> Self {
        let cb = Checkerboard::new(&lattice, params.t * params.delta_tau());
        let exp_k = cb.as_dense();
        let exp_k_inv = cb.as_dense_inverse();
        let nu = params.nu();
        BlockBuilder {
            lattice,
            params,
            nu,
            exp_k,
            exp_k_inv,
            cb: Some(cb),
        }
    }

    /// The checkerboard backend, when this builder was constructed with
    /// [`Self::with_checkerboard`].
    pub fn checkerboard(&self) -> Option<&Checkerboard> {
        self.cb.as_ref()
    }

    /// The lattice this builder was created for.
    pub fn lattice(&self) -> &SquareLattice {
        &self.lattice
    }

    /// The parameters this builder was created for.
    pub fn params(&self) -> &HubbardParams {
        &self.params
    }

    /// The HS coupling ν.
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// The dense hopping factor `e^{tΔτK}`.
    pub fn exp_k(&self) -> &Matrix {
        &self.exp_k
    }

    /// Its inverse `e^{−tΔτK}`.
    pub fn exp_k_inv(&self) -> &Matrix {
        &self.exp_k_inv
    }

    /// Builds `B_ℓ^σ = e^{tΔτK}·diag(e^{σν h(ℓ,·)})`.
    pub fn block(&self, field: &HsField, l: usize, spin: Spin) -> Matrix {
        let mut b = self.exp_k.clone();
        let d = field.row(l);
        fsi_dense::expm::scale_cols_exp(&mut b, spin.sign() * self.nu, &d);
        b
    }

    /// Builds the exact inverse `B_ℓ^σ⁻¹ = diag(e^{−σν h(ℓ,·)})·e^{−tΔτK}`.
    pub fn block_inverse(&self, field: &HsField, l: usize, spin: Spin) -> Matrix {
        let d = field.row(l);
        let alpha = -spin.sign() * self.nu;
        let mut out = self.exp_k_inv.clone();
        fsi_dense::expm::scale_rows_exp(&mut out, alpha, &d);
        out
    }

    /// Builds all `L` blocks for one spin (the input to a p-cyclic matrix).
    pub fn all_blocks(&self, field: &HsField, spin: Spin) -> Vec<Matrix> {
        (0..field.slices())
            .map(|l| self.block(field, l, spin))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_dense::{mul, rel_error, Matrix};
    use rand::SeedableRng;

    fn builder_4x4() -> BlockBuilder {
        BlockBuilder::new(SquareLattice::square(4), HubbardParams::paper_validation(8))
    }

    #[test]
    fn nu_satisfies_cosh_identity() {
        let p = HubbardParams {
            t: 1.0,
            u: 4.0,
            beta: 2.0,
            l: 16,
        };
        let nu = p.nu();
        let want = (p.delta_tau() * p.u / 2.0).exp();
        assert!((nu.cosh() - want).abs() < 1e-14);
        // U = 0 → ν = 0 (free fermions).
        let free = HubbardParams { u: 0.0, ..p };
        assert_eq!(free.nu(), 0.0);
    }

    #[test]
    fn hs_field_roundtrip_and_flip() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let mut h = HsField::random(5, 7, &mut rng);
        assert_eq!(h.slices(), 5);
        assert_eq!(h.sites(), 7);
        let flat = h.to_flat();
        let h2 = HsField::from_flat(5, 7, &flat);
        assert_eq!(h, h2);
        let before = h.get(2, 3);
        h.flip(2, 3);
        assert_eq!(h.get(2, 3), -before);
        h.flip(2, 3);
        assert_eq!(h.get(2, 3), before);
        // Ones field is all +1.
        let ones = HsField::ones(2, 2);
        assert!(ones.to_flat().iter().all(|&x| x == 1));
    }

    #[test]
    fn block_times_inverse_is_identity() {
        let b = builder_4x4();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let h = HsField::random(8, 16, &mut rng);
        for spin in Spin::BOTH {
            let blk = b.block(&h, 3, spin);
            let inv = b.block_inverse(&h, 3, spin);
            let mut prod = mul(&blk, &inv);
            prod.add_diag(-1.0);
            assert!(
                prod.max_abs() < 1e-12,
                "B·B⁻¹ ≉ I ({spin:?}): {}",
                prod.max_abs()
            );
        }
    }

    #[test]
    fn block_matches_definition() {
        let b = builder_4x4();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let h = HsField::random(8, 16, &mut rng);
        let spin = Spin::Down;
        // Explicit: expK · diag(e^{σν h}).
        let d: Vec<f64> = h
            .row(2)
            .iter()
            .map(|&x| (spin.sign() * b.nu() * x).exp())
            .collect();
        let want = mul(b.exp_k(), &Matrix::diag(&d));
        let got = b.block(&h, 2, spin);
        assert!(rel_error(&got, &want) < 1e-15);
    }

    #[test]
    fn free_fermion_blocks_are_spin_independent() {
        let p = HubbardParams {
            t: 1.0,
            u: 0.0,
            beta: 1.0,
            l: 4,
        };
        let b = BlockBuilder::new(SquareLattice::square(3), p);
        let h = HsField::ones(4, 9);
        let up = b.block(&h, 0, Spin::Up);
        let down = b.block(&h, 0, Spin::Down);
        assert!(rel_error(&up, &down) < 1e-15);
        assert!(rel_error(&up, b.exp_k()) < 1e-15);
    }

    #[test]
    fn exp_k_is_symmetric_positive() {
        let b = builder_4x4();
        let e = b.exp_k();
        assert!(rel_error(e, &e.transpose()) < 1e-13);
        // e^{A} for symmetric A has positive diagonal.
        for i in 0..16 {
            assert!(e[(i, i)] > 0.0);
        }
    }

    #[test]
    fn all_blocks_produces_l_blocks() {
        let b = builder_4x4();
        let h = HsField::ones(8, 16);
        let blocks = b.all_blocks(&h, Spin::Up);
        assert_eq!(blocks.len(), 8);
        // With a uniform field all blocks are identical.
        for blk in &blocks[1..] {
            assert!(rel_error(blk, &blocks[0]) < 1e-15);
        }
    }

    #[test]
    fn checkerboard_builder_is_self_consistent() {
        let lat = SquareLattice::square(4);
        let p = HubbardParams::paper_validation(8);
        let b = BlockBuilder::with_checkerboard(lat.clone(), p.clone());
        let cb = b.checkerboard().expect("checkerboard backend present");
        // exp_k is exactly the materialized checkerboard product.
        assert!(rel_error(b.exp_k(), &cb.as_dense()) < 1e-15);
        // Blocks still satisfy B·B⁻¹ = I (the inverse is exact even though
        // the propagator is the Trotterized one).
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let h = HsField::random(8, 16, &mut rng);
        let blk = b.block(&h, 5, Spin::Up);
        let inv = b.block_inverse(&h, 5, Spin::Up);
        let mut prod = mul(&blk, &inv);
        prod.add_diag(-1.0);
        assert!(prod.max_abs() < 1e-12, "cb B·B⁻¹ ≉ I: {}", prod.max_abs());
        // Close to (but distinct from) the dense-exponential builder.
        let dense = BlockBuilder::new(lat, p);
        let err = rel_error(b.exp_k(), dense.exp_k());
        assert!(err < 0.05, "Trotter error unexpectedly large: {err}");
        // The plain builder has no checkerboard backend.
        assert!(dense.checkerboard().is_none());
    }

    #[test]
    fn spins_differ_for_interacting_system() {
        let b = builder_4x4();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let h = HsField::random(8, 16, &mut rng);
        let up = b.block(&h, 0, Spin::Up);
        let down = b.block(&h, 0, Spin::Down);
        assert!(rel_error(&up, &down) > 1e-3, "U > 0 must split the spins");
    }
}
