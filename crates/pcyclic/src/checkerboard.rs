//! Checkerboard decomposition of the hopping propagator `e^{tΔτK}`.
//!
//! QUEST's default kinetic propagator is not the dense matrix exponential
//! but the *checkerboard breakup*: the bond set of the periodic square
//! lattice splits into four groups (x-even, x-odd, y-even, y-odd) of
//! mutually non-touching bonds, and
//!
//! ```text
//! e^{tΔτK} ≈ Π_g e^{tΔτK_g},    e^{tΔτK_g} = Π_{(i,j)∈g} e^{tΔτK_{ij}},
//! ```
//!
//! where each bond factor is an exact 2×2 rotation
//! `[[cosh a, sinh a], [sinh a, cosh a]]` acting on sites `(i, j)` with
//! `a = tΔτ`. Bonds within a group commute, so only the *group* ordering
//! introduces error — `O((tΔτ)²)` per slice, the same order as the
//! Trotter error already present in DQMC, which is why the substitution
//! is standard.
//!
//! Benefits reproduced here: applying the propagator costs `O(N·z)`
//! instead of the dense `O(N²)` GEMM, and the inverse is exact (apply the
//! groups in reverse with `a → −a`).

use fsi_dense::Matrix;

use crate::lattice::SquareLattice;

/// A checkerboard-factorized hopping propagator for a square lattice.
#[derive(Clone, Debug)]
pub struct Checkerboard {
    /// Bond groups; within a group no site appears twice.
    groups: Vec<Vec<(usize, usize)>>,
    /// `cosh(tΔτ)`.
    ch: f64,
    /// `sinh(tΔτ)`.
    sh: f64,
    n: usize,
}

impl Checkerboard {
    /// Builds the four-group bond decomposition for `lattice` with bond
    /// strength `a = t·Δτ`.
    pub fn new(lattice: &SquareLattice, a: f64) -> Self {
        let (nx, ny) = (lattice.nx(), lattice.ny());
        let mut groups: Vec<Vec<(usize, usize)>> = vec![Vec::new(); 4];
        // Global de-duplication: on degenerate extents (nx == 2) the
        // forward bond and the wrap bond are the same undirected edge.
        let mut seen = std::collections::HashSet::new();
        let mut push = |groups: &mut Vec<Vec<(usize, usize)>>, g: usize, i: usize, j: usize| {
            if i != j && seen.insert((i.min(j), i.max(j))) {
                groups[g].push((i, j));
            }
        };
        // Horizontal bonds (x, y)–(x+1, y): parity of x picks the group;
        // odd-extent wrap bonds collide within their group and are
        // repaired by the spill pass below.
        for y in 0..ny {
            for x in 0..nx {
                let i = lattice.site(x, y);
                let j = lattice.site(x + 1, y);
                push(&mut groups, x % 2, i, j);
            }
        }
        // Vertical bonds (x, y)–(x, y+1).
        for y in 0..ny {
            for x in 0..nx {
                let i = lattice.site(x, y);
                let j = lattice.site(x, y + 1);
                push(&mut groups, 2 + y % 2, i, j);
            }
        }
        // Repair within-group site collisions (odd extents) by moving
        // offending bonds to a fresh group.
        let mut fixed: Vec<Vec<(usize, usize)>> = Vec::new();
        for g in groups.into_iter().filter(|g| !g.is_empty()) {
            let mut used = vec![false; lattice.n_sites()];
            let mut keep = Vec::new();
            let mut spill = Vec::new();
            for (i, j) in g {
                if used[i] || used[j] {
                    spill.push((i, j));
                } else {
                    used[i] = true;
                    used[j] = true;
                    keep.push((i, j));
                }
            }
            fixed.push(keep);
            while !spill.is_empty() {
                let mut used = vec![false; lattice.n_sites()];
                let mut keep = Vec::new();
                let mut next_spill = Vec::new();
                for (i, j) in spill {
                    if used[i] || used[j] {
                        next_spill.push((i, j));
                    } else {
                        used[i] = true;
                        used[j] = true;
                        keep.push((i, j));
                    }
                }
                fixed.push(keep);
                spill = next_spill;
            }
        }
        Checkerboard {
            groups: fixed,
            ch: a.cosh(),
            sh: a.sinh(),
            n: lattice.n_sites(),
        }
    }

    /// Number of sites.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The bond groups (for inspection/tests).
    pub fn groups(&self) -> &[Vec<(usize, usize)>] {
        &self.groups
    }

    /// Total bond count (each undirected bond once).
    pub fn n_bonds(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Applies the propagator from the left in place: `A := B_cb·A`,
    /// at `O(bonds · cols)` cost.
    pub fn apply_left(&self, a: &mut Matrix) {
        assert_eq!(a.rows(), self.n, "checkerboard row mismatch");
        self.apply(a, self.sh, false);
    }

    /// Applies the exact inverse from the left: `A := B_cb⁻¹·A` (groups
    /// reversed, `sinh` negated).
    pub fn apply_left_inverse(&self, a: &mut Matrix) {
        assert_eq!(a.rows(), self.n, "checkerboard row mismatch");
        self.apply(a, -self.sh, true);
    }

    /// Applies the propagator from the right in place: `A := A·B_cb`.
    ///
    /// `B_cb = E_{g−1}⋯E_0`, so the rightmost group factor `E_{g−1}` hits
    /// `A` first: column mixing walks the groups in reverse.
    pub fn apply_right(&self, a: &mut Matrix) {
        assert_eq!(a.cols(), self.n, "checkerboard column mismatch");
        self.apply_cols(a, self.sh, true);
    }

    /// Applies the exact inverse from the right: `A := A·B_cb⁻¹`
    /// (`B_cb⁻¹ = E_0⁻¹⋯E_{g−1}⁻¹`: forward group order, `sinh` negated).
    /// This is the `G·B⁻¹` half of the DQMC similarity wrap.
    pub fn apply_right_inverse(&self, a: &mut Matrix) {
        assert_eq!(a.cols(), self.n, "checkerboard column mismatch");
        self.apply_cols(a, -self.sh, false);
    }

    fn apply(&self, a: &mut Matrix, sh: f64, reverse: bool) {
        let cols = a.cols();
        fsi_runtime::trace::charge_flops(apply_flops(self.n_bonds(), cols));
        let order: Vec<usize> = if reverse {
            (0..self.groups.len()).rev().collect()
        } else {
            (0..self.groups.len()).collect()
        };
        for gi in order {
            for &(i, j) in &self.groups[gi] {
                // Rows i and j mix: [ch sh; sh ch] within each column.
                for c in 0..cols {
                    let ai = a[(i, c)];
                    let aj = a[(j, c)];
                    a[(i, c)] = self.ch * ai + sh * aj;
                    a[(j, c)] = sh * ai + self.ch * aj;
                }
            }
        }
    }

    /// Right-side bond sweep: columns `i` and `j` mix through the
    /// symmetric 2×2 bond factor. Column-major storage makes each bond a
    /// pass over two contiguous columns.
    fn apply_cols(&self, a: &mut Matrix, sh: f64, reverse: bool) {
        let rows = a.rows();
        fsi_runtime::trace::charge_flops(apply_flops(self.n_bonds(), rows));
        let order: Vec<usize> = if reverse {
            (0..self.groups.len()).rev().collect()
        } else {
            (0..self.groups.len()).collect()
        };
        for gi in order {
            for &(i, j) in &self.groups[gi] {
                for r in 0..rows {
                    let ai = a[(r, i)];
                    let aj = a[(r, j)];
                    a[(r, i)] = self.ch * ai + sh * aj;
                    a[(r, j)] = sh * ai + self.ch * aj;
                }
            }
        }
    }

    /// Materializes the dense propagator (tests / comparison with
    /// [`fsi_dense::expm()`]).
    pub fn as_dense(&self) -> Matrix {
        let mut m = Matrix::identity(self.n);
        self.apply_left(&mut m);
        m
    }

    /// Materializes the dense inverse propagator (the checkerboard analog
    /// of `e^{−tΔτK}`; exact inverse of [`Self::as_dense`] to round-off).
    pub fn as_dense_inverse(&self) -> Matrix {
        let mut m = Matrix::identity(self.n);
        self.apply_left_inverse(&mut m);
        m
    }
}

/// Flop count of one checkerboard application to a matrix with `lanes`
/// rows (right apply) or columns (left apply): each bond rotates two
/// elements per lane at 4 multiplies + 2 adds.
pub fn apply_flops(bonds: usize, lanes: usize) -> u64 {
    6 * bonds as u64 * lanes as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_dense::{expm, mul, norm1, rel_error};

    #[test]
    fn groups_are_conflict_free_and_cover_all_bonds() {
        for (nx, ny) in [(4usize, 4usize), (6, 4), (5, 5), (2, 2), (3, 3)] {
            let lat = SquareLattice::new(nx, ny);
            let cb = Checkerboard::new(&lat, 0.1);
            // No site twice within a group.
            for (gi, g) in cb.groups().iter().enumerate() {
                let mut seen = vec![false; lat.n_sites()];
                for &(i, j) in g {
                    assert!(!seen[i] && !seen[j], "({nx},{ny}) group {gi} reuses a site");
                    seen[i] = true;
                    seen[j] = true;
                }
            }
            // Bond count equals half the adjacency row sums.
            let k = lat.adjacency();
            let mut edges = 0;
            for i in 0..lat.n_sites() {
                for j in 0..lat.n_sites() {
                    if k[(i, j)] != 0.0 {
                        edges += 1;
                    }
                }
            }
            assert_eq!(cb.n_bonds(), edges / 2, "({nx},{ny}) bond coverage");
        }
    }

    #[test]
    fn inverse_is_exact() {
        let lat = SquareLattice::new(4, 4);
        let cb = Checkerboard::new(&lat, 0.25);
        let a0 = fsi_dense::test_matrix(16, 5, 1);
        let mut a = a0.clone();
        cb.apply_left(&mut a);
        cb.apply_left_inverse(&mut a);
        assert!(
            rel_error(&a, &a0) < 1e-14,
            "B⁻¹B ≠ I: {}",
            rel_error(&a, &a0)
        );
    }

    #[test]
    fn four_by_four_checkerboard_is_exact() {
        // Special case: the 4-ring's even/odd bond sets commute, so the
        // 4×4 checkerboard equals the dense exponential to round-off.
        let lat = SquareLattice::new(4, 4);
        let cb = Checkerboard::new(&lat, 0.1);
        let mut k = lat.adjacency();
        k.scale(0.1);
        let dense = expm(&k).expect("expm");
        assert!(rel_error(&cb.as_dense(), &dense) < 1e-13);
    }

    #[test]
    fn approximates_dense_exponential_to_trotter_order() {
        let lat = SquareLattice::new(6, 6);
        // Error should scale like a² — check two values of a.
        let mut errs = Vec::new();
        for &a in &[0.1f64, 0.05] {
            let cb = Checkerboard::new(&lat, a);
            let mut k = lat.adjacency();
            k.scale(a);
            let dense = expm(&k).expect("expm");
            let approx = cb.as_dense();
            errs.push(rel_error(&approx, &dense));
        }
        assert!(errs[0] < 0.02, "10% step error too large: {}", errs[0]);
        // Quadratic scaling: halving a should cut the error ~4×.
        let ratio = errs[0] / errs[1];
        assert!(
            (2.5..8.0).contains(&ratio),
            "error ratio {ratio} not ~4 (errs {errs:?})"
        );
    }

    #[test]
    fn dense_form_is_orthogonal_like_symmetric() {
        // Each bond factor is symmetric positive definite; the product is
        // similar but not symmetric — check det > 0 and norm sanity.
        let lat = SquareLattice::new(4, 2);
        let cb = Checkerboard::new(&lat, 0.2);
        let d = cb.as_dense();
        let det = fsi_dense::getrf(d.clone()).unwrap().det();
        assert!(det > 0.0);
        assert!(norm1(&d) < 4.0);
        // Determinant equals Π cosh²−sinh² = 1 per bond → det = 1.
        assert!((det - 1.0).abs() < 1e-10, "det = {det}");
    }

    #[test]
    fn apply_matches_dense_multiplication() {
        let lat = SquareLattice::new(3, 4);
        let cb = Checkerboard::new(&lat, 0.17);
        let d = cb.as_dense();
        let x = fsi_dense::test_matrix(12, 7, 3);
        let want = mul(&d, &x);
        let mut got = x.clone();
        cb.apply_left(&mut got);
        assert!(rel_error(&got, &want) < 1e-13);
    }

    #[test]
    fn right_apply_matches_dense_multiplication() {
        let lat = SquareLattice::new(3, 4);
        let cb = Checkerboard::new(&lat, 0.17);
        let d = cb.as_dense();
        let x = fsi_dense::test_matrix(7, 12, 5);
        let want = mul(&x, &d);
        let mut got = x.clone();
        cb.apply_right(&mut got);
        assert!(rel_error(&got, &want) < 1e-13);
    }

    #[test]
    fn right_inverse_is_exact() {
        let lat = SquareLattice::new(4, 4);
        let cb = Checkerboard::new(&lat, 0.25);
        let a0 = fsi_dense::test_matrix(5, 16, 6);
        let mut a = a0.clone();
        cb.apply_right(&mut a);
        cb.apply_right_inverse(&mut a);
        assert!(
            rel_error(&a, &a0) < 1e-14,
            "B B⁻¹ ≠ I on the right: {}",
            rel_error(&a, &a0)
        );
        // And the materialized inverse matches LU inversion of as_dense.
        let inv = fsi_dense::inverse(&cb.as_dense()).unwrap();
        assert!(rel_error(&cb.as_dense_inverse(), &inv) < 1e-12);
    }

    #[test]
    fn one_dimensional_chain_works() {
        let lat = SquareLattice::new(6, 1);
        let cb = Checkerboard::new(&lat, 0.1);
        assert_eq!(cb.n_bonds(), 6); // periodic 6-chain
        let a0 = fsi_dense::test_matrix(6, 2, 4);
        let mut a = a0.clone();
        cb.apply_left(&mut a);
        cb.apply_left_inverse(&mut a);
        assert!(rel_error(&a, &a0) < 1e-14);
    }
}
