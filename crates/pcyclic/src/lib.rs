//! # fsi-pcyclic — block p-cyclic matrices and Hubbard-model generation
//!
//! Bridges the physics and the linear algebra of the FSI paper:
//!
//! * [`lattice`] — periodic rectangular lattices (QUEST's default
//!   geometry): adjacency matrix `K`, spatial displacement classes
//!   `D(i, j)`, and the temporal distance map `T(k, ℓ)`;
//! * [`hubbard`] — Hubbard parameters, the HS coupling
//!   `ν = cosh⁻¹ e^{ΔτU/2}`, Hubbard–Stratonovich field configurations,
//!   and the [`hubbard::BlockBuilder`] assembling
//!   `B_ℓ^σ = e^{tΔτK}·e^{σνV_ℓ(h)}` (with exact analytic inverses);
//! * [`pcyclic`] — the [`BlockPCyclic`] normal-form matrix `M` of Eq. (1),
//!   its dense assembly, and the LU reference inverse;
//! * [`green`] — the explicit Green's-function expression of Eq. (3)
//!   (the baseline FSI is compared against, and the test oracle for all
//!   structured algorithms);
//! * [`checkerboard`] — QUEST's sparse bond-split alternative to the
//!   dense hopping exponential, with exact inverse and O(N) application;
//! * [`block_cache`] — dirty-slice-tracking reuse of dense `B_ℓ` blocks
//!   across DQMC stabilizations.

#![warn(missing_docs)]
// index loops mirror the lattice/slice indexing of the paper.
#![allow(clippy::needless_range_loop)]

pub mod block_cache;
pub mod checkerboard;
pub mod green;
pub mod hubbard;
pub mod lattice;
pub mod pcyclic;

pub use block_cache::BlockCache;
pub use checkerboard::Checkerboard;
pub use hubbard::{BlockBuilder, HsField, HubbardParams, Spin};
pub use lattice::{temporal_distance, SquareLattice};
pub use pcyclic::{random_pcyclic, BlockPCyclic};

/// Builds the spin-σ Hubbard matrix `M^σ(h)` for a field configuration —
/// the top-level constructor used throughout the examples and benches.
pub fn hubbard_pcyclic(builder: &BlockBuilder, field: &HsField, spin: Spin) -> BlockPCyclic {
    BlockPCyclic::new(builder.all_blocks(field, spin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_runtime::Par;
    use rand::SeedableRng;

    /// End-to-end: a small Hubbard matrix has a well-conditioned dense form
    /// whose inverse the explicit expression reproduces.
    #[test]
    fn hubbard_matrix_green_function_consistency() {
        let lat = SquareLattice::square(2);
        let params = HubbardParams::paper_validation(6);
        let builder = BlockBuilder::new(lat, params);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let field = HsField::random(6, 4, &mut rng);
        for spin in Spin::BOTH {
            let pc = hubbard_pcyclic(&builder, &field, spin);
            assert_eq!(pc.l(), 6);
            assert_eq!(pc.n(), 4);
            let g_ref = pc.reference_green(Par::Seq);
            for k in [0usize, 3, 5] {
                let blk = green::green_block_explicit(Par::Seq, &pc, k, 2);
                let want = pc.dense_block(&g_ref, k, 2);
                assert!(
                    fsi_dense::rel_error(&blk, &want) < 1e-9,
                    "({spin:?}, k={k})"
                );
            }
        }
    }
}
