//! Periodic rectangular lattices — QUEST's default geometry.
//!
//! A [`SquareLattice`] is an `nx × ny` grid with periodic boundary
//! conditions. It supplies the three geometric ingredients of the paper:
//!
//! * the adjacency (hopping) matrix `K` entering the Hubbard block
//!   `B_ℓ = e^{tΔτK}·e^{σνV_ℓ}`;
//! * the spatial distance map `D(i, j)` that buckets site pairs into
//!   displacement classes for space-resolved measurements such as SPXX
//!   (the paper's `d` index with `d_max ~ O(N)`);
//! * the temporal distance map `T(k, ℓ)` between time-slice block indices
//!   (implemented here too, as it is pure index arithmetic).

use fsi_dense::Matrix;

/// An `nx × ny` periodic rectangular lattice. Site `i` has coordinates
/// `(i % nx, i / nx)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SquareLattice {
    nx: usize,
    ny: usize,
}

impl SquareLattice {
    /// Creates an `nx × ny` periodic lattice.
    ///
    /// # Panics
    /// Panics if either side is zero.
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "lattice sides must be positive");
        SquareLattice { nx, ny }
    }

    /// A square `l × l` lattice.
    pub fn square(l: usize) -> Self {
        Self::new(l, l)
    }

    /// Number of sites `N = nx·ny`.
    pub fn n_sites(&self) -> usize {
        self.nx * self.ny
    }

    /// Horizontal extent.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Vertical extent.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Site index of coordinates `(x, y)` (taken modulo the extents).
    pub fn site(&self, x: usize, y: usize) -> usize {
        (x % self.nx) + (y % self.ny) * self.nx
    }

    /// Coordinates of site `i`.
    pub fn coords(&self, i: usize) -> (usize, usize) {
        debug_assert!(i < self.n_sites());
        (i % self.nx, i / self.nx)
    }

    /// The (up to) four nearest neighbours of site `i` under periodic
    /// boundaries, deduplicated for degenerate extents (`nx` or `ny` ≤ 2).
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        let (x, y) = self.coords(i);
        let candidates = [
            self.site(x + 1, y),
            self.site(x + self.nx - 1, y),
            self.site(x, y + 1),
            self.site(x, y + self.ny - 1),
        ];
        let mut out = Vec::with_capacity(4);
        for c in candidates {
            if c != i && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    /// The `N × N` adjacency matrix `K` (`k_ij = 1` when `i`, `j` are
    /// nearest neighbours). Symmetric by construction.
    pub fn adjacency(&self) -> Matrix {
        let n = self.n_sites();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in self.neighbors(i) {
                k[(i, j)] = 1.0;
            }
        }
        k
    }

    /// Minimum-image displacement of site `j` relative to site `i`, folded
    /// into `0 ≤ dx ≤ nx/2`, `0 ≤ dy ≤ ny/2`.
    pub fn displacement(&self, i: usize, j: usize) -> (usize, usize) {
        let (xi, yi) = self.coords(i);
        let (xj, yj) = self.coords(j);
        let dx = (xj + self.nx - xi) % self.nx;
        let dy = (yj + self.ny - yi) % self.ny;
        (dx.min(self.nx - dx), dy.min(self.ny - dy))
    }

    /// Number of distinct displacement classes `d_max`.
    pub fn n_dist_classes(&self) -> usize {
        (self.nx / 2 + 1) * (self.ny / 2 + 1)
    }

    /// The spatial distance map `D(i, j)`: index of the displacement class
    /// of the pair, in `0..n_dist_classes()`.
    pub fn dist_class(&self, i: usize, j: usize) -> usize {
        let (dx, dy) = self.displacement(i, j);
        dx + dy * (self.nx / 2 + 1)
    }

    /// Number of site pairs `(i, j)` in each displacement class (the
    /// normalization of space-resolved correlation functions).
    pub fn dist_class_counts(&self) -> Vec<usize> {
        let n = self.n_sites();
        let mut counts = vec![0usize; self.n_dist_classes()];
        for i in 0..n {
            for j in 0..n {
                counts[self.dist_class(i, j)] += 1;
            }
        }
        counts
    }
}

/// The temporal distance map `T(k, ℓ)` of the paper (0-based block
/// indices): `k − ℓ` if `k ≥ ℓ`, else `k − ℓ + L`, giving `τ ∈ 0..L`.
pub fn temporal_distance(k: usize, l: usize, slices: usize) -> usize {
    debug_assert!(k < slices && l < slices);
    (k + slices - l) % slices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let lat = SquareLattice::new(4, 3);
        assert_eq!(lat.n_sites(), 12);
        assert_eq!(lat.site(0, 0), 0);
        assert_eq!(lat.site(3, 2), 11);
        assert_eq!(lat.site(4, 3), 0, "wraps periodically");
        assert_eq!(lat.coords(11), (3, 2));
    }

    #[test]
    fn neighbors_are_symmetric_and_degree_4() {
        let lat = SquareLattice::square(4);
        for i in 0..lat.n_sites() {
            let ns = lat.neighbors(i);
            assert_eq!(ns.len(), 4, "site {i}");
            for &j in &ns {
                assert!(lat.neighbors(j).contains(&i), "{i} <-> {j}");
            }
        }
    }

    #[test]
    fn degenerate_extents_deduplicate() {
        // A 2×2 lattice: +x and −x neighbours coincide.
        let lat = SquareLattice::square(2);
        for i in 0..4 {
            let ns = lat.neighbors(i);
            assert_eq!(ns.len(), 2, "site {i}: {ns:?}");
        }
        // A 1×4 chain: only vertical neighbours, which coincide pairwise at
        // distance 1.
        let lat = SquareLattice::new(1, 4);
        assert_eq!(lat.neighbors(0).len(), 2);
    }

    #[test]
    fn adjacency_is_symmetric_with_correct_row_sums() {
        let lat = SquareLattice::new(4, 4);
        let k = lat.adjacency();
        for i in 0..16 {
            let mut row = 0.0;
            for j in 0..16 {
                assert_eq!(k[(i, j)], k[(j, i)]);
                row += k[(i, j)];
            }
            assert_eq!(row, 4.0);
        }
        assert_eq!(k[(0, 0)], 0.0, "no self loops");
    }

    #[test]
    fn displacement_minimum_image() {
        let lat = SquareLattice::new(6, 4);
        // Distance from 0 to its +x neighbour.
        assert_eq!(lat.displacement(0, lat.site(1, 0)), (1, 0));
        // Wrapping: site at x=5 is distance 1 from x=0.
        assert_eq!(lat.displacement(0, lat.site(5, 0)), (1, 0));
        // Farthest point.
        assert_eq!(lat.displacement(0, lat.site(3, 2)), (3, 2));
        // Symmetry.
        for i in 0..lat.n_sites() {
            for j in 0..lat.n_sites() {
                assert_eq!(lat.displacement(i, j), lat.displacement(j, i));
            }
        }
    }

    #[test]
    fn dist_classes_partition_all_pairs() {
        let lat = SquareLattice::new(4, 4);
        let counts = lat.dist_class_counts();
        assert_eq!(counts.len(), lat.n_dist_classes());
        let total: usize = counts.iter().sum();
        assert_eq!(total, lat.n_sites() * lat.n_sites());
        // Class 0 is the self class: exactly N pairs.
        assert_eq!(counts[0], lat.n_sites());
        // Translation invariance: every class is populated uniformly,
        // i.e. a multiple of N.
        for (d, &cnt) in counts.iter().enumerate() {
            assert!(cnt % lat.n_sites() == 0, "class {d}: {cnt}");
            assert!(cnt > 0, "class {d} must be populated");
        }
    }

    #[test]
    fn temporal_distance_matches_paper() {
        let l = 10;
        assert_eq!(temporal_distance(5, 3, l), 2); // k > ℓ → k − ℓ
        assert_eq!(temporal_distance(3, 5, l), 8); // k < ℓ → k − ℓ + L
        assert_eq!(temporal_distance(4, 4, l), 0);
        // Every τ value has exactly L pairs (k, ℓ).
        for tau in 0..l {
            let count = (0..l)
                .flat_map(|k| (0..l).map(move |ell| (k, ell)))
                .filter(|&(k, ell)| temporal_distance(k, ell, l) == tau)
                .count();
            assert_eq!(count, l);
        }
    }
}
