//! The explicit Green's-function expression (paper Eq. (3)) and cyclic
//! block products.
//!
//! With 0-based block indices (`b[k]` = paper `B_{k+1}`) the paper's
//! case-split formula collapses to a single cyclic form:
//!
//! ```text
//! G(k, ℓ) = W(k)⁻¹ · Z(k, ℓ)
//! W(k)    = I + P(k),   P(k) = b[k]·b[k−1]⋯  (all L factors, descending
//!                                              cyclically from k)
//! Z(k, ℓ) = I                                          if k = ℓ
//!         = ±  b[k]·b[k−1] ⋯ b[ℓ+1]  (cyclic descent)  otherwise,
//!           with sign −1 exactly when k < ℓ
//! ```
//!
//! This module is both the *reference implementation* the structured
//! algorithms are tested against (without paying the O((NL)³) dense
//! inversion) and the "explicit form" baseline of the paper's complexity
//! table (§II-C): computing b block columns this way costs `bL²N³` flops,
//! the factor-of-L overhead FSI eliminates.

use fsi_dense::{chain_mul, getrf, Matrix};
use fsi_runtime::Par;

use crate::pcyclic::BlockPCyclic;

/// Product of `count` blocks descending cyclically from index `from`:
/// `b[from]·b[from−1]⋯` (`count = 0` gives the identity).
pub fn cyclic_product_desc(par: Par<'_>, pc: &BlockPCyclic, from: usize, count: usize) -> Matrix {
    assert!(count <= pc.l(), "at most L factors in a cyclic product");
    if count == 0 {
        return Matrix::identity(pc.n());
    }
    let mut idx = from % pc.l();
    let mut factors = Vec::with_capacity(count);
    for _ in 0..count {
        factors.push(pc.block(idx));
        idx = pc.up(idx);
    }
    // chain_mul's ping-pong buffers bound the allocation count at two, no
    // matter how long the descent is (this runs L times per W matrix).
    // Sequential small-N descents (the reference-Green workload at the
    // paper's N ≤ 64 shapes) additionally ride chain_mul's no-pack direct
    // kernel fast path — no per-product workspace borrows or fill passes.
    chain_mul(par, &factors)
}

/// The full cyclic product `P(k) = b[k]·b[k−1]⋯b[k−L+1]` (all `L` factors).
pub fn cyclic_product_full(par: Par<'_>, pc: &BlockPCyclic, k: usize) -> Matrix {
    cyclic_product_desc(par, pc, k, pc.l())
}

/// `W(k) = I + P(k)` — the matrix whose inverse is the equal-time Green's
/// function block `G(k, k)`.
pub fn w_matrix(par: Par<'_>, pc: &BlockPCyclic, k: usize) -> Matrix {
    let mut w = cyclic_product_full(par, pc, k);
    w.add_diag(1.0);
    w
}

/// `Z(k, ℓ)` of Eq. (3) in the uniform cyclic form.
pub fn z_matrix(par: Par<'_>, pc: &BlockPCyclic, k: usize, l: usize) -> Matrix {
    let ll = pc.l();
    assert!(k < ll && l < ll, "block indices out of range");
    if k == l {
        return Matrix::identity(pc.n());
    }
    let count = (k + ll - l - 1) % ll + 1;
    let mut z = cyclic_product_desc(par, pc, k, count);
    if k < l {
        z.scale(-1.0);
    }
    z
}

/// One Green's-function block `G(k, ℓ) = W(k)⁻¹·Z(k, ℓ)` by the explicit
/// expression — O(L·N³) per block.
pub fn green_block_explicit(par: Par<'_>, pc: &BlockPCyclic, k: usize, l: usize) -> Matrix {
    let w = w_matrix(par, pc, k);
    let z = z_matrix(par, pc, k, l);
    getrf(w)
        .expect("W(k) nonsingular for valid Hubbard matrices")
        .solve(&z)
}

/// The equal-time Green's function `G(k, k) = W(k)⁻¹` by the explicit
/// expression.
pub fn equal_time_green_explicit(par: Par<'_>, pc: &BlockPCyclic, k: usize) -> Matrix {
    let w = w_matrix(par, pc, k);
    getrf(w)
        .expect("W(k) nonsingular for valid Hubbard matrices")
        .inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcyclic::random_pcyclic;
    use fsi_dense::{mul, rel_error};

    #[test]
    fn cyclic_product_wraps_correctly() {
        let pc = random_pcyclic(3, 4, 1);
        // Descending from 1, three factors: b1·b0·b3.
        let got = cyclic_product_desc(Par::Seq, &pc, 1, 3);
        let want = mul(&mul(pc.block(1), pc.block(0)), pc.block(3));
        assert!(rel_error(&got, &want) < 1e-14);
        // Zero factors → identity.
        let id = cyclic_product_desc(Par::Seq, &pc, 2, 0);
        assert!(rel_error(&id, &Matrix::identity(3)) < 1e-15);
    }

    #[test]
    fn full_product_is_similar_across_starting_points() {
        // P(k+1) = b[k+1]·P(k)·b[k+1]⁻¹ — all cyclic products share a
        // spectrum; verify via trace equality.
        let pc = random_pcyclic(4, 5, 2);
        let trace = |m: &Matrix| (0..4).map(|i| m[(i, i)]).sum::<f64>();
        let t0 = trace(&cyclic_product_full(Par::Seq, &pc, 0));
        for k in 1..5 {
            let tk = trace(&cyclic_product_full(Par::Seq, &pc, k));
            assert!((t0 - tk).abs() < 1e-10 * t0.abs().max(1.0), "k={k}");
        }
    }

    #[test]
    fn explicit_blocks_match_dense_inverse() {
        let pc = random_pcyclic(3, 5, 3);
        let g_ref = pc.reference_green(Par::Seq);
        for k in 0..5 {
            for l in 0..5 {
                let blk = green_block_explicit(Par::Seq, &pc, k, l);
                let want = pc.dense_block(&g_ref, k, l);
                assert!(
                    rel_error(&blk, &want) < 1e-9,
                    "block ({k},{l}) mismatch: {}",
                    rel_error(&blk, &want)
                );
            }
        }
    }

    #[test]
    fn equal_time_matches_diagonal_blocks() {
        let pc = random_pcyclic(4, 6, 4);
        let g_ref = pc.reference_green(Par::Seq);
        for k in 0..6 {
            let g = equal_time_green_explicit(Par::Seq, &pc, k);
            let want = pc.dense_block(&g_ref, k, k);
            assert!(rel_error(&g, &want) < 1e-9, "k={k}");
        }
    }

    #[test]
    fn z_signs_flip_across_the_diagonal() {
        let pc = random_pcyclic(2, 4, 5);
        // k > ℓ: positive product of (k−ℓ) factors.
        let z = z_matrix(Par::Seq, &pc, 3, 1);
        let want = mul(pc.block(3), pc.block(2));
        assert!(rel_error(&z, &want) < 1e-14);
        // k < ℓ: negative cyclic product of L−(ℓ−k) factors.
        let z = z_matrix(Par::Seq, &pc, 1, 2);
        let mut want = mul(&mul(pc.block(1), pc.block(0)), pc.block(3));
        want.scale(-1.0);
        assert!(rel_error(&z, &want) < 1e-14);
    }

    #[test]
    fn single_slice_green() {
        // L = 1: G = (I + B_1)⁻¹.
        let pc = random_pcyclic(4, 1, 6);
        let g = equal_time_green_explicit(Par::Seq, &pc, 0);
        let want = pc.dense_block(&pc.reference_green(Par::Seq), 0, 0);
        assert!(rel_error(&g, &want) < 1e-10);
    }
}
